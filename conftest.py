"""Repository-root pytest configuration.

Loads the :mod:`repro.testing` plugin so every test and benchmark in the
tier-1 run — experiment drivers, CLI invocations, sweep cells and the
per-figure benches alike — gets an
:class:`~repro.testing.invariants.InvariantObserver` attached to each
``Session.build`` for free (opt out per test with
``@pytest.mark.no_invariants``).
"""

import os
import sys

# The suite is documented to run with PYTHONPATH=src; make collection
# robust when a bare `pytest` is invoked without it.
sys.path.insert(0, os.path.join(os.path.dirname(__file__), "src"))

pytest_plugins = ("repro.testing.pytest_plugin",)
