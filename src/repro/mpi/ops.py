"""Operation descriptors yielded by rank generators.

Rank code on the in-process MPI substrate is written as generators that
``yield`` operation descriptors; the executor matches them (point-to-point
pairing, collective rendezvous, spawns) and resumes the generator with the
operation's result — the same inversion of control the simulation kernel
uses, applied to message passing.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Optional, Sequence, Tuple

#: Wildcard source for receives (MPI_ANY_SOURCE).
ANY_SOURCE = -1
#: Wildcard tag for receives (MPI_ANY_TAG).
ANY_TAG = -1


class Op:
    """Base class of all yieldable operations."""

    __slots__ = ()


@dataclass(frozen=True)
class Send(Op):
    """Eager (buffered) send: completes immediately."""

    dest: int
    value: Any
    tag: int = 0
    comm: Optional[object] = None  # None = the rank's current communicator


@dataclass(frozen=True)
class Recv(Op):
    """Blocking receive; resumes with the matched payload."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    comm: Optional[object] = None


@dataclass(frozen=True)
class Sendrecv(Op):
    """Combined send+receive (MPI_Sendrecv): deadlock-free exchanges."""

    dest: int
    value: Any
    source: int = ANY_SOURCE
    sendtag: int = 0
    recvtag: int = ANY_TAG
    comm: Optional[object] = None


@dataclass(frozen=True)
class Probe(Op):
    """Non-blocking probe; resumes with True/False (message waiting?)."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    comm: Optional[object] = None


class Request:
    """Handle of a non-blocking operation (MPI_Request analogue)."""

    __slots__ = ("done", "value", "op")

    def __init__(self, op: "Op") -> None:
        self.op = op
        self.done = False
        self.value: Any = None

    def complete(self, value: Any = None) -> None:
        self.done = True
        self.value = value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Request {'done' if self.done else 'pending'} {self.op!r}>"


@dataclass(frozen=True)
class Isend(Op):
    """Non-blocking send; resumes immediately with a completed Request
    (sends are eager/buffered on this substrate)."""

    dest: int
    value: Any
    tag: int = 0
    comm: Optional[object] = None


@dataclass(frozen=True)
class Irecv(Op):
    """Non-blocking receive; resumes immediately with a Request that
    completes when a matching message is waited on."""

    source: int = ANY_SOURCE
    tag: int = ANY_TAG
    comm: Optional[object] = None


@dataclass(frozen=True)
class Waitall(Op):
    """Block until every request completes; resumes with their values
    (``None`` for sends), in request order (MPI_Waitall)."""

    requests: Tuple["Request", ...]

    def __init__(self, requests) -> None:
        object.__setattr__(self, "requests", tuple(requests))


@dataclass(frozen=True)
class Collective(Op):
    """A collective rendezvous over a communicator."""

    kind: str  # barrier | bcast | scatter | gather | allgather | allreduce | alltoall
    value: Any = None
    root: int = 0
    reduce_op: Optional[Callable[[Any, Any], Any]] = None
    comm: Optional[object] = None


@dataclass(frozen=True)
class Spawn(Op):
    """``MPI_Comm_spawn``: create ``nprocs`` child ranks running ``target``.

    Resumes with the intercommunicator to the children; children find the
    parent intercommunicator via ``ctx.parent``.
    """

    nprocs: int
    target: Callable[..., Any]
    args: Tuple = ()


@dataclass(frozen=True)
class Exit(Op):
    """Terminate this rank immediately (the ``exit(0)`` of Listing 1)."""

    result: Any = None
