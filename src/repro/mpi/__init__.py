"""In-process, deterministic MPI substrate.

Rank functions are generators receiving a :class:`RankContext`; they
``yield`` operations (sends, receives, collectives, spawns) and are
resumed with the results.  Real data moves between ranks, dynamic process
management (``MPI_Comm_spawn``) is supported, and any communication
deadlock is detected and reported instead of hanging — which is what the
malleable application kernels need to validate the paper's Listing 1-3
reconfiguration patterns.
"""

from repro.mpi.comm import Communicator, Intercommunicator
from repro.mpi.executor import (
    MPIExecutor,
    ProcState,
    RankContext,
    REDUCE_OPS,
    run_world,
)
from repro.mpi.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Collective,
    Exit,
    Irecv,
    Isend,
    Op,
    Probe,
    Recv,
    Request,
    Send,
    Sendrecv,
    Spawn,
    Waitall,
)

__all__ = [
    "ANY_SOURCE",
    "ANY_TAG",
    "Collective",
    "Communicator",
    "Exit",
    "Intercommunicator",
    "Irecv",
    "Isend",
    "MPIExecutor",
    "Op",
    "Probe",
    "ProcState",
    "REDUCE_OPS",
    "RankContext",
    "Recv",
    "Request",
    "Send",
    "Sendrecv",
    "Spawn",
    "Waitall",
    "run_world",
]
