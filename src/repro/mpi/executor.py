"""Deterministic in-process MPI executor.

Runs a set of rank generators to completion, matching point-to-point
messages, collective rendezvous and ``MPI_Comm_spawn`` requests.  Ranks
are advanced in a fixed round-robin order, so every execution is fully
deterministic; a sweep in which no rank can make progress raises
:class:`~repro.errors.DeadlockError` with a per-rank diagnosis.

Real data (NumPy arrays, Python objects) flows between ranks, which is
what lets the malleable application kernels validate their Listing 3
redistribution logic against ground truth.
"""

from __future__ import annotations

import enum
from collections import deque
from dataclasses import dataclass, field
from functools import reduce
from itertools import count
from typing import Any, Callable, Deque, Dict, List, Optional, Tuple

from repro.errors import DeadlockError, MPIError
from repro.mpi.comm import Communicator, Intercommunicator
from repro.mpi.ops import (
    ANY_SOURCE,
    ANY_TAG,
    Collective,
    Exit,
    Irecv,
    Isend,
    Op,
    Probe,
    Recv,
    Request,
    Send,
    Sendrecv,
    Spawn,
    Waitall,
)

#: Built-in reduction operators.
REDUCE_OPS: Dict[str, Callable[[Any, Any], Any]] = {
    "sum": lambda a, b: a + b,
    "prod": lambda a, b: a * b,
    "max": lambda a, b: a if not (b > a) else b,
    "min": lambda a, b: a if not (b < a) else b,
}


class ProcState(enum.Enum):
    READY = "ready"
    BLOCKED = "blocked"
    DONE = "done"


@dataclass
class _Message:
    src_proc: int
    tag: int
    comm_cid: int
    value: Any


@dataclass
class _Proc:
    proc_id: int
    generator: Any
    world: Communicator
    parent: Optional[Intercommunicator]
    state: ProcState = ProcState.READY
    #: Value to send into the generator on next resume.
    inbox_value: Any = None
    #: The operation the proc is currently blocked on.
    blocked_on: Optional[Op] = None
    mailbox: Deque[_Message] = field(default_factory=deque)
    result: Any = None


class RankContext:
    """Per-rank handle passed to rank functions.

    Rank functions are generators taking a context: ``def main(ctx): ...``
    and must ``yield`` the operation objects the helper methods build.
    """

    def __init__(self, proc: _Proc) -> None:
        self._proc = proc

    # -- identity ---------------------------------------------------------
    @property
    def rank(self) -> int:
        return self._proc.world.rank_of(self._proc.proc_id)

    @property
    def size(self) -> int:
        return self._proc.world.size

    @property
    def comm(self) -> Communicator:
        return self._proc.world

    @property
    def parent(self) -> Optional[Intercommunicator]:
        """Intercommunicator to the spawning group (None in the first world).

        The analogue of ``MPI_Comm_get_parent`` in Listing 1.
        """
        return self._proc.parent

    # -- point to point -----------------------------------------------------
    def send(self, dest: int, value: Any, tag: int = 0, comm: Any = None) -> Send:
        return Send(dest=dest, value=value, tag=tag, comm=comm)

    def recv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Any = None) -> Recv:
        return Recv(source=source, tag=tag, comm=comm)

    def isend(self, dest: int, value: Any, tag: int = 0, comm: Any = None) -> Isend:
        return Isend(dest=dest, value=value, tag=tag, comm=comm)

    def irecv(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Any = None) -> Irecv:
        return Irecv(source=source, tag=tag, comm=comm)

    def waitall(self, requests) -> Waitall:
        return Waitall(requests)

    def probe(self, source: int = ANY_SOURCE, tag: int = ANY_TAG, comm: Any = None) -> Probe:
        return Probe(source=source, tag=tag, comm=comm)

    def sendrecv(
        self,
        dest: int,
        value: Any,
        source: int = ANY_SOURCE,
        sendtag: int = 0,
        recvtag: int = ANY_TAG,
        comm: Any = None,
    ) -> Sendrecv:
        return Sendrecv(
            dest=dest, value=value, source=source,
            sendtag=sendtag, recvtag=recvtag, comm=comm,
        )

    def reduce(self, value: Any, root: int = 0, op: Any = "sum", comm: Any = None) -> Collective:
        """Rooted reduction (MPI_Reduce): only ``root`` gets the result."""
        reducer = REDUCE_OPS[op] if isinstance(op, str) else op
        return Collective(kind="reduce", value=value, root=root, reduce_op=reducer, comm=comm)

    # -- collectives ----------------------------------------------------------
    def barrier(self, comm: Any = None) -> Collective:
        return Collective(kind="barrier", comm=comm)

    def bcast(self, value: Any = None, root: int = 0, comm: Any = None) -> Collective:
        return Collective(kind="bcast", value=value, root=root, comm=comm)

    def scatter(self, values: Any = None, root: int = 0, comm: Any = None) -> Collective:
        return Collective(kind="scatter", value=values, root=root, comm=comm)

    def gather(self, value: Any, root: int = 0, comm: Any = None) -> Collective:
        return Collective(kind="gather", value=value, root=root, comm=comm)

    def allgather(self, value: Any, comm: Any = None) -> Collective:
        return Collective(kind="allgather", value=value, comm=comm)

    def allreduce(self, value: Any, op: Any = "sum", comm: Any = None) -> Collective:
        reducer = REDUCE_OPS[op] if isinstance(op, str) else op
        return Collective(kind="allreduce", value=value, reduce_op=reducer, comm=comm)

    def alltoall(self, values: List[Any], comm: Any = None) -> Collective:
        return Collective(kind="alltoall", value=values, comm=comm)

    # -- dynamic processes -------------------------------------------------------
    def spawn(self, nprocs: int, target: Callable, *args: Any) -> Spawn:
        """Collective over the world: every rank must yield the same spawn."""
        return Spawn(nprocs=nprocs, target=target, args=tuple(args))

    def exit(self, result: Any = None) -> Exit:
        return Exit(result=result)


class MPIExecutor:
    """Owns all processes (including spawned generations) and runs them."""

    def __init__(self, max_ops: int = 10_000_000) -> None:
        self.max_ops = max_ops
        self._procs: Dict[int, _Proc] = {}
        #: Round-robin schedule in creation order.  Maintained
        #: incrementally (appended by :meth:`create_world`, compacted when
        #: mostly finished) so a sweep costs O(live) instead of
        #: rebuilding an all-procs list per sweep.
        self._run_order: List[_Proc] = []
        self._proc_ids = count(0)
        #: Collective rendezvous: comm cid -> {proc_id: op}.
        self._pending_collectives: Dict[int, Dict[int, Collective]] = {}
        #: Spawn rendezvous: comm cid -> {proc_id: op}.
        self._pending_spawns: Dict[int, Dict[int, Spawn]] = {}
        self._worlds: List[Communicator] = []

    # -- world creation -------------------------------------------------------
    def create_world(
        self,
        nprocs: int,
        target: Callable,
        args: Tuple = (),
        parent: Optional[Intercommunicator] = None,
        name: str = "world",
    ) -> Communicator:
        if nprocs < 1:
            raise MPIError(f"need at least one process, got {nprocs}")
        proc_ids = tuple(next(self._proc_ids) for _ in range(nprocs))
        world = Communicator(proc_ids, name=f"{name}[{proc_ids[0]}..{proc_ids[-1]}]")
        self._worlds.append(world)
        for pid in proc_ids:
            proc = _Proc(proc_id=pid, generator=None, world=world, parent=parent)
            ctx = RankContext(proc)
            gen = target(ctx, *args)
            if not hasattr(gen, "send"):
                raise MPIError(
                    f"rank function {target!r} must be a generator (got {gen!r})"
                )
            proc.generator = gen
            self._procs[pid] = proc
            self._run_order.append(proc)
        return world

    # -- execution ----------------------------------------------------------------
    def run(self) -> Dict[int, Any]:
        """Run every process to completion; returns {proc_id: result}."""
        ops_budget = self.max_ops
        order = self._run_order
        while True:
            # Procs spawned mid-sweep land past sweep_len and first run in
            # the next sweep — exactly when a rebuilt-per-sweep list would
            # have picked them up.
            sweep_len = len(order)
            live_seen = 0
            progressed = False
            for i in range(sweep_len):
                proc = order[i]
                if proc.state is ProcState.DONE:
                    continue
                live_seen += 1
                if proc.state is ProcState.READY:
                    self._advance(proc)
                    progressed = True
                    ops_budget -= 1
                elif proc.state is ProcState.BLOCKED:
                    if self._try_unblock(proc):
                        progressed = True
                if ops_budget <= 0:
                    raise MPIError(f"exceeded max_ops={self.max_ops}; runaway ranks?")
            if live_seen == 0:
                if len(order) == sweep_len:
                    break
                continue  # only freshly spawned procs remain
            if not progressed:
                self._raise_deadlock()
            if live_seen * 2 < sweep_len:
                order[:] = [p for p in order if p.state is not ProcState.DONE]
        return {pid: p.result for pid, p in self._procs.items()}

    def world_results(self, world: Communicator) -> List[Any]:
        """Results of a world's ranks, in rank order."""
        return [self._procs[pid].result for pid in world.procs]

    # -- generator stepping -----------------------------------------------------
    def _advance(self, proc: _Proc) -> None:
        """Resume the generator once and dispatch the op it yields."""
        try:
            op = proc.generator.send(proc.inbox_value)
        except StopIteration as stop:
            proc.state = ProcState.DONE
            proc.result = stop.value
            return
        proc.inbox_value = None
        self._dispatch(proc, op)

    def _dispatch(self, proc: _Proc, op: Any) -> None:
        if isinstance(op, Send):
            self._do_send(proc, op)
            proc.inbox_value = None  # sends complete eagerly
        elif isinstance(op, Isend):
            self._do_send(proc, Send(op.dest, op.value, op.tag, op.comm))
            request = Request(op)
            request.complete(None)
            proc.inbox_value = request
        elif isinstance(op, Irecv):
            proc.inbox_value = Request(op)  # matched lazily at wait time
        elif isinstance(op, Waitall):
            if self._try_waitall(proc, op):
                proc.inbox_value = [r.value for r in op.requests]
            else:
                proc.state = ProcState.BLOCKED
                proc.blocked_on = op
        elif isinstance(op, Sendrecv):
            self._do_send(proc, Send(op.dest, op.value, op.sendtag, op.comm))
            recv_part = Recv(source=op.source, tag=op.recvtag, comm=op.comm)
            matched = self._match_recv(proc, recv_part)
            if matched is not None:
                proc.inbox_value = matched.value
            else:
                proc.state = ProcState.BLOCKED
                proc.blocked_on = recv_part
        elif isinstance(op, Recv):
            matched = self._match_recv(proc, op)
            if matched is not None:
                proc.inbox_value = matched.value
            else:
                proc.state = ProcState.BLOCKED
                proc.blocked_on = op
        elif isinstance(op, Probe):
            proc.inbox_value = self._match_recv(proc, op, consume=False) is not None
        elif isinstance(op, Collective):
            self._join_collective(proc, op)
        elif isinstance(op, Spawn):
            self._join_spawn(proc, op)
        elif isinstance(op, Exit):
            proc.state = ProcState.DONE
            proc.result = op.result
        else:
            raise MPIError(f"rank yielded a non-operation: {op!r}")

    def _try_unblock(self, proc: _Proc) -> bool:
        op = proc.blocked_on
        if isinstance(op, Recv):
            matched = self._match_recv(proc, op)
            if matched is not None:
                proc.state = ProcState.READY
                proc.blocked_on = None
                proc.inbox_value = matched.value
                return True
        elif isinstance(op, Waitall):
            if self._try_waitall(proc, op):
                proc.state = ProcState.READY
                proc.blocked_on = None
                proc.inbox_value = [r.value for r in op.requests]
                return True
        # Collective/spawn participants are resumed by the completing call.
        return False

    def _try_waitall(self, proc: _Proc, op: Waitall) -> bool:
        """Attempt to complete every request; True when all are done."""
        for request in op.requests:
            if request.done:
                continue
            if not isinstance(request.op, Irecv):
                raise MPIError(f"cannot wait on {request.op!r}")
            matched = self._match_recv(proc, request.op)
            if matched is not None:
                request.complete(matched.value)
        return all(r.done for r in op.requests)

    # -- point-to-point plumbing ----------------------------------------------------
    def _resolve_comm(self, proc: _Proc, op_comm: Any) -> Any:
        return proc.world if op_comm is None else op_comm

    def _peer_proc(self, proc: _Proc, comm: Any, rank: int) -> int:
        if isinstance(comm, Intercommunicator):
            return comm.peer_group(proc.proc_id).proc_at(rank)
        return comm.proc_at(rank)

    def _do_send(self, proc: _Proc, op: Send) -> None:
        comm = self._resolve_comm(proc, op.comm)
        if getattr(comm, "freed", False):
            raise MPIError(f"send on freed communicator {comm!r}")
        dest_proc = self._peer_proc(proc, comm, op.dest)
        if dest_proc not in self._procs:
            raise MPIError(f"send to unknown process {dest_proc}")
        if self._procs[dest_proc].state is ProcState.DONE:
            raise MPIError(
                f"proc {proc.proc_id} sent to finished proc {dest_proc}"
            )
        cid = comm.cid
        self._procs[dest_proc].mailbox.append(
            _Message(src_proc=proc.proc_id, tag=op.tag, comm_cid=cid, value=op.value)
        )

    def _match_recv(
        self, proc: _Proc, op: Any, consume: bool = True
    ) -> Optional[_Message]:
        comm = self._resolve_comm(proc, op.comm)
        cid = comm.cid
        want_src: Optional[int] = None
        if op.source != ANY_SOURCE:
            want_src = self._peer_proc(proc, comm, op.source)
        for msg in proc.mailbox:
            if msg.comm_cid != cid:
                continue
            if want_src is not None and msg.src_proc != want_src:
                continue
            if op.tag != ANY_TAG and msg.tag != op.tag:
                continue
            if consume:
                proc.mailbox.remove(msg)
            return msg
        return None

    # -- collectives --------------------------------------------------------------
    def _collective_comm(self, proc: _Proc, op: Collective) -> Communicator:
        comm = self._resolve_comm(proc, op.comm)
        if isinstance(comm, Intercommunicator):
            raise MPIError("collectives over intercommunicators are not supported")
        return comm

    def _join_collective(self, proc: _Proc, op: Collective) -> None:
        comm = self._collective_comm(proc, op)
        pending = self._pending_collectives.setdefault(comm.cid, {})
        if proc.proc_id in pending:
            raise MPIError(
                f"proc {proc.proc_id} re-entered a collective it already joined"
            )
        pending[proc.proc_id] = op
        proc.state = ProcState.BLOCKED
        proc.blocked_on = op
        if len(pending) == comm.size:
            self._complete_collective(comm, pending)
            del self._pending_collectives[comm.cid]

    def _complete_collective(
        self, comm: Communicator, pending: Dict[int, Collective]
    ) -> None:
        kinds = {op.kind for op in pending.values()}
        if len(kinds) != 1:
            raise MPIError(
                f"mismatched collectives on {comm.name}: {sorted(kinds)}"
            )
        kind = kinds.pop()
        by_rank = [pending[comm.proc_at(r)] for r in range(comm.size)]
        results: List[Any]

        if kind == "barrier":
            results = [None] * comm.size
        elif kind == "bcast":
            roots = {op.root for op in by_rank}
            if len(roots) != 1:
                raise MPIError(f"bcast with mismatched roots {sorted(roots)}")
            value = by_rank[by_rank[0].root].value
            results = [value] * comm.size
        elif kind == "scatter":
            root = by_rank[0].root
            values = by_rank[root].value
            if values is None or len(values) != comm.size:
                raise MPIError(
                    f"scatter root must supply {comm.size} values, got {values!r}"
                )
            results = list(values)
        elif kind == "gather":
            root = by_rank[0].root
            gathered = [op.value for op in by_rank]
            results = [gathered if r == root else None for r in range(comm.size)]
        elif kind == "allgather":
            gathered = [op.value for op in by_rank]
            results = [list(gathered) for _ in range(comm.size)]
        elif kind == "allreduce":
            reduced = reduce(by_rank[0].reduce_op, [op.value for op in by_rank])
            results = [reduced] * comm.size
        elif kind == "reduce":
            root = by_rank[0].root
            reduced = reduce(by_rank[root].reduce_op, [op.value for op in by_rank])
            results = [reduced if r == root else None for r in range(comm.size)]
        elif kind == "alltoall":
            for op in by_rank:
                if op.value is None or len(op.value) != comm.size:
                    raise MPIError(
                        f"alltoall needs {comm.size} values per rank"
                    )
            results = [
                [by_rank[src].value[dst] for src in range(comm.size)]
                for dst in range(comm.size)
            ]
        else:
            raise MPIError(f"unknown collective kind {kind!r}")

        for r in range(comm.size):
            peer = self._procs[comm.proc_at(r)]
            peer.state = ProcState.READY
            peer.blocked_on = None
            peer.inbox_value = results[r]

    # -- spawn ---------------------------------------------------------------------
    def _join_spawn(self, proc: _Proc, op: Spawn) -> None:
        comm = proc.world
        pending = self._pending_spawns.setdefault(comm.cid, {})
        if proc.proc_id in pending:
            raise MPIError(f"proc {proc.proc_id} re-entered spawn")
        pending[proc.proc_id] = op
        proc.state = ProcState.BLOCKED
        proc.blocked_on = op
        if len(pending) == comm.size:
            self._complete_spawn(comm, pending)
            del self._pending_spawns[comm.cid]

    def _complete_spawn(self, comm: Communicator, pending: Dict[int, Spawn]) -> None:
        signatures = {(op.nprocs, op.target) for op in pending.values()}
        if len(signatures) != 1:
            raise MPIError(
                f"ranks of {comm.name} disagree on the spawn "
                f"(nprocs/target must match)"
            )
        nprocs, target = signatures.pop()
        args = pending[comm.proc_at(0)].args
        # Build children first so the intercommunicator can reference them.
        child_world = self.create_world(
            nprocs, target, args=args, parent=None, name="spawned"
        )
        intercomm = Intercommunicator(local=comm, remote=child_world)
        for pid in child_world.procs:
            self._procs[pid].parent = intercomm
        for r in range(comm.size):
            parent = self._procs[comm.proc_at(r)]
            parent.state = ProcState.READY
            parent.blocked_on = None
            parent.inbox_value = intercomm

    # -- diagnostics -----------------------------------------------------------------
    def _raise_deadlock(self) -> None:
        lines = []
        for proc in self._procs.values():
            if proc.state is ProcState.BLOCKED:
                lines.append(
                    f"  proc {proc.proc_id} ({proc.world.name}) "
                    f"blocked on {proc.blocked_on!r}, "
                    f"mailbox={len(proc.mailbox)} messages"
                )
        raise DeadlockError("MPI deadlock; blocked ranks:\n" + "\n".join(lines))


def run_world(
    nprocs: int, target: Callable, *args: Any, max_ops: int = 10_000_000
) -> List[Any]:
    """Convenience: run one world to completion, return rank results in order.

    The spawned generations (if any) also run to completion; only the
    initial world's results are returned.
    """
    executor = MPIExecutor(max_ops=max_ops)
    world = executor.create_world(nprocs, target, args=tuple(args))
    executor.run()
    return executor.world_results(world)
