"""Communicators for the in-process MPI substrate."""

from __future__ import annotations

from itertools import count
from typing import List, Optional, Tuple

from repro.errors import CommunicatorError

_comm_ids = count(1)


class Communicator:
    """An intra-communicator: an ordered group of process ids."""

    def __init__(self, procs: Tuple[int, ...], name: str = "comm") -> None:
        if not procs:
            raise CommunicatorError("a communicator needs at least one process")
        if len(set(procs)) != len(procs):
            raise CommunicatorError(f"duplicate processes in {procs}")
        self.cid = next(_comm_ids)
        self.procs = tuple(procs)
        self.name = name
        self.freed = False

    @property
    def size(self) -> int:
        return len(self.procs)

    def rank_of(self, proc_id: int) -> int:
        """Rank of a process id within this communicator."""
        try:
            return self.procs.index(proc_id)
        except ValueError:
            raise CommunicatorError(
                f"process {proc_id} is not in {self.name} ({self.procs})"
            ) from None

    def proc_at(self, rank: int) -> int:
        """Process id of the given rank."""
        if not 0 <= rank < self.size:
            raise CommunicatorError(
                f"rank {rank} out of range for {self.name} of size {self.size}"
            )
        return self.procs[rank]

    def contains(self, proc_id: int) -> bool:
        return proc_id in self.procs

    def free(self) -> None:
        self.freed = True

    def __repr__(self) -> str:
        return f"<Communicator {self.name!r} size={self.size}>"


class Intercommunicator:
    """Connects two disjoint groups (the result of ``MPI_Comm_spawn``).

    Ranks are *remote-group relative*: sending to rank ``r`` through an
    intercommunicator targets the r-th process of the other group, exactly
    as in MPI.
    """

    def __init__(
        self,
        local: Communicator,
        remote: Communicator,
        name: str = "intercomm",
    ) -> None:
        overlap = set(local.procs) & set(remote.procs)
        if overlap:
            raise CommunicatorError(f"groups overlap on processes {sorted(overlap)}")
        self.cid = next(_comm_ids)
        self.local = local
        self.remote = remote
        self.name = name
        self.freed = False

    def side_of(self, proc_id: int) -> str:
        if self.local.contains(proc_id):
            return "local"
        if self.remote.contains(proc_id):
            return "remote"
        raise CommunicatorError(f"process {proc_id} not part of {self.name}")

    def peer_group(self, proc_id: int) -> Communicator:
        """The group a process sends *to* through this intercommunicator."""
        return self.remote if self.side_of(proc_id) == "local" else self.local

    def own_group(self, proc_id: int) -> Communicator:
        return self.local if self.side_of(proc_id) == "local" else self.remote

    def free(self) -> None:
        self.freed = True

    def __repr__(self) -> str:
        return (
            f"<Intercommunicator {self.name!r} "
            f"local={self.local.size} remote={self.remote.size}>"
        )
