"""Deterministic fault plans: what breaks, when, and for how long.

A :class:`FaultPlan` is an immutable, picklable script of
:class:`FaultEvent` records — node crashes and repairs, operator drains,
transient per-node slowdowns and cluster-wide network degradation.  Plans
are either written by hand (:meth:`FaultPlan.scripted`) or sampled from a
seeded RNG with exponential inter-failure gaps
(:meth:`FaultPlan.from_mtbf`), so the same plan can be replayed against
the fixed and the flexible rendition of a workload — any survival
difference is attributable to the failure-handling mechanism alone.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass
from typing import Iterable, List, Optional, Tuple

from repro.errors import FaultError
from repro.sim.rng import RandomStreams


class FaultKind(enum.Enum):
    """Vocabulary of injectable faults."""

    NODE_FAIL = "node_fail"
    NODE_RECOVER = "node_recover"
    NODE_DRAIN = "node_drain"
    NODE_RESUME = "node_resume"
    SLOWDOWN = "slowdown"
    NETWORK_DEGRADE = "network_degrade"


#: Kinds that target a specific node.
_NODE_KINDS = frozenset(
    {
        FaultKind.NODE_FAIL,
        FaultKind.NODE_RECOVER,
        FaultKind.NODE_DRAIN,
        FaultKind.NODE_RESUME,
        FaultKind.SLOWDOWN,
    }
)

#: Kinds carrying a (factor, duration) degradation window.
_WINDOW_KINDS = frozenset({FaultKind.SLOWDOWN, FaultKind.NETWORK_DEGRADE})


@dataclass(frozen=True)
class FaultEvent:
    """One scheduled fault."""

    time: float
    kind: FaultKind
    #: Target node index (None only for NETWORK_DEGRADE).
    node: Optional[int] = None
    #: Performance multiplier of SLOWDOWN / NETWORK_DEGRADE (>= 1.0).
    #: Jobs observe factors at compute-batch boundaries (reconfiguring
    #: points, checkpoint intervals, or launch): a rigid
    #: non-checkpointing job prices its whole run in one batch and only
    #: sees factors in force when it starts.
    factor: float = 1.0
    #: How long a SLOWDOWN / NETWORK_DEGRADE window lasts.
    duration: float = 0.0

    def __post_init__(self) -> None:
        if not math.isfinite(self.time) or self.time < 0:
            raise FaultError(f"fault time must be finite and >= 0, got {self.time}")
        if self.kind in _NODE_KINDS and self.node is None:
            raise FaultError(f"{self.kind.value} needs a target node")
        if self.node is not None and self.node < 0:
            raise FaultError(f"node index must be >= 0, got {self.node}")
        if self.kind in _WINDOW_KINDS:
            if self.factor < 1.0:
                raise FaultError(
                    f"{self.kind.value} factor must be >= 1.0, got {self.factor}"
                )
            if self.duration <= 0:
                raise FaultError(
                    f"{self.kind.value} needs a positive duration, "
                    f"got {self.duration}"
                )


@dataclass(frozen=True)
class FaultPlan:
    """An immutable schedule of fault events (time-sorted)."""

    events: Tuple[FaultEvent, ...] = ()
    name: str = "scripted"

    def __post_init__(self) -> None:
        ordered = tuple(
            sorted(self.events, key=lambda e: (e.time, e.kind.value, e.node or 0))
        )
        object.__setattr__(self, "events", ordered)

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    @property
    def failure_count(self) -> int:
        return sum(1 for e in self.events if e.kind is FaultKind.NODE_FAIL)

    def clipped(self, horizon: float) -> "FaultPlan":
        """The plan restricted to events at ``time < horizon``."""
        return FaultPlan(
            events=tuple(e for e in self.events if e.time < horizon),
            name=self.name,
        )

    # -- constructors -------------------------------------------------------
    @staticmethod
    def scripted(events: Iterable[FaultEvent], name: str = "scripted") -> "FaultPlan":
        return FaultPlan(events=tuple(events), name=name)

    @classmethod
    def from_mtbf(
        cls,
        mtbf: float,
        horizon: float,
        num_nodes: int,
        seed: int = 0,
        repair_time: Optional[float] = None,
        max_failures: Optional[int] = None,
    ) -> "FaultPlan":
        """Sample node crashes with exponential inter-failure gaps.

        ``mtbf`` is the *cluster-wide* mean time between failures; each
        failure hits a uniformly chosen node and, when ``repair_time`` is
        set, is followed by a repair that many seconds later.  Sampling
        is fully determined by ``seed``, so the identical plan replays
        against every rendition of a workload.
        """
        # NaN slips through plain `<= 0` comparisons and would make the
        # sampling loop below spin forever (t += nan never crosses the
        # horizon): every numeric parameter must be finite.
        if not math.isfinite(mtbf) or mtbf <= 0:
            raise FaultError(f"mtbf must be a positive finite number, got {mtbf}")
        if not math.isfinite(horizon) or horizon <= 0:
            raise FaultError(
                f"horizon must be a positive finite number, got {horizon}"
            )
        if num_nodes < 1:
            raise FaultError(f"num_nodes must be >= 1, got {num_nodes}")
        if repair_time is not None and (
            not math.isfinite(repair_time) or repair_time <= 0
        ):
            raise FaultError(
                f"repair_time must be a positive finite number, got {repair_time}"
            )
        rng = RandomStreams(seed)
        events: List[FaultEvent] = []
        failures = 0
        t = 0.0
        while True:
            t += rng.exponential("faults.interarrival", mtbf)
            if t >= horizon:
                break
            node = rng.integers("faults.node", 0, num_nodes - 1)
            events.append(FaultEvent(time=t, kind=FaultKind.NODE_FAIL, node=node))
            failures += 1
            if repair_time is not None:
                events.append(
                    FaultEvent(
                        time=t + repair_time,
                        kind=FaultKind.NODE_RECOVER,
                        node=node,
                    )
                )
            if max_failures is not None and failures >= max_failures:
                break
        return cls(
            events=tuple(events),
            name=f"mtbf{mtbf:g}-seed{seed}",
        )
