"""Drives a :class:`~repro.faults.plan.FaultPlan` through the simulation.

The injector is a simulation process: it sleeps to each fault's
timestamp and applies it through the controller (node failures, repairs,
drains — so the scheduler reacts and the trace records the event) or the
machine (performance degradation windows, which the runtime layer reads
when charging compute and redistribution time).  Everything it does is an
ordinary simulation event, so fault runs stay fully deterministic.
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.cluster.node import NodeState
from repro.errors import ClusterError, FaultError
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan
from repro.metrics.trace import EventKind
from repro.sim.events import Event
from repro.slurm.controller import SlurmController


class FaultInjector:
    """Replays a fault plan against a live controller."""

    def __init__(self, controller: SlurmController, plan: FaultPlan) -> None:
        self.controller = controller
        self.machine = controller.machine
        self.env = controller.env
        self.plan = plan
        for event in plan:
            if event.node is not None and event.node >= self.machine.num_nodes:
                raise FaultError(
                    f"fault targets node {event.node}, cluster has "
                    f"{self.machine.num_nodes}"
                )
        #: Counters for tests and the resilience report.
        self.injected = 0
        self.skipped = 0
        #: Window generations: each new degradation window bumps its
        #: target's counter, so an expiry only restores nominal when no
        #: newer window superseded it (factors may coincide).
        self._slow_gen: dict = {}
        self._net_gen = 0

    def start(self):
        """Launch the injector process on the environment."""
        return self.env.process(self._run(), name=f"faults-{self.plan.name}")

    # -- the injection process ----------------------------------------------
    def _run(self) -> Generator[Event, object, None]:
        for event in self.plan.events:
            if event.time > self.env.now:
                yield self.env.timeout(event.time - self.env.now)
            self._apply(event)

    def _apply(self, event: FaultEvent) -> None:
        kind = event.kind
        applied = True
        try:
            if kind is FaultKind.NODE_FAIL:
                applied = self.controller.fail_node(event.node)
            elif kind is FaultKind.NODE_RECOVER:
                self.controller.recover_node(event.node)
            elif kind is FaultKind.NODE_DRAIN:
                self.controller.drain_node(event.node)
            elif kind is FaultKind.NODE_RESUME:
                self.controller.resume_node(event.node)
            elif kind is FaultKind.SLOWDOWN:
                applied = self._start_slowdown(event)
            elif kind is FaultKind.NETWORK_DEGRADE:
                self._start_net_degrade(event)
        except FaultError:
            raise
        except ClusterError:
            # An inapplicable event (e.g. recovering a node that is not
            # down because a repair raced an operator action) is skipped,
            # not fatal: fault plans are scripts, not transactions.  Only
            # ClusterError marks an inapplicable event; anything else —
            # notably the controller's SchedulerError desync guards —
            # must stay loud.
            self.skipped += 1
            return
        if applied:
            self.injected += 1
            telemetry = self.controller.telemetry
            if telemetry is not None:
                # Applied injections also land on the span timeline, so
                # fault instants survive even on non-retaining traces.
                telemetry.instant(
                    "fault.inject", self.env.now, track="faults",
                    kind=kind.value, node=event.node,
                )
        else:
            self.skipped += 1

    # -- degradation windows -------------------------------------------------
    #
    # Windows do not stack: the most recently started window wins, and
    # its expiry restores the *nominal* factor (1.0).  Each window is
    # identified by a generation counter, so an earlier window's expiry
    # while a later one is active is a no-op even when both windows
    # carry the same factor, and overlaps can never leave a residual
    # degradation behind.

    def _start_slowdown(self, event: FaultEvent) -> bool:
        node = self.machine.nodes[event.node]
        if node.state is NodeState.DOWN:
            return False
        generation = self._slow_gen.get(event.node, 0) + 1
        self._slow_gen[event.node] = generation
        self.machine.set_perf_factor(event.node, event.factor)
        self.controller.trace.record(
            self.env.now,
            EventKind.NODE_SLOWDOWN,
            None,
            node=event.node,
            factor=event.factor,
            duration=event.duration,
        )

        def restore() -> Generator[Event, object, None]:
            yield self.env.timeout(event.duration)
            if (
                node.state is not NodeState.DOWN
                and self._slow_gen.get(event.node) == generation
            ):
                node.perf_factor = 1.0

        self.env.process(restore(), name=f"slowdown-end-{event.node}")
        return True

    def _start_net_degrade(self, event: FaultEvent) -> None:
        self._net_gen += 1
        generation = self._net_gen
        self.machine.network_factor = event.factor
        self.controller.trace.record(
            self.env.now,
            EventKind.NET_DEGRADE,
            None,
            factor=event.factor,
            duration=event.duration,
        )

        def restore() -> Generator[Event, object, None]:
            yield self.env.timeout(event.duration)
            if self._net_gen == generation:
                self.machine.network_factor = 1.0

        self.env.process(restore(), name="net-degrade-end")


def install_faults(
    controller: SlurmController, plan: Optional[FaultPlan]
) -> Optional[FaultInjector]:
    """Attach (and start) an injector when a plan is present."""
    if plan is None or not len(plan):
        return None
    injector = FaultInjector(controller, plan)
    injector.start()
    return injector
