"""``repro.faults`` — deterministic fault injection.

The cluster the paper simulates never breaks; this package adds the
missing scenario axis.  A :class:`FaultPlan` (scripted or MTBF-sampled)
is replayed by a :class:`FaultInjector` as ordinary simulation events:
nodes crash (``DOWN``), get repaired, are drained by an operator, slow
down transiently, or the interconnect degrades.  The Slurm controller
requeues rigid jobs off dead nodes and issues forced-shrink decisions
(``DecisionReason.NODE_FAILURE``) for flexible ones — the same DMR
malleability machinery the paper pits against checkpoint/restart, now
answering node failures ("shrink to survive").

**The graceful-failure window.** A "node failure" here is a node that
*starts dying* — an MCE storm, a failing PSU, a drain-then-die — not an
instantaneous vanishing act.  The node goes ``DOWN`` for all new work
immediately, but a flexible job already on it keeps computing at nominal
speed until its next reconfiguring point, where the forced shrink
evacuates it.  That warning window is precisely the premise of
shrink-to-survive: DMR can exploit it because the runtime has a
reconfiguration hook; the C/R baseline cannot (its only lever is the
kill-requeue-restore cycle), which is the asymmetry the ``resilience``
artifact measures — stated here so nobody mistakes it for an accident
of the simulation.

Attach a plan to any :class:`repro.api.Session` with
``session.with_faults(plan)``; the ``resilience`` artifact compares the
C/R and DMR mechanisms under increasing failure rates.
"""

from repro.faults.injector import FaultInjector, install_faults
from repro.faults.plan import FaultEvent, FaultKind, FaultPlan

__all__ = [
    "FaultEvent",
    "FaultInjector",
    "FaultKind",
    "FaultPlan",
    "install_faults",
]
