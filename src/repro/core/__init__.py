"""The paper's primary contribution: the DMR API and its protocol types."""

from repro.core.actions import (
    DecisionReason,
    ResizeAction,
    ResizeDecision,
    ResizeRequest,
)
from repro.core.dmr import CheckOutcome, DMRSession
from repro.core.handler import OffloadHandler
from repro.core.inhibitor import CheckInhibitor
from repro.core.protocol import (
    CheckReply,
    CheckRequest,
    ExpandComplete,
    Message,
    RMSChannel,
    ShrinkAck,
)

__all__ = [
    "CheckInhibitor",
    "CheckOutcome",
    "CheckReply",
    "CheckRequest",
    "DMRSession",
    "DecisionReason",
    "ExpandComplete",
    "Message",
    "OffloadHandler",
    "RMSChannel",
    "ResizeAction",
    "ResizeDecision",
    "ResizeRequest",
    "ShrinkAck",
]
