"""The "checking inhibitor" (Section V-A).

Iterative applications with very short steps would otherwise contact the
RMS at every iteration; the inhibitor introduces a period (the
``NANOX_SCHED_PERIOD`` environment variable in the paper's Nanos++
implementation) during which DMR API calls are ignored, trading scheduling
reactivity for lower runtime<->RMS communication overhead (evaluated in
Fig. 9).
"""

from __future__ import annotations

from repro.errors import RuntimeAPIError


class CheckInhibitor:
    """Rate-limits reconfiguration checks to one per ``period`` seconds.

    A period of 0 disables inhibition (every call goes through).  The
    period starts counting at ``start`` — the first check is allowed at
    ``start + period``, matching a runtime that arms the timer when the
    job launches.
    """

    def __init__(self, period: float = 0.0, start: float = 0.0) -> None:
        if period < 0:
            raise RuntimeAPIError(f"inhibitor period must be >= 0, got {period}")
        self.period = period
        self._last_check = start

    @property
    def last_check(self) -> float:
        return self._last_check

    def allows(self, now: float) -> bool:
        """Whether a DMR call at time ``now`` would be serviced."""
        return now - self._last_check >= self.period

    def record(self, now: float) -> None:
        """Note that a (serviced) check happened at ``now``."""
        if now < self._last_check:
            raise RuntimeAPIError(
                f"check times must be monotone: {now} < {self._last_check}"
            )
        self._last_check = now

    def try_acquire(self, now: float) -> bool:
        """Combined allows+record: True when the check may proceed."""
        if not self.allows(now):
            return False
        self.record(now)
        return True
