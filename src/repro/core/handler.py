"""The opaque handler returned by the DMR API.

``dmr_check_status`` returns, besides the action, an opaque handler that
the application passes to its task-offloading directives
(``onto(handler, dest)`` in Listing 3).  The handler identifies the freshly
spawned process set — in this reproduction, the new communicator (real
MPI-substrate executions) or the new node set (simulated executions).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional, Tuple

from repro.core.actions import ResizeAction


@dataclass(frozen=True)
class OffloadHandler:
    """Identifies the spawned process set a resize produced."""

    action: ResizeAction
    old_procs: int
    new_procs: int
    #: Node indices of the new allocation (simulated executions).
    nodes: Tuple[int, ...] = ()
    #: The new communicator (real executions on the MPI substrate).
    comm: Optional[Any] = None
    #: Time the handler was created (simulation clock).
    created_at: float = 0.0

    def __post_init__(self) -> None:
        if self.old_procs < 1 or self.new_procs < 1:
            raise ValueError("process counts must be >= 1")

    @property
    def factor(self) -> int:
        """The homogeneous mapping factor between old and new sets."""
        if self.new_procs >= self.old_procs:
            if self.new_procs % self.old_procs:
                raise ValueError(
                    f"non-homogeneous expand {self.old_procs}->{self.new_procs}"
                )
            return self.new_procs // self.old_procs
        if self.old_procs % self.new_procs:
            raise ValueError(
                f"non-homogeneous shrink {self.old_procs}->{self.new_procs}"
            )
        return self.old_procs // self.new_procs
