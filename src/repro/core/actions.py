"""Resize actions, requests and decisions shared by the RMS and the runtime.

These types form the vocabulary of the communication protocol between the
Nanos++-style runtime and the Slurm-style resource manager (Sections III-V
of the paper): the application states its resizing *willingness* as a
:class:`ResizeRequest`; the RMS answers with a :class:`ResizeDecision`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import RuntimeAPIError


class ResizeAction(enum.Enum):
    """The three possible RMS answers to a reconfiguration check."""

    NO_ACTION = "no_action"
    EXPAND = "expand"
    SHRINK = "shrink"

    def __bool__(self) -> bool:
        """Truthy when a resize must happen (mirrors ``if (action)`` in C)."""
        return self is not ResizeAction.NO_ACTION


class DecisionReason(enum.Enum):
    """Why the policy produced its decision (for tests and traces)."""

    NOT_ELIGIBLE = "not_eligible"
    REQUESTED_ACTION = "requested_action"
    ALONE_IN_SYSTEM = "alone_in_system"
    PREFERRED_REACHED = "preferred_reached"
    EXPAND_TO_PREFERRED = "expand_to_preferred"
    SHRINK_TO_PREFERRED = "shrink_to_preferred"
    SHRINK_FOR_PENDING = "shrink_for_pending"
    PENDING_FITS = "pending_fits"
    EXPAND_IDLE_RESOURCES = "expand_idle_resources"
    NO_RESOURCES = "no_resources"
    #: Forced shrink issued by the RMS itself when a node a flexible job
    #: holds fails: the job evacuates the dying node at its next
    #: reconfiguring point instead of dying with it (:mod:`repro.faults`).
    NODE_FAILURE = "node_failure"
    #: Resize driven from outside the policy loop (an operator or an
    #: execution backend's ``update_nodes``), not by Algorithm 1.
    OPERATOR = "operator"


@dataclass(frozen=True)
class ResizeRequest:
    """Application-side reconfiguration parameters (DMR API inputs).

    Mirrors the input arguments of ``dmr_check_status`` (Section V-A):
    minimum/maximum number of processes, the resizing factor, and an
    optional preferred number of processes.
    """

    min_procs: int
    max_procs: int
    factor: int = 2
    preferred: Optional[int] = None

    def __post_init__(self) -> None:
        if self.min_procs < 1:
            raise RuntimeAPIError(f"min_procs must be >= 1, got {self.min_procs}")
        if self.max_procs < self.min_procs:
            raise RuntimeAPIError(
                f"max_procs ({self.max_procs}) < min_procs ({self.min_procs})"
            )
        if self.factor < 1:
            raise RuntimeAPIError(f"factor must be >= 1, got {self.factor}")
        if self.preferred is not None and not (
            self.min_procs <= self.preferred <= self.max_procs
        ):
            raise RuntimeAPIError(
                f"preferred ({self.preferred}) outside "
                f"[{self.min_procs}, {self.max_procs}]"
            )

    # -- reachable size computations --------------------------------------
    def expand_sizes(self, current: int) -> Tuple[int, ...]:
        """Sizes reachable by expansion: current*f, current*f^2, ... <= max."""
        if self.factor == 1:
            return tuple(range(current + 1, self.max_procs + 1))
        sizes = []
        size = current * self.factor
        while size <= self.max_procs:
            sizes.append(size)
            size *= self.factor
        return tuple(sizes)

    def shrink_sizes(self, current: int) -> Tuple[int, ...]:
        """Sizes reachable by shrinking: integer current/f^k >= min, descending."""
        if self.factor == 1:
            return tuple(range(current - 1, self.min_procs - 1, -1))
        sizes = []
        size = current
        while size % self.factor == 0:
            size //= self.factor
            if size < self.min_procs:
                break
            sizes.append(size)
        return tuple(sizes)

    def max_procs_to(self, current: int, limit: int, available: int) -> Optional[int]:
        """Largest expansion target <= ``limit`` buildable from free nodes.

        Returns None when no expansion is possible (the paper's
        ``max_procs_to`` helper in Algorithm 1).
        """
        best = None
        for size in self.expand_sizes(current):
            if size <= limit and size - current <= available:
                best = size
        return best


@dataclass(frozen=True)
class ResizeDecision:
    """RMS answer: what to do and at which size."""

    action: ResizeAction
    #: New total number of processes after the action (== current size for
    #: NO_ACTION).
    target_procs: int
    reason: DecisionReason
    #: For SHRINK_FOR_PENDING: the queued job whose start triggered the
    #: shrink; it receives maximum priority (Algorithm 1, line 18).
    beneficiary_job_id: Optional[int] = None

    def __bool__(self) -> bool:
        return bool(self.action)

    @staticmethod
    def no_action(current: int, reason: DecisionReason) -> "ResizeDecision":
        return ResizeDecision(ResizeAction.NO_ACTION, current, reason)
