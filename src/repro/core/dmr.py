"""Scheduling-mode logic of the DMR API.

:class:`DMRSession` encapsulates the parts of ``dmr_check_status`` /
``dmr_icheck_status`` that are independent of the execution substrate:
the checking inhibitor and the synchronous/asynchronous decision hand-off.

*Synchronous* (``dmr_check_status``): the call blocks on a runtime<->RMS
round trip and the returned decision reflects the *current* system state.

*Asynchronous* (``dmr_icheck_status``): the call returns the decision that
was negotiated during the *previous* step and schedules a new negotiation
that overlaps with the upcoming step.  The applied decision may therefore
be stale — the inefficiency analysed in Section VIII-C / Fig. 6.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from repro.core.actions import ResizeAction, ResizeDecision
from repro.core.inhibitor import CheckInhibitor

#: A thunk that queries the RMS and returns its decision now.
DecisionFn = Callable[[], ResizeDecision]


@dataclass
class CheckOutcome:
    """What a DMR call produced."""

    #: Decision to apply right now (None when the call was inhibited or
    #: nothing is scheduled yet in asynchronous mode).
    decision: Optional[ResizeDecision]
    #: Whether the runtime must charge the blocking RMS round-trip cost.
    blocking: bool
    #: Whether the inhibitor swallowed the call.
    inhibited: bool = False


class DMRSession:
    """Per-job DMR call state (inhibitor + pending asynchronous decision)."""

    def __init__(
        self,
        sched_period: float = 0.0,
        async_mode: bool = False,
        start_time: float = 0.0,
    ) -> None:
        self.async_mode = async_mode
        self.inhibitor = CheckInhibitor(sched_period, start=start_time)
        self._pending: Optional[ResizeDecision] = None

    @property
    def pending(self) -> Optional[ResizeDecision]:
        """The decision negotiated for the next step (asynchronous mode)."""
        return self._pending

    def check(self, now: float, decide: DecisionFn) -> CheckOutcome:
        """Perform one DMR call at time ``now``.

        ``decide`` is invoked (at most once) to obtain the RMS decision
        based on the current system state.
        """
        if not self.inhibitor.try_acquire(now):
            return CheckOutcome(decision=None, blocking=False, inhibited=True)

        if not self.async_mode:
            return CheckOutcome(decision=decide(), blocking=True)

        # Asynchronous: apply what was negotiated last step, kick off the
        # next negotiation (overlapped with compute, hence non-blocking).
        to_apply, self._pending = self._pending, decide()
        if to_apply is not None and to_apply.action is ResizeAction.NO_ACTION:
            to_apply = None
        return CheckOutcome(decision=to_apply, blocking=False)

    def cancel_pending(self) -> None:
        """Drop a scheduled decision (e.g. the job is about to finish)."""
        self._pending = None
