"""The runtime <-> RMS communication protocol (contribution 3).

The paper's third contribution is "a communication protocol for the
runtime to interact with the RMS, based on application-level API calls".
This module gives that protocol an explicit message vocabulary and a
latency-modelled channel, so the round trip the synchronous
``dmr_check_status`` blocks on is a real exchange rather than a flat
cost constant.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import count
from typing import Generator, Optional, TYPE_CHECKING

from repro.core.actions import ResizeDecision, ResizeRequest
from repro.errors import RuntimeAPIError
from repro.sim.engine import Environment
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.slurm.controller import SlurmController
    from repro.slurm.job import Job

_msg_ids = count(1)


@dataclass(frozen=True)
class Message:
    """Base protocol message."""

    job_id: int
    msg_id: int = field(default_factory=lambda: next(_msg_ids))


@dataclass(frozen=True)
class CheckRequest(Message):
    """Runtime -> RMS: the application reached a reconfiguring point."""

    request: Optional[ResizeRequest] = None

    def __post_init__(self) -> None:
        if self.request is None:
            raise RuntimeAPIError("CheckRequest needs a ResizeRequest")


@dataclass(frozen=True)
class CheckReply(Message):
    """RMS -> runtime: the plug-in's decision."""

    decision: Optional[ResizeDecision] = None
    #: Echo of the triggering request's msg_id.
    in_reply_to: int = 0


@dataclass(frozen=True)
class ShrinkAck(Message):
    """Node daemon -> management node: offloaded tasks done, node ready
    to be released (the synchronized shrink workflow of Section V-B2)."""

    node_index: int = -1


@dataclass(frozen=True)
class ExpandComplete(Message):
    """Runtime -> RMS: the spawned processes joined; expansion finished."""

    new_size: int = 0


class RMSChannel:
    """Latency-modelled request/reply channel to the controller.

    One channel per job, like one Nanos++ instance per job.  The
    synchronous DMR path calls :meth:`check` from inside the job's
    simulation process; the exchange costs one uplink plus one downlink
    latency and the decision reflects the state the RMS saw when the
    request *arrived* — which is what makes simultaneous checks from
    different jobs serialize realistically.
    """

    def __init__(
        self,
        controller: "SlurmController",
        latency: float = 0.075,
    ) -> None:
        if latency < 0:
            raise RuntimeAPIError(f"latency must be >= 0, got {latency}")
        self.controller = controller
        self.latency = latency
        #: Complete message log (for tests and traces).
        self.log: list[Message] = []

    @property
    def env(self) -> Environment:
        return self.controller.env

    @property
    def round_trip(self) -> float:
        return 2.0 * self.latency

    def check(
        self, job: "Job", request: ResizeRequest
    ) -> Generator[Event, object, ResizeDecision]:
        """Full synchronous exchange; yields the wire latencies."""
        msg = CheckRequest(job_id=job.job_id, request=request)
        self.log.append(msg)
        if self.latency:
            yield self.env.timeout(self.latency)  # uplink
        decision = self.controller.check_status(job, request)
        reply = CheckReply(
            job_id=job.job_id, decision=decision, in_reply_to=msg.msg_id
        )
        self.log.append(reply)
        if self.latency:
            yield self.env.timeout(self.latency)  # downlink
        return decision

    def notify_shrink_acks(self, job: "Job", node_indices: tuple) -> None:
        """Record the per-node ACKs of a synchronized shrink."""
        for idx in node_indices:
            self.log.append(ShrinkAck(job_id=job.job_id, node_index=idx))

    def notify_expand_complete(self, job: "Job", new_size: int) -> None:
        self.log.append(ExpandComplete(job_id=job.job_id, new_size=new_size))
