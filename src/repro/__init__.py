"""repro - reproduction of *Efficient Scalable Computing through Flexible
Applications and Adaptive Workloads* (Iserte et al., ICPP 2017).

The package rebuilds the paper's full system in Python:

* :mod:`repro.api` - the public facade: the composable ``Session``
  builder, live ``SessionObserver`` hooks, and the artifact registry
  behind ``python -m repro``;
* :mod:`repro.core` - the DMR API (the paper's primary contribution);
* :mod:`repro.slurm` - the Slurm substrate with the Algorithm 1
  reconfiguration plug-in and the node-resize protocol;
* :mod:`repro.runtime` - the Nanos++-style runtime driving malleable
  jobs (offload semantics, redistribution, sync/async DMR calls);
* :mod:`repro.mpi` - an in-process deterministic MPI with
  ``MPI_Comm_spawn`` for real-data validation;
* :mod:`repro.apps`, :mod:`repro.workload`, :mod:`repro.cluster`,
  :mod:`repro.checkpoint`, :mod:`repro.metrics`, :mod:`repro.sim` -
  the applications, workload model, hardware models, C/R baseline,
  measurement layer and simulation kernel;
* :mod:`repro.experiments` - one driver per paper figure/table.

See README.md for a tour and EXPERIMENTS.md for paper-vs-measured data.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
