"""Flexible Sleep (FS): the paper's synthetic malleable application.

Each step "computes" by sleeping; the sleep time scales perfectly linearly
with the number of processes (Section VII-B1).  The application also
carries an array of doubles (1 GB in the preliminary study) that forms the
OmpSs data dependency and is redistributed at every reconfiguration.
"""

from __future__ import annotations

from typing import Optional

from repro.apps.base import AppModel, LinearScalability
from repro.cluster.network import GiB
from repro.core.actions import ResizeRequest
from repro.errors import ReproError

#: Table I row for FS: min 1, max 20 processes, no preferred size.
FS_MIN_PROCS = 1
FS_MAX_PROCS = 20


def flexible_sleep(
    step_time: float,
    at_procs: int,
    steps: int = 2,
    state_bytes: float = 1.0 * GiB,
    min_procs: int = FS_MIN_PROCS,
    max_procs: int = FS_MAX_PROCS,
    factor: int = 2,
    preferred: Optional[int] = None,
    sched_period: float = 0.0,
) -> AppModel:
    """Build an FS instance whose step lasts ``step_time`` at ``at_procs``.

    ``step_time``/``at_procs`` anchor the linear-scaling work: the serial
    step time is ``step_time * at_procs``.  The preliminary study uses 2
    steps of at most 60 s and a 1 GB redistributed array; the micro-steps
    experiment (Fig. 9) shortens the steps and raises their count.
    """
    if step_time <= 0:
        raise ReproError(f"step_time must be positive, got {step_time}")
    if at_procs < 1:
        raise ReproError(f"at_procs must be >= 1, got {at_procs}")
    return AppModel(
        name="fs",
        iterations=steps,
        serial_step_time=step_time * at_procs,
        state_bytes=state_bytes,
        scalability=LinearScalability(),
        resize=ResizeRequest(
            min_procs=min_procs,
            max_procs=max_procs,
            factor=factor,
            preferred=preferred,
        ),
        sched_period=sched_period,
    )
