"""Applications: the paper's synthetic FS and real CG/Jacobi/N-body.

Each application exists in two forms:

* an **analytic model** (:class:`~repro.apps.base.AppModel`) used by the
  virtual-time workload experiments, parameterized per Table I; and
* a **real NumPy kernel** on the in-process MPI substrate
  (:mod:`repro.apps.kernels`) used to validate malleability/redistribution
  correctness with actual data.
"""

from repro.apps.base import (
    AmdahlScalability,
    AppModel,
    LinearScalability,
    MeasuredScalability,
    ScalabilityModel,
)
from repro.apps.cg import conjugate_gradient
from repro.apps.jacobi import jacobi
from repro.apps.nbody import nbody
from repro.apps.sleep import flexible_sleep

__all__ = [
    "AmdahlScalability",
    "AppModel",
    "LinearScalability",
    "MeasuredScalability",
    "ScalabilityModel",
    "conjugate_gradient",
    "flexible_sleep",
    "jacobi",
    "nbody",
]
