"""Application models for the simulated (virtual-time) executions.

An :class:`AppModel` describes an iterative malleable application the way
the workload experiments need it: how long one step takes at a given
process count (via a :class:`ScalabilityModel`), how much redistributable
state it carries, and its DMR reconfiguration parameters (Table I of the
paper).

The *real* NumPy kernels of CG/Jacobi/N-body (used to validate
redistribution correctness on the MPI substrate) live next to these models
in their respective modules.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Dict, Optional

from repro.core.actions import ResizeRequest
from repro.errors import ReproError


class ScalabilityModel(ABC):
    """Parallel speedup as a function of process count."""

    @abstractmethod
    def speedup(self, nprocs: int) -> float:
        """Speedup over the 1-process execution (>= 0, S(1) == 1)."""

    def _validate(self, nprocs: int) -> None:
        if nprocs < 1:
            raise ReproError(f"nprocs must be >= 1, got {nprocs}")


class LinearScalability(ScalabilityModel):
    """Perfect linear scaling (the Flexible Sleep synthetic assumption)."""

    def speedup(self, nprocs: int) -> float:
        self._validate(nprocs)
        return float(nprocs)


class AmdahlScalability(ScalabilityModel):
    """Amdahl's law with a serial fraction."""

    def __init__(self, serial_fraction: float) -> None:
        if not 0.0 <= serial_fraction <= 1.0:
            raise ReproError(
                f"serial fraction must be in [0, 1], got {serial_fraction}"
            )
        self.serial_fraction = serial_fraction

    def speedup(self, nprocs: int) -> float:
        self._validate(nprocs)
        f = self.serial_fraction
        return 1.0 / (f + (1.0 - f) / nprocs)


class MeasuredScalability(ScalabilityModel):
    """Speedup interpolated from measured (nprocs, speedup) points.

    Interpolation is linear in log2(nprocs), matching how strong-scaling
    curves are usually plotted; beyond the last point the curve is held
    flat (no extrapolated super-scaling).
    """

    def __init__(self, points: Dict[int, float]) -> None:
        if not points:
            raise ReproError("need at least one measured point")
        if any(p < 1 for p in points) or any(s <= 0 for s in points.values()):
            raise ReproError("points must map nprocs>=1 to speedup>0")
        if 1 not in points:
            points = dict(points)
            points[1] = 1.0
        self.points = dict(sorted(points.items()))

    def speedup(self, nprocs: int) -> float:
        self._validate(nprocs)
        keys = list(self.points)
        if nprocs in self.points:
            return self.points[nprocs]
        if nprocs <= keys[0]:
            return self.points[keys[0]]
        if nprocs >= keys[-1]:
            return self.points[keys[-1]]
        # Find the bracketing measured points.
        import bisect

        hi = bisect.bisect_left(keys, nprocs)
        lo = hi - 1
        x0, x1 = keys[lo], keys[hi]
        y0, y1 = self.points[x0], self.points[x1]
        w = (math.log2(nprocs) - math.log2(x0)) / (math.log2(x1) - math.log2(x0))
        return y0 + w * (y1 - y0)


@dataclass
class AppModel:
    """An iterative malleable application (simulation view)."""

    name: str
    iterations: int
    #: Wall-time of one iteration on a single process, seconds.
    serial_step_time: float
    #: Total redistributable state (the OmpSs data dependencies), bytes.
    state_bytes: float
    scalability: ScalabilityModel
    #: DMR parameters (Table I). None -> the job is not reconfigurable.
    resize: Optional[ResizeRequest] = None
    #: Checking-inhibitor period, seconds (0 = check every iteration).
    sched_period: float = 0.0
    #: Evolving-application phases: per-iteration overrides of the resize
    #: request ("Request an Action" mode — e.g. a computational stage that
    #: demands growth by raising min_procs above the current allocation).
    phase_requests: Optional[Dict[int, ResizeRequest]] = None

    def __post_init__(self) -> None:
        if self.iterations < 1:
            raise ReproError(f"iterations must be >= 1, got {self.iterations}")
        if self.serial_step_time <= 0:
            raise ReproError(
                f"serial_step_time must be positive, got {self.serial_step_time}"
            )
        if self.state_bytes < 0:
            raise ReproError(f"state_bytes must be >= 0, got {self.state_bytes}")
        if self.sched_period < 0:
            raise ReproError(f"sched_period must be >= 0, got {self.sched_period}")
        self._completed = 0

    def request_at(self, step: int) -> Optional[ResizeRequest]:
        """The DMR request in force at the given iteration.

        Evolving applications override their default request at specific
        steps; all other applications use ``resize`` throughout.
        """
        if self.phase_requests and step in self.phase_requests:
            return self.phase_requests[step]
        return self.resize

    # -- timing ---------------------------------------------------------
    def step_time(self, nprocs: int) -> float:
        """Duration of one iteration at ``nprocs`` processes."""
        return self.serial_step_time / self.scalability.speedup(nprocs)

    def total_time(self, nprocs: int) -> float:
        """Duration of the whole run at a constant process count."""
        return self.iterations * self.step_time(nprocs)

    # -- progress --------------------------------------------------------
    @property
    def completed_steps(self) -> int:
        return self._completed

    @property
    def remaining_steps(self) -> int:
        return self.iterations - self._completed

    @property
    def finished(self) -> bool:
        return self._completed >= self.iterations

    def advance(self, steps: int = 1) -> None:
        if self.finished:
            raise ReproError(f"{self.name}: advance() past completion")
        self._completed = min(self.iterations, self._completed + steps)

    def reset(self) -> None:
        self._completed = 0

    def fresh_copy(self) -> "AppModel":
        """An unstarted copy (job instances must not share progress)."""
        return AppModel(
            name=self.name,
            iterations=self.iterations,
            serial_step_time=self.serial_step_time,
            state_bytes=self.state_bytes,
            scalability=self.scalability,
            resize=self.resize,
            sched_period=self.sched_period,
            phase_requests=self.phase_requests,
        )
