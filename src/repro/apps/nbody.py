"""N-body simulation: model and parameters (Section VII-B4).

Each process stores a subset of particles and exchanges its local subset
with every other process each iteration, so the paper observes *constant
performance*: the peak is at 16 processes but the total gain over the
sequential run stays below 10% — a single process is the sweet spot.
Iterations are costly ("in the scale of minutes"), so no checking
inhibitor is configured (Table I).
"""

from __future__ import annotations

from repro.apps.base import AppModel, MeasuredScalability
from repro.cluster.network import MiB
from repro.core.actions import ResizeRequest

#: Table I row for N-body.
NBODY_ITERATIONS = 25
NBODY_MIN_PROCS = 1
NBODY_MAX_PROCS = 16
NBODY_PREFERRED = 1
NBODY_SCHED_PERIOD = 0.0

#: Communication-bound: < 10% total gain, peak at 16 procs, drop at 32.
NBODY_SPEEDUP = {1: 1.0, 2: 1.03, 4: 1.05, 8: 1.07, 16: 1.09, 32: 1.0}

#: 25 iterations x ~24 s at the sweet spot ~= 600 s per job.
NBODY_SERIAL_STEP_TIME = 24.0

#: Particle array (position, velocity, mass, weight): ~128 MiB.
NBODY_STATE_BYTES = 128 * MiB


def nbody(
    iterations: int = NBODY_ITERATIONS,
    serial_step_time: float = NBODY_SERIAL_STEP_TIME,
    state_bytes: float = NBODY_STATE_BYTES,
) -> AppModel:
    """The N-body application model with the paper's Table I configuration."""
    return AppModel(
        name="nbody",
        iterations=iterations,
        serial_step_time=serial_step_time,
        state_bytes=state_bytes,
        scalability=MeasuredScalability(NBODY_SPEEDUP),
        resize=ResizeRequest(
            min_procs=NBODY_MIN_PROCS,
            max_procs=NBODY_MAX_PROCS,
            factor=2,
            preferred=NBODY_PREFERRED,
        ),
        sched_period=NBODY_SCHED_PERIOD,
    )
