"""Jacobi solver: model and parameters (Section VII-B3).

An embarrassingly parallel iterative solver with a program layout similar
to CG (flat matrix plus two vectors as the OmpSs data dependencies).  Its
scaling classification in the paper matches CG: "high scalability", sweet
spot at 8 processes, best absolute speed-up at 32.
"""

from __future__ import annotations

from repro.apps.base import AppModel, MeasuredScalability
from repro.cluster.network import MiB
from repro.core.actions import ResizeRequest

#: Table I row for Jacobi.
JACOBI_ITERATIONS = 10_000
JACOBI_MIN_PROCS = 2
JACOBI_MAX_PROCS = 32
JACOBI_PREFERRED = 8
JACOBI_SCHED_PERIOD = 15.0

#: Slightly better scaling than CG (no reduction in the inner loop).
JACOBI_SPEEDUP = {1: 1.0, 2: 1.95, 4: 3.7, 8: 6.3, 16: 6.9, 32: 7.45}

JACOBI_SERIAL_STEP_TIME = 0.35

#: Flat matrix + 2 vectors (~512 MiB).
JACOBI_STATE_BYTES = 512 * MiB


def jacobi(
    iterations: int = JACOBI_ITERATIONS,
    serial_step_time: float = JACOBI_SERIAL_STEP_TIME,
    state_bytes: float = JACOBI_STATE_BYTES,
    sched_period: float = JACOBI_SCHED_PERIOD,
) -> AppModel:
    """The Jacobi application model with the paper's Table I configuration."""
    return AppModel(
        name="jacobi",
        iterations=iterations,
        serial_step_time=serial_step_time,
        state_bytes=state_bytes,
        scalability=MeasuredScalability(JACOBI_SPEEDUP),
        resize=ResizeRequest(
            min_procs=JACOBI_MIN_PROCS,
            max_procs=JACOBI_MAX_PROCS,
            factor=2,
            preferred=JACOBI_PREFERRED,
        ),
        sched_period=sched_period,
    )
