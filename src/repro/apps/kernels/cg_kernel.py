"""Distributed Conjugate Gradient with real data (Section VII-B2).

Block-row distribution of a symmetric positive-definite matrix and of the
b/x/r/p vectors — the same layout as the paper's OpenMP+MPI CG, where
"each MPI process works on a block of rows of the matrix and the
corresponding elements from the vectors".  Dot products are allreduces;
the direction vector is allgathered for the local matvec.

The five data structures (matrix + four vectors) form the OmpSs data
dependencies and are redistributed by the malleable driver on a resize.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.kernels.driver import MalleableSpec, Schedule, run_malleable
from repro.errors import ReproError


def make_spd_system(n: int, seed: int = 0) -> tuple[np.ndarray, np.ndarray]:
    """A well-conditioned SPD system (A, b) for tests and examples."""
    rng = np.random.default_rng(seed)
    m = rng.standard_normal((n, n))
    a = m @ m.T / n + np.eye(n) * (n / 4.0)
    b = rng.standard_normal(n)
    return a, b


def cg_reference(a: np.ndarray, b: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential CG running a fixed iteration count (the ground truth)."""
    x = np.zeros_like(b)
    r = b - a @ x
    p = r.copy()
    rz = float(r @ r)
    for _ in range(iterations):
        q = a @ p
        alpha = rz / float(p @ q)
        x = x + alpha * p
        r = r - alpha * q
        rz_new = float(r @ r)
        p = r + (rz_new / rz) * p
        rz = rz_new
    return x


def cg_spec(
    a: np.ndarray,
    b: np.ndarray,
    iterations: int,
    schedule: Optional[Schedule] = None,
) -> MalleableSpec:
    """Build the malleable CG application for the given system."""
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n,):
        raise ReproError(f"need square A and matching b, got {a.shape}, {b.shape}")

    def init(rank: int, size: int) -> Dict[str, np.ndarray]:
        if n % size:
            raise ReproError(f"n={n} not divisible by {size} processes")
        block = n // size
        sl = slice(rank * block, (rank + 1) * block)
        a_local = a[sl, :].copy()
        b_local = b[sl].copy()
        x_local = np.zeros(block)
        r_local = b_local.copy()  # r = b - A*0
        p_local = r_local.copy()
        return {
            "A": a_local,
            "b": b_local,
            "x": x_local,
            "r": r_local,
            "p": p_local,
        }

    def step(ctx, state, t):
        # Gather the full direction vector for the local matvec.
        p_parts = yield ctx.allgather(state["p"])
        p_full = np.concatenate(p_parts)
        q_local = state["A"] @ p_full
        rz = yield ctx.allreduce(float(state["r"] @ state["r"]), op="sum")
        pq = yield ctx.allreduce(float(state["p"] @ q_local), op="sum")
        alpha = rz / pq
        x_local = state["x"] + alpha * state["p"]
        r_local = state["r"] - alpha * q_local
        rz_new = yield ctx.allreduce(float(r_local @ r_local), op="sum")
        p_local = r_local + (rz_new / rz) * state["p"]
        return {
            "A": state["A"],
            "b": state["b"],
            "x": x_local,
            "r": r_local,
            "p": p_local,
        }

    def collect(ctx, state):
        parts = yield ctx.gather(state["x"], root=0)
        if ctx.rank == 0:
            return np.concatenate(parts)
        return None

    return MalleableSpec(
        iterations=iterations,
        init=init,
        step=step,
        collect=collect,
        schedule=schedule,
    )


def run_cg(
    a: np.ndarray,
    b: np.ndarray,
    iterations: int,
    nprocs: int,
    schedule: Optional[Schedule] = None,
) -> np.ndarray:
    """Run malleable distributed CG; returns the solution vector."""
    return run_malleable(nprocs, cg_spec(a, b, iterations, schedule))
