"""Generic malleable-application driver (Listing 3 with real data).

The paper's programming model resizes an iterative application by
spawning the new process set and offloading tasks carrying the
block-distributed data onto it:

* **expand**: every old rank partitions its block into ``factor`` subsets
  and offloads subset ``i`` to new rank ``old_rank * factor + i``;
* **shrink**: old ranks are grouped; *senders* forward their blocks to the
  group's *receiver* (its last member), which offloads the merged block to
  new rank ``receiver // factor``;
* the old generation then terminates (the ``taskwait`` semantics), and the
  new generation resumes at the interrupted iteration.

This driver implements that protocol over the in-process MPI substrate
for any application expressed as a :class:`MalleableSpec`, with all state
arrays block-distributed along axis 0.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Optional, Union

import numpy as np

from repro.errors import RedistributionError
from repro.mpi.executor import RankContext
from repro.runtime.offload import OffloadRegion, receive_offload

#: Local state: named arrays, all block-distributed along axis 0.
BlockState = Dict[str, np.ndarray]

#: iteration -> new total process count (or a callable (t, size) -> target).
Schedule = Union[Mapping[int, int], Callable[[int, int], Optional[int]]]

#: Message tag of the shrink sender->receiver forwarding stage.
TAG_SHRINK_FORWARD = 101


@dataclass
class MalleableSpec:
    """Everything the driver needs to run one malleable application."""

    iterations: int
    #: Build the local state of ``rank`` out of ``size`` (first generation).
    init: Callable[[int, int], BlockState]
    #: Generator: (ctx, state, t) -> new state. May yield MPI ops.
    step: Callable[[RankContext, BlockState, int], Any]
    #: Generator: (ctx, state) -> final result (typically gather to rank 0).
    collect: Callable[[RankContext, BlockState], Any]
    #: Resize schedule; checked at each iteration boundary.
    schedule: Schedule = None  # type: ignore[assignment]

    def target_at(self, t: int, size: int) -> Optional[int]:
        if self.schedule is None:
            return None
        if callable(self.schedule):
            return self.schedule(t, size)
        return self.schedule.get(t)


def partition_state(state: BlockState, factor: int) -> list[BlockState]:
    """Split every array into ``factor`` equal parts along axis 0."""
    parts: list[BlockState] = [dict() for _ in range(factor)]
    for name, array in state.items():
        if array.shape[0] % factor:
            raise RedistributionError(
                f"array {name!r} of length {array.shape[0]} not divisible "
                f"by factor {factor}"
            )
        for i, chunk in enumerate(np.split(array, factor, axis=0)):
            parts[i][name] = chunk
    return parts


def merge_states(parts: list[BlockState]) -> BlockState:
    """Concatenate per-part arrays along axis 0 (inverse of partition)."""
    if not parts:
        raise RedistributionError("nothing to merge")
    keys = parts[0].keys()
    for p in parts[1:]:
        if p.keys() != keys:
            raise RedistributionError(f"mismatched state keys: {keys} vs {p.keys()}")
    return {k: np.concatenate([p[k] for p in parts], axis=0) for k in keys}


def malleable_main(ctx: RankContext, spec: MalleableSpec):
    """Rank function: runs the application, resizing per the schedule."""
    if ctx.parent is None:
        state = spec.init(ctx.rank, ctx.size)
        t = 0
    else:
        # Offloaded task: receive the data dependence and resume point.
        state, t = yield from receive_offload(ctx)

    while t < spec.iterations:
        target = spec.target_at(t, ctx.size)
        if target is not None and target != ctx.size:
            yield from _resize(ctx, spec, state, t, target)
            return None  # old generation terminates (taskwait semantics)
        state = yield from spec.step(ctx, state, t)
        t += 1

    return (yield from spec.collect(ctx, state))


def _resize(
    ctx: RankContext, spec: MalleableSpec, state: BlockState, t: int, target: int
):
    size, rank = ctx.size, ctx.rank
    if target < 1:
        raise RedistributionError(f"cannot resize to {target} processes")

    if target > size:
        if target % size:
            raise RedistributionError(
                f"homogeneous expand needs a multiple: {size} -> {target}"
            )
        factor = target // size
        # dmr_check_status spawns the new set and returns the handler...
        handler = yield ctx.spawn(target, malleable_main, spec)
        # ...then the application partitions and offloads (Listing 3):
        #   #pragma omp task inout(subdata) onto(handler, dest)
        region = OffloadRegion(ctx, handler)
        for i, part in enumerate(partition_state(state, factor)):
            dest = rank * factor + i
            yield from region.task(dest, part, resume_at=t)
        yield from region.taskwait()
        return

    if size % target:
        raise RedistributionError(
            f"homogeneous shrink needs a divisor: {size} -> {target}"
        )
    factor = size // target
    is_sender = (rank % factor) < (factor - 1)
    if is_sender:
        # Forward the block to the group's receiver (MPI_Isend in
        # Listing 3; sends are eager so no wait is needed afterwards).
        dst = factor * (rank // factor + 1) - 1
        yield ctx.isend(dst, state, tag=TAG_SHRINK_FORWARD)
        merged: Optional[BlockState] = None
    else:
        # Listing 3's receiver: post the MPI_Irecv's, then MPI_Waitall.
        requests = []
        for src in range(rank - factor + 1, rank):
            requests.append((yield ctx.irecv(source=src, tag=TAG_SHRINK_FORWARD)))
        gathered = yield ctx.waitall(requests)
        gathered.append(state)  # own block is the last of the group
        merged = merge_states(gathered)

    handler = yield ctx.spawn(target, malleable_main, spec)
    if merged is not None:
        region = OffloadRegion(ctx, handler)
        yield from region.task(rank // factor, merged, resume_at=t)
        yield from region.taskwait()


def run_malleable(nprocs: int, spec: MalleableSpec, max_ops: int = 10_000_000):
    """Run a malleable application; returns rank-0's collected result.

    Resizes replace the process set, so the result is returned by the
    *final* generation's rank 0 — we scan all processes for the one
    non-None collected result.
    """
    from repro.mpi.executor import MPIExecutor

    executor = MPIExecutor(max_ops=max_ops)
    executor.create_world(nprocs, malleable_main, args=(spec,))
    results = executor.run()
    collected = [r for r in results.values() if r is not None]
    if len(collected) > 1:
        raise RedistributionError(
            f"expected a single collected result, got {len(collected)}"
        )
    return collected[0] if collected else None
