"""Real NumPy kernels of the paper's applications on the MPI substrate.

These validate, with actual data, that the malleability protocol
(spawn + Listing 3 redistribution + generation hand-over) preserves
application results across arbitrary expand/shrink schedules.
"""

from repro.apps.kernels.cg_kernel import cg_reference, cg_spec, make_spd_system, run_cg
from repro.apps.kernels.driver import (
    BlockState,
    MalleableSpec,
    malleable_main,
    merge_states,
    partition_state,
    run_malleable,
)
from repro.apps.kernels.jacobi_kernel import (
    jacobi_reference,
    jacobi_spec,
    make_dd_system,
    run_jacobi,
)
from repro.apps.kernels.nbody_kernel import (
    make_particles,
    nbody_reference,
    nbody_spec,
    run_nbody,
)

__all__ = [
    "BlockState",
    "MalleableSpec",
    "cg_reference",
    "cg_spec",
    "jacobi_reference",
    "jacobi_spec",
    "make_dd_system",
    "make_particles",
    "make_spd_system",
    "malleable_main",
    "merge_states",
    "nbody_reference",
    "nbody_spec",
    "partition_state",
    "run_cg",
    "run_jacobi",
    "run_malleable",
    "run_nbody",
]
