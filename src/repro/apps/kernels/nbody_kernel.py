"""Distributed N-body simulation with real data (Section VII-B4).

Each process stores a subset of particles; every iteration it exchanges
its local subset with all other processes (the paper's all-to-all
behaviour that makes the application communication-bound) and advances
positions/velocities with a leapfrog step under softened gravity.

The particle array (position, velocity, mass) is the data dependency that
is split or merged when the job is rescaled.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.kernels.driver import MalleableSpec, Schedule, run_malleable
from repro.errors import ReproError

#: Softening factor avoiding singular pairwise forces.
SOFTENING = 1e-2
#: Gravitational constant (natural units) and timestep.
G = 1.0
DT = 1e-3


def make_particles(n: int, seed: int = 2) -> Dict[str, np.ndarray]:
    """Random particle cloud: positions, velocities, masses."""
    rng = np.random.default_rng(seed)
    return {
        "pos": rng.uniform(-1.0, 1.0, size=(n, 3)),
        "vel": rng.uniform(-0.1, 0.1, size=(n, 3)),
        "mass": rng.uniform(0.5, 1.5, size=(n, 1)),
    }


def _accelerations(
    pos_local: np.ndarray, pos_all: np.ndarray, mass_all: np.ndarray
) -> np.ndarray:
    """Softened gravitational acceleration of local particles (vectorized)."""
    # pairwise displacement: (n_local, n_all, 3)
    delta = pos_all[None, :, :] - pos_local[:, None, :]
    dist2 = (delta**2).sum(axis=2) + SOFTENING**2
    inv_d3 = dist2**-1.5
    return G * (delta * (mass_all[:, 0] * inv_d3)[:, :, None]).sum(axis=1)


def nbody_reference(
    particles: Dict[str, np.ndarray], iterations: int
) -> np.ndarray:
    """Sequential simulation; returns final positions (the ground truth)."""
    pos = particles["pos"].copy()
    vel = particles["vel"].copy()
    mass = particles["mass"]
    for _ in range(iterations):
        acc = _accelerations(pos, pos, mass)
        vel = vel + DT * acc
        pos = pos + DT * vel
    return pos


def nbody_spec(
    particles: Dict[str, np.ndarray],
    iterations: int,
    schedule: Optional[Schedule] = None,
) -> MalleableSpec:
    """Build the malleable N-body application."""
    n = particles["pos"].shape[0]

    def init(rank: int, size: int) -> Dict[str, np.ndarray]:
        if n % size:
            raise ReproError(f"n={n} particles not divisible by {size} processes")
        block = n // size
        sl = slice(rank * block, (rank + 1) * block)
        return {
            "pos": particles["pos"][sl].copy(),
            "vel": particles["vel"][sl].copy(),
            "mass": particles["mass"][sl].copy(),
        }

    def step(ctx, state, t):
        # Exchange the local subsets: afterwards every process has worked
        # with the whole particle set (Section VII-B4).
        pos_parts = yield ctx.allgather(state["pos"])
        mass_parts = yield ctx.allgather(state["mass"])
        pos_all = np.concatenate(pos_parts)
        mass_all = np.concatenate(mass_parts)
        acc = _accelerations(state["pos"], pos_all, mass_all)
        vel = state["vel"] + DT * acc
        pos = state["pos"] + DT * vel
        return {"pos": pos, "vel": vel, "mass": state["mass"]}

    def collect(ctx, state):
        parts = yield ctx.gather(state["pos"], root=0)
        if ctx.rank == 0:
            return np.concatenate(parts)
        return None

    return MalleableSpec(
        iterations=iterations,
        init=init,
        step=step,
        collect=collect,
        schedule=schedule,
    )


def run_nbody(
    particles: Dict[str, np.ndarray],
    iterations: int,
    nprocs: int,
    schedule: Optional[Schedule] = None,
) -> np.ndarray:
    """Run the malleable N-body simulation; returns final positions."""
    return run_malleable(nprocs, nbody_spec(particles, iterations, schedule))
