"""Distributed Jacobi solver with real data (Section VII-B3).

Same program layout as CG (block-row matrix plus vectors), but
embarrassingly parallel: each iteration allgathers the current solution
and updates the local rows.  The three data structures (flat matrix and
two vectors) are the OmpSs data dependencies redistributed on a resize.
"""

from __future__ import annotations

from typing import Dict, Optional

import numpy as np

from repro.apps.kernels.driver import MalleableSpec, Schedule, run_malleable
from repro.errors import ReproError


def make_dd_system(n: int, seed: int = 1) -> tuple[np.ndarray, np.ndarray]:
    """A strictly diagonally dominant system (Jacobi converges)."""
    rng = np.random.default_rng(seed)
    a = rng.uniform(-1.0, 1.0, size=(n, n))
    np.fill_diagonal(a, np.abs(a).sum(axis=1) + 1.0)
    b = rng.uniform(-1.0, 1.0, size=n)
    return a, b


def jacobi_reference(a: np.ndarray, b: np.ndarray, iterations: int) -> np.ndarray:
    """Sequential Jacobi iteration (the ground truth)."""
    n = a.shape[0]
    d = np.diag(a).copy()
    r = a - np.diag(d)
    x = np.zeros(n)
    for _ in range(iterations):
        x = (b - r @ x) / d
    return x


def jacobi_spec(
    a: np.ndarray,
    b: np.ndarray,
    iterations: int,
    schedule: Optional[Schedule] = None,
) -> MalleableSpec:
    """Build the malleable Jacobi application."""
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n,):
        raise ReproError(f"need square A and matching b, got {a.shape}, {b.shape}")

    def init(rank: int, size: int) -> Dict[str, np.ndarray]:
        if n % size:
            raise ReproError(f"n={n} not divisible by {size} processes")
        block = n // size
        sl = slice(rank * block, (rank + 1) * block)
        return {
            "A": a[sl, :].copy(),
            "b": b[sl].copy(),
            "x": np.zeros(block),
        }

    def step(ctx, state, t):
        x_parts = yield ctx.allgather(state["x"])
        x_full = np.concatenate(x_parts)
        block = state["A"].shape[0]
        offset = ctx.rank * block  # block-row offset of this rank
        a_local, b_local = state["A"], state["b"]
        # Diagonal of this block row, extracted in one vectorized gather.
        rows = np.arange(block)
        d_local = a_local[rows, offset + rows]
        rx = a_local @ x_full - d_local * x_full[offset : offset + block]
        x_new = (b_local - rx) / d_local
        return {"A": a_local, "b": b_local, "x": x_new}

    def collect(ctx, state):
        parts = yield ctx.gather(state["x"], root=0)
        if ctx.rank == 0:
            return np.concatenate(parts)
        return None

    return MalleableSpec(
        iterations=iterations,
        init=init,
        step=step,
        collect=collect,
        schedule=schedule,
    )


def run_jacobi(
    a: np.ndarray,
    b: np.ndarray,
    iterations: int,
    nprocs: int,
    schedule: Optional[Schedule] = None,
) -> np.ndarray:
    """Run malleable distributed Jacobi; returns the solution vector."""
    return run_malleable(nprocs, jacobi_spec(a, b, iterations, schedule))
