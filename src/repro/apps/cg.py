"""Conjugate Gradient (CG): model and parameters (Section VII-B2).

The paper's CG is an OpenMP+MPI solver over a block-row-distributed flat
matrix and four vectors, run for a fixed iteration count.  Its measured
strong-scaling behaviour (Section IX-A): high scalability with the best
speed-up at 32 processes, but less than 10% marginal gain beyond 8 — the
"sweet configuration spot".

The analytic model below drives the workload experiments; the real NumPy
kernel on the MPI substrate lives in :mod:`repro.apps.kernels.cg_kernel`.
"""

from __future__ import annotations

from repro.apps.base import AppModel, MeasuredScalability
from repro.cluster.network import MiB
from repro.core.actions import ResizeRequest

#: Table I row for CG.
CG_ITERATIONS = 10_000
CG_MIN_PROCS = 2
CG_MAX_PROCS = 32
CG_PREFERRED = 8
CG_SCHED_PERIOD = 15.0

#: Strong-scaling curve consistent with Section IX-A: near-linear to 8
#: processes, < 10% marginal gain per doubling afterwards, peak at 32.
CG_SPEEDUP = {1: 1.0, 2: 1.9, 4: 3.5, 8: 6.0, 16: 6.55, 32: 7.0}

#: One CG iteration at the sweet spot takes well under 2 seconds
#: (Section IX-A "short iterations"); 10000 x 60 ms ~= 600 s at 8 procs,
#: matching the average job execution times of Table II.
CG_SERIAL_STEP_TIME = 0.36

#: Flat matrix + 4 vectors redistributed on resize (~512 MiB).
CG_STATE_BYTES = 512 * MiB


def conjugate_gradient(
    iterations: int = CG_ITERATIONS,
    serial_step_time: float = CG_SERIAL_STEP_TIME,
    state_bytes: float = CG_STATE_BYTES,
    sched_period: float = CG_SCHED_PERIOD,
) -> AppModel:
    """The CG application model with the paper's Table I configuration."""
    return AppModel(
        name="cg",
        iterations=iterations,
        serial_step_time=serial_step_time,
        state_bytes=state_bytes,
        scalability=MeasuredScalability(CG_SPEEDUP),
        resize=ResizeRequest(
            min_procs=CG_MIN_PROCS,
            max_procs=CG_MAX_PROCS,
            factor=2,
            preferred=CG_PREFERRED,
        ),
        sched_period=sched_period,
    )
