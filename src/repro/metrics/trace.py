"""Typed event tracing.

Every interesting scheduler/runtime occurrence is appended to a
:class:`Trace`; all paper metrics (utilization series, waiting times,
throughput curves) are pure functions of the trace, which keeps the
simulation and its measurement decoupled.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple


class EventKind(enum.Enum):
    """Trace event vocabulary."""

    JOB_SUBMIT = "job_submit"
    JOB_START = "job_start"
    JOB_END = "job_end"
    JOB_CANCEL = "job_cancel"
    RESIZE_DECISION = "resize_decision"
    RESIZE_EXPAND = "resize_expand"
    RESIZE_SHRINK = "resize_shrink"
    RESIZE_ABORT = "resize_abort"
    DMR_CHECK = "dmr_check"
    CHECKPOINT_WRITE = "checkpoint_write"
    CHECKPOINT_READ = "checkpoint_read"
    ALLOC_CHANGE = "alloc_change"
    # Fault-injection vocabulary (:mod:`repro.faults`).
    NODE_FAIL = "node_fail"
    NODE_RECOVER = "node_recover"
    NODE_DRAIN = "node_drain"
    NODE_RESUME = "node_resume"
    NODE_SLOWDOWN = "node_slowdown"
    NET_DEGRADE = "net_degrade"
    JOB_REQUEUE = "job_requeue"


@dataclass(frozen=True)
class TraceEvent:
    """One record in the simulation trace."""

    time: float
    kind: EventKind
    job_id: Optional[int] = None
    data: Dict[str, Any] = field(default_factory=dict)

    def __getitem__(self, key: str) -> Any:
        return self.data[key]


class Trace:
    """Append-only event log with small query helpers.

    Besides the post-hoc queries, a trace supports *live* consumption:
    :meth:`subscribe` registers a callback invoked with every event the
    moment it is recorded.  The :class:`repro.api.Session` observer
    machinery is built on this hook.
    """

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []
        self._subscribers: List[Any] = []

    def subscribe(self, callback) -> None:
        """Call ``callback(event)`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously registered live callback."""
        self._subscribers.remove(callback)

    def record(
        self,
        time: float,
        kind: EventKind,
        job_id: Optional[int] = None,
        **data: Any,
    ) -> TraceEvent:
        event = TraceEvent(time=time, kind=kind, job_id=job_id, data=data)
        self.events.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self.events)

    def of_kind(self, *kinds: EventKind) -> List[TraceEvent]:
        """All events of the given kind(s), in time order."""
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def of_job(self, job_id: int) -> List[TraceEvent]:
        return [e for e in self.events if e.job_id == job_id]

    def series(self, kind: EventKind, key: str) -> List[Tuple[float, Any]]:
        """(time, data[key]) pairs for every event of ``kind``."""
        return [(e.time, e.data[key]) for e in self.events if e.kind is kind]

    def last_time(self) -> float:
        """Timestamp of the latest event (0.0 for an empty trace)."""
        return self.events[-1].time if self.events else 0.0


def canonical_line(event: TraceEvent) -> str:
    """Render one trace event as a canonical, diffable text line.

    The format is deliberately lossless and deterministic — floats use
    ``repr`` (shortest round-trip form), data keys are sorted — so two
    traces are byte-identical iff every scheduling decision was identical.
    The golden-trace suite (tests/slurm/test_golden_traces.py) pins the
    scheduler's behaviour on these lines.
    """
    data = " ".join(
        f"{key}={_canonical_value(event.data[key])}"
        for key in sorted(event.data)
    )
    job = "-" if event.job_id is None else str(event.job_id)
    return f"{event.time!r} {event.kind.value} {job} {data}".rstrip()


def _canonical_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_canonical_value(v) for v in value) + "]"
    return str(value)


def canonical_lines(trace: Trace) -> List[str]:
    """All trace events as canonical lines, in recording order."""
    return [canonical_line(e) for e in trace]


def trace_digest(trace: Trace) -> str:
    """SHA-256 over the canonical rendering of a trace."""
    return text_digest("\n".join(canonical_lines(trace)))


def text_digest(text: str) -> str:
    """SHA-256 of a text artifact (golden-file helper)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
