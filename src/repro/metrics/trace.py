"""Typed event tracing.

Every interesting scheduler/runtime occurrence is recorded into a
:class:`Trace`; all paper metrics (utilization series, waiting times,
throughput curves) are pure functions of the trace, which keeps the
simulation and its measurement decoupled.

A trace has two consumption modes:

* **retained** (the default): events accumulate in :attr:`Trace.events`
  for post-hoc queries — what every experiment driver uses;
* **streaming** (``Trace(retain=False)``): events are dispatched to the
  live subscribers and dropped, so memory stays flat no matter how long
  the simulation runs.  Million-job benches and the spill-to-disk writer
  (:mod:`repro.metrics.stream`) run in this mode; post-hoc queries on a
  non-retaining trace raise :class:`~repro.errors.TraceError`.
"""

from __future__ import annotations

import enum
import hashlib
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.errors import TraceError


class EventKind(enum.Enum):
    """Trace event vocabulary."""

    JOB_SUBMIT = "job_submit"
    JOB_START = "job_start"
    JOB_END = "job_end"
    JOB_CANCEL = "job_cancel"
    RESIZE_DECISION = "resize_decision"
    RESIZE_EXPAND = "resize_expand"
    RESIZE_SHRINK = "resize_shrink"
    RESIZE_ABORT = "resize_abort"
    DMR_CHECK = "dmr_check"
    CHECKPOINT_WRITE = "checkpoint_write"
    CHECKPOINT_READ = "checkpoint_read"
    ALLOC_CHANGE = "alloc_change"
    # Fault-injection vocabulary (:mod:`repro.faults`).
    NODE_FAIL = "node_fail"
    NODE_RECOVER = "node_recover"
    NODE_DRAIN = "node_drain"
    NODE_RESUME = "node_resume"
    NODE_SLOWDOWN = "node_slowdown"
    NET_DEGRADE = "net_degrade"
    JOB_REQUEUE = "job_requeue"


class TraceEvent:
    """One record in the simulation trace.

    A fixed-layout ``__slots__`` record rather than a dataclass: traces
    are the simulation's highest-volume allocation (several events per
    job), and the slotted layout halves the per-event footprint and
    construction cost.  Treat instances as immutable — they are shared
    between the trace, its subscribers and any spilled streams.
    """

    __slots__ = ("time", "kind", "job_id", "data")

    def __init__(
        self,
        time: float,
        kind: EventKind,
        job_id: Optional[int] = None,
        data: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.time = time
        self.kind = kind
        self.job_id = job_id
        self.data = {} if data is None else data

    def __getitem__(self, key: str) -> Any:
        return self.data[key]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TraceEvent):
            return NotImplemented
        return (
            self.time == other.time
            and self.kind == other.kind
            and self.job_id == other.job_id
            and self.data == other.data
        )

    def __repr__(self) -> str:
        return (
            f"TraceEvent(time={self.time!r}, kind={self.kind!r}, "
            f"job_id={self.job_id!r}, data={self.data!r})"
        )


class Trace:
    """Event log with small query helpers and live subscription.

    Besides the post-hoc queries, a trace supports *live* consumption:
    :meth:`subscribe` registers a callback invoked with every event the
    moment it is recorded.  The :class:`repro.api.Session` observer
    machinery and the spill-to-disk writer are built on this hook.

    ``retain=False`` turns off in-memory accumulation: :attr:`events`
    stays empty, ``len``/:meth:`last_time` keep working from counters,
    and the post-hoc query helpers raise :class:`~repro.errors.TraceError`
    instead of silently answering from an empty log.
    """

    __slots__ = ("events", "retain", "_subscribers", "_count", "_last_time")

    def __init__(self, retain: bool = True) -> None:
        self.events: List[TraceEvent] = []
        self.retain = retain
        self._subscribers: List[Any] = []
        self._count = 0
        self._last_time = 0.0

    def subscribe(self, callback) -> None:
        """Call ``callback(event)`` for every subsequently recorded event."""
        self._subscribers.append(callback)

    def unsubscribe(self, callback) -> None:
        """Remove a previously registered live callback."""
        self._subscribers.remove(callback)

    def record(
        self,
        time: float,
        kind: EventKind,
        job_id: Optional[int] = None,
        **data: Any,
    ) -> TraceEvent:
        event = TraceEvent(time, kind, job_id, data)
        self._count += 1
        self._last_time = time
        if self.retain:
            self.events.append(event)
        for callback in self._subscribers:
            callback(event)
        return event

    def __len__(self) -> int:
        return self._count

    def __iter__(self) -> Iterator[TraceEvent]:
        self._require_retained("iterate")
        return iter(self.events)

    def _require_retained(self, what: str) -> None:
        if not self.retain and self._count:
            raise TraceError(
                f"cannot {what} a non-retaining trace: events were "
                "dispatched to live subscribers and dropped "
                "(construct the Trace with retain=True for post-hoc queries)"
            )

    def of_kind(self, *kinds: EventKind) -> List[TraceEvent]:
        """All events of the given kind(s), in time order."""
        self._require_retained("query")
        wanted = set(kinds)
        return [e for e in self.events if e.kind in wanted]

    def of_job(self, job_id: int) -> List[TraceEvent]:
        self._require_retained("query")
        return [e for e in self.events if e.job_id == job_id]

    def series(self, kind: EventKind, key: str) -> List[Tuple[float, Any]]:
        """(time, data[key]) pairs for every event of ``kind``."""
        self._require_retained("query")
        return [(e.time, e.data[key]) for e in self.events if e.kind is kind]

    def last_time(self) -> float:
        """Timestamp of the latest event (0.0 for an empty trace)."""
        return self._last_time


def canonical_line(event: TraceEvent) -> str:
    """Render one trace event as a canonical, diffable text line.

    The format is deliberately lossless and deterministic — floats use
    ``repr`` (shortest round-trip form), data keys are sorted — so two
    traces are byte-identical iff every scheduling decision was identical.
    The golden-trace suite (tests/slurm/test_golden_traces.py) pins the
    scheduler's behaviour on these lines.
    """
    data = " ".join(
        f"{key}={_canonical_value(event.data[key])}"
        for key in sorted(event.data)
    )
    job = "-" if event.job_id is None else str(event.job_id)
    return f"{event.time!r} {event.kind.value} {job} {data}".rstrip()


def _canonical_value(value: Any) -> str:
    if isinstance(value, float):
        return repr(value)
    if isinstance(value, (tuple, list)):
        return "[" + ",".join(_canonical_value(v) for v in value) + "]"
    return str(value)


def canonical_lines(trace: Trace) -> List[str]:
    """All trace events as canonical lines, in recording order."""
    return [canonical_line(e) for e in trace]


def trace_digest(trace: Trace) -> str:
    """SHA-256 over the canonical rendering of a trace."""
    return text_digest("\n".join(canonical_lines(trace)))


def text_digest(text: str) -> str:
    """SHA-256 of a text artifact (golden-file helper)."""
    return hashlib.sha256(text.encode("utf-8")).hexdigest()
