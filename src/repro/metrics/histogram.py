"""Compatibility shim: :class:`LatencyHistogram` moved to ``repro.obs``.

.. deprecated::
    Import from :mod:`repro.obs.registry` instead; this module is a
    *pure* re-export (no logic lives here, so the two paths can never
    drift) and will be removed once the last in-tree caller migrates.

The histogram grew into the metrics-registry's histogram type, so the
implementation now lives in :mod:`repro.obs.registry` (the telemetry
layer must not depend on :mod:`repro.metrics`).  Everything importable
from here keeps working — serve, loadgen and sweep aggregation all
predate the move.
"""

from __future__ import annotations

from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_FIRST_BOUND,
    DEFAULT_GROWTH,
    LatencyHistogram,
    observe_all,
)

__all__ = [
    "DEFAULT_BUCKETS",
    "DEFAULT_FIRST_BOUND",
    "DEFAULT_GROWTH",
    "LatencyHistogram",
    "observe_all",
]
