"""Fixed-bucket latency histograms (server metrics + loadgen).

A :class:`LatencyHistogram` is a Prometheus-style histogram with
geometric bucket bounds: observations are O(1) to record, the memory
footprint is a few dozen integers no matter how many requests are
observed, and quantiles (p50/p99) are estimated by linear interpolation
inside the bucket that crosses the requested rank.  That estimation
error is bounded by the bucket ratio (×2 here), which is the right
trade for service telemetry — the alternative, retaining every sample,
is exactly what a server absorbing heavy traffic cannot afford.

Both sides of the ``repro serve`` / ``repro loadgen`` pair use this
class: the server aggregates per-route request latencies for its
``/metrics`` endpoint, and the load generator aggregates client-side
latencies for ``BENCH_serve.json``; :meth:`merge` fans worker tallies
together.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

#: Default bucket geometry: 0.1 ms doubling up to ~104 s (21 finite
#: buckets + overflow), which spans everything from an in-memory status
#: lookup to a full workload simulation behind one request.
DEFAULT_FIRST_BOUND = 0.0001
DEFAULT_BUCKETS = 21
DEFAULT_GROWTH = 2.0


class LatencyHistogram:
    """Streaming histogram over non-negative durations in seconds."""

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        first_bound: float = DEFAULT_FIRST_BOUND,
        buckets: int = DEFAULT_BUCKETS,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if first_bound <= 0 or buckets < 1 or growth <= 1:
            raise ValueError(
                "histogram needs first_bound > 0, buckets >= 1, growth > 1"
            )
        bounds: List[float] = []
        bound = first_bound
        for _ in range(buckets):
            bounds.append(bound)
            bound *= growth
        #: Upper bounds of the finite buckets; the implicit last bucket
        #: is (bounds[-1], +inf).
        self.bounds = tuple(bounds)
        self.counts = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        value = 0.0 if seconds < 0 else float(seconds)
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)  # overflow bucket
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile in seconds (0 for an empty histogram).

        Interpolates linearly inside the crossing bucket; the overflow
        bucket reports the observed maximum (no upper bound to
        interpolate toward).
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                if index >= len(self.bounds):
                    return self.max if self.max is not None else 0.0
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (rank - seen) / count
                return lo + (hi - lo) * fraction
            seen += count
        return self.max if self.max is not None else 0.0

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> None:
        """Fan another histogram's tallies into this one (same geometry)."""
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.count += other.count
        self.total += other.total
        if other.min is not None:
            self.min = other.min if self.min is None else min(self.min, other.min)
        if other.max is not None:
            self.max = other.max if self.max is None else max(self.max, other.max)

    def as_dict(self) -> Dict[str, object]:
        """JSON form: summary quantiles in ms + the raw bucket counts."""
        return {
            "count": self.count,
            "sum_s": self.total,
            "mean_ms": 1000.0 * self.mean,
            "min_ms": 0.0 if self.min is None else 1000.0 * self.min,
            "max_ms": 0.0 if self.max is None else 1000.0 * self.max,
            "p50_ms": 1000.0 * self.quantile(0.50),
            "p99_ms": 1000.0 * self.quantile(0.99),
            "bucket_bounds_ms": [1000.0 * b for b in self.bounds],
            "bucket_counts": list(self.counts),
        }


def observe_all(histogram: LatencyHistogram, values: Sequence[float]) -> None:
    """Record a batch of durations (loadgen convenience)."""
    for value in values:
        histogram.observe(value)
