"""Aggregate workload measures (Table II of the paper).

Table II reports, per workload and per rendition (fixed/flexible):

* **Avg. resource utilization rate** — the average fraction of time nodes
  are allocated to jobs, relative to the workload execution time;
* **Avg. job waiting time** — submission to start;
* **Avg. job execution time** — start to end;
* **Avg. job completion time** — waiting plus execution.

Plus the headline **workload execution time** (makespan) of Fig. 10 and
the **gain** lines of Figs. 3, 7, 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.metrics.timeline import allocated_nodes_series
from repro.metrics.trace import Trace
from repro.slurm.job import Job


@dataclass(frozen=True)
class WorkloadSummary:
    """The Table II row (one workload, one rendition)."""

    num_jobs: int
    makespan: float
    utilization_rate: float
    avg_wait_time: float
    avg_execution_time: float
    avg_completion_time: float
    total_node_seconds: float
    resize_count: int

    def as_dict(self) -> dict:
        return {
            "num_jobs": self.num_jobs,
            "makespan": self.makespan,
            "utilization_rate": self.utilization_rate,
            "avg_wait_time": self.avg_wait_time,
            "avg_execution_time": self.avg_execution_time,
            "avg_completion_time": self.avg_completion_time,
            "total_node_seconds": self.total_node_seconds,
            "resize_count": self.resize_count,
        }


def summarize(jobs: Sequence[Job], trace: Trace, num_nodes: int) -> WorkloadSummary:
    """Compute the Table II measures for one finished workload.

    ``jobs`` are the workload's (non-resizer) jobs, all terminal.
    """
    real_jobs: List[Job] = [j for j in jobs if not j.is_resizer]
    if not real_jobs:
        raise ValueError("no jobs to summarize")
    incomplete = [j for j in real_jobs if j.end_time is None]
    if incomplete:
        raise ValueError(f"jobs not finished: {[j.job_id for j in incomplete]}")

    t0 = min(j.submit_time for j in real_jobs)
    t1 = max(j.end_time for j in real_jobs)
    makespan = t1 - t0

    alloc = allocated_nodes_series(trace)
    node_seconds = alloc.integral(t0, t1)
    utilization = node_seconds / (num_nodes * makespan) if makespan > 0 else 0.0

    waits = np.array([j.wait_time for j in real_jobs])
    execs = np.array([j.execution_time for j in real_jobs])
    resizes = sum(len(j.resizes) for j in real_jobs)

    return WorkloadSummary(
        num_jobs=len(real_jobs),
        makespan=makespan,
        utilization_rate=utilization,
        avg_wait_time=float(waits.mean()),
        avg_execution_time=float(execs.mean()),
        avg_completion_time=float((waits + execs).mean()),
        total_node_seconds=node_seconds,
        resize_count=resizes,
    )


def gain_percent(fixed: float, flexible: float) -> float:
    """The paper's gain metric: how much the flexible rendition saves.

    Positive = flexible is better (smaller), as in Figs. 3/7/10/11.
    """
    if fixed == 0:
        raise ValueError("fixed reference value is zero")
    return 100.0 * (fixed - flexible) / fixed
