"""Aggregate workload measures (Table II of the paper).

Table II reports, per workload and per rendition (fixed/flexible):

* **Avg. resource utilization rate** — the average fraction of time nodes
  are allocated to jobs, relative to the workload execution time;
* **Avg. job waiting time** — submission to start;
* **Avg. job execution time** — start to end;
* **Avg. job completion time** — waiting plus execution.

Plus the headline **workload execution time** (makespan) of Fig. 10 and
the **gain** lines of Figs. 3, 7, 10 and 11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

import numpy as np

from repro.metrics.timeline import allocated_nodes_series
from repro.metrics.trace import Trace
from repro.slurm.job import Job


@dataclass(frozen=True)
class WorkloadSummary:
    """The Table II row (one workload, one rendition)."""

    num_jobs: int
    makespan: float
    utilization_rate: float
    avg_wait_time: float
    avg_execution_time: float
    avg_completion_time: float
    total_node_seconds: float
    resize_count: int

    def as_dict(self) -> dict:
        return {
            "num_jobs": self.num_jobs,
            "makespan": self.makespan,
            "utilization_rate": self.utilization_rate,
            "avg_wait_time": self.avg_wait_time,
            "avg_execution_time": self.avg_execution_time,
            "avg_completion_time": self.avg_completion_time,
            "total_node_seconds": self.total_node_seconds,
            "resize_count": self.resize_count,
        }


def summarize(jobs: Sequence[Job], trace: Trace, num_nodes: int) -> WorkloadSummary:
    """Compute the Table II measures for one finished workload.

    ``jobs`` are the workload's (non-resizer) jobs, all terminal.
    """
    real_jobs: List[Job] = [j for j in jobs if not j.is_resizer]
    if not real_jobs:
        raise ValueError("no jobs to summarize")
    incomplete = [j for j in real_jobs if j.end_time is None]
    if incomplete:
        raise ValueError(f"jobs not finished: {[j.job_id for j in incomplete]}")

    t0 = min(j.submit_time for j in real_jobs)
    t1 = max(j.end_time for j in real_jobs)
    makespan = t1 - t0

    alloc = allocated_nodes_series(trace)
    node_seconds = alloc.integral(t0, t1)
    utilization = node_seconds / (num_nodes * makespan) if makespan > 0 else 0.0

    waits = np.array([j.wait_time for j in real_jobs])
    execs = np.array([j.execution_time for j in real_jobs])
    resizes = sum(len(j.resizes) for j in real_jobs)

    return WorkloadSummary(
        num_jobs=len(real_jobs),
        makespan=makespan,
        utilization_rate=utilization,
        avg_wait_time=float(waits.mean()),
        avg_execution_time=float(execs.mean()),
        avg_completion_time=float((waits + execs).mean()),
        total_node_seconds=node_seconds,
        resize_count=resizes,
    )


#: Two-sided 95% Student-t critical values for df = 1..30; beyond that
#: the normal approximation (1.96) is within half a percent.
_T95 = (
    12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
    2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
    2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
)


def t_critical_95(df: int) -> float:
    """Two-sided 95% t critical value (normal approximation past df=30)."""
    if df < 1:
        raise ValueError(f"degrees of freedom must be >= 1, got {df}")
    return _T95[df - 1] if df <= len(_T95) else 1.96


@dataclass(frozen=True)
class MetricStats:
    """Seed-ensemble statistics of one metric (the sweep currency).

    ``ci95_half`` is the half-width of the Student-t 95% confidence
    interval on the mean; a single observation has zero spread by
    convention (stdev and CI are both 0), so deterministic metrics —
    e.g. the analytic Fig. 1 costs — aggregate to a zero-width band
    rather than NaN.
    """

    n: int
    mean: float
    median: float
    stdev: float
    ci95_half: float

    @property
    def ci_low(self) -> float:
        return self.mean - self.ci95_half

    @property
    def ci_high(self) -> float:
        return self.mean + self.ci95_half

    def format_mean_ci(self) -> str:
        """The headline rendering: ``mean ± half-width``."""
        return f"{self.mean:.6g} ± {self.ci95_half:.3g}"

    def as_dict(self) -> dict:
        return {
            "n": self.n,
            "mean": self.mean,
            "median": self.median,
            "stdev": self.stdev,
            "ci95_half": self.ci95_half,
            "ci_low": self.ci_low,
            "ci_high": self.ci_high,
        }


def metric_stats(values: Sequence[float]) -> MetricStats:
    """Mean/median/sample-stdev/95% CI of a seed ensemble."""
    if not values:
        raise ValueError("no values to aggregate")
    arr = np.asarray(values, dtype=float)
    n = len(arr)
    mean = float(arr.mean())
    median = float(np.median(arr))
    if n == 1 or float(arr.min()) == float(arr.max()):
        # A lone observation — or a degenerate (deterministic) ensemble,
        # where accumulated float error must not masquerade as spread.
        stdev = 0.0
        ci = 0.0
    else:
        stdev = float(arr.std(ddof=1))
        ci = t_critical_95(n - 1) * stdev / float(np.sqrt(n))
    return MetricStats(n=n, mean=mean, median=median, stdev=stdev, ci95_half=ci)


def gain_percent(fixed: float, flexible: float) -> float:
    """The paper's gain metric: how much the flexible rendition saves.

    Positive = flexible is better (smaller), as in Figs. 3/7/10/11.
    """
    if fixed == 0:
        raise ValueError("fixed reference value is zero")
    return 100.0 * (fixed - flexible) / fixed
