"""Plain-text rendering of experiment results (tables and ASCII series).

The benchmark harness prints the same rows/series the paper reports;
these helpers format them readably and emit CSV for post-processing.
"""

from __future__ import annotations

import io
from typing import List, Sequence, Tuple

from repro.metrics.timeline import StepSeries


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: str = "",
) -> str:
    """Render a fixed-width text table."""
    cells = [[str(h) for h in headers]] + [[_fmt(c) for c in row] for row in rows]
    widths = [max(len(r[i]) for r in cells) for i in range(len(headers))]
    out = io.StringIO()
    if title:
        out.write(title + "\n")
    sep = "-+-".join("-" * w for w in widths)
    out.write(" | ".join(h.ljust(w) for h, w in zip(cells[0], widths)) + "\n")
    out.write(sep + "\n")
    for row in cells[1:]:
        out.write(" | ".join(c.ljust(w) for c, w in zip(row, widths)) + "\n")
    return out.getvalue()


def _fmt(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.2f}"
        return f"{value:.4f}"
    return str(value)


def format_csv(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Comma-separated rendering (no quoting; keep cells simple)."""
    lines = [",".join(str(h) for h in headers)]
    for row in rows:
        lines.append(",".join(_fmt(c).replace(",", "") for c in row))
    return "\n".join(lines) + "\n"


def sparkline(series: StepSeries, t0: float, t1: float, width: int = 60) -> str:
    """One-line ASCII rendering of a step series (for evolution figures)."""
    if width < 1:
        raise ValueError(f"width must be >= 1, got {width}")
    blocks = " ▁▂▃▄▅▆▇█"
    samples = [
        series.at(t0 + (t1 - t0) * i / max(1, width - 1)) for i in range(width)
    ]
    top = max(samples) or 1.0
    return "".join(blocks[int(round(s / top * (len(blocks) - 1)))] for s in samples)


def format_evolution(
    label: str,
    series_pairs: List[Tuple[str, StepSeries]],
    t0: float,
    t1: float,
    width: int = 60,
) -> str:
    """Multi-series ASCII evolution chart (Figs. 4-6, 12 analogue)."""
    out = io.StringIO()
    out.write(f"{label}  [{t0:.0f} s .. {t1:.0f} s]\n")
    for name, series in series_pairs:
        peak = max(series.values) if series.values else 0
        out.write(f"  {name:>16} |{sparkline(series, t0, t1, width)}| peak={peak:.0f}\n")
    return out.getvalue()
