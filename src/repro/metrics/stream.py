"""Spill-to-disk trace streaming.

:class:`StreamingTraceWriter` consumes trace events the moment they are
recorded and appends their canonical rendering
(:func:`repro.metrics.trace.canonical_line`) to a file on disk, keeping
a running SHA-256 of the stream.  Combined with ``Trace(retain=False)``
this makes trace memory flat: a million-job replay spills gigabytes of
events to disk while the process holds none of them.

The digest is computed over exactly the text
:func:`repro.metrics.trace.trace_digest` hashes for an in-memory trace
(lines joined by ``"\\n"``), so a spilled stream and a retained trace of
the same run are interchangeable for golden-trace verification — the
suite in tests/slurm/test_golden_traces.py relies on this equivalence.

Crash safety: :meth:`StreamingTraceWriter.close` appends an end-of-stream
footer carrying the event count and digest.  :func:`read_trace_lines`
refuses a file whose footer is missing (crash mid-spill), or whose body
disagrees with it — a truncated spill can never be mistaken for a
complete trace.
"""

from __future__ import annotations

import hashlib
import os
from typing import IO, List, Optional, Tuple

from repro.errors import TraceStreamError
from repro.metrics.trace import Trace, TraceEvent, canonical_line

#: Footer marker; ``#`` can never start a canonical event line (those
#: begin with a float repr) so the footer is unambiguous.
FOOTER_PREFIX = "# repro-trace-end "
#: Comment prefix for section markers interleaved into a stream.
COMMENT_PREFIX = "# "


class StreamingTraceWriter:
    """Streams canonical trace lines to disk with a running digest.

    Use as a trace subscriber (``trace.subscribe(writer)``), a
    :class:`~repro.api.observers.SessionObserver`'s ``on_event`` target,
    or call it directly with :class:`TraceEvent` instances.  Always
    :meth:`close` (or use as a context manager) — the footer written
    there is what marks the spill as complete.
    """

    def __init__(self, path: str) -> None:
        self.path = os.fspath(path)
        self._fh: Optional[IO[str]] = open(self.path, "w", encoding="utf-8")
        self._sha = hashlib.sha256()
        self._count = 0

    # -- sink interfaces ---------------------------------------------------
    def __call__(self, event: TraceEvent) -> None:
        self.write_line(canonical_line(event))

    def on_event(self, event: TraceEvent) -> None:
        """SessionObserver-compatible hook."""
        self(event)

    def attach(self, trace: Trace) -> "StreamingTraceWriter":
        """Subscribe to ``trace``; returns self for chaining."""
        trace.subscribe(self)
        return self

    def write_comment(self, text: str) -> None:
        """Interleave a section marker (digested like a regular line)."""
        self.write_line(COMMENT_PREFIX + text)

    def write_line(self, line: str) -> None:
        if self._fh is None:
            raise TraceStreamError(f"{self.path}: writer already closed")
        if self._count:
            self._sha.update(b"\n")
        self._sha.update(line.encode("utf-8"))
        self._fh.write(line + "\n")
        self._count += 1

    # -- state -------------------------------------------------------------
    @property
    def events(self) -> int:
        """Lines spilled so far (events plus comments)."""
        return self._count

    @property
    def digest(self) -> str:
        """SHA-256 of the stream so far (matches :func:`trace_digest`)."""
        return self._sha.hexdigest()

    def close(self) -> None:
        """Write the end-of-stream footer and close the file."""
        if self._fh is None:
            return
        self._fh.write(f"{FOOTER_PREFIX}events={self._count} sha256={self.digest}\n")
        self._fh.close()
        self._fh = None

    def __enter__(self) -> "StreamingTraceWriter":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


def read_trace_lines(path: str) -> List[str]:
    """Read a spilled trace back; raises on a truncated or corrupt file.

    Returns the canonical lines (comments included, footer stripped).
    """
    lines, footer = _read_validated(path)
    return lines


def stream_digest(path: str) -> str:
    """Digest of a spilled trace (validating the footer first)."""
    _lines, footer = _read_validated(path)
    return footer[1]


def _read_validated(path: str) -> Tuple[List[str], Tuple[int, str]]:
    with open(path, encoding="utf-8") as fh:
        raw = fh.read()
    if not raw.endswith("\n"):
        raise TraceStreamError(
            f"{path}: no trailing newline — writer died mid-line"
        )
    lines = raw[:-1].split("\n") if raw != "\n" else [""]
    if not lines or not lines[-1].startswith(FOOTER_PREFIX):
        raise TraceStreamError(
            f"{path}: missing end-of-stream footer — the writer was never "
            "closed (crash mid-spill?); refusing the partial trace"
        )
    footer_line = lines.pop()
    try:
        fields = dict(
            part.split("=", 1)
            for part in footer_line[len(FOOTER_PREFIX):].split()
        )
        expected_count = int(fields["events"])
        expected_digest = fields["sha256"]
    except (KeyError, ValueError) as exc:
        raise TraceStreamError(f"{path}: malformed footer {footer_line!r}") from exc
    if len(lines) != expected_count:
        raise TraceStreamError(
            f"{path}: footer promises {expected_count} lines, found "
            f"{len(lines)} — truncated spill"
        )
    sha = hashlib.sha256("\n".join(lines).encode("utf-8"))
    if sha.hexdigest() != expected_digest:
        raise TraceStreamError(f"{path}: stream digest mismatch — corrupt spill")
    return lines, (expected_count, expected_digest)
