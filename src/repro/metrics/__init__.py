"""Measurement layer: traces, timelines and paper-metric summaries."""

from repro.metrics.histogram import LatencyHistogram
from repro.metrics.report import (
    format_csv,
    format_evolution,
    format_table,
    sparkline,
)
from repro.metrics.stream import (
    StreamingTraceWriter,
    read_trace_lines,
    stream_digest,
)
from repro.metrics.summary import WorkloadSummary, gain_percent, summarize
from repro.metrics.timeline import (
    StepSeries,
    allocated_nodes_series,
    completed_jobs_series,
    running_jobs_series,
    step_series,
)
from repro.metrics.trace import (
    EventKind,
    Trace,
    TraceEvent,
    canonical_line,
    canonical_lines,
    text_digest,
    trace_digest,
)

__all__ = [
    "EventKind",
    "LatencyHistogram",
    "StepSeries",
    "StreamingTraceWriter",
    "Trace",
    "TraceEvent",
    "WorkloadSummary",
    "allocated_nodes_series",
    "canonical_line",
    "canonical_lines",
    "completed_jobs_series",
    "format_csv",
    "format_evolution",
    "format_table",
    "gain_percent",
    "read_trace_lines",
    "running_jobs_series",
    "stream_digest",
    "sparkline",
    "step_series",
    "summarize",
    "text_digest",
    "trace_digest",
]
