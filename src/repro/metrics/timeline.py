"""Time-series views of a trace (the paper's "evolution in time" figures).

Figures 4, 5, 6 and 12 plot, against time: allocated nodes, number of
running jobs, and completed-job counts.  All three series are derived here
as step functions from the trace.
"""

from __future__ import annotations

from bisect import bisect_right
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.metrics.trace import EventKind, Trace


@dataclass(frozen=True)
class StepSeries:
    """A right-continuous step function sampled from events."""

    times: Tuple[float, ...]
    values: Tuple[float, ...]

    def __post_init__(self) -> None:
        if len(self.times) != len(self.values):
            raise ValueError("times and values must have equal length")
        if any(b < a for a, b in zip(self.times, self.times[1:])):
            raise ValueError("times must be non-decreasing")

    def at(self, t: float) -> float:
        """Value of the series at time ``t`` (0 before the first event)."""
        idx = bisect_right(self.times, t) - 1
        return self.values[idx] if idx >= 0 else 0.0

    def integral(self, t0: float, t1: float) -> float:
        """Integral of the step function over [t0, t1]."""
        if t1 < t0:
            raise ValueError(f"empty interval [{t0}, {t1}]")
        total, prev_t, prev_v = 0.0, t0, self.at(t0)
        for t, v in zip(self.times, self.values):
            if t <= t0:
                continue
            if t >= t1:
                break
            total += prev_v * (t - prev_t)
            prev_t, prev_v = t, v
        total += prev_v * (t1 - prev_t)
        return total

    def average(self, t0: float, t1: float) -> float:
        """Time-average over [t0, t1] (0 on an empty interval)."""
        if t1 <= t0:
            return 0.0
        return self.integral(t0, t1) / (t1 - t0)

    def sample(self, times: Sequence[float]) -> List[float]:
        return [self.at(t) for t in times]


def step_series(points: Sequence[Tuple[float, float]]) -> StepSeries:
    """Build a :class:`StepSeries` from (time, value) points.

    Points must arrive in non-decreasing time order; multiple values at
    the same timestamp collapse to the last one (the step function is
    right-continuous).  This is the builder live observers use to turn
    event streams into series without re-scraping the trace.
    """
    return _dedupe(list(points))


def _dedupe(points: List[Tuple[float, float]]) -> StepSeries:
    """Keep only the last value per timestamp."""
    times: List[float] = []
    values: List[float] = []
    for t, v in points:
        if times and times[-1] == t:
            values[-1] = v
        else:
            times.append(t)
            values.append(v)
    return StepSeries(tuple(times), tuple(values))


def allocated_nodes_series(trace: Trace) -> StepSeries:
    """Allocated node count over time (top plots of Figs. 4-6, 12)."""
    points = [(0.0, 0.0)] + [
        (e.time, float(e["nodes_used"]))
        for e in trace.of_kind(EventKind.ALLOC_CHANGE)
    ]
    return _dedupe(points)


def running_jobs_series(trace: Trace, include_resizers: bool = False) -> StepSeries:
    """Number of running jobs over time."""
    resizer_ids = {
        e.job_id
        for e in trace.of_kind(EventKind.JOB_SUBMIT)
        if e.data.get("resizer")
    }
    count = 0
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    running: set = set()
    for e in trace.events:
        if e.job_id in resizer_ids and not include_resizers:
            continue
        if e.kind is EventKind.JOB_START:
            running.add(e.job_id)
            points.append((e.time, float(len(running))))
        elif e.kind in (
            EventKind.JOB_END,
            EventKind.JOB_CANCEL,
            # A requeued job is pending again until its restart's
            # JOB_START (keeps this series identical to the live
            # TimelineObserver on fault traces).
            EventKind.JOB_REQUEUE,
        ):
            if e.job_id in running:
                running.discard(e.job_id)
                points.append((e.time, float(len(running))))
    return _dedupe(points)


def completed_jobs_series(trace: Trace) -> StepSeries:
    """Cumulative completed-job count (the throughput curves)."""
    count = 0
    points: List[Tuple[float, float]] = [(0.0, 0.0)]
    for e in trace.of_kind(EventKind.JOB_END):
        count += 1
        points.append((e.time, float(count)))
    return _dedupe(points)
