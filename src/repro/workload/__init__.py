"""Workload generation: the Feitelson '96 model and the paper's mixes."""

from repro.workload.feitelson import FeitelsonConfig, FeitelsonModel
from repro.workload.generator import (
    FSWorkloadConfig,
    REALAPP_FACTORIES,
    SchedTraceJob,
    fs_workload,
    realapp_workload,
    sched_trace,
    sched_trace_via_swf,
)
from repro.workload.spec import JobSpec, WorkloadSpec
from repro.workload.swf import (
    export_results,
    export_sched_trace,
    export_spec,
    parse_swf,
)

__all__ = [
    "export_results",
    "export_sched_trace",
    "export_spec",
    "parse_swf",
    "FSWorkloadConfig",
    "FeitelsonConfig",
    "FeitelsonModel",
    "JobSpec",
    "REALAPP_FACTORIES",
    "SchedTraceJob",
    "WorkloadSpec",
    "fs_workload",
    "realapp_workload",
    "sched_trace",
    "sched_trace_via_swf",
]
