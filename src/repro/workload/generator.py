"""Workload assembly for the paper's experiments.

Two families:

* **FS workloads** (Section VIII): synthetic Flexible Sleep jobs whose
  sizes/runtimes/arrivals come from the Feitelson model; used for the
  synchronous/asynchronous/heterogeneous/micro-step studies.
* **Real-application workloads** (Section IX): a randomly-sorted mix of
  CG, Jacobi and N-body jobs (33% each, fixed seed), each submitted with
  its Table I "maximum" node count, arrivals from the Feitelson model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

from repro.apps.base import AppModel
from repro.apps.cg import conjugate_gradient
from repro.apps.jacobi import jacobi
from repro.apps.nbody import nbody
from repro.apps.sleep import flexible_sleep
from repro.cluster.network import GiB
from repro.errors import WorkloadError
from repro.sim.rng import RandomStreams
from repro.workload.feitelson import FeitelsonConfig, FeitelsonModel
from repro.workload.spec import JobSpec, WorkloadSpec


@dataclass(frozen=True)
class FSWorkloadConfig:
    """Parameters of the preliminary-study FS workloads (Section VIII-A).

    Steps default to Table I's 25 iterations; per-step times are drawn
    from the Feitelson hyperexponential (correlated with job size) and
    capped at 60 s ("the maximum runtime was set to 60 seconds for each
    step"), which puts jobs in the several-hundred-second range of the
    paper's evolution charts (Figs. 4-6).
    """

    #: Steps per job (Table I: 25 iterations for FS).
    steps: int = 25
    #: Cap on the per-step time ("maximum runtime ... 60 seconds per step").
    step_cap: float = 60.0
    #: Mean of the short branch of the per-step-time distribution.
    step_short_mean: float = 25.0
    #: Mean of the long branch of the per-step-time distribution.
    step_long_mean: float = 80.0
    #: Bytes transferred at each reconfiguration ("1 GB of data").
    state_bytes: float = 1.0 * GiB
    #: Job sizes are drawn up to this many nodes.
    max_size: int = 20
    #: Average Poisson inter-arrival gap, seconds.
    arrival_mean: float = 10.0
    #: Checking-inhibitor period for the flexible jobs (Fig. 9 sweeps it).
    sched_period: float = 0.0
    #: Fraction of jobs that are flexible (Fig. 8 sweeps it).
    flexible_ratio: float = 1.0

    def __post_init__(self) -> None:
        if self.steps < 1:
            raise WorkloadError(f"steps must be >= 1, got {self.steps}")
        if self.step_cap <= 0:
            raise WorkloadError(f"step_cap must be positive, got {self.step_cap}")
        if not 0.0 <= self.flexible_ratio <= 1.0:
            raise WorkloadError(
                f"flexible_ratio must be in [0, 1], got {self.flexible_ratio}"
            )


def fs_workload(
    num_jobs: int,
    seed: int = 0,
    config: Optional[FSWorkloadConfig] = None,
) -> WorkloadSpec:
    """Generate one FS workload (the flexible rendition).

    The fixed rendition is obtained with
    :meth:`WorkloadSpec.with_flexible_ratio_zero` so both renditions share
    identical job sizes, runtimes and arrival times, as in the paper.
    """
    if num_jobs < 1:
        raise WorkloadError(f"num_jobs must be >= 1, got {num_jobs}")
    cfg = config or FSWorkloadConfig()
    rng = RandomStreams(seed)
    model = FeitelsonModel(
        FeitelsonConfig(
            max_size=cfg.max_size,
            arrival_mean=cfg.arrival_mean,
            runtime_short_mean=cfg.step_short_mean,
            runtime_long_mean=cfg.step_long_mean,
            runtime_cap=cfg.step_cap,
        ),
        rng,
    )

    specs: List[JobSpec] = []
    arrivals = model.arrival_times(num_jobs)
    for i in range(num_jobs):
        size = model.sample_size()
        step_time = model.sample_runtime(size)  # per-step time, capped
        flexible = rng.bernoulli("workload.flexible", cfg.flexible_ratio)
        # Close over loop variables via default arguments.
        factory: Callable[[], AppModel] = (
            lambda st=step_time, sz=size: flexible_sleep(
                step_time=st,
                at_procs=sz,
                steps=cfg.steps,
                state_bytes=cfg.state_bytes,
                max_procs=cfg.max_size,
                sched_period=cfg.sched_period,
            )
        )
        specs.append(
            JobSpec(
                name=f"fs-{i:04d}",
                submit_nodes=size,
                arrival_time=arrivals[i],
                app_factory=factory,
                flexible=flexible,
            )
        )
    return WorkloadSpec(name=f"fs-{num_jobs}jobs-seed{seed}", jobs=specs, seed=seed)


@dataclass(frozen=True, slots=True)
class SchedTraceJob:
    """One job of a scheduler-scale trace (no application payload).

    The ``repro bench sched`` harness replays tens of thousands of these
    through a bare :class:`~repro.slurm.controller.SlurmController`; the
    full :class:`~repro.workload.spec.JobSpec` (app factory, runtime
    model, DMR machinery) would dominate the measurement and cap the
    feasible trace size.
    """

    name: str
    nodes: int
    arrival: float
    runtime: float
    limit: float


def sched_trace(
    num_jobs: int,
    seed: int = 0,
    max_size: int = 20,
    arrival_mean: float = 10.0,
    runtime_short_mean: float = 120.0,
    runtime_long_mean: float = 600.0,
    runtime_cap: float = 3600.0,
) -> List[SchedTraceJob]:
    """Generate a synthetic Feitelson trace for scheduler benchmarks.

    Sizes, runtimes (hyperexponential, size-correlated) and Poisson
    arrivals come from the same model as the FS workloads, but runtimes
    are job totals (minutes-scale, like real cluster logs) rather than
    per-step times.
    """
    if num_jobs < 1:
        raise WorkloadError(f"num_jobs must be >= 1, got {num_jobs}")
    rng = RandomStreams(seed)
    model = FeitelsonModel(
        FeitelsonConfig(
            max_size=max_size,
            arrival_mean=arrival_mean,
            runtime_short_mean=runtime_short_mean,
            runtime_long_mean=runtime_long_mean,
            runtime_cap=runtime_cap,
        ),
        rng,
    )
    arrivals = model.arrival_times(num_jobs)
    jobs: List[SchedTraceJob] = []
    for i in range(num_jobs):
        size = model.sample_size()
        runtime = model.sample_runtime(size)
        jobs.append(
            SchedTraceJob(
                name=f"sched-{i:05d}",
                nodes=size,
                arrival=arrivals[i],
                runtime=runtime,
                limit=1.2 * runtime,
            )
        )
    return jobs


def sched_trace_via_swf(trace: Sequence[SchedTraceJob]) -> List[SchedTraceJob]:
    """Round-trip a scheduler trace through the SWF format.

    Serializes the trace as a Standard Workload Format log and parses it
    back, exercising the real-log import path at bench scale.  SWF stores
    times at centisecond precision, so the returned jobs are the
    rounded-as-logged rendition of the input.
    """
    from repro.workload.swf import export_sched_trace, parse_swf

    spec = parse_swf(export_sched_trace(trace))
    return [
        SchedTraceJob(
            name=js.name,
            nodes=js.submit_nodes,
            arrival=js.arrival_time,
            runtime=js.time_limit / 1.2,
            limit=js.time_limit,
        )
        for js in spec.jobs
    ]


#: The paper's Section IX job mix: one third of each real application.
REALAPP_FACTORIES: Sequence[Callable[[], AppModel]] = (
    conjugate_gradient,
    jacobi,
    nbody,
)


def realapp_workload(
    num_jobs: int,
    seed: int = 0,
    arrival_mean: float = 30.0,
    factories: Sequence[Callable[[], AppModel]] = REALAPP_FACTORIES,
) -> WorkloadSpec:
    """Generate a Section IX real-application workload.

    Jobs instantiate CG/Jacobi/N-body in equal proportions, randomly
    sorted with a fixed seed, submitted with their Table I *maximum*
    process count ("the user-preferred scenario of a fast execution");
    inter-arrival gaps follow the Feitelson model.
    """
    if num_jobs < 1:
        raise WorkloadError(f"num_jobs must be >= 1, got {num_jobs}")
    if not factories:
        raise WorkloadError("need at least one application factory")
    rng = RandomStreams(seed)
    model = FeitelsonModel(FeitelsonConfig(arrival_mean=arrival_mean), rng)

    # Equal proportions, then randomly sorted with the workload seed.
    assigned = [factories[i % len(factories)] for i in range(num_jobs)]
    order = rng.stream("workload.sort").permutation(num_jobs)
    arrivals = model.arrival_times(num_jobs)

    specs: List[JobSpec] = []
    for i in range(num_jobs):
        factory = assigned[int(order[i])]
        app = factory()  # probe instance: sizes and limits
        assert app.resize is not None
        specs.append(
            JobSpec(
                name=f"{app.name}-{i:04d}",
                submit_nodes=app.resize.max_procs,
                arrival_time=arrivals[i],
                app_factory=factory,
                flexible=True,
            )
        )
    return WorkloadSpec(
        name=f"realapps-{num_jobs}jobs-seed{seed}", jobs=specs, seed=seed
    )
