"""Workload specifications: what gets submitted, when, and how."""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Callable, List, Optional

from repro.apps.base import AppModel
from repro.errors import WorkloadError
from repro.slurm.job import Job, JobClass


@dataclass(frozen=True)
class JobSpec:
    """One job of a workload, independent of fixed/flexible execution."""

    name: str
    #: Node count at submission (rigid submission size).
    submit_nodes: int
    #: Seconds after workload start at which the job is submitted.
    arrival_time: float
    #: Factory producing a fresh AppModel instance per execution.
    app_factory: Callable[[], AppModel]
    #: Whether the *flexible* rendition of the workload may resize this job.
    flexible: bool = True
    #: Flexible submission (future-work extension): the scheduler may
    #: start the job below its submitted size.
    moldable: bool = False
    #: Walltime limit passed to the scheduler (backfill planning input).
    time_limit: Optional[float] = None

    def __post_init__(self) -> None:
        if self.submit_nodes < 1:
            raise WorkloadError(f"submit_nodes must be >= 1, got {self.submit_nodes}")
        if self.arrival_time < 0:
            raise WorkloadError(f"arrival_time must be >= 0, got {self.arrival_time}")

    def build_job(self, flexible_workload: bool) -> Job:
        """Materialize the Slurm job for a fixed or flexible rendition.

        The *same* spec yields the fixed and the flexible version of the
        workload, as in the paper's paired experiments.
        """
        app = self.app_factory()
        is_flex = flexible_workload and self.flexible and app.resize is not None
        nominal = app.total_time(self.submit_nodes)
        limit = self.time_limit if self.time_limit is not None else 1.2 * nominal
        moldable = self.moldable and app.resize is not None
        if is_flex:
            job_class = JobClass.MALLEABLE
        elif moldable:
            job_class = JobClass.MOLDABLE
        else:
            job_class = JobClass.RIGID
        return Job(
            name=self.name,
            num_nodes=self.submit_nodes,
            time_limit=limit,
            job_class=job_class,
            resize_request=app.resize if (is_flex or moldable) else None,
            payload=app,
            moldable_start=moldable,
        )


@dataclass
class WorkloadSpec:
    """An ordered collection of job specs plus identification metadata."""

    name: str
    jobs: List[JobSpec] = field(default_factory=list)
    #: Seed the workload was generated from (for provenance).
    seed: int = 0

    def __post_init__(self) -> None:
        self.jobs = sorted(self.jobs, key=lambda s: s.arrival_time)

    def __len__(self) -> int:
        return len(self.jobs)

    @property
    def flexible_count(self) -> int:
        return sum(1 for s in self.jobs if s.flexible)

    @property
    def flexible_ratio(self) -> float:
        return self.flexible_count / len(self.jobs) if self.jobs else 0.0

    def with_flexible_ratio_zero(self) -> "WorkloadSpec":
        """A copy whose jobs are all marked fixed (the baseline rendition)."""
        return WorkloadSpec(
            name=f"{self.name}-fixed",
            jobs=[replace(s, flexible=False) for s in self.jobs],
            seed=self.seed,
        )
