"""Standard Workload Format (SWF) import/export.

SWF is the interchange format of the Parallel Workloads Archive (the
corpus Feitelson's model was fitted on): one job per line, 18
whitespace-separated fields, ``;`` comments.  Supporting it lets this
reproduction replay real cluster logs through the malleability machinery
and lets other schedulers consume workloads generated here.

Fields used (1-based SWF numbering):

1. job number · 2. submit time · 3. wait time · 4. run time ·
5. allocated processors · 8. requested processors · 9. requested time ·
11. status.  Unused fields are written as ``-1`` per the SWF convention.
"""

from __future__ import annotations

from typing import Callable, List, Optional, Sequence

from repro.apps.base import AppModel, LinearScalability
from repro.errors import WorkloadError
from repro.slurm.job import Job
from repro.workload.spec import JobSpec, WorkloadSpec

#: SWF status codes.
SWF_FAILED = 0
SWF_COMPLETED = 1
SWF_CANCELLED = 5


def export_spec(spec: WorkloadSpec) -> str:
    """Render a workload specification as SWF (pre-execution view).

    Wait/run times are not known before execution and are emitted as
    ``-1``; requested time comes from the job's walltime estimate.
    """
    lines = [
        f"; SWF export of workload {spec.name}",
        f"; UnixStartTime: 0",
        f"; MaxJobs: {len(spec.jobs)}",
    ]
    for i, js in enumerate(spec.jobs, start=1):
        app = js.app_factory()
        requested_time = js.time_limit
        if requested_time is None:
            requested_time = 1.2 * app.total_time(js.submit_nodes)
        lines.append(
            _swf_line(
                job_number=i,
                submit=js.arrival_time,
                wait=-1,
                run=-1,
                alloc_procs=-1,
                req_procs=js.submit_nodes,
                req_time=requested_time,
                status=-1,
            )
        )
    return "\n".join(lines) + "\n"


def export_results(jobs: Sequence[Job]) -> str:
    """Render finished jobs as SWF (post-execution accounting view)."""
    lines = ["; SWF export of executed jobs"]
    real = [j for j in jobs if not j.is_resizer]
    for job in sorted(real, key=lambda j: j.job_id):
        if job.submit_time is None or job.end_time is None:
            raise WorkloadError(f"job {job.job_id} has not finished")
        started = job.start_time is not None
        status = SWF_COMPLETED if job.state.value == "completed" else SWF_CANCELLED
        lines.append(
            _swf_line(
                job_number=job.job_id,
                submit=job.submit_time,
                wait=(job.start_time - job.submit_time) if started else -1,
                run=(job.end_time - job.start_time) if started else -1,
                alloc_procs=job.submitted_nodes,
                req_procs=job.submitted_nodes,
                req_time=job.time_limit,
                status=status,
            )
        )
    return "\n".join(lines) + "\n"


def export_sched_trace(trace) -> str:
    """Render a scheduler-scale trace (``SchedTraceJob`` records) as SWF.

    Each record becomes a completed-job line whose run time and requested
    time are known, so :func:`parse_swf` can reconstruct an equivalent
    workload — the ``repro bench sched`` harness uses the round trip to
    exercise the SWF import path at 5k-50k job scale.
    """
    lines = [
        "; SWF export of a scheduler-scale trace",
        f"; MaxJobs: {len(trace)}",
    ]
    for i, job in enumerate(trace, start=1):
        lines.append(
            _swf_line(
                job_number=i,
                submit=job.arrival,
                wait=-1,
                run=job.runtime,
                alloc_procs=job.nodes,
                req_procs=job.nodes,
                req_time=job.limit,
                status=SWF_COMPLETED,
            )
        )
    return "\n".join(lines) + "\n"


def _swf_line(
    job_number: int,
    submit: float,
    wait: float,
    run: float,
    alloc_procs: int,
    req_procs: int,
    req_time: float,
    status: int,
) -> str:
    fields = [
        job_number,          # 1 job number
        _num(submit),        # 2 submit time
        _num(wait),          # 3 wait time
        _num(run),           # 4 run time
        alloc_procs,         # 5 allocated processors
        -1,                  # 6 average CPU time
        -1,                  # 7 used memory
        req_procs,           # 8 requested processors
        _num(req_time),      # 9 requested time
        -1,                  # 10 requested memory
        status,              # 11 status
        -1,                  # 12 user
        -1,                  # 13 group
        -1,                  # 14 application
        -1,                  # 15 queue
        -1,                  # 16 partition
        -1,                  # 17 preceding job
        -1,                  # 18 think time
    ]
    return " ".join(str(f) for f in fields)


def _num(value: float) -> str:
    if value == -1:
        return "-1"
    return f"{value:.2f}".rstrip("0").rstrip(".")


def parse_swf(
    text: str,
    steps: int = 25,
    flexible: bool = True,
    max_procs: Optional[int] = None,
) -> WorkloadSpec:
    """Build a workload specification from an SWF log.

    Each SWF job becomes a perfectly scalable iterative application whose
    total work equals ``run time x requested processors`` (the log's
    observed demand), split into ``steps`` reconfiguring intervals; jobs
    without a positive run time fall back to the requested time.
    """
    specs: List[JobSpec] = []
    for raw in text.splitlines():
        line = raw.split(";", 1)[0].strip()
        if not line:
            continue
        fields = line.split()
        if len(fields) < 11:
            raise WorkloadError(f"malformed SWF line ({len(fields)} fields): {raw!r}")
        job_number = int(fields[0])
        submit = float(fields[1])
        run = float(fields[3])
        req_procs = int(fields[7])
        if req_procs <= 0:
            req_procs = max(1, int(fields[4]))
        req_time = float(fields[8])
        runtime = run if run > 0 else req_time
        if runtime <= 0:
            continue  # unusable record (cancelled before start, no estimate)
        if submit < 0:
            raise WorkloadError(f"negative submit time in SWF line: {raw!r}")

        specs.append(
            _swf_jobspec(
                job_number, submit, runtime, req_procs, steps, flexible, max_procs
            )
        )
    if not specs:
        raise WorkloadError("SWF log contained no usable jobs")
    return WorkloadSpec(name="swf-import", jobs=specs)


def _swf_jobspec(
    job_number: int,
    submit: float,
    runtime: float,
    procs: int,
    steps: int,
    flexible: bool,
    max_procs: Optional[int],
) -> JobSpec:
    from repro.core.actions import ResizeRequest

    limit = max_procs if max_procs is not None else max(procs, 1)
    step_count = max(1, steps)
    resize = ResizeRequest(min_procs=1, max_procs=max(limit, procs), factor=2)

    def factory(
        rt: float = runtime, p: int = procs, n: int = step_count, rz=resize
    ) -> AppModel:
        return AppModel(
            name=f"swf-{job_number}",
            iterations=n,
            serial_step_time=(rt / n) * p,
            state_bytes=0.0,
            scalability=LinearScalability(),
            resize=rz,
        )

    return JobSpec(
        name=f"swf-{job_number:05d}",
        submit_nodes=procs,
        arrival_time=submit,
        app_factory=factory,
        flexible=flexible,
        time_limit=1.2 * runtime,
    )
