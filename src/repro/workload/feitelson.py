"""The Feitelson '96 statistical workload model.

The paper generates its workloads "using the statistical model proposed by
Feitelson, which characterizes rigid jobs based on observations from logs
of actual cluster workloads" and highlights four parameters (Section
VII-C): number of jobs, job size (a hand-tailored discrete distribution
emphasizing small jobs and powers of two), runtime (hyperexponential,
correlated with size), and Poisson inter-arrival times.  Feitelson's model
additionally includes repeated runs of the same job, reproduced here too.

This module implements those components with the shapes described in
Feitelson & Rudolph (JSSPP '96): the job-size distribution is harmonic
with a strong boost on powers of two and on "interesting" sizes, runtimes
come from a two-branch hyperexponential whose long-branch probability
grows with job size, and repetition counts follow a truncated Zipf.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import WorkloadError
from repro.sim.rng import RandomStreams


@dataclass(frozen=True)
class FeitelsonConfig:
    """Parameters of the workload model."""

    #: Largest job size to generate (the paper uses 20 for the preliminary
    #: study: "assigning up to 20 nodes to each job").
    max_size: int = 20
    #: Smallest job size.
    min_size: int = 1
    #: Harmonic exponent of the size distribution (P ~ 1/size^a).
    size_exponent: float = 1.4
    #: Multiplicative weight boost for power-of-two sizes.
    power2_boost: float = 8.0
    #: Mean of the short-runtime exponential branch, seconds.
    runtime_short_mean: float = 30.0
    #: Mean of the long-runtime exponential branch, seconds.
    runtime_long_mean: float = 360.0
    #: Probability of the long branch for the smallest jobs...
    long_prob_small: float = 0.05
    #: ...growing linearly to this value for the largest jobs (runtime is
    #: positively correlated with parallelism in the logs).
    long_prob_large: float = 0.35
    #: Cap applied to sampled runtimes (0 disables the cap).
    runtime_cap: float = 0.0
    #: Mean inter-arrival time of the Poisson process, seconds.
    arrival_mean: float = 10.0
    #: Maximum number of repeated runs of one job specification.
    max_repetitions: int = 6
    #: Zipf exponent for the repetition count (heavier -> fewer repeats).
    repetition_exponent: float = 2.5

    def __post_init__(self) -> None:
        if not 1 <= self.min_size <= self.max_size:
            raise WorkloadError(
                f"need 1 <= min_size <= max_size, got [{self.min_size}, {self.max_size}]"
            )
        if self.runtime_short_mean <= 0 or self.runtime_long_mean <= 0:
            raise WorkloadError("runtime branch means must be positive")
        if not (0 <= self.long_prob_small <= 1 and 0 <= self.long_prob_large <= 1):
            raise WorkloadError("long-branch probabilities must be in [0, 1]")
        if self.arrival_mean <= 0:
            raise WorkloadError("arrival_mean must be positive")
        if self.max_repetitions < 1:
            raise WorkloadError("max_repetitions must be >= 1")


class FeitelsonModel:
    """Sampler for sizes, runtimes, repetitions and arrival times."""

    def __init__(self, config: FeitelsonConfig, rng: RandomStreams) -> None:
        self.config = config
        self.rng = rng
        self._size_support = list(range(config.min_size, config.max_size + 1))
        self._size_probs = self._build_size_distribution()

    # -- job size --------------------------------------------------------
    def _build_size_distribution(self) -> np.ndarray:
        cfg = self.config
        weights = []
        for size in self._size_support:
            w = 1.0 / size**cfg.size_exponent
            if size & (size - 1) == 0:  # power of two
                w *= cfg.power2_boost
            weights.append(w)
        probs = np.asarray(weights)
        return probs / probs.sum()

    def sample_size(self) -> int:
        """Draw one job size from the discrete distribution."""
        return int(
            self.rng.choice("feitelson.size", self._size_support, p=self._size_probs)
        )

    # -- runtime -----------------------------------------------------------
    def long_branch_probability(self, size: int) -> float:
        """Probability that a job of ``size`` is long-running."""
        cfg = self.config
        if cfg.max_size == cfg.min_size:
            return cfg.long_prob_small
        frac = (size - cfg.min_size) / (cfg.max_size - cfg.min_size)
        return cfg.long_prob_small + frac * (cfg.long_prob_large - cfg.long_prob_small)

    def sample_runtime(self, size: int) -> float:
        """Hyperexponential runtime, correlated with job size."""
        cfg = self.config
        p_long = self.long_branch_probability(size)
        runtime = self.rng.hyperexponential(
            "feitelson.runtime",
            means=[cfg.runtime_short_mean, cfg.runtime_long_mean],
            probabilities=[1.0 - p_long, p_long],
        )
        runtime = max(1.0, runtime)
        if cfg.runtime_cap > 0:
            runtime = min(runtime, cfg.runtime_cap)
        return runtime

    # -- repetitions -----------------------------------------------------------
    def sample_repetitions(self) -> int:
        """Number of consecutive runs of the same job (>= 1)."""
        cfg = self.config
        ks = np.arange(1, cfg.max_repetitions + 1, dtype=float)
        probs = ks**-cfg.repetition_exponent
        probs /= probs.sum()
        return int(self.rng.choice("feitelson.repeats", list(range(1, cfg.max_repetitions + 1)), p=probs))

    # -- arrivals ------------------------------------------------------------------
    def sample_interarrival(self) -> float:
        """Exponential inter-arrival gap (Poisson arrivals)."""
        return self.rng.exponential("feitelson.arrival", self.config.arrival_mean)

    def arrival_times(self, count: int) -> List[float]:
        """Cumulative arrival times for ``count`` submissions."""
        if count < 0:
            raise WorkloadError(f"count must be >= 0, got {count}")
        times, t = [], 0.0
        for _ in range(count):
            t += self.sample_interarrival()
            times.append(t)
        return times
