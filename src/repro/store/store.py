"""Content-addressed JSON result store with atomic writes.

One record per fully-resolved run spec.  The key is a SHA-256 over the
canonical JSON form of the spec plus a *salt* derived from the package
version, so results computed by one version of the simulation code are
never served to another (bump ``repro.__version__`` — or set
``REPRO_CACHE_SALT`` — to invalidate everything at once).

Records are plain ``<key>.json`` files; writes go through a temporary
file in the same directory followed by :func:`os.replace`, so a record
is either fully present or absent — concurrent sweep processes and a
mid-write crash can never leave a torn record behind.  Unreadable or
corrupt records are treated as misses (and count as such in
:attr:`ResultStore.misses`), never as errors.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional

from repro.errors import StoreError

#: Directory used when neither the caller nor the environment picks one.
DEFAULT_STORE_DIR = ".repro-cache"

#: Environment variable overriding the default store directory.
STORE_DIR_ENV = "REPRO_CACHE_DIR"

#: Environment variable appended to the code-version salt (escape hatch
#: for invalidating the cache without editing the package).
STORE_SALT_ENV = "REPRO_CACHE_SALT"


def code_version_salt() -> str:
    """The salt mixed into every key: package version + env override."""
    from repro import __version__

    extra = os.environ.get(STORE_SALT_ENV, "")
    return f"repro-{__version__}" + (f"+{extra}" if extra else "")


def canonical_json(spec: Mapping[str, Any]) -> str:
    """The canonical serialization the content address is computed over."""
    try:
        return json.dumps(spec, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as exc:
        raise StoreError(f"spec is not JSON-serializable: {exc}") from exc


def spec_key(spec: Mapping[str, Any], salt: Optional[str] = None) -> str:
    """Stable content address of a fully-resolved run spec."""
    salt = code_version_salt() if salt is None else salt
    digest = hashlib.sha256()
    digest.update(salt.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(canonical_json(spec).encode("utf-8"))
    return digest.hexdigest()


@dataclass(frozen=True)
class StoreEntry:
    """One record as listed by ``repro cache ls``."""

    key: str
    spec: Dict[str, Any]
    created: float
    size_bytes: int

    def describe(self) -> str:
        """One human line: short key + the spec's non-null axis=value pairs."""
        axes = ",".join(
            f"{k}={v}" for k, v in sorted(self.spec.items()) if v is not None
        )
        return f"{self.key[:12]}  {self.size_bytes:>7} B  {axes}"

    def as_dict(self) -> Dict[str, Any]:
        """JSON form (``repro cache ls --json`` and the server's
        artifact-listing endpoint emit exactly this)."""
        return {
            "key": self.key,
            "spec": dict(self.spec),
            "created": self.created,
            "size_bytes": self.size_bytes,
        }


class ResultStore:
    """A directory of content-addressed JSON records.

    ``get``/``put`` take the *spec* (a JSON-serializable mapping), not
    the key — the store owns the addressing.  Hit/miss/put counters make
    cache behaviour observable (`repro sweep` reports them, and the
    acceptance bar of "second invocation ≥90% served from the store" is
    checked against exactly these numbers).
    """

    def __init__(self, root: str | os.PathLike, salt: Optional[str] = None) -> None:
        self.root = Path(root)
        self.salt = code_version_salt() if salt is None else salt
        self.hits = 0
        self.misses = 0
        self.puts = 0

    # -- addressing ---------------------------------------------------------
    def key_for(self, spec: Mapping[str, Any]) -> str:
        return spec_key(spec, self.salt)

    def path_for(self, spec: Mapping[str, Any]) -> Path:
        return self.root / f"{self.key_for(spec)}.json"

    # -- record IO ----------------------------------------------------------
    def get(self, spec: Mapping[str, Any]) -> Optional[Any]:
        """The stored payload for ``spec``, or None (a miss)."""
        path = self.path_for(spec)
        try:
            with open(path, "r", encoding="utf-8") as fh:
                record = json.load(fh)
            payload = record["payload"]
        except (OSError, ValueError, KeyError, TypeError):
            # Missing, torn (should be impossible — writes are atomic),
            # or hand-edited beyond recognition: a miss either way.
            self.misses += 1
            return None
        self.hits += 1
        return payload

    def put(self, spec: Mapping[str, Any], payload: Any) -> str:
        """Atomically persist ``payload`` under the spec's address."""
        key = self.key_for(spec)
        record = {
            "key": key,
            "salt": self.salt,
            "spec": dict(spec),
            "created": time.time(),
            "payload": payload,
        }
        try:
            text = json.dumps(record, sort_keys=True)
        except (TypeError, ValueError) as exc:
            raise StoreError(f"payload is not JSON-serializable: {exc}") from exc
        self.root.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(
            prefix=f".{key[:12]}-", suffix=".tmp", dir=self.root
        )
        try:
            with os.fdopen(fd, "w", encoding="utf-8") as fh:
                fh.write(text)
            os.replace(tmp, self.root / f"{key}.json")
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise
        self.puts += 1
        return key

    def contains(self, spec: Mapping[str, Any]) -> bool:
        return self.path_for(spec).exists()

    # -- maintenance --------------------------------------------------------
    def entries(self) -> List[StoreEntry]:
        """Every readable record, newest first (for ``repro cache ls``)."""
        found: List[StoreEntry] = []
        if not self.root.is_dir():
            return found
        for path in self.root.glob("*.json"):
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                found.append(
                    StoreEntry(
                        key=str(record["key"]),
                        spec=dict(record["spec"]),
                        created=float(record["created"]),
                        size_bytes=path.stat().st_size,
                    )
                )
            except (OSError, ValueError, KeyError, TypeError):
                continue
        found.sort(key=lambda e: (-e.created, e.key))
        return found

    def clear(self) -> int:
        """Remove every record; returns how many were deleted."""
        removed = 0
        if not self.root.is_dir():
            return removed
        for path in self.root.glob("*.json"):
            try:
                path.unlink()
                removed += 1
            except OSError:
                continue
        return removed

    def stats(self) -> Dict[str, int]:
        return {"hits": self.hits, "misses": self.misses, "puts": self.puts}

    def listing(self) -> Dict[str, Any]:
        """The store's full JSON-able inventory + live hit/miss stats.

        One shared code path renders both ``repro cache ls --json`` and
        the server's ``GET /v1/artifacts`` endpoint.  Record ordering is
        stable: newest first, ties broken by key (see :meth:`entries`),
        so two listings of the same directory are byte-identical.
        """
        return {
            "root": str(self.root),
            "salt": self.salt,
            "records": [entry.as_dict() for entry in self.entries()],
            "stats": self.stats(),
        }


def default_store(root: Optional[str] = None) -> ResultStore:
    """The store the CLI uses: ``--store DIR``, else ``$REPRO_CACHE_DIR``,
    else ``./.repro-cache`` (gitignored)."""
    if root is None:
        root = os.environ.get(STORE_DIR_ENV) or DEFAULT_STORE_DIR
    return ResultStore(root)
