"""``repro.store`` — the content-addressed on-disk result store.

Sweep cells and rendered artifacts land here as small JSON records,
keyed by a stable hash of the fully-resolved run spec plus a
code-version salt, so repeated sweeps and repeated ``repro figN``
invocations are served from disk instead of re-simulating.
"""

from repro.store.store import (
    DEFAULT_STORE_DIR,
    ResultStore,
    StoreEntry,
    code_version_salt,
    default_store,
    spec_key,
)

__all__ = [
    "DEFAULT_STORE_DIR",
    "ResultStore",
    "StoreEntry",
    "code_version_salt",
    "default_store",
    "spec_key",
]
