"""Exception hierarchy shared by all ``repro`` subsystems."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Invalid use of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """No runnable entity remains while some entity is still blocked."""


class ClusterError(ReproError):
    """Invalid allocation request or node bookkeeping violation."""


class SchedulerError(ReproError):
    """Workload-manager level error (bad job state transition, etc.)."""


class JobStateError(SchedulerError):
    """A job was driven through an illegal state transition."""


class MPIError(ReproError):
    """Errors raised by the in-process MPI substrate."""


class CommunicatorError(MPIError):
    """Operation on an invalid, freed, or foreign communicator."""


class TruncationError(MPIError):
    """A receive buffer was too small for the matched message."""


class RuntimeAPIError(ReproError):
    """Misuse of the Nanos++-style runtime or the DMR API."""


class RedistributionError(RuntimeAPIError):
    """An expand/shrink data-redistribution plan could not be built."""


class SimulationTimeout(ReproError):
    """A workload did not run to completion within the simulation horizon.

    Carries enough state to diagnose the stall: which jobs were still
    pending or running when the horizon was reached, and how many job
    specs were never even submitted.

    Instances must survive a pickle round trip unchanged — sweep pool
    workers raise them in a child process and ``concurrent.futures``
    re-raises them in the parent; without :meth:`__reduce__` the default
    exception reduction would call ``__init__`` with the formatted
    message as the only argument and lose the job-id payload.
    """

    def __init__(
        self,
        workload_name: str,
        max_sim_time: float,
        unsubmitted: int,
        pending_job_ids: tuple,
        running_job_ids: tuple,
    ) -> None:
        super().__init__(
            f"workload {workload_name!r} did not finish by t={max_sim_time}: "
            f"{unsubmitted} unsubmitted, {len(pending_job_ids)} pending, "
            f"{len(running_job_ids)} running"
        )
        self.workload_name = workload_name
        self.max_sim_time = max_sim_time
        self.unsubmitted = unsubmitted
        self.pending_job_ids = tuple(pending_job_ids)
        self.running_job_ids = tuple(running_job_ids)

    def __reduce__(self):
        return (
            type(self),
            (
                self.workload_name,
                self.max_sim_time,
                self.unsubmitted,
                self.pending_job_ids,
                self.running_job_ids,
            ),
        )


class TraceError(ReproError):
    """A trace was queried in a way its configuration cannot answer
    (e.g. a post-hoc query on a non-retaining streaming trace)."""


class TraceStreamError(TraceError):
    """A spilled trace stream on disk is unreadable: missing or corrupt
    end-of-stream footer (crash mid-spill), or a count/digest mismatch."""


class TelemetryError(ReproError):
    """Telemetry misuse or an invalid/ill-formed exported trace file
    (:mod:`repro.obs`)."""


class WorkloadError(ReproError):
    """Invalid workload-generation parameters."""


class SweepError(ReproError):
    """Invalid parameter-sweep definition or execution failure."""


class StoreError(ReproError):
    """The on-disk result store was misused or is unusable."""


class ServeError(ReproError):
    """Scheduler-as-a-service errors (:mod:`repro.serve`)."""


class QueueFullError(ServeError):
    """The service's submission queue is at capacity (HTTP 429)."""


class DrainingError(ServeError):
    """The service is draining and refuses new submissions (HTTP 503)."""


class BackendError(ReproError):
    """An execution backend failed or was misused (:mod:`repro.backend`)."""


class BackendUnavailableError(BackendError):
    """The requested backend cannot run here (missing CLI, no session)."""


class CheckpointError(ReproError):
    """Failure in the checkpoint/restart baseline."""


class FaultError(ReproError):
    """Invalid fault plan or fault-injection request."""


class InvariantViolation(ReproError):
    """A simulation invariant was broken (raised by the test harness).

    Carries the violated invariant's name and the simulation time so a
    failing property test points straight at the broken rule instead of
    at a downstream symptom.
    """

    def __init__(self, invariant: str, time: float, detail: str) -> None:
        super().__init__(f"[t={time}] invariant {invariant!r} violated: {detail}")
        self.invariant = invariant
        self.time = time
        self.detail = detail

    def __reduce__(self):
        # Like SimulationTimeout: keep the structured payload across the
        # pickle round trip pool workers put exceptions through.
        return (type(self), (self.invariant, self.time, self.detail))
