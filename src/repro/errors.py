"""Exception hierarchy shared by all ``repro`` subsystems."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class SimulationError(ReproError):
    """Invalid use of the discrete-event simulation kernel."""


class DeadlockError(SimulationError):
    """No runnable entity remains while some entity is still blocked."""


class ClusterError(ReproError):
    """Invalid allocation request or node bookkeeping violation."""


class SchedulerError(ReproError):
    """Workload-manager level error (bad job state transition, etc.)."""


class JobStateError(SchedulerError):
    """A job was driven through an illegal state transition."""


class MPIError(ReproError):
    """Errors raised by the in-process MPI substrate."""


class CommunicatorError(MPIError):
    """Operation on an invalid, freed, or foreign communicator."""


class TruncationError(MPIError):
    """A receive buffer was too small for the matched message."""


class RuntimeAPIError(ReproError):
    """Misuse of the Nanos++-style runtime or the DMR API."""


class RedistributionError(RuntimeAPIError):
    """An expand/shrink data-redistribution plan could not be built."""


class WorkloadError(ReproError):
    """Invalid workload-generation parameters."""


class CheckpointError(ReproError):
    """Failure in the checkpoint/restart baseline."""
