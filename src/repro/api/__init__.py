"""``repro.api`` — the public facade of the reproduction.

Everything a consumer needs lives here:

* :class:`Session` — immutable builder owning simulation assembly
  (cluster + Slurm + policy + runtime + seed) with ``submit`` / ``run`` /
  ``run_paired`` execution;
* :class:`SessionObserver` / :class:`TimelineObserver` — live event
  hooks replacing post-hoc trace scraping;
* :class:`WorkloadResult` / :class:`PairedComparison` — the result
  currency every experiment driver returns;
* :func:`artifact` / :data:`REGISTRY` — the declarative registry the
  ``python -m repro`` CLI serves figures and tables from.

Experiment drivers, benchmarks and the CLI are all thin layers over
this package; nothing outside it assembles ``Environment`` +
``SlurmController`` by hand.
"""

from repro.api.observers import (
    CallbackObserver,
    EventCounter,
    LiveTimelines,
    SessionObserver,
    TimelineObserver,
)
from repro.api.registry import (
    REGISTRY,
    ArtifactRegistry,
    ArtifactSpec,
    artifact,
    builtin_registry,
    default_seed,
)
from repro.api.results import PairedComparison, WorkloadResult
from repro.api.session import (
    DEFAULT_MAX_SIM_TIME,
    LiveSimulation,
    Session,
    SessionRun,
    SessionSpec,
)
from repro.errors import SimulationTimeout
from repro.obs.spans import Telemetry, TelemetryConfig

__all__ = [
    "ArtifactRegistry",
    "ArtifactSpec",
    "CallbackObserver",
    "DEFAULT_MAX_SIM_TIME",
    "EventCounter",
    "LiveSimulation",
    "LiveTimelines",
    "PairedComparison",
    "REGISTRY",
    "Session",
    "SessionObserver",
    "SessionRun",
    "SessionSpec",
    "SimulationTimeout",
    "Telemetry",
    "TelemetryConfig",
    "TimelineObserver",
    "WorkloadResult",
    "artifact",
    "builtin_registry",
    "default_seed",
]
