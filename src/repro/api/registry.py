"""The declarative artifact registry behind ``python -m repro``.

Experiment modules register their figure/table producers with the
:func:`artifact` decorator::

    @artifact("fig3", csv=True,
              description="Fig. 3: fixed vs flexible, synchronous")
    def _fig3(seed=None):
        return run_fig03(seed=default_seed(seed))

The CLI (and anything else) then iterates the registry generically:
``render(name, seed=...)`` produces the text form, ``render_csv`` the
CSV form where supported.  Producer results are cached per
``(name, seed)`` so rendering both forms — or several artifacts sharing
one producer — never re-runs a simulation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple, Union

#: Seed artifacts fall back to when the CLI passes none (the paper's year).
DEFAULT_ARTIFACT_SEED = 2017


def default_seed(seed: Optional[int]) -> int:
    """Resolve an optional CLI seed to the registry default."""
    return DEFAULT_ARTIFACT_SEED if seed is None else seed


def _default_text_renderer(result: object) -> str:
    for attr in ("as_table", "as_text"):
        method = getattr(result, attr, None)
        if callable(method):
            return method()
    raise TypeError(
        f"artifact result {type(result).__name__} has neither as_table() "
        f"nor as_text(); pass an explicit text renderer"
    )


@dataclass(frozen=True)
class ArtifactSpec:
    """One registered artifact: how to produce and render it."""

    name: str
    producer: Callable[..., object]
    text: Callable[[object], str]
    csv: Optional[Callable[[object], str]]
    description: str = ""

    @property
    def supports_csv(self) -> bool:
        return self.csv is not None


class ArtifactRegistry:
    """Ordered name → :class:`ArtifactSpec` mapping with a result cache.

    Two caches cooperate here:

    * the **in-memory** per-``(name, seed)`` result-object cache, which
      lets one producer serve both the text and CSV forms within a
      process.  It is *process-local by design*: sweep pool workers are
      fresh processes and therefore always start with an empty cache, so
      a worker can never observe another cell's results.  Tests that
      need a clean slate call :meth:`clear_cache` instead of poking
      ``_results``;
    * an optional **on-disk** render cache (:meth:`attach_store`): the
      *rendered* text/CSV strings are persisted in a
      :class:`~repro.store.ResultStore` keyed by (artifact, seed, form)
      plus the store's code-version salt, so repeated ``repro figN``
      invocations across processes skip the simulation entirely.
    """

    def __init__(self) -> None:
        self._specs: Dict[str, ArtifactSpec] = {}
        self._results: Dict[Tuple[str, Optional[int]], object] = {}
        self._store = None

    # -- registration -------------------------------------------------------
    def artifact(
        self,
        name: str,
        *,
        csv: Union[bool, Callable[[object], str]] = False,
        text: Union[None, str, Callable[[object], str]] = None,
        description: str = "",
    ):
        """Decorator registering ``fn(seed=None) -> result object``.

        ``text`` may be an attribute name or a callable; by default the
        result's ``as_table()`` (falling back to ``as_text()``) renders
        the artifact.  ``csv=True`` uses the result's ``as_csv()``; a
        callable customizes it.
        """

        if isinstance(text, str):
            attr = text
            text_renderer: Callable[[object], str] = lambda r: getattr(r, attr)()
        elif callable(text):
            text_renderer = text
        else:
            text_renderer = _default_text_renderer

        if csv is True:
            csv_renderer: Optional[Callable[[object], str]] = lambda r: r.as_csv()
        elif callable(csv):
            csv_renderer = csv
        else:
            csv_renderer = None

        def register(fn: Callable[..., object]) -> Callable[..., object]:
            if name in self._specs:
                raise ValueError(f"artifact {name!r} is already registered")
            self._specs[name] = ArtifactSpec(
                name=name,
                producer=fn,
                text=text_renderer,
                csv=csv_renderer,
                description=description,
            )
            return fn

        return register

    # -- lookup -------------------------------------------------------------
    def names(self) -> List[str]:
        """Registered artifact names, in registration order."""
        return list(self._specs)

    def __contains__(self, name: str) -> bool:
        return name in self._specs

    def __len__(self) -> int:
        return len(self._specs)

    def get(self, name: str) -> ArtifactSpec:
        try:
            return self._specs[name]
        except KeyError:
            raise KeyError(
                f"unknown artifact {name!r}; known: {', '.join(self._specs)}"
            ) from None

    # -- the on-disk render cache -------------------------------------------
    def attach_store(self, store) -> None:
        """Serve/persist rendered artifacts through a ``ResultStore``."""
        self._store = store

    def detach_store(self) -> None:
        self._store = None

    def _render_spec(self, name: str, seed: Optional[int], form: str) -> dict:
        # `repro fig3` and `repro fig3 --seed 2017` are the same render;
        # address both by the resolved seed.
        return {"artifact": name, "seed": default_seed(seed), "form": form}

    def _rendered(self, name: str, seed: Optional[int], form: str,
                  render: Callable[[], str]) -> str:
        if self._store is None:
            return render()
        spec = self._render_spec(name, seed, form)
        cached = self._store.get(spec)
        if isinstance(cached, str):
            return cached
        text = render()
        self._store.put(spec, text)
        return text

    # -- production ---------------------------------------------------------
    def result_for(self, name: str, seed: Optional[int] = None) -> object:
        """Produce (or fetch from the in-memory cache) the result object."""
        key = (name, seed)
        if key not in self._results:
            self._results[key] = self.get(name).producer(seed=seed)
        return self._results[key]

    def render(self, name: str, seed: Optional[int] = None) -> str:
        """The artifact's text form (table or evolution chart)."""
        spec = self.get(name)
        return self._rendered(
            name, seed, "text", lambda: spec.text(self.result_for(name, seed))
        )

    def render_csv(self, name: str, seed: Optional[int] = None) -> str:
        """The artifact's CSV form; raises for artifacts without one."""
        spec = self.get(name)
        if spec.csv is None:
            raise KeyError(f"artifact {name!r} has no CSV form")
        return self._rendered(
            name, seed, "csv", lambda: spec.csv(self.result_for(name, seed))
        )

    def clear_cache(self) -> None:
        """Drop the in-memory result cache (the public test hook)."""
        self._results.clear()


#: The process-wide registry ``python -m repro`` serves from.
REGISTRY = ArtifactRegistry()

#: Module-level decorator bound to the global registry.
artifact = REGISTRY.artifact

_BUILTIN_MODULES = (
    "repro.experiments.fig01_cr_vs_dmr",
    "repro.experiments.fig03_sync",
    "repro.experiments.fig04_05_evolution",
    "repro.experiments.fig06_07_async",
    "repro.experiments.fig08_heterogeneous",
    "repro.experiments.fig09_inhibitor",
    "repro.experiments.fig10_12_realapps",
    "repro.experiments.scalability",
    "repro.experiments.resilience",
)


def builtin_registry() -> ArtifactRegistry:
    """The global registry with every paper artifact loaded.

    Importing the experiment modules triggers their ``@artifact``
    registrations; the import order fixes the ``repro list`` order.
    """
    import importlib

    for module in _BUILTIN_MODULES:
        importlib.import_module(module)
    return REGISTRY
