"""Result containers returned by the :class:`~repro.api.session.Session`.

These used to live in ``repro.experiments.common``; they are the public
currency of the execution API, so they moved behind the facade (the old
import path still works).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from repro.api.observers import LiveTimelines
from repro.metrics.summary import WorkloadSummary
from repro.metrics.timeline import (
    StepSeries,
    allocated_nodes_series,
    completed_jobs_series,
    running_jobs_series,
)
from repro.metrics.trace import Trace
from repro.obs.spans import Telemetry
from repro.slurm.job import Job


@dataclass
class WorkloadResult:
    """Everything an experiment needs from one workload execution.

    When the run was executed through a session, ``timelines`` holds the
    allocation/running step series assembled *live* by the session's
    :class:`~repro.api.observers.TimelineObserver`; the series accessors
    then return those instead of re-deriving them from the trace.
    """

    workload_name: str
    flexible: bool
    jobs: List[Job]
    trace: Trace
    summary: WorkloadSummary
    timelines: Optional[LiveTimelines] = None
    #: The run's span recorder when the session enabled telemetry
    #: (:meth:`~repro.api.session.Session.with_telemetry`).
    telemetry: Optional["Telemetry"] = None
    #: Backend accounting records (``sacct`` rows) when the run executed
    #: through the execution-backend seam; None for the native sim path,
    #: whose ground truth is the trace itself.
    accounting: Optional[tuple] = None
    #: Which execution backend produced this result.
    backend: str = "sim"

    @property
    def makespan(self) -> float:
        return self.summary.makespan

    def allocation_series(self) -> StepSeries:
        if self.timelines is not None:
            return self.timelines.allocation
        return allocated_nodes_series(self.trace)

    def running_series(self) -> StepSeries:
        if self.timelines is not None:
            return self.timelines.running
        return running_jobs_series(self.trace)

    def completed_series(self) -> StepSeries:
        return completed_jobs_series(self.trace)


@dataclass
class PairedComparison:
    """A fixed-vs-flexible pair on the same workload (the paper's design)."""

    fixed: WorkloadResult
    flexible: WorkloadResult

    @property
    def makespan_gain(self) -> float:
        from repro.metrics.summary import gain_percent

        return gain_percent(self.fixed.makespan, self.flexible.makespan)

    @property
    def wait_gain(self) -> float:
        from repro.metrics.summary import gain_percent

        return gain_percent(
            self.fixed.summary.avg_wait_time, self.flexible.summary.avg_wait_time
        )
