"""Live observation of a running :class:`~repro.api.session.Session`.

Observers attach to a session *before* execution and receive scheduler
events the moment they happen, instead of scraping the trace after the
run.  This is how metrics timelines, progress reporting and future
instrumentation hook into the simulation without the experiment drivers
knowing about them.

The dispatch contract:

* :meth:`SessionObserver.on_submit` — a (non-resizer) job entered the
  queue;
* :meth:`SessionObserver.on_start` — a (non-resizer) job began running;
* :meth:`SessionObserver.on_resize` — a running job expanded or shrank;
* :meth:`SessionObserver.on_complete` — a (non-resizer) job finished;
* :meth:`SessionObserver.on_event` — every raw trace event, including
  resizer bookkeeping and allocation changes, for observers that need
  the full stream.

Resizer jobs (the Section V expand-protocol helpers) are filtered from
the typed callbacks because they are an implementation artifact of the
resize mechanism, not workload jobs; they remain visible in
:meth:`on_event`.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.metrics.timeline import StepSeries, step_series
from repro.metrics.trace import EventKind, TraceEvent
from repro.obs.registry import default_registry
from repro.slurm.job import Job

logger = logging.getLogger(__name__)


def observer_error_counter():
    """The process-wide suppressed-observer-error counter family.

    Get-or-create on the default registry, so the family (and its
    ``# TYPE`` header in the Prometheus exposition) exists the moment
    this module is imported — operators can alert on a metric that is
    present-and-zero rather than absent.
    """
    return default_registry().counter(
        "repro_observer_errors_total",
        "Suppressed exceptions raised by non-strict session observers.",
        labels=("observer",),
    )


# Materialize the family eagerly (see docstring above).
observer_error_counter()


class SessionObserver:
    """Base class for session observers; every hook defaults to a no-op.

    Observers are *passengers* of the simulation: by default
    (``strict = False``) an exception escaping any hook is caught,
    logged and counted by the dispatching
    :class:`ObserverDispatch` instead of aborting the run — a
    disconnecting SSE subscriber or a buggy progress callback must not
    kill a simulation other consumers are still watching.  Observers
    whose exceptions *are* the product — the invariant harness in
    :mod:`repro.testing` — set ``strict = True`` and keep the old
    fail-the-run behaviour.
    """

    #: When True, exceptions raised by this observer's hooks propagate
    #: out of the simulation; when False they are caught, logged and
    #: counted on the dispatch (``ObserverDispatch.observer_errors``).
    strict = False

    def on_attach(self, controller) -> None:
        """Called once when the observer is wired to a live simulation.

        Gives state-checking observers (e.g. the invariant harness in
        :mod:`repro.testing`) access to the controller and machine for
        ground-truth comparisons; purely event-driven observers ignore it.
        """

    def on_submit(self, time: float, job: Job) -> None:
        """A workload job was submitted to the controller."""

    def on_start(self, time: float, job: Job) -> None:
        """A workload job started running."""

    def on_resize(self, time: float, job: Job, event: TraceEvent) -> None:
        """A running job was expanded or shrunk (see ``event.kind``)."""

    def on_requeue(self, time: float, job: Job) -> None:
        """A running job was requeued (node failure) and will restart."""

    def on_complete(self, time: float, job: Job) -> None:
        """A workload job finished (completed, cancelled or timed out)."""

    def on_event(self, event: TraceEvent) -> None:
        """Raw hook: every trace event, in order, as it is recorded."""


@dataclass(frozen=True)
class LiveTimelines:
    """Step series assembled live by a :class:`TimelineObserver`."""

    allocation: StepSeries
    running: StepSeries


class TimelineObserver(SessionObserver):
    """Builds the paper's evolution series from live events.

    Accumulates the allocated-node and running-job step functions as the
    simulation emits events — the same series
    :func:`repro.metrics.timeline.allocated_nodes_series` and
    :func:`repro.metrics.timeline.running_jobs_series` would derive from
    the trace afterwards, but produced incrementally, with no post-hoc
    scraping pass.
    """

    def __init__(self) -> None:
        self._alloc_points: List[Tuple[float, float]] = [(0.0, 0.0)]
        self._running_points: List[Tuple[float, float]] = [(0.0, 0.0)]
        self._running: Set[int] = set()
        self._resizer_ids: Set[int] = set()

    def on_event(self, event: TraceEvent) -> None:
        kind = event.kind
        if kind is EventKind.ALLOC_CHANGE:
            self._alloc_points.append((event.time, float(event["nodes_used"])))
        elif kind is EventKind.JOB_SUBMIT:
            if event.data.get("resizer"):
                self._resizer_ids.add(event.job_id)
        elif kind is EventKind.JOB_START:
            if event.job_id not in self._resizer_ids:
                self._running.add(event.job_id)
                self._running_points.append(
                    (event.time, float(len(self._running)))
                )
        elif kind in (
            EventKind.JOB_END,
            EventKind.JOB_CANCEL,
            EventKind.JOB_REQUEUE,
        ):
            if event.job_id in self._running:
                self._running.discard(event.job_id)
                self._running_points.append(
                    (event.time, float(len(self._running)))
                )

    def allocation_series(self) -> StepSeries:
        """Allocated node count over time, as observed so far."""
        return step_series(self._alloc_points)

    def running_series(self) -> StepSeries:
        """Number of running (non-resizer) jobs over time."""
        return step_series(self._running_points)

    def snapshot(self) -> LiveTimelines:
        """Freeze both series into an immutable bundle."""
        return LiveTimelines(
            allocation=self.allocation_series(),
            running=self.running_series(),
        )


class EventCounter(SessionObserver):
    """Counts the typed session events; the sweep engine's fan-in currency.

    Observers cannot stream live across a process boundary, so sweep
    pool workers attach one of these to their in-worker session and ship
    the final tallies back with the cell result; the parent fans the
    per-cell counts back together with :meth:`merge`
    (``SweepResult.total_events``).  ``as_dict`` is the
    (JSON-serializable) wire form.
    """

    def __init__(self) -> None:
        self.submits = 0
        self.starts = 0
        self.resizes = 0
        self.completions = 0
        self.raw_events = 0

    def on_submit(self, time: float, job: Job) -> None:
        self.submits += 1

    def on_start(self, time: float, job: Job) -> None:
        self.starts += 1

    def on_resize(self, time: float, job: Job, event: TraceEvent) -> None:
        self.resizes += 1

    def on_complete(self, time: float, job: Job) -> None:
        self.completions += 1

    def on_event(self, event: TraceEvent) -> None:
        self.raw_events += 1

    def as_dict(self) -> Dict[str, int]:
        return {
            "submits": self.submits,
            "starts": self.starts,
            "resizes": self.resizes,
            "completions": self.completions,
            "raw_events": self.raw_events,
        }

    def merge(self, counts: Dict[str, int]) -> None:
        """Fan in a worker's tallies (the inverse of :meth:`as_dict`)."""
        self.submits += counts.get("submits", 0)
        self.starts += counts.get("starts", 0)
        self.resizes += counts.get("resizes", 0)
        self.completions += counts.get("completions", 0)
        self.raw_events += counts.get("raw_events", 0)


class CallbackObserver(SessionObserver):
    """Adapter turning plain callables into an observer.

    Convenient for one-off instrumentation::

        Session().observe(CallbackObserver(
            on_complete=lambda t, job: print(f"{t:8.1f}  {job.name} done")
        ))
    """

    def __init__(
        self,
        on_submit=None,
        on_start=None,
        on_resize=None,
        on_complete=None,
        on_event=None,
    ) -> None:
        self._on_submit = on_submit
        self._on_start = on_start
        self._on_resize = on_resize
        self._on_complete = on_complete
        self._on_event = on_event

    def on_submit(self, time: float, job: Job) -> None:
        if self._on_submit is not None:
            self._on_submit(time, job)

    def on_start(self, time: float, job: Job) -> None:
        if self._on_start is not None:
            self._on_start(time, job)

    def on_resize(self, time: float, job: Job, event: TraceEvent) -> None:
        if self._on_resize is not None:
            self._on_resize(time, job, event)

    def on_complete(self, time: float, job: Job) -> None:
        if self._on_complete is not None:
            self._on_complete(time, job)

    def on_event(self, event: TraceEvent) -> None:
        if self._on_event is not None:
            self._on_event(event)


class ObserverDispatch:
    """Routes trace events to a set of observers (one instance per run).

    Installed by the session as a live trace subscriber; translates the
    raw event vocabulary into the typed observer callbacks and resolves
    job ids back to :class:`~repro.slurm.job.Job` objects through the
    controller.

    Non-strict observers (the default) are *isolated*: an exception
    escaping one of their hooks is caught, logged and tallied in
    :attr:`observer_errors` instead of aborting the simulation, and the
    remaining observers still receive the callback.  Strict observers
    (``observer.strict = True``, e.g. the invariant harness) propagate.
    """

    _TYPED_KINDS = {
        EventKind.JOB_SUBMIT,
        EventKind.JOB_START,
        EventKind.JOB_END,
        EventKind.JOB_CANCEL,
        EventKind.JOB_REQUEUE,
        EventKind.RESIZE_EXPAND,
        EventKind.RESIZE_SHRINK,
    }

    def __init__(self, controller, observers: Tuple[SessionObserver, ...]) -> None:
        self._controller = controller
        self._observers = observers
        self._resizer_ids: Set[int] = set()
        #: id -> Job, filled at submission so later events resolve in O(1)
        #: (controller.get_job scans the finished list).
        self._jobs: Dict[int, Job] = {}
        #: Per-observer-class tally of suppressed callback exceptions.
        self.observer_errors: Dict[str, int] = {}
        for obs in observers:
            self._safely(obs, obs.on_attach, controller)

    def _safely(self, obs: SessionObserver, hook, *args) -> None:
        if obs.strict:
            hook(*args)
            return
        try:
            hook(*args)
        except Exception:
            name = type(obs).__name__
            self.observer_errors[name] = self.observer_errors.get(name, 0) + 1
            # Mirror the tally into the process-wide registry so the
            # serve ``/metrics`` exposition (and any other scrape) sees
            # suppressed observer failures without holding a reference
            # to this dispatch.  Rare path — never the event hot path.
            observer_error_counter().inc(observer=name)
            logger.exception(
                "observer %s raised in %s; suppressed (observer is non-strict)",
                name,
                getattr(hook, "__name__", hook),
            )

    @property
    def suppressed_errors(self) -> int:
        """Total number of observer exceptions caught so far."""
        return sum(self.observer_errors.values())

    def __call__(self, event: TraceEvent) -> None:
        for obs in self._observers:
            self._safely(obs, obs.on_event, event)
        kind = event.kind
        if kind not in self._TYPED_KINDS:
            return
        if kind is EventKind.JOB_SUBMIT and event.data.get("resizer"):
            self._resizer_ids.add(event.job_id)
            return
        if event.job_id in self._resizer_ids:
            return
        job = self._jobs.get(event.job_id)
        if job is None:
            job = self._controller.get_job(event.job_id)
            self._jobs[event.job_id] = job
        for obs in self._observers:
            if kind is EventKind.JOB_SUBMIT:
                self._safely(obs, obs.on_submit, event.time, job)
            elif kind is EventKind.JOB_START:
                self._safely(obs, obs.on_start, event.time, job)
            elif kind is EventKind.JOB_REQUEUE:
                self._safely(obs, obs.on_requeue, event.time, job)
            elif kind in (EventKind.JOB_END, EventKind.JOB_CANCEL):
                self._safely(obs, obs.on_complete, event.time, job)
            else:
                self._safely(obs, obs.on_resize, event.time, job, event)
