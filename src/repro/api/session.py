"""The :class:`Session` — the public entry point of the reproduction.

A session is an immutable, composable description of *how* to run
workloads: which cluster model, which Slurm configuration, which
reconfiguration policy, which runtime tunables, which base seed, and
which observers to attach.  Each ``with_*`` call returns a new session,
so partially configured sessions can be shared and specialized::

    base = Session(cluster=marenostrum_preliminary()).with_seed(7)
    sync = base.with_runtime(RuntimeConfig(async_mode=False))
    result = sync.run(base.fs_workload(25), flexible=True)
    pair = sync.run_paired(base.fs_workload(25))

Execution is split into :meth:`Session.submit` (assemble the simulation
and install the arrival process — returns a :class:`SessionRun` handle)
and :meth:`SessionRun.execute` (drive it to completion); :meth:`Session.run`
and :meth:`Session.run_paired` are the one-call conveniences every
experiment driver uses.  :meth:`Session.build` exposes the bare
simulation (environment, machine, controller) for benchmarks and tours
that need the machinery without a workload.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import List, Optional, Tuple

from repro.api.observers import ObserverDispatch, SessionObserver, TimelineObserver
from repro.api.results import PairedComparison, WorkloadResult
from repro.backend.base import BackendSpec
from repro.cluster.configs import ClusterConfig
from repro.cluster.machine import Machine
from repro.errors import SimulationTimeout
from repro.faults import FaultInjector, FaultPlan
from repro.metrics.summary import summarize
from repro.obs.spans import Telemetry, TelemetryConfig
from repro.runtime.nanos import RuntimeConfig
from repro.sim.engine import Environment
from repro.sim.rng import RandomStreams
from repro.slurm.controller import SlurmConfig, SlurmController
from repro.slurm.job import Job
from repro.slurm.reconfig import PolicyConfig
from repro.workload.spec import WorkloadSpec

#: Simulation horizon used when a run does not override it.
DEFAULT_MAX_SIM_TIME = 50_000_000.0

#: Base seed sessions fall back to (the paper's year, as everywhere else).
DEFAULT_SEED = 2017


@dataclass(frozen=True)
class LiveSimulation:
    """A bare, assembled simulation (no workload submitted yet)."""

    env: Environment
    machine: Machine
    controller: SlurmController
    #: The live observer hook installed on the trace (None when the
    #: session has no observers); detached once execution finishes so
    #: results do not retain the simulation stack.
    dispatch: Optional[ObserverDispatch] = None
    #: The fault injector driving the session's fault plan, if any.
    injector: Optional[FaultInjector] = None
    #: The live span recorder, when the session enabled telemetry.
    telemetry: Optional[Telemetry] = None


@dataclass(frozen=True)
class SessionSpec:
    """A picklable, observer-free snapshot of a :class:`Session`.

    Every field is a plain dataclass of primitives, so a spec crosses a
    process boundary unchanged and :meth:`build` reconstitutes an
    equivalent session on the other side.  The sweep engine's workers
    resolve each cell's axes into one of these
    (``repro.sweep.runner.session_spec_for``) before building the
    session they run.  Observers are deliberately not part of the spec —
    they may close over live state; workers attach their own.
    """

    cluster: Optional[ClusterConfig] = None
    slurm: Optional[SlurmConfig] = None
    runtime: Optional[RuntimeConfig] = None
    seed: Optional[int] = None
    max_sim_time: float = DEFAULT_MAX_SIM_TIME
    faults: Optional[FaultPlan] = None
    telemetry: Optional[TelemetryConfig] = None
    backend: Optional[BackendSpec] = None

    def build(self) -> "Session":
        """Reconstitute the session this spec describes."""
        return Session(
            cluster=self.cluster,
            slurm=self.slurm,
            runtime=self.runtime,
            seed=self.seed,
            max_sim_time=self.max_sim_time,
            faults=self.faults,
            telemetry=self.telemetry,
            backend=self.backend,
        )


@dataclass(frozen=True)
class Session:
    """Immutable builder + executor for workload simulations."""

    cluster: Optional[ClusterConfig] = None
    slurm: Optional[SlurmConfig] = None
    runtime: Optional[RuntimeConfig] = None
    seed: Optional[int] = None
    observers: Tuple[SessionObserver, ...] = ()
    max_sim_time: float = DEFAULT_MAX_SIM_TIME
    faults: Optional[FaultPlan] = None
    telemetry: Optional[TelemetryConfig] = None
    #: Which execution backend runs this session's workloads.  ``None``
    #: means the native in-process simulator path (byte-identical golden
    #: traces); anything else routes :meth:`run` through the
    #: :mod:`repro.backend` seam.
    backend: Optional[BackendSpec] = None

    # -- builder steps -----------------------------------------------------
    def with_cluster(self, cluster: ClusterConfig) -> "Session":
        """Pin the cluster model (testbed size + cost models)."""
        return replace(self, cluster=cluster)

    def with_slurm(self, config: SlurmConfig) -> "Session":
        """Pin the full Slurm controller configuration."""
        return replace(self, slurm=config)

    def with_runtime(self, config: RuntimeConfig) -> "Session":
        """Pin the Nanos++ runtime configuration (sync/async, costs)."""
        return replace(self, runtime=config)

    def with_policy(self, policy: PolicyConfig) -> "Session":
        """Swap the Algorithm 1 reconfiguration policy configuration.

        Merges into the current Slurm configuration, so it composes with
        :meth:`with_slurm` in either order.
        """
        base = self.slurm if self.slurm is not None else SlurmConfig()
        return replace(self, slurm=replace(base, policy=policy))

    def with_seed(self, seed: int) -> "Session":
        """Set the base seed for workload generation and RNG streams."""
        return replace(self, seed=seed)

    def with_max_sim_time(self, max_sim_time: float) -> "Session":
        """Set the default simulation horizon for runs of this session."""
        return replace(self, max_sim_time=max_sim_time)

    def with_faults(self, plan: Optional[FaultPlan]) -> "Session":
        """Inject a fault plan into every run of this session.

        The same (pre-sampled) plan replays against the fixed and the
        flexible rendition, so a paired comparison isolates exactly how
        each failure-handling mechanism copes.  ``None`` removes faults.
        """
        return replace(self, faults=plan)

    def with_telemetry(
        self,
        config: Optional[TelemetryConfig] = None,
        correlation_id: Optional[str] = None,
        max_spans: Optional[int] = None,
    ) -> "Session":
        """Enable span recording for every run of this session.

        Each :meth:`build` mints a fresh :class:`~repro.obs.spans.
        Telemetry` recorder from this config and hands it to the
        controller and runtime; the recorder comes back on
        :attr:`LiveSimulation.telemetry` and on the run's
        :class:`~repro.api.results.WorkloadResult`.  Telemetry records
        no trace events, so canonical traces (and their golden digests)
        are byte-identical with or without it.
        """
        if config is None:
            config = self.telemetry or TelemetryConfig()
        if correlation_id is not None:
            config = replace(config, correlation_id=correlation_id)
        if max_spans is not None:
            config = replace(config, max_spans=max_spans)
        return replace(self, telemetry=config)

    def observe(self, *observers: SessionObserver) -> "Session":
        """Attach observers; they receive live events from every run."""
        return replace(self, observers=self.observers + tuple(observers))

    def with_backend(self, backend, **options) -> "Session":
        """Select the execution backend for this session's runs.

        Accepts a registry name (``"sim"``, ``"slurm"``) plus keyword
        options, or a pre-built :class:`~repro.backend.base.BackendSpec`.
        ``with_backend("sim")`` without options is equivalent to the
        default native path.
        """
        if isinstance(backend, BackendSpec):
            if options:
                raise ValueError("pass options via BackendSpec.of, not both")
            spec = backend
        else:
            spec = BackendSpec.of(str(backend), **options)
        return replace(self, backend=spec)

    def spec(self) -> SessionSpec:
        """Export the picklable (observer-free) form of this session."""
        return SessionSpec(
            cluster=self.cluster,
            slurm=self.slurm,
            runtime=self.runtime,
            seed=self.seed,
            max_sim_time=self.max_sim_time,
            faults=self.faults,
            telemetry=self.telemetry,
            backend=self.backend,
        )

    @classmethod
    def from_spec(cls, spec: SessionSpec) -> "Session":
        """Reconstitute a session from its exported spec."""
        return spec.build()

    # -- derived configuration --------------------------------------------
    @property
    def effective_seed(self) -> int:
        """The base seed runs of this session use (default: 2017)."""
        return DEFAULT_SEED if self.seed is None else self.seed

    def streams(self, name: str = "session") -> RandomStreams:
        """Named RNG streams derived from the session seed."""
        return RandomStreams(self.effective_seed).spawn(name)

    # -- workload helpers ---------------------------------------------------
    def fs_workload(self, num_jobs: int, config=None) -> WorkloadSpec:
        """A Flexible Sleep workload generated from the session seed."""
        from repro.workload.generator import fs_workload

        return fs_workload(num_jobs, seed=self.effective_seed, config=config)

    def realapp_workload(self, num_jobs: int, **kwargs) -> WorkloadSpec:
        """A Section IX real-application mix from the session seed."""
        from repro.workload.generator import realapp_workload

        return realapp_workload(num_jobs, seed=self.effective_seed, **kwargs)

    # -- assembly -----------------------------------------------------------
    def build(self, extra_observers: Tuple[SessionObserver, ...] = ()) -> LiveSimulation:
        """Assemble environment + machine + controller + runtime launcher.

        Delegates to :func:`repro.backend.sim.assemble` — the one place
        that wires the simulation stack together; experiments,
        benchmarks and the CLI all go through it.  Only the native sim
        path can be built; a session configured for another backend
        executes through :meth:`run` instead.
        """
        if self.backend is not None and self.backend.name != "sim":
            from repro.errors import BackendError

            raise BackendError(
                f"cannot build() a bare simulation for backend "
                f"{self.backend.name!r}; use Session.run() or "
                "Session.execution_backend()"
            )
        from repro.backend.sim import assemble

        return assemble(self, extra_observers)

    def execution_backend(self):
        """Instantiate this session's configured execution backend."""
        from repro.backend.base import create_backend

        spec = self.backend if self.backend is not None else BackendSpec(name="sim")
        return create_backend(spec, session=self)

    def submit(self, spec: WorkloadSpec, flexible: bool = True) -> "SessionRun":
        """Stand up a fresh simulation and install the arrival process.

        ``flexible=False`` forces every job rigid regardless of the spec
        — this is how the paper's paired fixed/flexible comparisons are
        run.  Nothing executes until :meth:`SessionRun.execute`.
        """
        timeline = TimelineObserver()
        sim = self.build(extra_observers=(timeline,))
        run = SessionRun(
            session=self,
            spec=spec,
            flexible=flexible,
            sim=sim,
            timeline=timeline,
        )
        run._install_submitter()
        return run

    # -- execution ----------------------------------------------------------
    def run(
        self,
        spec: WorkloadSpec,
        flexible: bool = True,
        max_sim_time: Optional[float] = None,
    ) -> WorkloadResult:
        """Execute one rendition of a workload to completion.

        Sessions configured with a non-sim backend
        (:meth:`with_backend`) route through the backend seam; the
        default (and explicit ``"sim"``) keeps the native in-process
        path, whose golden traces are pinned byte-for-byte.
        """
        if self.backend is not None and self.backend.name != "sim":
            from repro.backend.base import create_backend
            from repro.backend.driver import run_workload

            backend = create_backend(self.backend, session=self)
            try:
                return run_workload(
                    backend,
                    spec,
                    flexible=flexible,
                    session=self,
                    time_scale=float(self.backend.option("time_scale", 1.0)),
                    drain_timeout=max_sim_time,
                )
            finally:
                backend.close()
        return self.submit(spec, flexible=flexible).execute(max_sim_time)

    def run_paired(
        self,
        spec: WorkloadSpec,
        max_sim_time: Optional[float] = None,
    ) -> PairedComparison:
        """Run the fixed and flexible renditions of the same workload."""
        return PairedComparison(
            fixed=self.run(spec, flexible=False, max_sim_time=max_sim_time),
            flexible=self.run(spec, flexible=True, max_sim_time=max_sim_time),
        )


@dataclass
class SessionRun:
    """One submitted workload: a live simulation ready to execute."""

    session: Session
    spec: WorkloadSpec
    flexible: bool
    sim: LiveSimulation
    timeline: TimelineObserver
    jobs: List[Job] = field(default_factory=list)

    def _install_submitter(self) -> None:
        env, controller = self.sim.env, self.sim.controller

        def submitter():
            t = 0.0
            for job_spec in self.spec.jobs:
                if job_spec.arrival_time > t:
                    yield env.timeout(job_spec.arrival_time - t)
                    t = job_spec.arrival_time
                self.jobs.append(
                    controller.submit(job_spec.build_job(self.flexible))
                )

        env.process(submitter(), name="submitter")

    def execute(self, max_sim_time: Optional[float] = None) -> WorkloadResult:
        """Drive the simulation to completion and collect the metrics.

        Raises :class:`~repro.errors.SimulationTimeout` if the workload
        has not drained by the horizon.
        """
        controller = self.sim.controller
        horizon = (
            self.session.max_sim_time if max_sim_time is None else max_sim_time
        )
        try:
            self.sim.env.run(until=horizon)
        finally:
            # Detach the live hook: the returned result keeps the trace,
            # and the dispatcher would otherwise pin controller + machine
            # + environment for as long as the result lives.
            if self.sim.dispatch is not None:
                controller.trace.unsubscribe(self.sim.dispatch)
        if len(self.jobs) < len(self.spec.jobs) or not controller.all_done():
            raise SimulationTimeout(
                workload_name=self.spec.name,
                max_sim_time=horizon,
                unsubmitted=len(self.spec.jobs) - len(self.jobs),
                pending_job_ids=tuple(sorted(controller.pending)),
                running_job_ids=tuple(sorted(controller.running)),
            )
        summary = summarize(
            self.jobs, controller.trace, self.sim.machine.num_nodes
        )
        return WorkloadResult(
            workload_name=self.spec.name,
            flexible=self.flexible,
            jobs=self.jobs,
            trace=controller.trace,
            summary=summary,
            timelines=self.timeline.snapshot(),
            telemetry=self.sim.telemetry,
        )
