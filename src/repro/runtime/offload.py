"""OmpSs offload semantics over the MPI substrate (Section VI).

The paper's programming model expresses the reconfiguration hand-over as
task offloads::

    #pragma omp task inout(subdata) onto(handler, dest)
    compute(subdata, t);
    #pragma omp taskwait

An offloaded task ships its ``inout`` data to process ``dest`` of the
spawned communicator; the ``taskwait`` closes the region, after which the
original process terminates and execution continues in the new set.

:class:`OffloadRegion` provides that shape for rank generators: each
:meth:`~OffloadRegion.task` transfers the data dependence to the target
process, and :meth:`~OffloadRegion.taskwait` completes the region.  The
receiving generation calls :func:`receive_offload` — the runtime side
that unpacks the data dependence and the resume point.
"""

from __future__ import annotations

from typing import Any, Generator, List, Tuple

from repro.core.actions import ResizeAction
from repro.core.handler import OffloadHandler
from repro.errors import RuntimeAPIError
from repro.mpi.comm import Intercommunicator
from repro.mpi.executor import RankContext
from repro.mpi.ops import Op
from repro.runtime.redistribution import overlapping_new_ranks

#: Message tag reserved for offloaded task payloads.
OFFLOAD_TAG = 0x0F0D


class OffloadRegion:
    """An open set of offload tasks onto a spawned process set."""

    def __init__(self, ctx: RankContext, handler: Intercommunicator) -> None:
        if not isinstance(handler, Intercommunicator):
            raise RuntimeAPIError(
                f"onto() needs the spawn handler (an intercommunicator), "
                f"got {handler!r}"
            )
        self.ctx = ctx
        self.handler = handler
        self._tasks: List[int] = []
        self._closed = False

    @classmethod
    def from_handler(
        cls, ctx: RankContext, handler: OffloadHandler
    ) -> "OffloadRegion":
        """Open a region onto the process set a DMR resize spawned.

        ``handler`` is the opaque :class:`~repro.core.handler.OffloadHandler`
        returned by ``dmr_check_status``; on real (MPI-substrate)
        executions its ``comm`` field carries the spawn intercommunicator
        that ``onto(handler, dest)`` targets.
        """
        if not isinstance(handler, OffloadHandler):
            raise RuntimeAPIError(
                f"from_handler() needs an OffloadHandler, got {handler!r}"
            )
        if handler.comm is None:
            raise RuntimeAPIError(
                "handler carries no communicator: simulated resizes have "
                "no process set to offload onto"
            )
        return cls(ctx, handler.comm)

    def task(
        self, dest: int, inout: Any, resume_at: int = 0
    ) -> Generator[Op, Any, None]:
        """``task inout(data) onto(handler, dest)``: offload one task.

        ``inout`` is the task's data dependence; ``resume_at`` tells the
        target where to pick up the computation (the ``t`` argument of
        Listing 3's offloaded ``compute(subdata, t)``).
        """
        if self._closed:
            raise RuntimeAPIError("offload region already closed by taskwait")
        yield self.ctx.send(dest, (inout, resume_at), tag=OFFLOAD_TAG, comm=self.handler)
        self._tasks.append(dest)

    def taskwait(self) -> Generator[Op, Any, int]:
        """``#pragma omp taskwait``: close the region.

        Offload transfers are eager on this substrate, so the wait
        completes once every task has been shipped; afterwards the caller
        is expected to terminate (the Listing 2/3 semantics: "the initial
        processes terminate, letting the execution continue in the
        processes of the new communicator").  Returns the task count.
        """
        self._closed = True
        return len(self._tasks)
        yield  # pragma: no cover - makes this a generator for API symmetry

    @property
    def offloaded(self) -> Tuple[int, ...]:
        """Destinations that received a task from this rank."""
        return tuple(self._tasks)


def listing3_destinations(handler: OffloadHandler, rank: int) -> Tuple[int, ...]:
    """Where old rank ``rank`` offloads its data under the Listing 3 mapping.

    * **Expand**: the rank partitions its block into ``factor`` subsets and
      offloads subset ``i`` onto new rank ``rank * factor + i``.
    * **Shrink**: only each group's *receiver* (last member) offloads — the
      merged block goes to new rank ``rank // factor``; senders forward
      inside the old process set and offload nothing.
    * **Migration** (equal sizes): every rank offloads onto its namesake.
    * **Non-homogeneous resizes** (neither a multiple nor a divisor) use
      the block-remap overlap: the rank offloads to every new rank whose
      block intersects its own, mirroring ``plan_block_remap``.
    """
    if not 0 <= rank < handler.old_procs:
        raise RuntimeAPIError(
            f"rank {rank} outside the old process set [0, {handler.old_procs})"
        )
    try:
        factor = handler.factor
    except ValueError:
        return overlapping_new_ranks(handler.old_procs, handler.new_procs, rank)
    if handler.action is ResizeAction.EXPAND:
        return tuple(rank * factor + i for i in range(factor))
    if handler.action is ResizeAction.SHRINK:
        if rank % factor == factor - 1:  # the group's receiver
            return (rank // factor,)
        return ()
    return (rank,)


def receive_offload(ctx: RankContext) -> Generator[Op, Any, Tuple[Any, int]]:
    """Runtime side of an offloaded task in the spawned process set.

    Returns ``(inout_data, resume_at)`` — the analogue of Listing 1's
    child branch (``MPI_Comm_get_parent`` + receives from the parent).
    """
    if ctx.parent is None:
        raise RuntimeAPIError(
            "receive_offload() called in a world with no parent "
            "(MPI_Comm_get_parent returned MPI_COMM_NULL)"
        )
    payload = yield ctx.recv(tag=OFFLOAD_TAG, comm=ctx.parent)
    data, resume_at = payload
    return data, resume_at
