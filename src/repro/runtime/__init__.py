"""Nanos++ runtime substrate: job execution, DMR calls, redistribution."""

from repro.runtime.nanos import NanosRuntime, RuntimeConfig, install_runtime_launcher
from repro.runtime.offload import (
    OFFLOAD_TAG,
    OffloadRegion,
    listing3_destinations,
    receive_offload,
)
from repro.runtime.redistribution import (
    RedistributionPlan,
    Transfer,
    plan_block_remap,
    plan_expand,
    plan_for_handler,
    plan_for_resize,
    plan_migrate,
    plan_shrink,
    senders_and_receivers,
)

__all__ = [
    "NanosRuntime",
    "OFFLOAD_TAG",
    "OffloadRegion",
    "RedistributionPlan",
    "RuntimeConfig",
    "Transfer",
    "install_runtime_launcher",
    "listing3_destinations",
    "receive_offload",
    "plan_block_remap",
    "plan_expand",
    "plan_for_handler",
    "plan_for_resize",
    "plan_migrate",
    "plan_shrink",
    "senders_and_receivers",
]
