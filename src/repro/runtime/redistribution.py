"""Data-redistribution planning for expand/shrink (Listing 3 semantics).

The paper's programming model redistributes a block-distributed dataset
when a job is resized:

* **Expand** (Fig. 2a): each original rank partitions its block into
  ``factor`` subsets and offloads subset ``i`` to new rank
  ``myRank * factor + i``.
* **Shrink** (Fig. 2b): original ranks are grouped by ``factor``; within a
  group every *sender* forwards its block to the group's *receiver* (the
  last member), which then offloads the merged block to new rank
  ``receiver // factor``.

Besides the homogeneous mappings above, :func:`plan_block_remap` builds the
general block-to-block intersection plan that supports arbitrary (non
multiple/divisor) resizes, which the paper states the model also supports.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Tuple

from repro.core.handler import OffloadHandler
from repro.errors import RedistributionError


@dataclass(frozen=True)
class Transfer:
    """One network transfer: ``nbytes`` from ``src`` to ``dst``."""

    src: int
    dst: int
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise RedistributionError(f"negative transfer size {self.nbytes}")


@dataclass
class RedistributionPlan:
    """A set of transfers realizing a resize of block-distributed data."""

    kind: str  # "expand" | "shrink" | "remap"
    old_procs: int
    new_procs: int
    total_bytes: float
    transfers: List[Transfer] = field(default_factory=list)

    @property
    def bytes_out(self) -> Dict[int, float]:
        """Bytes leaving each source rank (network transfers only)."""
        out: Dict[int, float] = {}
        for t in self.transfers:
            out[t.src] = out.get(t.src, 0.0) + t.nbytes
        return out

    @property
    def bytes_in(self) -> Dict[int, float]:
        """Bytes arriving at each destination rank."""
        inn: Dict[int, float] = {}
        for t in self.transfers:
            inn[t.dst] = inn.get(t.dst, 0.0) + t.nbytes
        return inn

    @property
    def bytes_moved(self) -> float:
        return sum(t.nbytes for t in self.transfers)

    @property
    def message_count(self) -> int:
        return len(self.transfers)


def _check_args(old_procs: int, new_procs: int, total_bytes: float) -> None:
    if old_procs < 1 or new_procs < 1:
        raise RedistributionError(
            f"process counts must be >= 1, got {old_procs} -> {new_procs}"
        )
    if total_bytes < 0:
        raise RedistributionError(f"negative data size {total_bytes}")


def block_sizes(total: float, parts: int) -> Tuple[float, ...]:
    """Even block split of ``total`` bytes over ``parts`` ranks."""
    base = total / parts
    return tuple(base for _ in range(parts))


def plan_expand(old_procs: int, new_procs: int, total_bytes: float) -> RedistributionPlan:
    """Listing 3 "expand" branch: split each block across ``factor`` ranks."""
    _check_args(old_procs, new_procs, total_bytes)
    if new_procs <= old_procs or new_procs % old_procs:
        raise RedistributionError(
            f"homogeneous expand needs a multiple: {old_procs} -> {new_procs}"
        )
    factor = new_procs // old_procs
    piece = total_bytes / new_procs
    plan = RedistributionPlan("expand", old_procs, new_procs, total_bytes)
    for rank in range(old_procs):
        for i in range(factor):
            dest = rank * factor + i
            plan.transfers.append(Transfer(src=rank, dst=dest, nbytes=piece))
    return plan


def plan_shrink(old_procs: int, new_procs: int, total_bytes: float) -> RedistributionPlan:
    """Listing 3 "shrink" branch: senders forward blocks to group receivers.

    Only the sender->receiver stage crosses the network; the receiver's
    offload to the new co-located process is a local hand-over.
    """
    _check_args(old_procs, new_procs, total_bytes)
    if new_procs >= old_procs or old_procs % new_procs:
        raise RedistributionError(
            f"homogeneous shrink needs a divisor: {old_procs} -> {new_procs}"
        )
    factor = old_procs // new_procs
    piece = total_bytes / old_procs
    plan = RedistributionPlan("shrink", old_procs, new_procs, total_bytes)
    for rank in range(old_procs):
        is_sender = (rank % factor) < (factor - 1)
        if is_sender:
            dst = factor * (rank // factor + 1) - 1  # the group's receiver
            plan.transfers.append(Transfer(src=rank, dst=dst, nbytes=piece))
    return plan


def plan_migrate(nprocs: int, total_bytes: float) -> RedistributionPlan:
    """Migration (Listing 1/2): same process count, new process set.

    Every original rank sends its whole block to its replacement rank in
    the freshly spawned communicator.
    """
    _check_args(nprocs, nprocs, total_bytes)
    piece = total_bytes / nprocs
    plan = RedistributionPlan("migrate", nprocs, nprocs, total_bytes)
    for rank in range(nprocs):
        plan.transfers.append(Transfer(src=rank, dst=rank, nbytes=piece))
    return plan


def _block_overlaps(
    old_procs: int, new_procs: int, old_rank: int
) -> Tuple[Tuple[int, float], ...]:
    """``(new_rank, overlap)`` pairs for old rank ``old_rank``'s block.

    Blocks are the unit-total block distribution ``[r/p, (r+1)/p)``; the
    overlap is the intersected fraction of the total.  This is the single
    source of block-intersection math behind :func:`plan_block_remap` and
    :func:`overlapping_new_ranks`.
    """
    lo, hi = old_rank / old_procs, (old_rank + 1) / old_procs
    first = int(lo * new_procs)
    last = min(new_procs - 1, int(hi * new_procs))
    pairs = []
    for n in range(first, last + 1):
        overlap = min(hi, (n + 1) / new_procs) - max(lo, n / new_procs)
        if overlap > 0:
            pairs.append((n, overlap))
    return tuple(pairs)


def overlapping_new_ranks(
    old_procs: int, new_procs: int, old_rank: int
) -> Tuple[int, ...]:
    """New ranks whose block intersects old rank ``old_rank``'s block.

    The per-rank destination set behind the offload mapping
    (:func:`repro.runtime.offload.listing3_destinations`).
    """
    return tuple(n for n, _ in _block_overlaps(old_procs, new_procs, old_rank))


def plan_block_remap(
    old_procs: int, new_procs: int, total_bytes: float
) -> RedistributionPlan:
    """General block-to-block remap (supports arbitrary resizes).

    Item ranges are block-distributed in both configurations; each
    overlapping (old rank, new rank) range pair becomes one transfer.
    Same-rank overlaps stay local and generate no transfer.
    """
    _check_args(old_procs, new_procs, total_bytes)
    plan = RedistributionPlan("remap", old_procs, new_procs, total_bytes)
    if total_bytes == 0 or old_procs == new_procs:
        return plan
    for old_rank in range(old_procs):
        for new_rank, overlap in _block_overlaps(old_procs, new_procs, old_rank):
            if old_rank == new_rank:
                continue  # data already in place
            plan.transfers.append(
                Transfer(src=old_rank, dst=new_rank, nbytes=overlap * total_bytes)
            )
    return plan


def plan_for_resize(
    old_procs: int, new_procs: int, total_bytes: float
) -> RedistributionPlan:
    """Select the Listing 3 plan for an arbitrary resize.

    Homogeneous resizes (``new`` a multiple or divisor of ``old``) use the
    paper's expand/shrink mappings; equal sizes migrate; everything else
    falls back to the general block remap.  This is the single selection
    point shared by the runtime (:mod:`repro.runtime.nanos`) and the C/R
    comparison baseline (:mod:`repro.checkpoint.cr`).
    """
    _check_args(old_procs, new_procs, total_bytes)
    if new_procs == old_procs:
        return plan_migrate(old_procs, total_bytes)
    if new_procs > old_procs:
        if new_procs % old_procs == 0:
            return plan_expand(old_procs, new_procs, total_bytes)
        return plan_block_remap(old_procs, new_procs, total_bytes)
    if old_procs % new_procs == 0:
        return plan_shrink(old_procs, new_procs, total_bytes)
    return plan_block_remap(old_procs, new_procs, total_bytes)


def plan_for_handler(
    handler: OffloadHandler, total_bytes: float
) -> RedistributionPlan:
    """Plan the data movement behind a resize's :class:`OffloadHandler`.

    The handler returned by ``dmr_check_status`` already fixes the old and
    new process counts; the plan describes the transfers the offloaded
    tasks of Listing 3 will perform for a ``total_bytes`` dataset.
    """
    return plan_for_resize(handler.old_procs, handler.new_procs, total_bytes)


def senders_and_receivers(old_procs: int, factor: int) -> Tuple[Tuple[int, ...], Tuple[int, ...]]:
    """Partition old ranks into (senders, receivers) per Listing 3."""
    if factor < 2:
        raise RedistributionError(f"shrink factor must be >= 2, got {factor}")
    if old_procs % factor:
        raise RedistributionError(
            f"old_procs ({old_procs}) not divisible by factor ({factor})"
        )
    senders = tuple(r for r in range(old_procs) if (r % factor) < factor - 1)
    receivers = tuple(r for r in range(old_procs) if (r % factor) == factor - 1)
    return senders, receivers
