"""The Nanos++ runtime model: drives a job's execution in virtual time.

One :class:`NanosRuntime` instance exists per running job, exactly as one
Nanos++ runtime instance exists per MPI job in the paper.  The runtime:

* iterates the application model, charging step times from the app's
  scalability curve;
* exposes reconfiguring points at iteration boundaries, where it calls the
  DMR logic (inhibitor + sync/async hand-off) and the RMS policy;
* performs the resize actions — the Slurm expand/shrink protocol, the
  ``MPI_Comm_spawn`` of the new process set, and the data redistribution
  modeled through the Listing 3 transfer plans and the network model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, Optional

from repro.apps.base import AppModel
from repro.cluster.configs import ClusterConfig
from repro.core.actions import DecisionReason, ResizeAction, ResizeDecision
from repro.core.dmr import DMRSession
from repro.core.handler import OffloadHandler
from repro.errors import RuntimeAPIError
from repro.metrics.trace import EventKind
from repro.sim.events import Event
from repro.slurm.controller import SlurmController
from repro.slurm.job import Job, JobState
from repro.slurm.resize import expand_protocol, shrink_protocol
from repro.runtime.redistribution import plan_for_resize


@dataclass(frozen=True)
class RuntimeConfig:
    """Nanos++-level tunables."""

    #: Blocking cost of a synchronous DMR call (runtime<->RMS round trip).
    check_cost: float = 0.15
    #: Use ``dmr_icheck_status`` semantics (decision applied one step late).
    async_mode: bool = False
    #: Base cost of gathering shrink ACKs at the management node, plus a
    #: per-released-node term (synchronized workflow of Section V-B2).
    ack_base: float = 0.05
    ack_per_node: float = 0.01
    #: Seconds to wait for a resizer job before aborting an expansion.
    resizer_timeout: float = 30.0
    #: Route synchronous checks through the explicit message protocol
    #: (:mod:`repro.core.protocol`) instead of charging ``check_cost`` as
    #: a flat block.  Same total round-trip cost; the decision is then
    #: evaluated when the request *arrives* at the RMS (mid round trip).
    use_protocol_channel: bool = False
    #: Periodic checkpointing for *non-flexible* jobs (the C/R fault
    #: baseline): every N iterations the application state is written to
    #: the shared filesystem, and a requeued job restarts from its last
    #: checkpoint (paying the read) instead of from scratch.  Flexible
    #: jobs never checkpoint — the DMR mechanism shrinks away from
    #: failing nodes instead.  None disables checkpointing.
    checkpoint_period_steps: Optional[int] = None
    #: Fixed + per-process relaunch cost a requeued job pays at restart
    #: (srun/prolog/daemon setup; mirrors the Fig. 1 C/R cost model).
    restart_base: float = 2.0
    restart_per_process: float = 0.5


class _Requeued(Exception):
    """Internal: this incarnation was requeued at a reconfiguring point
    (forced-shrink target fell below ``min_procs``); unwind the process."""


class NanosRuntime:
    """Executes one (possibly malleable) job inside the simulation."""

    def __init__(
        self,
        controller: SlurmController,
        job: Job,
        app: AppModel,
        cluster: ClusterConfig,
        config: Optional[RuntimeConfig] = None,
    ) -> None:
        if job.is_flexible and app.resize is None:
            raise RuntimeAPIError(
                f"flexible job {job.name!r} needs an app with resize parameters"
            )
        self.env = controller.env
        self.controller = controller
        self.job = job
        self.app = app
        self.cluster = cluster
        self.config = config or RuntimeConfig()
        self.session = DMRSession(
            sched_period=app.sched_period,
            async_mode=self.config.async_mode,
            start_time=self.env.now,
        )
        if self.config.use_protocol_channel:
            from repro.core.protocol import RMSChannel

            self.channel: Optional["RMSChannel"] = RMSChannel(
                controller, latency=self.config.check_cost / 2.0
            )
        else:
            self.channel = None
        #: Number of reconfigurations performed (for tests/metrics).
        self.resize_count = 0
        #: Number of DMR calls that reached the RMS.
        self.check_count = 0

    # -- the job process ---------------------------------------------------
    def run(self) -> Generator[Event, object, None]:
        """Simulation process executing the job to completion."""
        from repro.sim.process import Interrupt

        job, app = self.job, self.app
        malleable = job.is_flexible and app.resize is not None
        cp_period = None if malleable else self.config.checkpoint_period_steps

        try:
            if job.requeues:
                yield from self._restart_costs(cp_period)
            while not app.finished:
                if malleable:
                    yield from self._reconfiguring_point()
                steps = self._batch_steps()
                if cp_period:
                    # Stop each batch at the next checkpoint boundary.
                    steps = min(
                        steps, cp_period - app.completed_steps % cp_period
                    )
                slowdown = self.controller.machine.slowdown_of(job.job_id)
                yield self.env.timeout(
                    steps * app.step_time(job.num_nodes) * slowdown
                )
                app.advance(steps)
                if (
                    cp_period
                    and not app.finished
                    and app.completed_steps % cp_period == 0
                ):
                    yield from self._checkpoint_write()
        except (Interrupt, _Requeued):
            # Killed by the controller (time limit / cancellation /
            # requeue): the job state was already settled by the killer.
            return

        self.controller.finish_job(job, JobState.COMPLETED)

    # -- fault-recovery costs ----------------------------------------------
    def _restart_costs(
        self, cp_period: Optional[int]
    ) -> Generator[Event, object, None]:
        """Costs a requeued incarnation pays before computing again."""
        job = self.job
        started_at = self.env.now
        relaunch = (
            self.config.restart_base
            + self.config.restart_per_process * job.num_nodes
        )
        if relaunch > 0:
            yield self.env.timeout(relaunch)
        if cp_period and job.checkpoint_steps > 0:
            read = self.cluster.storage.read_time(
                self.app.state_bytes, nclients=max(1, job.num_nodes)
            )
            if read > 0:
                yield self.env.timeout(read)
            self.controller.trace.record(
                self.env.now,
                EventKind.CHECKPOINT_READ,
                job.job_id,
                steps=job.checkpoint_steps,
            )
        telemetry = self.controller.telemetry
        if telemetry is not None:
            telemetry.record(
                "runtime.restart", started_at, self.env.now, track="runtime",
                job_id=job.job_id, from_steps=job.checkpoint_steps,
            )

    def _checkpoint_write(self) -> Generator[Event, object, None]:
        """Write one periodic checkpoint (the C/R baseline's premium)."""
        job = self.job
        started_at = self.env.now
        write = self.cluster.storage.write_time(
            self.app.state_bytes, nclients=max(1, job.num_nodes)
        )
        if write > 0:
            yield self.env.timeout(write)
        telemetry = self.controller.telemetry
        if telemetry is not None:
            telemetry.record(
                "checkpoint.write_window", started_at, self.env.now,
                track="runtime", job_id=job.job_id,
                steps=self.app.completed_steps,
            )
        job.checkpoint_steps = self.app.completed_steps
        self.controller.trace.record(
            self.env.now,
            EventKind.CHECKPOINT_WRITE,
            job.job_id,
            steps=self.app.completed_steps,
        )

    def _batch_steps(self) -> int:
        """How many iterations to run before the next reconfiguring point.

        Iterations between two serviced DMR calls are indistinguishable in
        virtual time (constant step cost, no interaction), so they are
        coalesced into one timeout.  With an armed inhibitor this collapses
        e.g. CG's 10000 iterations into one event per scheduling period
        without changing any observable timing.
        """
        app, job = self.app, self.job
        if not (job.is_flexible and app.resize is not None):
            return app.remaining_steps
        period = app.sched_period
        if period <= 0:
            return 1  # a reconfiguring point precedes every iteration
        # Batch sizing must use the same (possibly degraded) step price
        # the run loop charges, or a slowdown would push the next
        # reconfiguring point — and forced-shrink service — late by the
        # slowdown factor.
        step = app.step_time(job.num_nodes) * self.controller.machine.slowdown_of(
            job.job_id
        )
        until_next_check = self.session.inhibitor.last_check + period - self.env.now
        if until_next_check <= 0:
            return 1
        import math

        # Tolerance keeps the batched boundary identical to the per-step
        # loop when until/step is an exact multiple up to fp rounding
        # (see tests/runtime/test_batching.py).
        ratio = until_next_check / step
        steps = math.ceil(ratio - 1e-9 * max(1.0, ratio))
        return max(1, min(app.remaining_steps, steps))

    # -- reconfiguring point -------------------------------------------------
    def _reconfiguring_point(self) -> Generator[Event, object, None]:
        """One ``dmr_check_status``/``dmr_icheck_status`` call site."""
        job = self.job
        # Node failure: the RMS already decided — evacuate the dying
        # node(s) now, bypassing the inhibitor and the regular check.
        forced = self.controller.take_forced(job)
        if forced is not None:
            floor = max(
                1,
                job.resize_request.min_procs
                if job.resize_request is not None
                else 1,
            )
            if forced.target_procs < floor:
                # A policy shrink (or further failures) between issue and
                # service left nothing to shrink to: this incarnation dies
                # and the job restarts like a rigid one.
                self.controller.requeue_job(job, reason="node_failure")
                raise _Requeued()
            self.controller.trace.record(
                self.env.now,
                EventKind.DMR_CHECK,
                job.job_id,
                blocking=False,
                applied=forced.action.value,
                forced=True,
            )
            yield from self._do_shrink(forced)
            return
        # Evolving applications may override the request at this step
        # ("Request an Action" mode, Section IV-1).
        request = self.app.request_at(self.app.completed_steps)
        assert request is not None

        if self.channel is not None and not self.config.async_mode:
            # Explicit protocol: the inhibitor gates the call, then the
            # full message exchange happens on the wire.
            if not self.session.inhibitor.try_acquire(self.env.now):
                return
            self.check_count += 1
            decision = yield from self.channel.check(job, request)
            self.controller.trace.record(
                self.env.now,
                EventKind.DMR_CHECK,
                job.job_id,
                blocking=True,
                applied=decision.action.value,
            )
        else:
            outcome = self.session.check(
                self.env.now,
                decide=lambda: self.controller.check_status(job, request),
            )
            if outcome.inhibited:
                return
            self.check_count += 1
            self.controller.trace.record(
                self.env.now,
                EventKind.DMR_CHECK,
                job.job_id,
                blocking=outcome.blocking,
                applied=outcome.decision.action.value if outcome.decision else None,
            )
            if outcome.blocking:
                # Synchronous mode pays the round trip on the critical path.
                yield self.env.timeout(self.config.check_cost)
            decision = outcome.decision
        if decision is None or not decision:
            return
        if decision.action is ResizeAction.EXPAND:
            yield from self._do_expand(decision)
        elif decision.action is ResizeAction.SHRINK:
            yield from self._do_shrink(decision)

    # -- resize actions ----------------------------------------------------------
    def _do_expand(
        self, decision: ResizeDecision
    ) -> Generator[Event, object, Optional[OffloadHandler]]:
        job = self.job
        old = job.num_nodes
        target = decision.target_procs
        if target <= old:
            return None  # stale asynchronous decision already satisfied

        reconfig_t0 = self.env.now
        nodes = yield from expand_protocol(
            self.controller, job, target, timeout=self.config.resizer_timeout
        )
        if nodes is None:
            return None  # aborted: resources went elsewhere meanwhile

        new = job.num_nodes
        # Spawn the new process set (MPI_Comm_spawn across the final
        # node list) and redistribute the data dependencies through the
        # offloaded tasks of Listing 3.
        yield self.env.timeout(self.cluster.spawn.spawn_time(new))
        plan = plan_for_resize(old, new, self.app.state_bytes)
        yield self.env.timeout(
            self.cluster.network.redistribution_time(
                plan.bytes_out, plan.bytes_in, messages=max(1, plan.message_count)
            )
            * self.controller.machine.network_factor
        )
        self.resize_count += 1
        telemetry = self.controller.telemetry
        if telemetry is not None:
            # The reconfiguration window: protocol RPCs + MPI_Comm_spawn
            # + the Listing 3 data-redistribution network stage.
            telemetry.record(
                "runtime.reconfig", reconfig_t0, self.env.now,
                track="runtime", job_id=job.job_id, action="expand",
                old_procs=old, new_procs=new,
            )
        if self.channel is not None:
            self.channel.notify_expand_complete(job, new)
        return OffloadHandler(
            action=ResizeAction.EXPAND,
            old_procs=old,
            new_procs=new,
            nodes=nodes,
            created_at=self.env.now,
        )

    def _do_shrink(
        self, decision: ResizeDecision
    ) -> Generator[Event, object, Optional[OffloadHandler]]:
        job = self.job
        old = job.num_nodes
        target = decision.target_procs
        if target >= old:
            return None  # stale asynchronous decision already satisfied

        reconfig_t0 = self.env.now
        # Quiesce: outgoing ranks finish their offloaded tasks and ACK to
        # the management node before Slurm may reclaim their nodes.
        releasing = old - target
        yield self.env.timeout(
            self.config.ack_base + self.config.ack_per_node * releasing
        )
        # Spawn the reduced process set and move the data: senders forward
        # their blocks to group receivers (the network stage of Listing 3).
        yield self.env.timeout(self.cluster.spawn.spawn_time(target))
        plan = plan_for_resize(old, target, self.app.state_bytes)
        yield self.env.timeout(
            self.cluster.network.redistribution_time(
                plan.bytes_out, plan.bytes_in, messages=max(1, plan.message_count)
            )
            * self.controller.machine.network_factor
        )
        # A forced (node-failure) shrink must evacuate exactly the DOWN
        # nodes; a policy shrink releases the usual highest-index victims.
        # If yet another node died during the evacuation window above,
        # release only as many dead nodes as this decision covers — the
        # new failure already queued its own forced decision for the
        # next reconfiguring point.
        victims = None
        if decision.reason is DecisionReason.NODE_FAILURE:
            victims = self.controller.machine.down_nodes_of(job.job_id)[
                : old - target
            ]
        # Only now is it safe for Slurm to kill processes on released nodes.
        released = shrink_protocol(self.controller, job, target, victims=victims)
        self.resize_count += 1
        telemetry = self.controller.telemetry
        if telemetry is not None:
            telemetry.record(
                "runtime.reconfig", reconfig_t0, self.env.now,
                track="runtime", job_id=job.job_id, action="shrink",
                old_procs=old, new_procs=target,
                forced=decision.reason is DecisionReason.NODE_FAILURE,
            )
        if self.channel is not None:
            self.channel.notify_shrink_acks(job, released)
        return OffloadHandler(
            action=ResizeAction.SHRINK,
            old_procs=old,
            new_procs=target,
            nodes=self.controller.machine.nodes_of(job.job_id),
            created_at=self.env.now,
        )


def install_runtime_launcher(
    controller: SlurmController,
    cluster: ClusterConfig,
    config: Optional[RuntimeConfig] = None,
) -> None:
    """Hook the controller so each started job runs under a NanosRuntime.

    Jobs must carry their :class:`AppModel` in ``job.payload``.  Also
    installs the requeue-restoration hook: a requeued job's application
    restarts from its last checkpoint when checkpointing is enabled
    (and the job is not flexible), from scratch otherwise.
    """
    cfg = config or RuntimeConfig()

    def launcher(job: Job) -> None:
        app = job.payload
        if not isinstance(app, AppModel):
            raise RuntimeAPIError(
                f"job {job.name!r} payload is not an AppModel: {app!r}"
            )
        runtime = NanosRuntime(controller, job, app, cluster, cfg)
        process = controller.env.process(runtime.run(), name=f"job-{job.job_id}")
        controller.register_job_process(job, process)

    def restore(job: Job) -> None:
        app = job.payload
        if not isinstance(app, AppModel):
            return
        fresh = app.fresh_copy()
        restart_from_checkpoint = (
            cfg.checkpoint_period_steps
            and job.checkpoint_steps > 0
            and not (job.is_flexible and fresh.resize is not None)
        )
        if restart_from_checkpoint:
            fresh.advance(min(job.checkpoint_steps, fresh.iterations))
        job.payload = fresh

    controller.launcher = launcher
    controller.requeue_restore = restore
