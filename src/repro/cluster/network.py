"""Interconnect performance model.

A Hockney (latency/bandwidth, "alpha-beta") model of the FDR10 InfiniBand
fabric of Marenostrum III.  The redistribution planner produces per-rank
send/receive byte counts; this model converts them into elapsed time under
the assumption that distinct node pairs transfer concurrently and each
node's NIC is the serialization point.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

# FDR10 InfiniBand: ~40 Gb/s signalling, ~4.6 GB/s usable point-to-point.
FDR10_BANDWIDTH = 4.6e9  # bytes/second
FDR10_LATENCY = 1.9e-6  # seconds, MPI-level small-message latency

GiB = 1024.0**3
MiB = 1024.0**2


@dataclass(frozen=True)
class NetworkModel:
    """Alpha-beta cost model of the cluster interconnect."""

    latency: float = FDR10_LATENCY
    bandwidth: float = FDR10_BANDWIDTH
    #: Fabric-level aggregate ceiling (bisection bandwidth); caps the sum of
    #: concurrent flows during an all-to-all-style redistribution.
    bisection_bandwidth: float = 64 * FDR10_BANDWIDTH

    def __post_init__(self) -> None:
        if self.latency < 0 or self.bandwidth <= 0 or self.bisection_bandwidth <= 0:
            raise ValueError("latency must be >= 0 and bandwidths positive")

    def transfer_time(self, nbytes: float, nmessages: int = 1) -> float:
        """Time for one rank to move ``nbytes`` split into ``nmessages``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        if nmessages < 1:
            raise ValueError(f"need at least one message, got {nmessages}")
        return self.latency * nmessages + nbytes / self.bandwidth

    def redistribution_time(
        self,
        bytes_out: Mapping[int, float],
        bytes_in: Mapping[int, float],
        messages: int = 1,
    ) -> float:
        """Elapsed time of a data redistribution.

        ``bytes_out[r]`` / ``bytes_in[r]`` give the bytes rank ``r`` sends /
        receives.  Per-rank NIC serialization makes the slowest rank the
        critical path; the fabric's bisection bandwidth bounds the total.
        """
        if not bytes_out and not bytes_in:
            return 0.0
        per_rank = {}
        for rank, nbytes in bytes_out.items():
            per_rank[rank] = per_rank.get(rank, 0.0) + float(nbytes)
        for rank, nbytes in bytes_in.items():
            per_rank[rank] = per_rank.get(rank, 0.0) + float(nbytes)
        slowest = max(per_rank.values(), default=0.0)
        total = sum(bytes_out.values())
        nic_time = slowest / self.bandwidth
        fabric_time = total / self.bisection_bandwidth
        return self.latency * messages + max(nic_time, fabric_time)

    def broadcast_time(self, nbytes: float, nprocs: int) -> float:
        """Binomial-tree broadcast estimate (used by spawn bootstrap)."""
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        if nprocs == 1:
            return 0.0
        import math

        rounds = math.ceil(math.log2(nprocs))
        return rounds * self.transfer_time(nbytes)


@dataclass(frozen=True)
class SpawnModel:
    """Cost model for ``MPI_Comm_spawn`` process creation.

    The DMR measurements in the paper show spawn cost growing with the
    number of created processes (launch + PMI wire-up); the C/R baseline's
    much larger "spawning" bar additionally pays the disk round-trip, which
    lives in :mod:`repro.checkpoint`.
    """

    base: float = 0.6  # daemon handshake, communicator setup
    per_process: float = 0.008  # per-rank launch cost

    def spawn_time(self, nprocs: int) -> float:
        if nprocs < 1:
            raise ValueError(f"nprocs must be >= 1, got {nprocs}")
        return self.base + self.per_process * nprocs
