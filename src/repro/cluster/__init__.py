"""Cluster substrate: nodes, allocation bookkeeping and performance models.

This package simulates the hardware the paper ran on (Marenostrum III):
whole-node allocations, an FDR10-class interconnect (alpha-beta model), an
``MPI_Comm_spawn`` cost model, and a GPFS-like shared filesystem used only
by the checkpoint/restart baseline.
"""

from repro.cluster.configs import (
    ClusterConfig,
    marenostrum_preliminary,
    marenostrum_production,
)
from repro.cluster.machine import Machine
from repro.cluster.network import GiB, MiB, NetworkModel, SpawnModel
from repro.cluster.node import Node, NodeHealth, NodeState
from repro.cluster.storage import SharedFilesystem

__all__ = [
    "ClusterConfig",
    "GiB",
    "Machine",
    "MiB",
    "NetworkModel",
    "Node",
    "NodeHealth",
    "NodeState",
    "SharedFilesystem",
    "SpawnModel",
    "marenostrum_preliminary",
    "marenostrum_production",
]
