"""Shared-filesystem (GPFS-like) performance model.

Only the checkpoint/restart baseline touches the filesystem; the DMR API
redistributes data through the interconnect instead.  The decisive
characteristic reproduced here is that a parallel filesystem's aggregate
bandwidth is shared and far below the fabric's aggregate, which is what
makes C/R reconfiguration pay the 30-80x "spawning" penalty of Fig. 1.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class SharedFilesystem:
    """Bandwidth/latency model of a shared parallel filesystem."""

    #: Aggregate write bandwidth across all clients (bytes/s).
    aggregate_write_bandwidth: float = 1.2e9
    #: Aggregate read bandwidth across all clients (bytes/s).
    aggregate_read_bandwidth: float = 1.8e9
    #: Ceiling a single client can reach (bytes/s).
    per_client_bandwidth: float = 0.45e9
    #: Per-operation metadata latency (open/close/stat), seconds.
    metadata_latency: float = 8e-3

    def __post_init__(self) -> None:
        if min(
            self.aggregate_write_bandwidth,
            self.aggregate_read_bandwidth,
            self.per_client_bandwidth,
        ) <= 0:
            raise ValueError("bandwidths must be positive")
        if self.metadata_latency < 0:
            raise ValueError("metadata latency must be >= 0")

    def _effective(self, aggregate: float, nclients: int) -> float:
        if nclients < 1:
            raise ValueError(f"nclients must be >= 1, got {nclients}")
        return min(aggregate, nclients * self.per_client_bandwidth)

    def write_time(self, nbytes: float, nclients: int = 1) -> float:
        """Time for ``nclients`` ranks to collectively write ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        bw = self._effective(self.aggregate_write_bandwidth, nclients)
        return self.metadata_latency + nbytes / bw

    def read_time(self, nbytes: float, nclients: int = 1) -> float:
        """Time for ``nclients`` ranks to collectively read ``nbytes``."""
        if nbytes < 0:
            raise ValueError(f"negative byte count {nbytes}")
        bw = self._effective(self.aggregate_read_bandwidth, nclients)
        return self.metadata_latency + nbytes / bw
