"""Cluster-wide node allocation bookkeeping.

The :class:`Machine` tracks which nodes belong to which job, supports the
partial grow/release operations the Slurm resize protocol needs, and emits
allocation-change notifications that the metrics layer integrates into the
resource-utilization series reported in Table II of the paper.

Health bookkeeping: a DOWN or admin-drained node is *unavailable* — it is
neither free nor allocated, and :meth:`allocate` can never pick it.  A node
that fails while a job holds it stays in that job's allocation (the job
must evacuate or be requeued by the controller); releasing it clears the
ownership without returning the node to the free pool.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.node import Node, NodeState
from repro.errors import ClusterError

#: Signature of allocation observers: (allocated_node_count) -> None.
AllocationObserver = Callable[[int], None]


class Machine:
    """A homogeneous cluster of whole-node-allocatable compute nodes."""

    def __init__(
        self,
        num_nodes: int,
        cores_per_node: int = 16,
        memory_gb: float = 128.0,
        name: str = "marenostrum",
    ) -> None:
        if num_nodes < 1:
            raise ClusterError(f"cluster needs at least one node, got {num_nodes}")
        self.name = name
        self.nodes: List[Node] = [
            Node(index=i, cores=cores_per_node, memory_gb=memory_gb)
            for i in range(num_nodes)
        ]
        self._free: Set[int] = set(range(num_nodes))
        self._by_job: Dict[int, List[int]] = {}
        self._observers: List[AllocationObserver] = []
        #: Unheld DOWN or admin-drained nodes: neither free nor allocated.
        self._unavailable: Set[int] = set()
        #: Nodes an operator drained (stay out of the pool when released).
        self._admin_drained: Set[int] = set()
        #: DOWN nodes whose repair arrived while a job still held them;
        #: the recovery completes when the holder releases the node.
        self._deferred_recover: Set[int] = set()
        #: Held nodes that will NOT rejoin the free pool when released
        #: (dead without a pending repair, or operator-drained).  The
        #: backfill planner subtracts these from a job's freed-at-end
        #: count so shadow reservations stay honest under faults.
        self._held_unreturnable: Set[int] = set()
        #: Interconnect degradation multiplier (>= 1.0; faults raise it,
        #: the runtime scales redistribution times by it).
        self.network_factor: float = 1.0

    # -- introspection ---------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cores_per_node(self) -> int:
        return self.nodes[0].cores

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        """Nodes currently allocated to jobs (excludes unavailable ones)."""
        return self.num_nodes - len(self._free) - len(self._unavailable)

    @property
    def unavailable_count(self) -> int:
        """Unheld DOWN + admin-drained nodes (out of the pool)."""
        return len(self._unavailable)

    @property
    def alive_count(self) -> int:
        """Nodes not DOWN (free, allocated or merely draining)."""
        return sum(1 for n in self.nodes if n.state is not NodeState.DOWN)

    @property
    def held_unreturnable(self) -> Set[int]:
        """Held nodes that will not rejoin the pool on release
        (dead-without-repair or operator-drained); the backfill planner's
        freed-at-end correction."""
        return self._held_unreturnable

    def can_allocate(self, count: int) -> bool:
        """Whether ``count`` free nodes are currently available."""
        return 0 <= count <= len(self._free)

    def nodes_of(self, job_id: int) -> Tuple[int, ...]:
        """Indices of the nodes currently owned by ``job_id`` (sorted)."""
        return tuple(self._by_job.get(job_id, ()))

    def hostnames_of(self, job_id: int) -> Tuple[str, ...]:
        """Slurm-style node list of a job (what `scontrol` would print)."""
        return tuple(self.nodes[i].hostname for i in self.nodes_of(job_id))

    def owner_of(self, node_index: int) -> Optional[int]:
        return self.nodes[node_index].job_id

    def jobs(self) -> Tuple[int, ...]:
        """Identifiers of all jobs that currently hold nodes."""
        return tuple(self._by_job)

    # -- observers --------------------------------------------------------
    def subscribe(self, observer: AllocationObserver) -> None:
        """Register a callback invoked after every allocation change."""
        self._observers.append(observer)

    def _notify(self) -> None:
        used = self.used_count
        for obs in self._observers:
            obs(used)

    # -- allocation -------------------------------------------------------
    def allocate(self, job_id: int, count: int) -> Tuple[int, ...]:
        """Grant ``count`` free nodes to ``job_id`` (lowest indices first).

        A job may call this repeatedly; new nodes are appended to its
        existing allocation (this is how an expansion reuses the original
        nodes, per Section III of the paper).
        """
        if count < 1:
            raise ClusterError(f"allocation count must be >= 1, got {count}")
        if count > len(self._free):
            raise ClusterError(
                f"job {job_id}: requested {count} nodes, only {len(self._free)} free"
            )
        picked = sorted(self._free)[:count]
        for idx in picked:
            self.nodes[idx].assign(job_id)
            self._free.discard(idx)
        self._by_job.setdefault(job_id, []).extend(picked)
        self._by_job[job_id].sort()
        self._notify()
        return tuple(picked)

    def allocate_specific(self, job_id: int, node_indices: Sequence[int]) -> None:
        """Grant exactly the given free nodes to ``job_id``.

        Used when Slurm transfers the node set of a cancelled resizer job
        to the original job during an expansion.
        """
        indices = list(node_indices)
        for idx in indices:
            if idx not in self._free:
                raise ClusterError(f"node {idx} is not free")
        for idx in indices:
            self.nodes[idx].assign(job_id)
            self._free.discard(idx)
        self._by_job.setdefault(job_id, []).extend(indices)
        self._by_job[job_id].sort()
        self._notify()

    def release(self, job_id: int, node_indices: Optional[Sequence[int]] = None) -> Tuple[int, ...]:
        """Release some (or all) nodes of ``job_id`` back to the free pool."""
        owned = self._by_job.get(job_id)
        if not owned:
            raise ClusterError(f"job {job_id} holds no nodes")
        if node_indices is None:
            to_release = list(owned)
        else:
            to_release = list(node_indices)
            missing = [i for i in to_release if i not in owned]
            if missing:
                raise ClusterError(f"job {job_id} does not own nodes {missing}")
        for idx in to_release:
            node = self.nodes[idx]
            if node.state is NodeState.DOWN:
                # A dead node never returns to the free pool; a repair that
                # arrived while the job still held it completes now — but a
                # repair does not lift an operator drain (recover_node has
                # the same rule for unheld nodes).
                node.job_id = None
                if idx in self._deferred_recover:
                    self._deferred_recover.discard(idx)
                    node.recover()
                    if idx in self._admin_drained:
                        node.state = NodeState.DRAINING
                        self._unavailable.add(idx)
                    else:
                        self._free.add(idx)
                else:
                    self._unavailable.add(idx)
            elif idx in self._admin_drained:
                # Operator drain outlives the allocation: park the node.
                node.state = NodeState.DRAINING
                node.job_id = None
                self._unavailable.add(idx)
            else:
                node.free()
                self._free.add(idx)
            self._held_unreturnable.discard(idx)
            owned.remove(idx)
        if not owned:
            del self._by_job[job_id]
        self._notify()
        return tuple(sorted(to_release))

    def shrink_candidates(self, job_id: int, count: int) -> Tuple[int, ...]:
        """Pick which nodes a shrink should release (highest indices first).

        Keeping the lowest-indexed nodes mirrors Slurm's behaviour of
        retaining the job's head node (where the management process that
        collects shrink ACKs runs).
        """
        owned = self._by_job.get(job_id, [])
        if count > len(owned):
            raise ClusterError(
                f"job {job_id}: cannot release {count} of {len(owned)} nodes"
            )
        return tuple(sorted(owned, reverse=True)[:count])

    def drain(self, node_indices: Sequence[int]) -> None:
        """Mark allocated nodes as draining (pending shrink release)."""
        for idx in node_indices:
            self.nodes[idx].drain()

    # -- health (driven by the controller / fault injector) -----------------
    def fail_node(self, node_index: int) -> Optional[int]:
        """Take a node DOWN; returns the holding job's id, if any.

        A free (or drained-idle) node drops straight out of the pool.  An
        allocated node stays in its job's allocation — the caller (the
        controller) decides how the job reacts.  Failing an already-DOWN
        node raises (a ``None`` return would be indistinguishable from
        "a free node failed"); the controller pre-checks and no-ops.
        """
        node = self.nodes[node_index]
        if node.state is NodeState.DOWN:
            raise ClusterError(f"node {node_index} is already down")
        holder = node.job_id
        node.fail()
        if holder is None:
            self._free.discard(node_index)
            self._unavailable.add(node_index)
        else:
            self._held_unreturnable.add(node_index)
        self._notify()
        return holder

    def recover_node(self, node_index: int) -> bool:
        """Repair a DOWN node; returns True once it is back in the pool.

        A node still held by a job cannot rejoin immediately: the repair
        is deferred and completes when the holder releases it.
        """
        node = self.nodes[node_index]
        if node.state is not NodeState.DOWN:
            raise ClusterError(
                f"node {node_index} is {node.state.value}, not down"
            )
        if node.job_id is not None:
            self._deferred_recover.add(node_index)
            if node_index not in self._admin_drained:
                # The deferred repair means the node WILL rejoin the pool
                # when its holder releases it.
                self._held_unreturnable.discard(node_index)
            return False
        node.recover()
        self._unavailable.discard(node_index)
        if node_index in self._admin_drained:
            # Repair does not lift an operator drain.
            node.state = NodeState.DRAINING
            self._unavailable.add(node_index)
        else:
            self._free.add(node_index)
        self._notify()
        return True

    def drain_node(self, node_index: int) -> None:
        """Operator drain: no new work lands on the node.

        An idle node leaves the free pool at once; an allocated node keeps
        its job but is parked (not freed) when the job releases it.
        """
        node = self.nodes[node_index]
        if node.state is NodeState.DOWN:
            raise ClusterError(f"node {node_index} is down, cannot drain")
        self._admin_drained.add(node_index)
        if node.state is NodeState.IDLE:
            node.state = NodeState.DRAINING
            self._free.discard(node_index)
            self._unavailable.add(node_index)
            self._notify()
        elif node.state is NodeState.ALLOCATED:
            node.drain()
            self._held_unreturnable.add(node_index)

    def resume_node(self, node_index: int) -> None:
        """Lift an operator drain (the inverse of :meth:`drain_node`)."""
        node = self.nodes[node_index]
        self._admin_drained.discard(node_index)
        if node.state is NodeState.DRAINING:
            if node.job_id is None:
                node.state = NodeState.IDLE
                self._unavailable.discard(node_index)
                self._free.add(node_index)
                self._notify()
            else:
                node.state = NodeState.ALLOCATED
                self._held_unreturnable.discard(node_index)

    def set_perf_factor(self, node_index: int, factor: float) -> None:
        """Set a node's performance multiplier (transient slowdown)."""
        if factor < 1.0:
            raise ClusterError(f"perf factor must be >= 1.0, got {factor}")
        self.nodes[node_index].perf_factor = factor

    def down_nodes_of(self, job_id: int) -> Tuple[int, ...]:
        """The DOWN nodes a job still holds (forced-shrink victims)."""
        return tuple(
            i for i in self.nodes_of(job_id)
            if self.nodes[i].state is NodeState.DOWN
        )

    def slowdown_of(self, job_id: int) -> float:
        """The job's effective slowdown: its slowest node gates each step."""
        owned = self._by_job.get(job_id)
        if not owned:
            return 1.0
        return max(self.nodes[i].perf_factor for i in owned)

    def utilization(self) -> float:
        """Instantaneous fraction of allocated nodes."""
        return self.used_count / self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Machine {self.name!r} {self.used_count}/{self.num_nodes} "
            f"nodes allocated>"
        )
