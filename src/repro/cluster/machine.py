"""Cluster-wide node allocation bookkeeping.

The :class:`Machine` tracks which nodes belong to which job, supports the
partial grow/release operations the Slurm resize protocol needs, and emits
allocation-change notifications that the metrics layer integrates into the
resource-utilization series reported in Table II of the paper.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

from repro.cluster.node import Node, NodeState
from repro.errors import ClusterError

#: Signature of allocation observers: (allocated_node_count) -> None.
AllocationObserver = Callable[[int], None]


class Machine:
    """A homogeneous cluster of whole-node-allocatable compute nodes."""

    def __init__(
        self,
        num_nodes: int,
        cores_per_node: int = 16,
        memory_gb: float = 128.0,
        name: str = "marenostrum",
    ) -> None:
        if num_nodes < 1:
            raise ClusterError(f"cluster needs at least one node, got {num_nodes}")
        self.name = name
        self.nodes: List[Node] = [
            Node(index=i, cores=cores_per_node, memory_gb=memory_gb)
            for i in range(num_nodes)
        ]
        self._free: Set[int] = set(range(num_nodes))
        self._by_job: Dict[int, List[int]] = {}
        self._observers: List[AllocationObserver] = []

    # -- introspection ---------------------------------------------------
    @property
    def num_nodes(self) -> int:
        return len(self.nodes)

    @property
    def cores_per_node(self) -> int:
        return self.nodes[0].cores

    @property
    def free_count(self) -> int:
        return len(self._free)

    @property
    def used_count(self) -> int:
        return self.num_nodes - len(self._free)

    def can_allocate(self, count: int) -> bool:
        """Whether ``count`` free nodes are currently available."""
        return 0 <= count <= len(self._free)

    def nodes_of(self, job_id: int) -> Tuple[int, ...]:
        """Indices of the nodes currently owned by ``job_id`` (sorted)."""
        return tuple(self._by_job.get(job_id, ()))

    def hostnames_of(self, job_id: int) -> Tuple[str, ...]:
        """Slurm-style node list of a job (what `scontrol` would print)."""
        return tuple(self.nodes[i].hostname for i in self.nodes_of(job_id))

    def owner_of(self, node_index: int) -> Optional[int]:
        return self.nodes[node_index].job_id

    def jobs(self) -> Tuple[int, ...]:
        """Identifiers of all jobs that currently hold nodes."""
        return tuple(self._by_job)

    # -- observers --------------------------------------------------------
    def subscribe(self, observer: AllocationObserver) -> None:
        """Register a callback invoked after every allocation change."""
        self._observers.append(observer)

    def _notify(self) -> None:
        used = self.used_count
        for obs in self._observers:
            obs(used)

    # -- allocation -------------------------------------------------------
    def allocate(self, job_id: int, count: int) -> Tuple[int, ...]:
        """Grant ``count`` free nodes to ``job_id`` (lowest indices first).

        A job may call this repeatedly; new nodes are appended to its
        existing allocation (this is how an expansion reuses the original
        nodes, per Section III of the paper).
        """
        if count < 1:
            raise ClusterError(f"allocation count must be >= 1, got {count}")
        if count > len(self._free):
            raise ClusterError(
                f"job {job_id}: requested {count} nodes, only {len(self._free)} free"
            )
        picked = sorted(self._free)[:count]
        for idx in picked:
            self.nodes[idx].assign(job_id)
            self._free.discard(idx)
        self._by_job.setdefault(job_id, []).extend(picked)
        self._by_job[job_id].sort()
        self._notify()
        return tuple(picked)

    def allocate_specific(self, job_id: int, node_indices: Sequence[int]) -> None:
        """Grant exactly the given free nodes to ``job_id``.

        Used when Slurm transfers the node set of a cancelled resizer job
        to the original job during an expansion.
        """
        indices = list(node_indices)
        for idx in indices:
            if idx not in self._free:
                raise ClusterError(f"node {idx} is not free")
        for idx in indices:
            self.nodes[idx].assign(job_id)
            self._free.discard(idx)
        self._by_job.setdefault(job_id, []).extend(indices)
        self._by_job[job_id].sort()
        self._notify()

    def release(self, job_id: int, node_indices: Optional[Sequence[int]] = None) -> Tuple[int, ...]:
        """Release some (or all) nodes of ``job_id`` back to the free pool."""
        owned = self._by_job.get(job_id)
        if not owned:
            raise ClusterError(f"job {job_id} holds no nodes")
        if node_indices is None:
            to_release = list(owned)
        else:
            to_release = list(node_indices)
            missing = [i for i in to_release if i not in owned]
            if missing:
                raise ClusterError(f"job {job_id} does not own nodes {missing}")
        for idx in to_release:
            self.nodes[idx].free()
            self._free.add(idx)
            owned.remove(idx)
        if not owned:
            del self._by_job[job_id]
        self._notify()
        return tuple(sorted(to_release))

    def shrink_candidates(self, job_id: int, count: int) -> Tuple[int, ...]:
        """Pick which nodes a shrink should release (highest indices first).

        Keeping the lowest-indexed nodes mirrors Slurm's behaviour of
        retaining the job's head node (where the management process that
        collects shrink ACKs runs).
        """
        owned = self._by_job.get(job_id, [])
        if count > len(owned):
            raise ClusterError(
                f"job {job_id}: cannot release {count} of {len(owned)} nodes"
            )
        return tuple(sorted(owned, reverse=True)[:count])

    def drain(self, node_indices: Sequence[int]) -> None:
        """Mark allocated nodes as draining (pending shrink release)."""
        for idx in node_indices:
            self.nodes[idx].drain()

    def utilization(self) -> float:
        """Instantaneous fraction of allocated nodes."""
        return self.used_count / self.num_nodes

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"<Machine {self.name!r} {self.used_count}/{self.num_nodes} "
            f"nodes allocated>"
        )
