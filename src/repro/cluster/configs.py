"""Preset cluster configurations matching the paper's testbeds."""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.cluster.machine import Machine
from repro.cluster.network import NetworkModel, SpawnModel
from repro.cluster.storage import SharedFilesystem


@dataclass
class ClusterConfig:
    """Bundle of machine size and performance models for one testbed."""

    num_nodes: int
    cores_per_node: int = 16
    memory_gb: float = 128.0
    name: str = "marenostrum"
    network: NetworkModel = field(default_factory=NetworkModel)
    storage: SharedFilesystem = field(default_factory=SharedFilesystem)
    spawn: SpawnModel = field(default_factory=SpawnModel)

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise ValueError(f"num_nodes must be >= 1, got {self.num_nodes}")

    def build_machine(self) -> Machine:
        """Instantiate a fresh :class:`Machine` for this configuration."""
        return Machine(
            num_nodes=self.num_nodes,
            cores_per_node=self.cores_per_node,
            memory_gb=self.memory_gb,
            name=self.name,
        )


def marenostrum_preliminary() -> ClusterConfig:
    """Section VIII testbed: 20 nodes for the Flexible Sleep study."""
    return ClusterConfig(num_nodes=20, name="marenostrum-prelim")


def marenostrum_production() -> ClusterConfig:
    """Section IX testbed: 65 nodes for the real-application workloads."""
    return ClusterConfig(num_nodes=65, name="marenostrum-prod")
