"""Compute-node model.

Nodes mirror the Marenostrum III configuration used in the paper: two
8-core Intel Xeon E5-2670 sockets (16 cores) and 128 GB of RAM per node.
The simulator allocates whole nodes to jobs (the paper's malleability is
expressed in nodes, one MPI rank per node, intra-node parallelism handled
by OpenMP/OmpSs inside the rank).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class NodeState(enum.Enum):
    """Slurm-like node lifecycle states."""

    IDLE = "idle"
    ALLOCATED = "allocated"
    DRAINING = "draining"  # marked for release during a shrink
    DOWN = "down"


@dataclass
class Node:
    """A single compute node."""

    index: int
    cores: int = 16
    memory_gb: float = 128.0
    state: NodeState = NodeState.IDLE
    #: Identifier of the owning job, when allocated.
    job_id: Optional[int] = None
    #: Host name, Marenostrum-style.
    hostname: str = field(default="")

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"node index must be >= 0, got {self.index}")
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if not self.hostname:
            self.hostname = f"mn{self.index:04d}"

    @property
    def is_free(self) -> bool:
        return self.state is NodeState.IDLE

    def assign(self, job_id: int) -> None:
        if self.state is not NodeState.IDLE:
            raise ValueError(f"{self.hostname} is {self.state.value}, cannot assign")
        self.state = NodeState.ALLOCATED
        self.job_id = job_id

    def drain(self) -> None:
        if self.state is not NodeState.ALLOCATED:
            raise ValueError(f"{self.hostname} is {self.state.value}, cannot drain")
        self.state = NodeState.DRAINING

    def free(self) -> None:
        if self.state is NodeState.DOWN:
            raise ValueError(f"{self.hostname} is down")
        self.state = NodeState.IDLE
        self.job_id = None
