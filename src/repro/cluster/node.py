"""Compute-node model.

Nodes mirror the Marenostrum III configuration used in the paper: two
8-core Intel Xeon E5-2670 sockets (16 cores) and 128 GB of RAM per node.
The simulator allocates whole nodes to jobs (the paper's malleability is
expressed in nodes, one MPI rank per node, intra-node parallelism handled
by OpenMP/OmpSs inside the rank).

Besides the allocation lifecycle, nodes carry a *health* dimension (the
Slurm ``UP``/``DRAIN``/``DOWN`` vocabulary): a failed node drops out of
the allocatable pool, a draining node finishes its current work but takes
no new jobs, and a degraded node runs slower than its peers
(``perf_factor``).  The fault-injection subsystem (:mod:`repro.faults`)
drives these transitions.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ClusterError


class NodeState(enum.Enum):
    """Slurm-like node lifecycle states."""

    IDLE = "idle"
    ALLOCATED = "allocated"
    DRAINING = "draining"  # marked for release during a shrink, or admin drain
    DOWN = "down"


#: Coarse Slurm-style health buckets derived from :class:`NodeState`
#: (mirrors the DOWN/DRAIN vocabulary of operational Slurm tooling).
class NodeHealth(enum.Enum):
    UP = "up"
    DRAIN = "drain"
    DOWN = "down"


@dataclass
class Node:
    """A single compute node."""

    index: int
    cores: int = 16
    memory_gb: float = 128.0
    state: NodeState = NodeState.IDLE
    #: Identifier of the owning job, when allocated.
    job_id: Optional[int] = None
    #: Host name, Marenostrum-style.
    hostname: str = field(default="")
    #: Performance multiplier on work executed on this node (1.0 = nominal,
    #: 2.0 = everything takes twice as long).  Transient slowdown faults
    #: raise it; a bulk-synchronous job runs at the pace of its slowest node.
    perf_factor: float = 1.0

    def __post_init__(self) -> None:
        if self.index < 0:
            raise ValueError(f"node index must be >= 0, got {self.index}")
        if self.cores <= 0:
            raise ValueError(f"cores must be positive, got {self.cores}")
        if not self.hostname:
            self.hostname = f"mn{self.index:04d}"

    @property
    def is_free(self) -> bool:
        return self.state is NodeState.IDLE

    @property
    def health(self) -> NodeHealth:
        """The node's Slurm-style health bucket."""
        if self.state is NodeState.DOWN:
            return NodeHealth.DOWN
        if self.state is NodeState.DRAINING:
            return NodeHealth.DRAIN
        return NodeHealth.UP

    def assign(self, job_id: int) -> None:
        if self.state is not NodeState.IDLE:
            raise ValueError(f"{self.hostname} is {self.state.value}, cannot assign")
        self.state = NodeState.ALLOCATED
        self.job_id = job_id

    def drain(self) -> None:
        if self.state is not NodeState.ALLOCATED:
            raise ValueError(f"{self.hostname} is {self.state.value}, cannot drain")
        self.state = NodeState.DRAINING

    def free(self) -> None:
        if self.state is NodeState.DOWN:
            raise ValueError(f"{self.hostname} is down")
        self.state = NodeState.IDLE
        self.job_id = None

    # -- health transitions (driven by the fault layer) -------------------
    def fail(self) -> None:
        """Hard failure: the node goes DOWN in place.

        An allocated node keeps its ``job_id`` — the owning job still
        *holds* the dying node until the controller reacts (requeue for
        rigid jobs, forced shrink for flexible ones); the machine's
        release path knows not to return a DOWN node to the free pool.
        """
        if self.state is NodeState.DOWN:
            raise ClusterError(f"{self.hostname} is already down")
        self.state = NodeState.DOWN
        self.perf_factor = 1.0

    def recover(self) -> None:
        """Repair a DOWN node back to IDLE (it must not be job-held)."""
        if self.state is not NodeState.DOWN:
            raise ClusterError(f"{self.hostname} is {self.state.value}, not down")
        if self.job_id is not None:
            raise ClusterError(
                f"{self.hostname} is still held by job {self.job_id}"
            )
        self.state = NodeState.IDLE
