"""Deterministic bounded execution for tests.

``env.run(until=...)`` trusts the event schedule: a wedged process that
keeps rescheduling itself (or a scheduler loop that stops making
progress) spins the test — and CI — forever.  :func:`run_bounded` drives
the environment with an explicit event budget and raises
:class:`WedgedSimulation` the moment the budget is exhausted, so a hang
becomes a crisp failure with the simulation state in the message.
"""

from __future__ import annotations

from typing import Optional

from repro.errors import SimulationError
from repro.sim.engine import EmptySchedule, Environment

#: Default per-call event budget; generous for unit-scale simulations
#: (the whole fig3 experiment processes a few thousand events).
DEFAULT_MAX_EVENTS = 200_000


class WedgedSimulation(SimulationError):
    """A bounded run exhausted its event budget without finishing."""


def run_bounded(
    env: Environment,
    until: Optional[float] = None,
    max_events: int = DEFAULT_MAX_EVENTS,
) -> None:
    """Run ``env`` like ``env.run(until=...)`` under an event budget.

    With ``until=None`` the schedule must drain within ``max_events``
    events; with a numeric horizon, all events up to (and including) the
    horizon's timestamp are processed and the clock then advances to the
    horizon, exactly like ``env.run(until=...)`` — except that same-time
    events scheduled *at* the horizon are processed rather than cut off
    mid-timestamp, which is what the deterministic join semantics of the
    backfill-thread tests need.
    """
    if max_events < 1:
        raise SimulationError(f"max_events must be >= 1, got {max_events}")
    start = env.events_processed

    def check_budget() -> None:
        if env.events_processed - start > max_events:
            raise WedgedSimulation(
                f"simulation still busy after {max_events} events "
                f"(t={env.now}); a process is likely wedged"
            )

    if until is None:
        while True:
            try:
                env.step()
            except EmptySchedule:
                return
            check_budget()
        return
    horizon = float(until)
    if horizon < env.now:
        raise SimulationError(f"until={horizon} lies in the past (now={env.now})")
    while env.peek() <= horizon:
        env.step()
        check_budget()
    env.run(until=horizon)
