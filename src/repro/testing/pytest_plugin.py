"""Pytest plugin wiring invariant checks into every Session-built run.

Loaded by the repository's root ``conftest.py`` (``pytest_plugins``), so
every tier-1 test and benchmark that assembles a simulation through
:meth:`repro.api.Session.build` gets a live
:class:`~repro.testing.invariants.InvariantObserver` for free — the
experiment drivers, CLI tests, sweep cells (in-process ones) and
benchmarks are all invariant-checked on every run without any of them
knowing.

Opt out per-test with the ``no_invariants`` marker, for the rare test
that intentionally drives the simulation into an illegal state::

    @pytest.mark.no_invariants
    def test_breaks_things_on_purpose(): ...
"""

from __future__ import annotations

import os

import pytest


def pytest_addoption(parser):
    parser.addoption(
        "--run-slow",
        action="store_true",
        default=False,
        help="run tests marked slow (e.g. the million-job scale bench)",
    )


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "no_invariants: disable the automatic InvariantObserver wiring "
        "for this test (it intentionally violates a simulation invariant)",
    )
    config.addinivalue_line(
        "markers",
        "slow: multi-minute test, skipped unless --run-slow (or "
        "REPRO_RUN_SLOW=1) is given",
    )


def pytest_collection_modifyitems(config, items):
    if config.getoption("--run-slow") or os.environ.get("REPRO_RUN_SLOW"):
        return
    skip_slow = pytest.mark.skip(
        reason="slow test: opt in with --run-slow or REPRO_RUN_SLOW=1"
    )
    for item in items:
        if "slow" in item.keywords:
            item.add_marker(skip_slow)


@pytest.fixture(autouse=True)
def _invariant_checked_sessions(request, monkeypatch):
    """Append an InvariantObserver to every Session.build in the test."""
    if request.node.get_closest_marker("no_invariants"):
        yield
        return
    from repro.api.session import Session
    from repro.testing.invariants import InvariantObserver

    original_build = Session.build
    observers = []

    def checked_build(self, extra_observers=()):
        observer = InvariantObserver()
        observers.append(observer)
        return original_build(
            self, extra_observers=tuple(extra_observers) + (observer,)
        )

    monkeypatch.setattr(Session, "build", checked_build)
    yield
    # End-of-run sweep: last-timestamp failures have no later event to
    # trigger the online check, so verify them at teardown (raises
    # InvariantViolation, failing the test).
    for observer in observers:
        observer.verify_final()
