"""Online invariant checking for simulation runs.

The :class:`InvariantObserver` is a :class:`~repro.api.observers.SessionObserver`
that validates, on every trace event, the rules the simulator must never
break — no matter which workload, policy, scheduler mode or fault plan is
running:

* **monotonic-time** — trace events never go backwards in time;
* **no-double-allocation** — a node is never granted to two jobs at once
  (checked both from the event stream and against the machine);
* **conservation** — free + unavailable + allocated node counts always
  sum to the cluster size, and per-node ownership matches the allocation
  map;
* **no-start-on-down** — jobs start (and expand) only onto nodes that
  are actually allocated to them and not DOWN;
* **failure-handling** — when a held node fails, its job must react at
  that timestamp: a rigid job is requeued, a flexible job either carries
  a forced-shrink decision until it evacuates or is requeued;
* **decision/ack pairing** — every observed expand/shrink was authorized
  by a prior, unconsumed ``RESIZE_DECISION`` with the matching action.

A violation raises :class:`~repro.errors.InvariantViolation` immediately,
inside the simulation step that broke the rule, so the failing test
points at the cause rather than a downstream symptom.

Attach one to any session (``session.observe(InvariantObserver())``), or
rely on the shared pytest fixture (:mod:`repro.testing.pytest_plugin`)
that wires one into every :meth:`repro.api.Session.build` in the suite.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from repro.api.observers import SessionObserver
from repro.cluster.node import NodeState
from repro.errors import InvariantViolation
from repro.metrics.trace import EventKind, TraceEvent

#: Resize-decision actions that arm the pairing check.
_ACTIONABLE = ("expand", "shrink")


class InvariantObserver(SessionObserver):
    """Checks simulation invariants live, from the trace event stream."""

    #: An invariant violation IS this observer's product: propagate it
    #: out of the simulation instead of letting the dispatch's
    #: non-strict isolation (catch/log/count) swallow it.
    strict = True

    def __init__(self, controller=None) -> None:
        self._controller = controller
        self._last_time = float("-inf")
        #: node index -> owning job id, reconstructed from events.
        self._owner: Dict[int, int] = {}
        #: job id -> unconsumed decision actions ("expand"/"shrink"); a
        #: list because a node failure can supersede an in-flight
        #: expansion's decision before the expansion completes.
        self._decisions: Dict[int, List[str]] = {}
        #: (fail_time, node, holder) failures awaiting a reaction.
        self._open_failures: List[Tuple[float, int, int]] = []
        self._resizer_ids: Set[int] = set()
        #: Number of per-event check passes executed.
        self.checks = 0

    # -- wiring --------------------------------------------------------------
    def on_attach(self, controller) -> None:
        self._controller = controller

    @property
    def machine(self):
        return self._controller.machine if self._controller else None

    # -- the event hook -----------------------------------------------------
    def on_event(self, event: TraceEvent) -> None:
        self.checks += 1
        self._check_monotonic(event)
        if event.time > self._last_time:
            self._settle_failures(event)
        self._last_time = event.time

        kind = event.kind
        if kind is EventKind.JOB_SUBMIT:
            if event.data.get("resizer"):
                self._resizer_ids.add(event.job_id)
        elif kind is EventKind.JOB_START:
            self._on_start(event)
        elif kind is EventKind.RESIZE_EXPAND:
            self._consume_decision(event, "expand")
            self._on_grow(event, event.data.get("added", ()))
        elif kind is EventKind.RESIZE_SHRINK:
            self._consume_decision(event, "shrink")
            self._on_release(event, event.data.get("released", ()))
        elif kind is EventKind.RESIZE_ABORT:
            # Only expansions can abort; remove by value so a parked
            # forced-shrink decision is never consumed by mistake.
            pending = self._decisions.get(event.job_id)
            if pending and "expand" in pending:
                pending.remove("expand")
        elif kind is EventKind.RESIZE_DECISION:
            if event.data.get("action") in _ACTIONABLE:
                self._decisions.setdefault(event.job_id, []).append(
                    event.data["action"]
                )
        elif kind in (
            EventKind.JOB_END,
            EventKind.JOB_CANCEL,
            EventKind.JOB_REQUEUE,
        ):
            self._on_job_gone(event)
        elif kind is EventKind.NODE_FAIL:
            if event.job_id is not None:
                self._open_failures.append(
                    (event.time, event.data["node"], event.job_id)
                )
        if kind is not EventKind.ALLOC_CHANGE:
            self._check_machine(event)

    # -- individual invariants ----------------------------------------------
    def _fail(self, invariant: str, event: TraceEvent, detail: str) -> None:
        raise InvariantViolation(invariant, event.time, detail)

    def _check_monotonic(self, event: TraceEvent) -> None:
        if event.time < self._last_time:
            self._fail(
                "monotonic-time",
                event,
                f"{event.kind.value} at {event.time} after t={self._last_time}",
            )

    def _on_start(self, event: TraceEvent) -> None:
        node_ids = event.data.get("node_ids", ())
        for idx in node_ids:
            holder = self._owner.get(idx)
            if holder is not None and holder != event.job_id:
                self._fail(
                    "no-double-allocation",
                    event,
                    f"job {event.job_id} started on node {idx} "
                    f"already owned by job {holder}",
                )
            self._owner[idx] = event.job_id
        machine = self.machine
        if machine is not None:
            for idx in node_ids:
                node = machine.nodes[idx]
                if node.state is NodeState.DOWN:
                    self._fail(
                        "no-start-on-down",
                        event,
                        f"job {event.job_id} started on DOWN node {idx}",
                    )
                if node.job_id != event.job_id:
                    self._fail(
                        "no-double-allocation",
                        event,
                        f"node {idx} records owner {node.job_id}, "
                        f"start said {event.job_id}",
                    )

    def _on_grow(self, event: TraceEvent, added) -> None:
        for idx in added:
            holder = self._owner.get(idx)
            if holder is not None and holder != event.job_id:
                self._fail(
                    "no-double-allocation",
                    event,
                    f"job {event.job_id} expanded onto node {idx} "
                    f"owned by job {holder}",
                )
            self._owner[idx] = event.job_id
        machine = self.machine
        if machine is not None:
            for idx in added:
                if machine.nodes[idx].state is NodeState.DOWN:
                    self._fail(
                        "no-start-on-down",
                        event,
                        f"job {event.job_id} expanded onto DOWN node {idx}",
                    )

    def _on_release(self, event: TraceEvent, released) -> None:
        for idx in released:
            holder = self._owner.pop(idx, None)
            if holder is not None and holder != event.job_id:
                self._fail(
                    "no-double-allocation",
                    event,
                    f"job {event.job_id} released node {idx} "
                    f"owned by job {holder}",
                )

    def _on_job_gone(self, event: TraceEvent) -> None:
        job_id = event.job_id
        self._owner = {
            idx: owner for idx, owner in self._owner.items() if owner != job_id
        }
        # Unconsumed decisions die with the incarnation (a requeued job's
        # in-flight resize was interrupted and will never be acked).
        self._decisions.pop(job_id, None)
        self._open_failures = [
            entry for entry in self._open_failures if entry[2] != job_id
        ]

    def _consume_decision(self, event: TraceEvent, action: str) -> None:
        if event.job_id in self._resizer_ids:
            return
        pending = self._decisions.get(event.job_id)
        if pending and action in pending:
            pending.remove(action)
            return
        self._fail(
            "decision-ack-pairing",
            event,
            f"{action} of job {event.job_id} without a matching unconsumed "
            f"RESIZE_DECISION (pending: {pending or []})",
        )

    def _settle_failures(self, event: TraceEvent) -> None:
        """Failures must be reacted to before simulation time advances."""
        if not self._open_failures or self._controller is None:
            return
        controller, machine = self._controller, self.machine
        still_open: List[Tuple[float, int, int]] = []
        for fail_time, idx, holder in self._open_failures:
            node = machine.nodes[idx]
            if node.job_id != holder or node.state is not NodeState.DOWN:
                continue  # evacuated, released, or repaired
            job = controller.running.get(holder)
            if job is None:
                continue  # requeued or finished
            forced = (
                holder in controller.forced or holder in controller.evacuating
            )
            if not job.is_flexible and not forced:
                self._fail(
                    "failure-handling",
                    event,
                    f"rigid job {holder} still holds DOWN node {idx} "
                    f"after the failure at t={fail_time}",
                )
            if job.is_flexible and not forced:
                self._fail(
                    "failure-handling",
                    event,
                    f"flexible job {holder} holds DOWN node {idx} with no "
                    f"forced-shrink decision pending",
                )
            still_open.append((fail_time, idx, holder))
        self._open_failures = still_open

    def _check_machine(self, event: TraceEvent) -> None:
        """Ground-truth conservation scan against the live machine."""
        machine = self.machine
        if machine is None:
            return
        jobs = machine.jobs()
        allocated = 0
        for job_id in jobs:
            owned = machine.nodes_of(job_id)
            allocated += len(owned)
            for idx in owned:
                if machine.nodes[idx].job_id != job_id:
                    self._fail(
                        "conservation",
                        event,
                        f"node {idx} is mapped to job {job_id} but records "
                        f"owner {machine.nodes[idx].job_id}",
                    )
        if allocated != machine.used_count:
            self._fail(
                "conservation",
                event,
                f"allocation map holds {allocated} nodes, "
                f"used_count says {machine.used_count}",
            )
        # Conservation over the actual sets (used_count is *defined* as
        # total - free - unavailable, so comparing derived counts would
        # be a tautology): the free and unavailable pools must be
        # disjoint, every free node IDLE, and pools + allocations must
        # tile the cluster exactly.
        free, unavailable = machine._free, machine._unavailable
        overlap = free & unavailable
        if overlap:
            self._fail(
                "conservation",
                event,
                f"nodes {sorted(overlap)} are in both the free and the "
                f"unavailable pool",
            )
        if len(free) + len(unavailable) + allocated != machine.num_nodes:
            self._fail(
                "conservation",
                event,
                f"free({len(free)}) + unavailable({len(unavailable)}) + "
                f"allocated({allocated}) != {machine.num_nodes} nodes",
            )
        for idx in free:
            if machine.nodes[idx].state is not NodeState.IDLE:
                self._fail(
                    "conservation",
                    event,
                    f"node {idx} is in the free pool but is "
                    f"{machine.nodes[idx].state.value}",
                )

    # -- post-run -----------------------------------------------------------
    def verify_final(self) -> int:
        """Final sweep after a run: no unresolved failure reactions.

        Returns the number of per-event check passes executed, so callers
        can assert the observer actually saw the run.
        """
        if self._controller is not None:
            machine = self.machine
            for _, idx, holder in self._open_failures:
                node = machine.nodes[idx]
                if node.job_id == holder and node.state is NodeState.DOWN:
                    if (
                        holder not in self._controller.forced
                        and holder not in self._controller.evacuating
                    ):
                        raise InvariantViolation(
                            "failure-handling",
                            self._last_time,
                            f"job {holder} ended the run holding DOWN node "
                            f"{idx} with no forced decision pending",
                        )
        return self.checks
