"""``repro.testing`` — the invariant / property-test harness.

* :class:`InvariantObserver` — a session observer asserting the
  simulator's global invariants (no double allocation, allocation
  conservation, no job started on a DOWN node, monotonic event time,
  decision/ack pairing) on every trace event; violations raise
  :class:`~repro.errors.InvariantViolation` at the breaking event.
* :func:`run_bounded` — ``env.run`` with an event budget, so a wedged
  process fails the test instead of hanging CI.
* :mod:`repro.testing.pytest_plugin` — loaded from the repo's root
  conftest; wires an InvariantObserver into every ``Session.build`` of
  the suite (opt out with ``@pytest.mark.no_invariants``).
"""

from repro.errors import InvariantViolation
from repro.testing.bounded import DEFAULT_MAX_EVENTS, WedgedSimulation, run_bounded
from repro.testing.invariants import InvariantObserver

__all__ = [
    "DEFAULT_MAX_EVENTS",
    "InvariantObserver",
    "InvariantViolation",
    "WedgedSimulation",
    "run_bounded",
]
