"""`repro loadgen` — a concurrent benchmark client for `repro serve`.

Drives a running server with ``--clients`` concurrent sessions.  Each
session submits a workload, consumes the job's live SSE event stream to
the terminal ``done`` frame, then fetches the final job snapshot —
i.e. the full lifecycle a real client pays, including the per-request
TCP handshake (connections are one-shot by design).

Client-side latencies are measured per phase (submit / stream / status)
with the same :class:`~repro.metrics.histogram.LatencyHistogram` the
server uses, then the server's own ``/metrics`` snapshot is appended so
the report shows both sides of the wire.  The run ends with a drain
check: ``POST /v1/admin/drain``, one refused submission (must be 503),
a poll until ``active == 0`` (no orphaned background work), and a
resume so the server is left serving.

The report is written as JSON (``BENCH_serve.json`` by convention) and
summarized on stdout.
"""

from __future__ import annotations

import asyncio
import json
import time
from typing import Dict, List, Optional, Tuple

from repro.errors import ServeError
from repro.obs.registry import LatencyHistogram

DEFAULT_CLIENTS = 4
DEFAULT_REQUESTS = 12
DEFAULT_NUM_JOBS = 6
STREAM_DONE = "done"


class LoadgenError(ServeError):
    """The benchmark client hit a protocol or server error."""


# -- one-shot HTTP client (asyncio streams, stdlib only) ----------------------

async def _read_response(reader) -> Tuple[int, Dict[str, str], bytes]:
    status_line = await reader.readline()
    parts = status_line.split(None, 2)
    if len(parts) < 2 or not parts[0].startswith(b"HTTP/"):
        raise LoadgenError(f"malformed status line: {status_line!r}")
    status = int(parts[1])
    headers: Dict[str, str] = {}
    while True:
        line = (await reader.readline()).rstrip(b"\r\n")
        if not line:
            break
        name, _, value = line.partition(b":")
        headers[name.decode("ascii").strip().lower()] = (
            value.decode("latin-1").strip()
        )
    if "content-length" in headers:
        body = await reader.readexactly(int(headers["content-length"]))
    else:
        body = await reader.read()
    return status, headers, body


async def request(
    host: str,
    port: int,
    method: str,
    path: str,
    payload: Optional[dict] = None,
) -> Tuple[int, dict]:
    """One request/response cycle; returns (status, parsed JSON body)."""
    body = b""
    if payload is not None:
        body = json.dumps(payload).encode("utf-8")
    head = (
        f"{method} {path} HTTP/1.1\r\n"
        f"Host: {host}:{port}\r\n"
        # A JSON client end to end — /metrics serves its Prometheus
        # text form to scrapers that do not ask for JSON.
        f"Accept: application/json\r\n"
        f"Content-Length: {len(body)}\r\n"
        f"Connection: close\r\n\r\n"
    ).encode("ascii")
    reader, writer = await asyncio.open_connection(host, port)
    try:
        writer.write(head + body)
        await writer.drain()
        status, _, raw = await _read_response(reader)
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass
    try:
        parsed = json.loads(raw.decode("utf-8")) if raw else {}
    except ValueError:
        parsed = {"raw": raw.decode("utf-8", "replace")}
    return status, parsed


async def stream_events(host: str, port: int, job_id: str) -> List[dict]:
    """Consume one job's SSE stream to the ``done`` frame.

    Returns the parsed frames: ``{"event", "id", "data"}`` dicts in
    arrival order (the ``done`` frame included, last).
    """
    reader, writer = await asyncio.open_connection(host, port)
    frames: List[dict] = []
    try:
        writer.write(
            f"GET /v1/jobs/{job_id}/events HTTP/1.1\r\n"
            f"Host: {host}:{port}\r\nConnection: close\r\n\r\n".encode("ascii")
        )
        await writer.drain()
        status_line = await reader.readline()
        parts = status_line.split(None, 2)
        if len(parts) < 2 or parts[1] != b"200":
            raise LoadgenError(f"event stream refused: {status_line!r}")
        while True:
            line = (await reader.readline()).rstrip(b"\r\n")
            if not line:
                break  # end of response headers
        frame: dict = {}
        while True:
            raw = await reader.readline()
            if not raw:
                raise LoadgenError(
                    f"stream for {job_id} ended without a done frame"
                )
            line = raw.rstrip(b"\r\n").decode("utf-8")
            if line:
                name, _, value = line.partition(":")
                frame[name.strip()] = value.strip()
                continue
            if frame:
                frames.append(frame)
                if frame.get("event") == STREAM_DONE:
                    return frames
                frame = {}
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (ConnectionError, asyncio.CancelledError):
            pass


# -- the benchmark ------------------------------------------------------------

class Loadgen:
    """Concurrent submit+stream benchmark against one server."""

    def __init__(
        self,
        host: str,
        port: int,
        clients: int = DEFAULT_CLIENTS,
        requests: int = DEFAULT_REQUESTS,
        num_jobs: int = DEFAULT_NUM_JOBS,
        seed: int = 2017,
    ) -> None:
        if clients < 1 or requests < 1:
            raise LoadgenError("clients and requests must be >= 1")
        self.host = host
        self.port = port
        self.clients = clients
        self.requests = requests
        self.num_jobs = num_jobs
        self.seed = seed
        self.submit_hist = LatencyHistogram()
        self.status_hist = LatencyHistogram()
        self.stream_hist = LatencyHistogram()
        self.jobs_completed = 0
        self.jobs_failed = 0
        self.events_total = 0
        self._active_streams = 0
        self.max_concurrent_streams = 0
        self._queue: Optional[asyncio.Queue] = None

    async def _one_request(self, serial: int) -> None:
        t0 = time.perf_counter()
        status, body = await request(
            self.host, self.port, "POST", "/v1/workloads",
            {"workload": "fs", "num_jobs": self.num_jobs,
             "seed": self.seed + serial},
        )
        self.submit_hist.observe(time.perf_counter() - t0)
        if status != 202:
            raise LoadgenError(f"submit returned {status}: {body}")
        job_id = body["id"]

        self._active_streams += 1
        self.max_concurrent_streams = max(
            self.max_concurrent_streams, self._active_streams
        )
        t0 = time.perf_counter()
        try:
            frames = await stream_events(self.host, self.port, job_id)
        finally:
            self._active_streams -= 1
        self.stream_hist.observe(time.perf_counter() - t0)
        done = frames[-1]
        final = json.loads(done["data"])
        trace_frames = [f for f in frames if f.get("event") == "trace"]
        if final["events"] != len(trace_frames):
            raise LoadgenError(
                f"{job_id}: done frame says {final['events']} events, "
                f"stream carried {len(trace_frames)}"
            )
        self.events_total += len(trace_frames)

        t0 = time.perf_counter()
        status, snapshot = await request(
            self.host, self.port, "GET", f"/v1/jobs/{job_id}"
        )
        self.status_hist.observe(time.perf_counter() - t0)
        if status != 200:
            raise LoadgenError(f"status fetch returned {status}")
        if snapshot["state"] == "COMPLETED":
            self.jobs_completed += 1
        else:
            self.jobs_failed += 1

    async def _client(self) -> None:
        while True:
            try:
                serial = self._queue.get_nowait()
            except asyncio.QueueEmpty:
                return
            await self._one_request(serial)

    async def _drain_check(self) -> dict:
        status, _ = await request(
            self.host, self.port, "POST", "/v1/admin/drain"
        )
        if status != 200:
            raise LoadgenError(f"drain returned {status}")
        refused, _ = await request(
            self.host, self.port, "POST", "/v1/workloads",
            {"workload": "fs", "num_jobs": 1},
        )
        # A drained server must finish in-flight work and reach quiescence.
        deadline = time.perf_counter() + 60.0
        active = None
        while time.perf_counter() < deadline:
            _, health = await request(self.host, self.port, "GET", "/health")
            active = health.get("active")
            if active == 0:
                break
            await asyncio.sleep(0.05)
        status, _ = await request(
            self.host, self.port, "POST", "/v1/admin/resume"
        )
        return {
            "submit_during_drain_status": refused,
            "refused_with_503": refused == 503,
            "active_after_drain": active,
            "drained_clean": active == 0,
            "resume_status": status,
        }

    async def _run(self) -> dict:
        self._queue = asyncio.Queue()
        for serial in range(self.requests):
            self._queue.put_nowait(serial)
        t0 = time.perf_counter()
        await asyncio.gather(*(self._client() for _ in range(self.clients)))
        wall = time.perf_counter() - t0
        drain = await self._drain_check()
        _, server_metrics = await request(
            self.host, self.port, "GET", "/metrics"
        )
        return {
            "config": {
                "host": self.host,
                "port": self.port,
                "clients": self.clients,
                "requests": self.requests,
                "num_jobs": self.num_jobs,
                "seed": self.seed,
            },
            "client": {
                "wall_s": wall,
                "requests_per_s": self.requests / wall if wall > 0 else 0.0,
                "jobs_completed": self.jobs_completed,
                "jobs_failed": self.jobs_failed,
                "events_streamed": self.events_total,
                "max_concurrent_streams": self.max_concurrent_streams,
                "submit": self.submit_hist.as_dict(),
                "stream": self.stream_hist.as_dict(),
                "status": self.status_hist.as_dict(),
            },
            "server": server_metrics,
            "drain": drain,
        }

    def run(self) -> dict:
        return asyncio.run(self._run())


def check_report(report: dict) -> List[str]:
    """Return the list of acceptance failures (empty = pass)."""
    failures = []
    client = report["client"]
    if client["requests_per_s"] <= 0:
        failures.append("throughput is zero")
    if client["jobs_failed"]:
        failures.append(f"{client['jobs_failed']} job(s) FAILED server-side")
    if client["jobs_completed"] != report["config"]["requests"]:
        failures.append(
            f"completed {client['jobs_completed']} of "
            f"{report['config']['requests']} jobs"
        )
    if client["events_streamed"] <= 0:
        failures.append("no trace events were streamed")
    drain = report["drain"]
    if not drain["refused_with_503"]:
        failures.append(
            "submission during drain was not refused with 503 "
            f"(got {drain['submit_during_drain_status']})"
        )
    if not drain["drained_clean"]:
        failures.append(
            f"drain left {drain['active_after_drain']} active job(s)"
        )
    return failures


def summarize(report: dict) -> str:
    client = report["client"]
    return (
        f"loadgen: {report['config']['requests']} requests, "
        f"{report['config']['clients']} clients -> "
        f"{client['requests_per_s']:.2f} req/s, "
        f"submit p50 {client['submit']['p50_ms']:.2f} ms / "
        f"p99 {client['submit']['p99_ms']:.2f} ms, "
        f"{client['events_streamed']} events streamed, "
        f"max {client['max_concurrent_streams']} concurrent streams, "
        f"drain {'clean' if report['drain']['drained_clean'] else 'DIRTY'}"
    )
