"""Scheduler-as-a-service: `repro serve` and its load-generator client.

Layering::

    http.py     wire format (request parsing, response/SSE framing)
    jobs.py     bounded worker pool, job registry, drain lifecycle
    app.py      routes, validation, metrics, the server itself
    loadgen.py  concurrent benchmark client (`repro loadgen`)
"""

from repro.serve.app import (
    DEFAULT_HOST,
    DEFAULT_PORT,
    ReproServer,
    RequestMetrics,
    ServerThread,
    run_server,
)
from repro.serve.jobs import (
    CANCELLED,
    COMPLETED,
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    EventBridge,
    FAILED,
    JobManager,
    PENDING,
    RUNNING,
    ServeJob,
    TERMINAL_STATES,
)

__all__ = [
    "DEFAULT_HOST",
    "DEFAULT_PORT",
    "DEFAULT_QUEUE_LIMIT",
    "DEFAULT_WORKERS",
    "ReproServer",
    "RequestMetrics",
    "ServerThread",
    "run_server",
    "JobManager",
    "ServeJob",
    "EventBridge",
    "PENDING",
    "RUNNING",
    "COMPLETED",
    "FAILED",
    "CANCELLED",
    "TERMINAL_STATES",
]
