"""Background job execution for the scheduler-as-a-service layer.

The :class:`JobManager` owns a bounded worker pool (threads — a
simulation is pure-Python compute, and threads let the live
:class:`~repro.api.observers.SessionObserver` machinery bridge events
straight into the asyncio serving loop, which a process pool cannot).
Every submission becomes a :class:`ServeJob` that moves through the
job-state taxonomy::

    PENDING -> RUNNING -> COMPLETED | FAILED
                        (CANCELLED reserved for operator actions)

— the same vocabulary Slurm's accounting exposes (the subset of Kive's
``slurmlib`` states this service can reach; a simulated job never sees
NODE_FAIL from the *service's* perspective — faults happen inside the
simulation).

Backpressure contract (enforced here, surfaced as HTTP codes by the
app layer):

* queue at capacity → :class:`~repro.errors.QueueFullError` (429);
* draining → :class:`~repro.errors.DrainingError` (503); in-flight and
  queued jobs still run to completion, so a drain never orphans work.

Event streaming: each workload job keeps the canonical line of *every*
trace event (the exact rendering golden traces are pinned on), appended
live by an :class:`EventBridge` observer from the worker thread.  SSE
subscribers replay the buffer from any cursor and wait on an
:class:`asyncio.Event` for more — so a late subscriber to a finished
job replays the identical stream a live subscriber saw.
"""

from __future__ import annotations

import asyncio
import threading
import time
from concurrent.futures import ThreadPoolExecutor
from typing import Dict, List, Optional, Set, Tuple

from repro.errors import DrainingError, QueueFullError, ServeError
from repro.api.observers import SessionObserver
from repro.metrics.trace import canonical_line

#: Job-state vocabulary (terminal states are frozenset'd below).
PENDING = "PENDING"
RUNNING = "RUNNING"
COMPLETED = "COMPLETED"
FAILED = "FAILED"
CANCELLED = "CANCELLED"
TERMINAL_STATES = frozenset({COMPLETED, FAILED, CANCELLED})

#: Defaults for the service's capacity knobs.
DEFAULT_WORKERS = 2
DEFAULT_QUEUE_LIMIT = 64


class ServeJob:
    """One submitted unit of background work (workload run or sweep)."""

    def __init__(self, job_id: str, kind: str, params: dict,
                 loop: asyncio.AbstractEventLoop) -> None:
        self.id = job_id
        self.kind = kind  # "workload" | "sweep"
        self.params = params
        self._loop = loop
        self._lock = threading.Lock()
        self._waiters: Set[asyncio.Event] = set()
        self.state = PENDING
        self.submitted_unix = time.time()
        self.started_unix: Optional[float] = None
        self.finished_unix: Optional[float] = None
        self.result: Optional[dict] = None
        self.error: Optional[str] = None
        self.progress: Dict[str, int] = {}
        self._events: List[str] = []
        #: Installed by the manager at submit time: the parsed workload
        #: (workload jobs) or the expanded grid (sweep jobs).
        self.workload_spec = None
        self.sweep = None
        #: JSON-able span payload set by the worker when the run
        #: finishes (the job id is the correlation id).
        self.telemetry: Optional[dict] = None

    # -- event buffer (worker thread writes, loop thread reads) -------------
    def append_event(self, line: str) -> None:
        with self._lock:
            self._events.append(line)
        self._notify()

    def events_since(self, cursor: int) -> Tuple[List[str], bool, int]:
        """(new lines, job-is-terminal, total) snapshot from ``cursor``."""
        with self._lock:
            lines = self._events[cursor:]
            return lines, self.state in TERMINAL_STATES, len(self._events)

    def event_count(self) -> int:
        with self._lock:
            return len(self._events)

    # -- waiting (loop thread) ----------------------------------------------
    def _notify(self) -> None:
        def wake() -> None:
            for waiter in list(self._waiters):
                waiter.set()

        try:
            self._loop.call_soon_threadsafe(wake)
        except RuntimeError:
            pass  # loop already closed (server shutting down)

    async def wait_change(self, timeout: float = 0.5) -> None:
        """Wait until new events/state may be available (or timeout).

        The timeout makes the wait robust against any lost-wakeup race:
        the subscriber re-reads the buffer after every return anyway.
        """
        waiter = asyncio.Event()
        self._waiters.add(waiter)
        try:
            await asyncio.wait_for(waiter.wait(), timeout)
        except asyncio.TimeoutError:
            pass
        finally:
            self._waiters.discard(waiter)

    # -- state transitions (worker thread) ----------------------------------
    def mark_running(self) -> None:
        with self._lock:
            self.state = RUNNING
            self.started_unix = time.time()
        self._notify()

    def set_progress(self, done: int, total: int) -> None:
        with self._lock:
            self.progress = {"done": done, "total": total}
        self._notify()

    def finish(self, result: Optional[dict] = None,
               error: Optional[str] = None) -> None:
        with self._lock:
            self.state = FAILED if error is not None else COMPLETED
            self.result = result
            self.error = error
            self.finished_unix = time.time()
        self._notify()

    def set_telemetry(self, correlation_id: Optional[str],
                      spans: List[dict], dropped: int) -> None:
        with self._lock:
            self.telemetry = {
                "correlation_id": correlation_id,
                "recorded": len(spans),
                "dropped": dropped,
                "spans": spans,
            }

    def telemetry_snapshot(self) -> dict:
        """Wire form of ``GET /v1/jobs/{id}/telemetry``.

        Spans land when the run finishes; until then the payload carries
        the job state and an empty span list, so pollers can tell "not
        done yet" from "ran without telemetry".
        """
        with self._lock:
            payload = {"id": self.id, "kind": self.kind, "state": self.state}
            if self.telemetry is None:
                payload.update({
                    "correlation_id": self.id,
                    "recorded": 0,
                    "dropped": 0,
                    "spans": [],
                })
            else:
                payload.update(self.telemetry)
            return payload

    # -- wire form -----------------------------------------------------------
    def snapshot(self, include_result: bool = True) -> dict:
        with self._lock:
            payload = {
                "id": self.id,
                "kind": self.kind,
                "state": self.state,
                "params": self.params,
                "submitted_unix": self.submitted_unix,
                "started_unix": self.started_unix,
                "finished_unix": self.finished_unix,
                "events": len(self._events),
            }
            if self.progress:
                payload["progress"] = dict(self.progress)
            if self.error is not None:
                payload["error"] = self.error
            if include_result and self.result is not None:
                payload["result"] = self.result
            return payload


class EventBridge(SessionObserver):
    """Streams every trace event into the job's SSE buffer, live.

    Non-strict by construction (the :class:`SessionObserver` default):
    if buffering ever failed, the dispatch would log and count it
    rather than abort a simulation other subscribers are watching.
    """

    def __init__(self, job: ServeJob) -> None:
        self._job = job

    def on_event(self, event) -> None:
        self._job.append_event(canonical_line(event))


class SweepProgressBridge:
    """SweepObserver updating a sweep job's polled progress counters."""

    def __init__(self, job: ServeJob, total: int) -> None:
        self._job = job
        self._done = 0
        self._total = total
        job.set_progress(0, total)

    def on_cell_start(self, index, total, spec) -> None:
        pass

    def on_cell_done(self, index, total, outcome) -> None:
        self._done += 1
        self._job.set_progress(self._done, self._total)


class JobManager:
    """Bounded worker pool + job registry + drain lifecycle."""

    def __init__(
        self,
        loop: asyncio.AbstractEventLoop,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        store=None,
        registry=None,
        backend: str = "sim",
        backend_options: Optional[dict] = None,
    ) -> None:
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if queue_limit < 1:
            raise ServeError(f"queue_limit must be >= 1, got {queue_limit}")
        self._loop = loop
        self.workers = workers
        self.queue_limit = queue_limit
        self.store = store
        self.registry = registry
        #: Execution backend workload jobs run on (``repro.backend``
        #: registry name; sweeps always stay on the simulator).  Options
        #: ride on the session's BackendSpec — e.g. ``time_scale`` so a
        #: wall-clock backend does not sleep through simulated hours.
        self.backend = backend
        self.backend_options = dict(backend_options or {})
        self._executor = ThreadPoolExecutor(
            max_workers=workers, thread_name_prefix="repro-serve"
        )
        self._lock = threading.Lock()
        self._jobs: Dict[str, ServeJob] = {}
        self._serial = 0
        self.draining = False
        self._running = 0
        self.max_concurrent = 0
        self.submitted_total = 0

    # -- lifecycle ----------------------------------------------------------
    def drain(self) -> dict:
        """Refuse new submissions; let queued + running jobs finish."""
        self.draining = True
        return self.status()

    def resume(self) -> dict:
        self.draining = False
        return self.status()

    def shutdown(self, wait: bool = True) -> None:
        self._executor.shutdown(wait=wait)

    # -- accounting ----------------------------------------------------------
    def status(self) -> dict:
        with self._lock:
            by_state: Dict[str, int] = {}
            for job in self._jobs.values():
                by_state[job.state] = by_state.get(job.state, 0) + 1
            pending = by_state.get(PENDING, 0)
            running = by_state.get(RUNNING, 0)
            return {
                "state": "draining" if self.draining else "serving",
                "backend": self.backend,
                "queue_depth": pending,
                "running": running,
                "active": pending + running,
                "by_state": by_state,
                "max_concurrent": self.max_concurrent,
                "submitted_total": self.submitted_total,
                "workers": self.workers,
                "queue_limit": self.queue_limit,
            }

    def get(self, job_id: str) -> Optional[ServeJob]:
        with self._lock:
            return self._jobs.get(job_id)

    def jobs(self) -> List[ServeJob]:
        with self._lock:
            return list(self._jobs.values())

    # -- submission ----------------------------------------------------------
    def _admit(self, kind: str, params: dict) -> ServeJob:
        if self.draining:
            raise DrainingError(
                "service is draining; new submissions are refused"
            )
        with self._lock:
            pending = sum(
                1 for j in self._jobs.values() if j.state == PENDING
            )
            if pending >= self.queue_limit:
                raise QueueFullError(
                    f"submission queue is full ({pending} pending, "
                    f"limit {self.queue_limit}); retry later"
                )
            self._serial += 1
            job_id = f"{kind[0]}{self._serial:06d}"
            job = ServeJob(job_id, kind, params, self._loop)
            self._jobs[job_id] = job
            self.submitted_total += 1
        return job

    def submit_workload(self, params: dict, workload_spec) -> ServeJob:
        """Queue one workload simulation (spec already validated)."""
        job = self._admit("workload", params)
        job.workload_spec = workload_spec
        self._executor.submit(self._run_workload, job)
        return job

    def submit_sweep(self, params: dict, sweep) -> ServeJob:
        """Queue one background sweep (grid already validated)."""
        job = self._admit("sweep", params)
        job.sweep = sweep
        self._executor.submit(self._run_sweep, job)
        return job

    # -- worker bodies (worker threads) --------------------------------------
    def _enter_run(self, job: ServeJob) -> None:
        job.mark_running()
        with self._lock:
            self._running += 1
            self.max_concurrent = max(self.max_concurrent, self._running)

    def _exit_run(self) -> None:
        with self._lock:
            self._running -= 1

    def _run_workload(self, job: ServeJob) -> None:
        from repro.api.session import Session
        from repro.cluster.configs import ClusterConfig
        from repro.metrics.trace import trace_digest
        from repro.obs.registry import default_registry, publish_sched_stats

        self._enter_run(job)
        try:
            params = job.params
            session = (
                Session(cluster=ClusterConfig(num_nodes=params["nodes"]))
                .with_seed(params["seed"])
                .observe(EventBridge(job))
                .with_telemetry(correlation_id=job.id)
            )
            if self.backend != "sim":
                # Route through the backend seam: the driver feeds the
                # EventBridge a synthetic trace from backend accounting,
                # so SSE subscribers see the same event vocabulary.
                # There is no in-process controller to scrape scheduler
                # stats from.
                result = session.with_backend(
                    self.backend, **self.backend_options
                ).run(job.workload_spec, flexible=params["flexible"])
            else:
                run = session.submit(
                    job.workload_spec, flexible=params["flexible"]
                )
                result = run.execute()
                publish_sched_stats(
                    default_registry(), run.sim.controller.stats.snapshot()
                )
            default_registry().counter(
                "repro_serve_workloads_total",
                "Workload runs completed, by execution backend.",
                labels=("backend",),
            ).inc(backend=result.backend)
            telemetry = result.telemetry
            if telemetry is not None:
                job.set_telemetry(
                    telemetry.correlation_id,
                    telemetry.as_dicts(),
                    telemetry.dropped,
                )
            summary = result.summary
            job.finish(result={
                "workload": params["workload"],
                "flexible": params["flexible"],
                "backend": result.backend,
                "summary": summary.as_dict(),
                "trace_events": len(result.trace),
                "trace_digest": trace_digest(result.trace),
            })
        except BaseException as exc:  # surface everything as FAILED
            job.finish(error=f"{type(exc).__name__}: {exc}")
        finally:
            self._exit_run()

    def _run_sweep(self, job: ServeJob) -> None:
        from repro.obs.spans import TelemetryConfig
        from repro.sweep.runner import SweepRunner

        self._enter_run(job)
        try:
            sweep = job.sweep
            runner = SweepRunner(
                jobs=1,
                store=self.store,
                observers=(SweepProgressBridge(job, len(sweep)),),
                telemetry=TelemetryConfig(correlation_id=job.id),
            )
            result = runner.run(sweep)
            job.set_telemetry(
                job.id,
                [dict(span) for cell in result.cells for span in cell.spans],
                0,
            )
            aggregate = result.aggregate()
            job.finish(result={
                "cells": len(result),
                "cached_cells": result.cached_cells,
                "computed_cells": result.computed_cells,
                "compute_wall_s": result.compute_wall_time,
                "events": result.total_events(),
                "aggregate_csv": aggregate.as_csv(),
            })
        except BaseException as exc:
            job.finish(error=f"{type(exc).__name__}: {exc}")
        finally:
            self._exit_run()
