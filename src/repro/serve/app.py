"""`repro serve` — the scheduler-as-a-service HTTP application.

Request flow::

    client ──HTTP──▶ asyncio loop ──validate──▶ JobManager (bounded
    thread pool) ──Session.run──▶ EventBridge observer ──▶ per-job
    event buffer ──SSE──▶ any number of live/late subscribers

The asyncio loop only ever parses, validates and frames; every
simulation runs on the manager's worker pool, and every artifact render
runs on the default executor — a slow simulation can never stall
``/health``.

REST surface (all JSON unless noted):

========  ==========================  ==========================================
Method    Path                        Semantics
========  ==========================  ==========================================
GET       /health                     liveness + drain state + active jobs
GET       /metrics                    Prometheus text exposition (request
                                      counts, latency histograms, queue
                                      depth, observer errors); the JSON
                                      form via ``Accept: application/json``
POST      /v1/workloads               submit a workload run (202 + job id;
                                      429 queue full, 503 draining)
GET       /v1/jobs                    list jobs (snapshots, no results)
GET       /v1/jobs/{id}               one job: state, progress, result
GET       /v1/jobs/{id}/events        live trace events as SSE (replays the
                                      full buffer for finished jobs)
GET       /v1/jobs/{id}/telemetry     the job's recorded spans + correlation
                                      id (empty while still running)
POST      /v1/sweeps                  launch a background sweep (polled
                                      progress via /v1/jobs/{id})
GET       /v1/artifacts               result-store inventory (the same
                                      listing `repro cache ls --json` emits)
GET       /v1/artifacts/{name}        rendered artifact text/CSV, served
                                      through the store-backed registry
POST      /v1/admin/drain             refuse new submissions; in-flight and
                                      queued jobs finish (drain is graceful)
POST      /v1/admin/resume            accept submissions again
==========================================================================

The operational drain/resume surface is modeled on slurmrestd/charm
node lifecycle semantics; the job-state vocabulary is the Slurm
accounting taxonomy (see :mod:`repro.serve.jobs`).
"""

from __future__ import annotations

import asyncio
import functools
import json
import logging
import re
import threading
import time
from typing import Callable, Dict, Optional, Tuple

from repro.errors import DrainingError, QueueFullError, ServeError, SweepError
from repro.obs.registry import (
    LatencyHistogram,
    MetricsRegistry,
    default_registry,
)
from repro.serve.http import (
    HttpError,
    Request,
    SSE_HEADER,
    error_response,
    json_response,
    read_request,
    response_bytes,
    sse_frame,
)
from repro.serve.jobs import (
    DEFAULT_QUEUE_LIMIT,
    DEFAULT_WORKERS,
    JobManager,
)

logger = logging.getLogger(__name__)

DEFAULT_HOST = "127.0.0.1"
DEFAULT_PORT = 8177

#: Validation ceilings — a public submission endpoint needs bounds.
MAX_WORKLOAD_JOBS = 5000
MAX_NODES = 4096
MAX_STEPS = 200
MAX_SWEEP_SEEDS = 64


# -- parameter validation -----------------------------------------------------

def _require_int(payload: dict, key: str, default, lo: int, hi: int) -> int:
    value = payload.get(key, default)
    if isinstance(value, bool) or not isinstance(value, int):
        raise HttpError(400, f"{key!r} must be an integer")
    if not lo <= value <= hi:
        raise HttpError(400, f"{key!r} must be in [{lo}, {hi}], got {value}")
    return value


def _require_bool(payload: dict, key: str, default: bool) -> bool:
    value = payload.get(key, default)
    if not isinstance(value, bool):
        raise HttpError(400, f"{key!r} must be a boolean")
    return value


def validate_workload(payload: dict):
    """Normalize a POST /v1/workloads body into (params, WorkloadSpec).

    Runs on the serving loop, so it only *parses and generates* the
    workload (milliseconds at the enforced ceilings); the simulation
    itself happens on the worker pool.
    """
    from repro.cluster.configs import (
        marenostrum_preliminary,
        marenostrum_production,
    )
    from repro.errors import WorkloadError
    from repro.workload.generator import (
        FSWorkloadConfig,
        fs_workload,
        realapp_workload,
    )
    from repro.workload.swf import parse_swf

    unknown = set(payload) - {
        "workload", "num_jobs", "seed", "flexible", "nodes", "steps", "swf",
    }
    if unknown:
        raise HttpError(400, f"unknown field(s): {', '.join(sorted(unknown))}")
    workload = payload.get("workload", "fs")
    if workload not in ("fs", "realapps", "swf"):
        raise HttpError(
            400, f"'workload' must be one of fs, realapps, swf; got {workload!r}"
        )
    seed = _require_int(payload, "seed", 2017, 0, 2**31 - 1)
    flexible = _require_bool(payload, "flexible", True)
    nodes = payload.get("nodes")
    if nodes is not None:
        nodes = _require_int(payload, "nodes", None, 1, MAX_NODES)

    if workload == "swf":
        text = payload.get("swf")
        if not isinstance(text, str) or not text.strip():
            raise HttpError(400, "'swf' must carry the SWF log text")
        try:
            spec = parse_swf(text)
        except WorkloadError as exc:
            raise HttpError(400, f"invalid SWF workload: {exc}") from exc
        largest = max(js.submit_nodes for js in spec.jobs)
        if nodes is None:
            nodes = max(marenostrum_production().num_nodes, largest)
        num_jobs = len(spec.jobs)
    else:
        num_jobs = _require_int(payload, "num_jobs", 8, 1, MAX_WORKLOAD_JOBS)
        if workload == "fs":
            steps = _require_int(payload, "steps", 25, 1, MAX_STEPS)
            spec = fs_workload(
                num_jobs, seed=seed, config=FSWorkloadConfig(steps=steps)
            )
            if nodes is None:
                nodes = marenostrum_preliminary().num_nodes
        else:
            spec = realapp_workload(num_jobs, seed=seed)
            if nodes is None:
                nodes = marenostrum_production().num_nodes
    largest = max(js.submit_nodes for js in spec.jobs)
    if largest > nodes:
        raise HttpError(
            400,
            f"cluster of {nodes} nodes cannot run a {largest}-node job; "
            f"raise 'nodes'",
        )
    params = {
        "workload": workload,
        "num_jobs": num_jobs,
        "seed": seed,
        "flexible": flexible,
        "nodes": nodes,
    }
    return params, spec


def validate_sweep(payload: dict, registry):
    """Normalize a POST /v1/sweeps body into (params, Sweep)."""
    from repro.sweep.spec import DEFAULT_BASE_SEED, POLICY_PRESETS, Sweep

    unknown = set(payload) - {
        "artifacts", "workloads", "num_jobs", "nodes", "policies",
        "seeds", "base_seed", "async_mode",
    }
    if unknown:
        raise HttpError(400, f"unknown field(s): {', '.join(sorted(unknown))}")

    def str_list(key, allowed=None):
        value = payload.get(key)
        if value is None:
            return None
        if not isinstance(value, list) or not all(
            isinstance(v, str) for v in value
        ):
            raise HttpError(400, f"{key!r} must be a list of strings")
        if allowed is not None:
            bad = sorted(set(value) - set(allowed))
            if bad:
                raise HttpError(
                    400,
                    f"unknown {key}: {', '.join(bad)}; "
                    f"known: {', '.join(allowed)}",
                )
        return value

    def int_list(key, lo, hi):
        value = payload.get(key)
        if value is None:
            return None
        if not isinstance(value, list) or not all(
            isinstance(v, int) and not isinstance(v, bool) for v in value
        ):
            raise HttpError(400, f"{key!r} must be a list of integers")
        for v in value:
            if not lo <= v <= hi:
                raise HttpError(
                    400, f"{key!r} values must be in [{lo}, {hi}], got {v}"
                )
        return value

    artifacts = str_list(
        "artifacts", allowed=registry.names() if registry else None
    )
    workloads = str_list("workloads", allowed=("fs", "realapps"))
    num_jobs = int_list("num_jobs", 1, MAX_WORKLOAD_JOBS)
    nodes = int_list("nodes", 1, MAX_NODES)
    policies = str_list("policies", allowed=tuple(POLICY_PRESETS))
    seeds = _require_int(payload, "seeds", 3, 1, MAX_SWEEP_SEEDS)
    base_seed = _require_int(
        payload, "base_seed", DEFAULT_BASE_SEED, 0, 2**31 - 1
    )
    async_mode = _require_bool(payload, "async_mode", False)
    try:
        sweep = Sweep.over(
            seeds=seeds,
            base_seed=base_seed,
            artifacts=artifacts,
            workloads=workloads,
            num_jobs=num_jobs,
            nodes=nodes,
            policies=policies,
            async_mode=async_mode,
        )
    except SweepError as exc:
        raise HttpError(400, f"invalid sweep: {exc}") from exc
    params = {
        "artifacts": artifacts,
        "workloads": workloads,
        "num_jobs": num_jobs,
        "nodes": nodes,
        "policies": policies,
        "seeds": seeds,
        "base_seed": base_seed,
        "async_mode": async_mode,
        "cells": len(sweep),
    }
    return params, sweep


# -- request metrics ----------------------------------------------------------

class RequestMetrics:
    """Per-route request counters + latency histograms (loop-thread only).

    The tallies live as metric families on a
    :class:`~repro.obs.registry.MetricsRegistry` (by default the
    process-wide one), so the same numbers back both the JSON
    ``/metrics`` payload (:meth:`as_dict`) and the registry's
    Prometheus text exposition.
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else default_registry()
        self.requests = self.registry.counter(
            "repro_http_requests_total",
            "HTTP requests served, by route.",
            labels=("route",),
        )
        self.responses = self.registry.counter(
            "repro_http_responses_total",
            "HTTP responses sent, by status code.",
            labels=("status",),
        )
        self.latency = self.registry.histogram(
            "repro_http_request_duration_seconds",
            "HTTP request handling time in seconds, by route.",
            labels=("route",),
        )

    def observe(self, route: str, status: int, seconds: float) -> None:
        self.requests.inc(route=route)
        self.responses.inc(status=str(status))
        self.latency.observe(seconds, route=route)

    @property
    def total(self) -> int:
        return int(sum(c.value for _, c in self.requests.samples()))

    def as_dict(self) -> dict:
        by_route = {v[0]: int(c.value) for v, c in self.requests.samples()}
        by_status = {v[0]: int(c.value) for v, c in self.responses.samples()}
        overall = LatencyHistogram()
        per_route = {}
        for values, hist in self.latency.samples():
            per_route[values[0]] = hist
            overall.merge(hist)
        return {
            "total": sum(by_route.values()),
            "by_route": dict(sorted(by_route.items())),
            "by_status": dict(sorted(by_status.items())),
            "latency": overall.as_dict(),
            "latency_by_route": {
                route: {
                    "count": hist.count,
                    "p50_ms": 1000.0 * hist.quantile(0.5),
                    "p99_ms": 1000.0 * hist.quantile(0.99),
                }
                for route, hist in sorted(per_route.items())
            },
        }


# -- the server ---------------------------------------------------------------

class ReproServer:
    """The asyncio HTTP server wrapping a :class:`JobManager`."""

    def __init__(
        self,
        host: str = DEFAULT_HOST,
        port: int = DEFAULT_PORT,
        workers: int = DEFAULT_WORKERS,
        queue_limit: int = DEFAULT_QUEUE_LIMIT,
        store=None,
        registry=None,
        metrics_registry: Optional[MetricsRegistry] = None,
        backend: str = "sim",
        backend_options: Optional[dict] = None,
    ) -> None:
        from repro.backend import backend_names

        if backend not in backend_names():
            raise ServeError(
                f"unknown execution backend {backend!r}; "
                f"registered: {', '.join(backend_names())}"
            )
        if registry is None:
            from repro.api.registry import builtin_registry

            registry = builtin_registry()
        if store is not None:
            # Rendered artifacts are served from (and persisted to) the
            # same store the sweep cells use.
            registry.attach_store(store)
        self.host = host
        self.port = port
        self.workers = workers
        self.queue_limit = queue_limit
        self.store = store
        self.registry = registry
        self.backend = backend
        self.backend_options = dict(backend_options or {})
        self.manager: Optional[JobManager] = None
        # The process-wide registry by default, so one scrape sees the
        # HTTP families next to everything the simulations publish
        # (scheduler op tallies, observer errors, store hit/miss).
        self.metrics_registry = (
            metrics_registry if metrics_registry is not None
            else default_registry()
        )
        self.metrics = RequestMetrics(self.metrics_registry)
        self.metrics_registry.register_collector(self._collect_runtime)
        self.started_unix: Optional[float] = None
        self._server: Optional[asyncio.AbstractServer] = None

    def _collect_runtime(self, registry: MetricsRegistry) -> None:
        """Scrape-time mirror of uptime, job states and queue depth."""
        if self.started_unix is not None:
            registry.gauge(
                "repro_serve_uptime_seconds",
                "Seconds since the server started listening.",
            ).set(time.time() - self.started_unix)
        if self.manager is not None:
            status = self.manager.status()
            jobs = registry.gauge(
                "repro_serve_jobs",
                "Serve jobs by lifecycle state.",
                labels=("state",),
            )
            for state, count in status["by_state"].items():
                jobs.set(count, state=state)
            registry.gauge(
                "repro_serve_queue_depth", "Serve jobs waiting for a worker.",
            ).set(status["queue_depth"])
            registry.counter(
                "repro_serve_submissions_total",
                "Serve jobs admitted since process start.",
            ).set(status["submitted_total"])

    # -- lifecycle ----------------------------------------------------------
    async def start(self) -> None:
        loop = asyncio.get_running_loop()
        self.manager = JobManager(
            loop,
            workers=self.workers,
            queue_limit=self.queue_limit,
            store=self.store,
            registry=self.registry,
            backend=self.backend,
            backend_options=self.backend_options,
        )
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self.started_unix = time.time()

    async def stop(self) -> None:
        """Close the listener and wait for the worker pool to finish."""
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self.manager is not None:
            # Pool shutdown blocks until in-flight jobs finish; keep the
            # loop responsive by waiting on a helper thread.
            await asyncio.get_running_loop().run_in_executor(
                None, functools.partial(self.manager.shutdown, wait=True)
            )

    # -- connection handling -------------------------------------------------
    async def _handle_connection(self, reader, writer) -> None:
        start = time.perf_counter()
        route_label = "unparsed"
        status = 500
        try:
            try:
                request = await read_request(reader)
            except HttpError as exc:
                status = exc.status
                writer.write(error_response(exc.status, str(exc)))
                await writer.drain()
                return
            if request is None:
                return
            route_label, handler, path_args, streaming = self._resolve(request)
            if streaming:
                status = await handler(request, writer, *path_args)
                return
            try:
                status, response = await handler(request, *path_args)
            except HttpError as exc:
                status, response = exc.status, error_response(
                    exc.status, str(exc)
                )
            except QueueFullError as exc:
                status, response = 429, error_response(429, str(exc))
            except DrainingError as exc:
                status, response = 503, error_response(503, str(exc))
            except Exception as exc:
                logger.exception("handler for %s failed", route_label)
                status, response = 500, error_response(
                    500, f"{type(exc).__name__}: {exc}"
                )
            writer.write(response)
            await writer.drain()
        except (ConnectionError, asyncio.CancelledError):
            pass  # client went away or server is stopping
        finally:
            self.metrics.observe(
                route_label, status, time.perf_counter() - start
            )
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    _JOB_ID = r"(?P<job_id>[A-Za-z0-9_.-]+)"
    _NAME = r"(?P<name>[A-Za-z0-9_.-]+)"

    def _routes(self):
        return (
            ("GET", "/health", "GET /health", self._health, False),
            ("GET", "/metrics", "GET /metrics", self._metrics, False),
            ("POST", "/v1/workloads", "POST /v1/workloads",
             self._submit_workload, False),
            ("GET", "/v1/jobs", "GET /v1/jobs", self._list_jobs, False),
            ("GET", rf"/v1/jobs/{self._JOB_ID}/events",
             "GET /v1/jobs/{id}/events", self._stream_events, True),
            ("GET", rf"/v1/jobs/{self._JOB_ID}/telemetry",
             "GET /v1/jobs/{id}/telemetry", self._get_telemetry, False),
            ("GET", rf"/v1/jobs/{self._JOB_ID}", "GET /v1/jobs/{id}",
             self._get_job, False),
            ("POST", "/v1/sweeps", "POST /v1/sweeps", self._submit_sweep,
             False),
            ("GET", "/v1/artifacts", "GET /v1/artifacts",
             self._list_artifacts, False),
            ("GET", rf"/v1/artifacts/{self._NAME}", "GET /v1/artifacts/{name}",
             self._get_artifact, False),
            ("POST", "/v1/admin/drain", "POST /v1/admin/drain", self._drain,
             False),
            ("POST", "/v1/admin/resume", "POST /v1/admin/resume",
             self._resume, False),
        )

    def _resolve(self, request: Request):
        path_match = False
        for method, pattern, label, handler, streaming in self._routes():
            match = re.fullmatch(pattern, request.path)
            if match is None:
                continue
            path_match = True
            if request.method != method:
                continue
            return label, handler, tuple(match.groups()), streaming
        if path_match:
            raise_status, message = 405, f"method {request.method} not allowed"
        else:
            raise_status, message = 404, f"no such endpoint: {request.path}"

        async def reject(request, *args):
            return raise_status, error_response(raise_status, message)

        return f"{request.method} {request.path}", reject, (), False

    # -- handlers (loop thread) ----------------------------------------------
    async def _health(self, request: Request):
        status = self.manager.status()
        return 200, json_response(200, {
            "status": "ok",
            "state": status["state"],
            "backend": status["backend"],
            "active": status["active"],
            "uptime_s": time.time() - self.started_unix,
        })

    async def _metrics(self, request: Request):
        if "application/json" in request.headers.get("accept", ""):
            payload = {
                "uptime_s": time.time() - self.started_unix,
                "requests": self.metrics.as_dict(),
                "jobs": self.manager.status(),
            }
            if self.store is not None:
                payload["store"] = self.store.stats()
            return 200, json_response(200, payload)
        text = self.metrics_registry.render_prometheus()
        return 200, response_bytes(
            200,
            text.encode("utf-8"),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

    async def _submit_workload(self, request: Request):
        params, spec = validate_workload(request.json())
        job = self.manager.submit_workload(params, spec)
        return 202, json_response(202, {
            "id": job.id,
            "state": job.state,
            "status_url": f"/v1/jobs/{job.id}",
            "events_url": f"/v1/jobs/{job.id}/events",
        })

    async def _submit_sweep(self, request: Request):
        params, sweep = validate_sweep(request.json(), self.registry)
        job = self.manager.submit_sweep(params, sweep)
        return 202, json_response(202, {
            "id": job.id,
            "state": job.state,
            "cells": len(sweep),
            "status_url": f"/v1/jobs/{job.id}",
        })

    async def _list_jobs(self, request: Request):
        jobs = [
            job.snapshot(include_result=False) for job in self.manager.jobs()
        ]
        jobs.sort(key=lambda snap: snap["id"])
        return 200, json_response(200, {"jobs": jobs})

    async def _get_job(self, request: Request, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return 200, json_response(200, job.snapshot())

    async def _get_telemetry(self, request: Request, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            raise HttpError(404, f"no such job: {job_id}")
        return 200, json_response(200, job.telemetry_snapshot())

    async def _stream_events(self, request: Request, writer, job_id: str):
        job = self.manager.get(job_id)
        if job is None:
            writer.write(error_response(404, f"no such job: {job_id}"))
            await writer.drain()
            return 404
        if job.kind != "workload":
            writer.write(error_response(
                400, f"job {job_id} is a {job.kind} job; poll "
                f"/v1/jobs/{job_id} for progress"
            ))
            await writer.drain()
            return 400
        writer.write(SSE_HEADER)
        await writer.drain()
        cursor = 0
        while True:
            lines, done, total = job.events_since(cursor)
            for line in lines:
                writer.write(sse_frame(line, event="trace", event_id=cursor))
                cursor += 1
            await writer.drain()
            if done and cursor == total:
                final = {"state": job.state, "events": cursor}
                if job.error is not None:
                    final["error"] = job.error
                writer.write(sse_frame(json.dumps(final, sort_keys=True),
                                       event="done"))
                await writer.drain()
                return 200
            await job.wait_change()

    async def _list_artifacts(self, request: Request):
        if self.store is None:
            return 200, json_response(200, {
                "store": None,
                "records": [],
                "note": "server started without a result store (--no-cache)",
            })
        return 200, json_response(200, self.store.listing())

    async def _get_artifact(self, request: Request, name: str):
        if name not in self.registry:
            known = ", ".join(self.registry.names())
            raise HttpError(404, f"unknown artifact {name!r}; known: {known}")
        form = request.query.get("form", "text")
        if form not in ("text", "csv"):
            raise HttpError(400, f"'form' must be text or csv, got {form!r}")
        if form == "csv" and not self.registry.get(name).supports_csv:
            raise HttpError(400, f"artifact {name!r} has no CSV form")
        seed = None
        if "seed" in request.query:
            try:
                seed = int(request.query["seed"])
            except ValueError:
                raise HttpError(400, "'seed' must be an integer")
        render = (self.registry.render_csv if form == "csv"
                  else self.registry.render)
        # Renders may simulate on a cold store; keep the loop free.
        text = await asyncio.get_running_loop().run_in_executor(
            None, functools.partial(render, name, seed=seed)
        )
        from repro.serve.http import response_bytes

        content_type = "text/csv" if form == "csv" else "text/plain"
        return 200, response_bytes(
            200, text.encode("utf-8"), content_type=content_type
        )

    async def _drain(self, request: Request):
        return 200, json_response(200, self.manager.drain())

    async def _resume(self, request: Request):
        return 200, json_response(200, self.manager.resume())


# -- running ------------------------------------------------------------------

async def _serve_until_stopped(server: ReproServer, announce, stop_signals):
    import signal

    await server.start()
    if announce is not None:
        announce(server)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    if stop_signals:
        for sig in (signal.SIGINT, signal.SIGTERM):
            try:
                loop.add_signal_handler(sig, stop.set)
            except (NotImplementedError, RuntimeError):
                pass
    try:
        await stop.wait()
    finally:
        # Graceful exit: refuse new work, let in-flight jobs finish.
        server.manager.drain()
        await server.stop()


def run_server(server: ReproServer, announce: Optional[Callable] = None) -> None:
    """Run the server in the foreground until SIGINT/SIGTERM."""
    try:
        asyncio.run(_serve_until_stopped(server, announce, stop_signals=True))
    except KeyboardInterrupt:
        pass


class ServerThread:
    """A :class:`ReproServer` on a daemon thread (tests and tooling).

    ``start()`` blocks until the listener is bound and returns the
    ephemeral port; ``stop()`` drains, closes and joins.
    """

    def __init__(self, **kwargs) -> None:
        kwargs.setdefault("port", 0)
        self.server = ReproServer(**kwargs)
        self._ready = threading.Event()
        self._stop: Optional[asyncio.Event] = None
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._error: Optional[BaseException] = None
        self._thread = threading.Thread(
            target=self._main, name="repro-serve-loop", daemon=True
        )

    @property
    def port(self) -> int:
        return self.server.port

    def start(self) -> "ServerThread":
        self._thread.start()
        if not self._ready.wait(timeout=30):
            raise ServeError("server did not start within 30s")
        if self._error is not None:
            raise ServeError(f"server failed to start: {self._error}")
        return self

    def _main(self) -> None:
        try:
            asyncio.run(self._amain())
        except BaseException as exc:  # pragma: no cover - start failures
            self._error = exc
            self._ready.set()

    async def _amain(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        try:
            await self.server.start()
        except BaseException as exc:
            self._error = exc
            self._ready.set()
            return
        self._ready.set()
        await self._stop.wait()
        await self.server.stop()

    def stop(self, timeout: float = 60.0) -> None:
        if self._loop is not None and self._stop is not None:
            try:
                self._loop.call_soon_threadsafe(self._stop.set)
            except RuntimeError:
                pass
        self._thread.join(timeout=timeout)
        if self._thread.is_alive():  # pragma: no cover
            raise ServeError("server thread did not stop in time")
