"""Minimal stdlib HTTP/1.1 plumbing for :mod:`repro.serve`.

The service speaks plain HTTP/1.1 over :mod:`asyncio` streams — no
framework, no dependency.  This module owns the wire format only:
request parsing (with hard limits on request-line, header and body
sizes), response framing, and server-sent-event (SSE) encoding.  Routing
and semantics live in :mod:`repro.serve.app`.

Connections are one-shot: every response carries ``Connection: close``
and the server closes after writing it.  That keeps the framing code
trivially correct (no pipelining, no keep-alive timers) at the price of
a TCP handshake per request — which the loadgen benchmark deliberately
includes in its latencies, since that is what a real client pays too.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple
from urllib.parse import parse_qs, unquote, urlsplit

from repro.errors import ServeError

#: Hard limits; requests beyond them are rejected, not buffered.
MAX_REQUEST_LINE = 8 * 1024
MAX_HEADER_BYTES = 32 * 1024
MAX_BODY_BYTES = 2 * 1024 * 1024

REASONS = {
    200: "OK",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
    501: "Not Implemented",
    503: "Service Unavailable",
}


class HttpError(ServeError):
    """A request that cannot be served; carries the HTTP status."""

    def __init__(self, status: int, message: str) -> None:
        super().__init__(message)
        self.status = status


@dataclass
class Request:
    """One parsed HTTP request."""

    method: str
    path: str
    query: Dict[str, str] = field(default_factory=dict)
    headers: Dict[str, str] = field(default_factory=dict)
    body: bytes = b""

    def json(self) -> dict:
        """The body parsed as a JSON object (400 on anything else)."""
        if not self.body:
            raise HttpError(400, "request body must be a JSON object")
        try:
            payload = json.loads(self.body.decode("utf-8"))
        except (ValueError, UnicodeDecodeError) as exc:
            raise HttpError(400, f"malformed JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise HttpError(400, "request body must be a JSON object")
        return payload


async def _read_line(reader, limit: int, what: str) -> bytes:
    try:
        line = await reader.readuntil(b"\n")
    except Exception as exc:  # IncompleteReadError, LimitOverrunError
        if isinstance(exc, (ConnectionError, TimeoutError)):
            raise
        raise HttpError(400, f"malformed {what}") from exc
    if len(line) > limit:
        raise HttpError(400, f"{what} too long")
    return line.rstrip(b"\r\n")


async def read_request(reader) -> Optional[Request]:
    """Parse one request from the stream; None on a clean EOF.

    Raises :class:`HttpError` on anything malformed or over-limit; the
    caller turns that into a 400/413 response.
    """
    try:
        raw = await reader.readline()
    except (ConnectionError, TimeoutError):
        return None
    if not raw:
        return None  # client closed without sending anything
    if len(raw) > MAX_REQUEST_LINE:
        raise HttpError(400, "request line too long")
    parts = raw.rstrip(b"\r\n").split()
    if len(parts) != 3:
        raise HttpError(400, "malformed request line")
    method_b, target_b, version_b = parts
    if version_b not in (b"HTTP/1.1", b"HTTP/1.0"):
        raise HttpError(400, f"unsupported protocol {version_b.decode('latin-1')!r}")
    try:
        method = method_b.decode("ascii")
        target = target_b.decode("ascii")
    except UnicodeDecodeError as exc:
        raise HttpError(400, "non-ascii request line") from exc

    headers: Dict[str, str] = {}
    seen = 0
    while True:
        line = await _read_line(reader, MAX_HEADER_BYTES, "header")
        if not line:
            break
        seen += len(line)
        if seen > MAX_HEADER_BYTES:
            raise HttpError(400, "headers too large")
        name, sep, value = line.partition(b":")
        if not sep:
            raise HttpError(400, "malformed header line")
        try:
            headers[name.decode("ascii").strip().lower()] = (
                value.decode("latin-1").strip()
            )
        except UnicodeDecodeError as exc:
            raise HttpError(400, "non-ascii header name") from exc

    if "chunked" in headers.get("transfer-encoding", "").lower():
        raise HttpError(501, "chunked transfer encoding is not supported")
    body = b""
    if "content-length" in headers:
        try:
            length = int(headers["content-length"])
        except ValueError as exc:
            raise HttpError(400, "malformed Content-Length") from exc
        if length < 0:
            raise HttpError(400, "malformed Content-Length")
        if length > MAX_BODY_BYTES:
            raise HttpError(413, f"body exceeds {MAX_BODY_BYTES} bytes")
        try:
            body = await reader.readexactly(length)
        except Exception as exc:
            raise HttpError(400, "body shorter than Content-Length") from exc

    split = urlsplit(target)
    query = {
        key: values[-1]
        for key, values in parse_qs(split.query, keep_blank_values=True).items()
    }
    return Request(
        method=method,
        path=unquote(split.path) or "/",
        query=query,
        headers=headers,
        body=body,
    )


def response_bytes(
    status: int,
    body: bytes = b"",
    content_type: str = "application/json",
    extra_headers: Tuple[Tuple[str, str], ...] = (),
) -> bytes:
    """Frame a complete (non-streaming) HTTP/1.1 response."""
    reason = REASONS.get(status, "Unknown")
    lines = [
        f"HTTP/1.1 {status} {reason}",
        f"Content-Type: {content_type}",
        f"Content-Length: {len(body)}",
        "Connection: close",
    ]
    lines.extend(f"{name}: {value}" for name, value in extra_headers)
    return ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body


def json_response(status: int, payload: object) -> bytes:
    """Frame a JSON response (the service's lingua franca)."""
    body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
    return response_bytes(status, body)


def error_response(status: int, message: str) -> bytes:
    return json_response(status, {"error": message, "status": status})


# -- server-sent events -------------------------------------------------------

SSE_HEADER = (
    b"HTTP/1.1 200 OK\r\n"
    b"Content-Type: text/event-stream\r\n"
    b"Cache-Control: no-cache\r\n"
    b"Connection: close\r\n\r\n"
)


def sse_frame(data: str, event: Optional[str] = None,
              event_id: Optional[int] = None) -> bytes:
    """Encode one server-sent event.

    ``data`` must be newline-free (trace canonical lines are); multi-line
    payloads would need one ``data:`` field per line, which this service
    never emits.
    """
    if "\n" in data or "\r" in data:
        raise ServeError("SSE data must be a single line")
    parts = []
    if event_id is not None:
        parts.append(f"id: {event_id}")
    if event is not None:
        parts.append(f"event: {event}")
    parts.append(f"data: {data}")
    return ("\n".join(parts) + "\n\n").encode("utf-8")
