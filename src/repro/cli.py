"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list            # what can be reproduced
    python -m repro fig1            # one figure
    python -m repro fig10 fig11     # several
    python -m repro all             # everything (a few minutes)
"""

from __future__ import annotations

import argparse
import sys
from typing import Callable, Dict, List


def _fig01() -> str:
    from repro.experiments.fig01_cr_vs_dmr import run_fig01

    return run_fig01().as_table()


def _fig03() -> str:
    from repro.experiments.fig03_sync import run_fig03

    return run_fig03().as_table()


def _fig04() -> str:
    from repro.experiments.fig04_05_evolution import run_fig04

    return run_fig04().as_text()


def _fig05() -> str:
    from repro.experiments.fig04_05_evolution import run_fig05

    return run_fig05().as_text()


def _fig06() -> str:
    from repro.experiments.fig06_07_async import run_fig06

    return run_fig06().as_text()


def _fig07() -> str:
    from repro.experiments.fig06_07_async import run_fig07

    return run_fig07().as_table()


def _fig08() -> str:
    from repro.experiments.fig08_heterogeneous import run_fig08

    return run_fig08().as_table()


def _fig09() -> str:
    from repro.experiments.fig09_inhibitor import run_fig09

    return run_fig09().as_table()


def _realapps():
    from repro.experiments.fig10_12_realapps import run_realapps

    if not hasattr(_realapps, "_cache"):
        _realapps._cache = run_realapps()  # type: ignore[attr-defined]
    return _realapps._cache  # type: ignore[attr-defined]


def _fig10() -> str:
    return _realapps().fig10_table()


def _fig11() -> str:
    return _realapps().fig11_table()


def _fig12() -> str:
    return _realapps().fig12_text()


def _table2() -> str:
    return _realapps().table2()


def _scalability() -> str:
    from repro.experiments.scalability import run_scalability

    return run_scalability().as_table()


#: Registry of reproducible artifacts.
ARTIFACTS: Dict[str, Callable[[], str]] = {
    "fig1": _fig01,
    "fig3": _fig03,
    "fig4": _fig04,
    "fig5": _fig05,
    "fig6": _fig06,
    "fig7": _fig07,
    "fig8": _fig08,
    "fig9": _fig09,
    "fig10": _fig10,
    "fig11": _fig11,
    "fig12": _fig12,
    "table2": _table2,
    "scalability": _scalability,
}


#: Artifacts that can also emit CSV, and how.
CSV_SOURCES: Dict[str, Callable[[], str]] = {
    "fig1": lambda: __import__(
        "repro.experiments.fig01_cr_vs_dmr", fromlist=["run_fig01"]
    ).run_fig01().as_csv(),
    "fig3": lambda: __import__(
        "repro.experiments.fig03_sync", fromlist=["run_fig03"]
    ).run_fig03().as_csv(),
    "fig7": lambda: __import__(
        "repro.experiments.fig06_07_async", fromlist=["run_fig07"]
    ).run_fig07().as_csv(),
    "fig8": lambda: __import__(
        "repro.experiments.fig08_heterogeneous", fromlist=["run_fig08"]
    ).run_fig08().as_csv(),
    "fig9": lambda: __import__(
        "repro.experiments.fig09_inhibitor", fromlist=["run_fig09"]
    ).run_fig09().as_csv(),
    "table2": lambda: _realapps().as_csv(),
}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Efficient Scalable Computing "
            "through Flexible Applications and Adaptive Workloads' "
            "(Iserte et al., ICPP 2017)."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="'list', 'all', or any of: " + ", ".join(ARTIFACTS),
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write <artifact>.csv files into DIR (where supported)",
    )
    return parser


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    wanted: List[str] = []
    for name in args.artifacts:
        key = name.lower()
        if key == "list":
            print("reproducible artifacts:", ", ".join(ARTIFACTS))
            continue
        if key == "all":
            wanted.extend(ARTIFACTS)
            continue
        if key not in ARTIFACTS:
            print(f"unknown artifact {name!r}; try 'list'", file=sys.stderr)
            return 2
        wanted.append(key)
    seen = set()
    for key in wanted:
        if key in seen:
            continue
        seen.add(key)
        print(ARTIFACTS[key]())
        if args.csv is not None and key in CSV_SOURCES:
            import os

            os.makedirs(args.csv, exist_ok=True)
            path = os.path.join(args.csv, f"{key}.csv")
            with open(path, "w") as fh:
                fh.write(CSV_SOURCES[key]())
            print(f"[csv written to {path}]")
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
