"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                # what can be reproduced
    python -m repro fig1                # one figure
    python -m repro fig10 fig11        # several (one shared simulation)
    python -m repro all --csv out/      # everything + CSV dumps
    python -m repro fig3 --seed 7       # reseed the stochastic workloads
    python -m repro run --workload my.swf --flexible --seed 7
                                        # replay a user-supplied SWF log

Artifacts are served from the declarative :mod:`repro.api` registry —
each ``experiments`` module registers its producers with
``@artifact(...)`` and this module only iterates the registry.
"""

from __future__ import annotations

import argparse
import os
import sys
from typing import List, Optional

from repro.api.registry import ArtifactRegistry, builtin_registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Efficient Scalable Computing "
            "through Flexible Applications and Adaptive Workloads' "
            "(Iserte et al., ICPP 2017)."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="'list', 'all', 'run', or artifact names (see 'list')",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write <artifact>.csv files into DIR (where supported)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="base seed for stochastic workloads (default: the paper's 2017)",
    )
    run_opts = parser.add_argument_group(
        "run mode", "replay a user-supplied workload: repro run --workload FILE"
    )
    run_opts.add_argument(
        "--workload",
        metavar="FILE.swf",
        default=None,
        help="Standard Workload Format log to execute",
    )
    run_opts.add_argument(
        "--flexible",
        action="store_true",
        help="run the malleable rendition (default)",
    )
    run_opts.add_argument(
        "--rigid",
        action="store_true",
        help="run the rigid rendition instead",
    )
    run_opts.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help="cluster size (default: the 65-node production testbed, "
        "grown to fit the largest job)",
    )
    return parser


def _print_listing(registry: ArtifactRegistry) -> None:
    print("reproducible artifacts:", ", ".join(registry.names()))
    for name in registry.names():
        spec = registry.get(name)
        csv_tag = " [csv]" if spec.supports_csv else ""
        print(f"  {name:<12} {spec.description}{csv_tag}")
    print("also: 'run --workload FILE.swf [--flexible|--rigid]' "
          "to replay your own workload")


def _emit_csv(registry: ArtifactRegistry, name: str, seed: Optional[int],
              directory: str) -> None:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.csv")
    with open(path, "w") as fh:
        fh.write(registry.render_csv(name, seed=seed))
    print(f"[csv written to {path}]")


def _run_user_workload(args: argparse.Namespace) -> int:
    """The ``repro run`` mode: execute a user-supplied SWF workload."""
    from repro.api import Session, SimulationTimeout
    from repro.cluster.configs import ClusterConfig
    from repro.errors import WorkloadError
    from repro.metrics.report import format_csv, format_table
    from repro.workload.swf import parse_swf

    if args.workload is None:
        print("run mode needs --workload FILE.swf", file=sys.stderr)
        return 2
    if args.flexible and args.rigid:
        print("--flexible and --rigid are mutually exclusive", file=sys.stderr)
        return 2
    try:
        with open(args.workload) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"cannot read workload: {exc}", file=sys.stderr)
        return 2
    try:
        spec = parse_swf(text)
    except WorkloadError as exc:
        print(f"invalid workload: {exc}", file=sys.stderr)
        return 2

    flexible = not args.rigid
    largest = max(js.submit_nodes for js in spec.jobs)
    num_nodes = args.nodes if args.nodes is not None else max(65, largest)
    session = Session(cluster=ClusterConfig(num_nodes=num_nodes))
    if args.seed is not None:
        # SWF logs pin every job's size, runtime and arrival, so a replay
        # is deterministic; keep the flag accepted (scripts pass it
        # uniformly) but be explicit that it cannot change this run.
        print("note: SWF replays are deterministic; --seed has no effect here")
    try:
        result = session.run(spec, flexible=flexible)
    except SimulationTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    s = result.summary
    rendition = "flexible" if flexible else "rigid"
    headers = ["jobs", "rendition", "makespan (s)", "avg wait (s)",
               "avg exec (s)", "utilization (%)", "resizes"]
    cells = [[s.num_jobs, rendition, s.makespan, s.avg_wait_time,
              s.avg_execution_time, 100.0 * s.utilization_rate,
              s.resize_count]]
    print(format_table(
        headers, cells,
        title=f"SWF replay: {args.workload} ({num_nodes} nodes)",
    ))
    if args.csv is not None:
        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, "run.csv")
        with open(path, "w") as fh:
            fh.write(format_csv(
                ["jobs", "rendition", "makespan_s", "avg_wait_s",
                 "avg_exec_s", "utilization_pct", "resizes"],
                cells,
            ))
        print(f"[csv written to {path}]")
    return 0


def main(argv: List[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.artifacts[0].lower() == "run":
        if len(args.artifacts) > 1:
            print("run mode takes no artifact names", file=sys.stderr)
            return 2
        return _run_user_workload(args)
    if args.workload is not None:
        print("--workload requires the 'run' mode", file=sys.stderr)
        return 2

    registry = builtin_registry()
    wanted: List[str] = []
    for name in args.artifacts:
        key = name.lower()
        if key == "list":
            _print_listing(registry)
            continue
        if key == "all":
            wanted.extend(registry.names())
            continue
        if key not in registry:
            print(f"unknown artifact {name!r}; try 'list'", file=sys.stderr)
            return 2
        wanted.append(key)

    seen = set()
    for key in wanted:
        if key in seen:
            continue
        seen.add(key)
        print(registry.render(key, seed=args.seed))
        if args.csv is not None and registry.get(key).supports_csv:
            _emit_csv(registry, key, args.seed, args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
