"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    python -m repro list                # what can be reproduced
    python -m repro fig1                # one figure
    python -m repro fig10 fig11        # several (one shared simulation)
    python -m repro all --csv out/      # everything + CSV dumps
    python -m repro fig3 --seed 7       # reseed the stochastic workloads
    python -m repro run --workload my.swf --flexible --seed 7
                                        # replay a user-supplied SWF log
    python -m repro backends            # execution backends + availability
    python -m repro run --workload my.swf --backend slurm --time-scale 0.01
                                        # same replay on a real scheduler
    python -m repro sweep --artifact fig3 --seeds 5 --jobs 4
                                        # seed ensemble with 95% CIs
    python -m repro sweep --workload fs --num-jobs 25,50 --policies default,deepest
                                        # grid sweep over workload axes
    python -m repro bench --quick       # emit BENCH_sweep.json
    python -m repro bench sched         # scheduler-scale bench -> BENCH_sched.json
    python -m repro cache ls            # inspect the on-disk result store
    python -m repro serve               # scheduler-as-a-service HTTP API
    python -m repro loadgen --quick     # benchmark a running `repro serve`

Artifacts are served from the declarative :mod:`repro.api` registry —
each ``experiments`` module registers its producers with
``@artifact(...)`` and this module only iterates the registry.  Sweeps
and benches go through :mod:`repro.sweep`; rendered artifacts and sweep
cells are cached in the :mod:`repro.store` result store (disable with
``--no-cache``).
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.api.registry import ArtifactRegistry, builtin_registry


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Regenerate the evaluation of 'Efficient Scalable Computing "
            "through Flexible Applications and Adaptive Workloads' "
            "(Iserte et al., ICPP 2017)."
        ),
    )
    parser.add_argument(
        "artifacts",
        nargs="+",
        metavar="ARTIFACT",
        help="'list', 'all', 'run', or artifact names (see 'list')",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also write <artifact>.csv files into DIR (where supported)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=None,
        metavar="N",
        help="base seed for stochastic workloads (default: the paper's 2017)",
    )
    run_opts = parser.add_argument_group(
        "run mode", "replay a user-supplied workload: repro run --workload FILE"
    )
    run_opts.add_argument(
        "--workload",
        metavar="FILE.swf",
        default=None,
        help="Standard Workload Format log to execute",
    )
    run_opts.add_argument(
        "--flexible",
        action="store_true",
        help="run the malleable rendition (default)",
    )
    run_opts.add_argument(
        "--rigid",
        action="store_true",
        help="run the rigid rendition instead",
    )
    run_opts.add_argument(
        "--nodes",
        type=int,
        default=None,
        metavar="N",
        help="cluster size (default: the 65-node production testbed, "
        "grown to fit the largest job)",
    )
    run_opts.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help="execution backend (default: sim; see 'repro backends')",
    )
    run_opts.add_argument(
        "--time-scale",
        type=float,
        default=None,
        metavar="X",
        help="compress workload seconds onto the backend clock by X "
        "(wall-clock backends only; 0.01 turns a 100s trace into 1s)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result store (always re-simulate)",
    )
    parser.add_argument(
        "--store",
        metavar="DIR",
        default=None,
        help="result-store directory (default: $REPRO_CACHE_DIR or .repro-cache)",
    )
    return parser


def _print_listing(registry: ArtifactRegistry) -> None:
    print("reproducible artifacts:", ", ".join(registry.names()))
    for name in registry.names():
        spec = registry.get(name)
        csv_tag = " [csv]" if spec.supports_csv else ""
        print(f"  {name:<12} {spec.description}{csv_tag}")
    print("also: 'run --workload FILE.swf [--flexible|--rigid]' "
          "to replay your own workload")


def _emit_csv(registry: ArtifactRegistry, name: str, seed: Optional[int],
              directory: str) -> None:
    os.makedirs(directory, exist_ok=True)
    path = os.path.join(directory, f"{name}.csv")
    with open(path, "w") as fh:
        fh.write(registry.render_csv(name, seed=seed))
    print(f"[csv written to {path}]")


def _run_user_workload(args: argparse.Namespace) -> int:
    """The ``repro run`` mode: execute a user-supplied SWF workload."""
    from repro.api import Session, SimulationTimeout
    from repro.backend import backend_names
    from repro.cluster.configs import ClusterConfig
    from repro.errors import BackendError, WorkloadError
    from repro.metrics.report import format_csv, format_table
    from repro.workload.swf import parse_swf

    if args.workload is None:
        print("run mode needs --workload FILE.swf", file=sys.stderr)
        return 2
    if args.flexible and args.rigid:
        print("--flexible and --rigid are mutually exclusive", file=sys.stderr)
        return 2
    backend = args.backend if args.backend is not None else "sim"
    if backend not in backend_names():
        print(f"unknown backend {backend!r}; see 'repro backends'",
              file=sys.stderr)
        return 2
    if args.time_scale is not None and args.time_scale <= 0:
        print("--time-scale must be positive", file=sys.stderr)
        return 2
    if args.time_scale is not None and backend == "sim":
        print("--time-scale applies to wall-clock backends; "
              "the simulator's virtual seconds are already free",
              file=sys.stderr)
        return 2
    try:
        with open(args.workload) as fh:
            text = fh.read()
    except OSError as exc:
        print(f"cannot read workload: {exc}", file=sys.stderr)
        return 2
    try:
        spec = parse_swf(text)
    except WorkloadError as exc:
        print(f"invalid workload: {exc}", file=sys.stderr)
        return 2

    flexible = not args.rigid
    largest = max(js.submit_nodes for js in spec.jobs)
    num_nodes = args.nodes if args.nodes is not None else max(65, largest)
    session = Session(cluster=ClusterConfig(num_nodes=num_nodes))
    if backend != "sim":
        options = {}
        if args.time_scale is not None:
            options["time_scale"] = args.time_scale
        session = session.with_backend(backend, **options)
    if args.seed is not None:
        # SWF logs pin every job's size, runtime and arrival, so a replay
        # is deterministic; keep the flag accepted (scripts pass it
        # uniformly) but be explicit that it cannot change this run.
        print("note: SWF replays are deterministic; --seed has no effect here")
    try:
        result = session.run(spec, flexible=flexible)
    except (SimulationTimeout, BackendError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1

    s = result.summary
    rendition = "flexible" if flexible else "rigid"
    headers = ["jobs", "rendition", "makespan (s)", "avg wait (s)",
               "avg exec (s)", "utilization (%)", "resizes"]
    cells = [[s.num_jobs, rendition, s.makespan, s.avg_wait_time,
              s.avg_execution_time, 100.0 * s.utilization_rate,
              s.resize_count]]
    title = f"SWF replay: {args.workload} ({num_nodes} nodes)"
    if result.backend != "sim":
        title += f" [backend={result.backend}]"
    print(format_table(headers, cells, title=title))
    if args.csv is not None:
        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, "run.csv")
        with open(path, "w") as fh:
            fh.write(format_csv(
                ["jobs", "rendition", "makespan_s", "avg_wait_s",
                 "avg_exec_s", "utilization_pct", "resizes"],
                cells,
            ))
        print(f"[csv written to {path}]")
    return 0


# -- backends mode ------------------------------------------------------------

def _backends_mode(argv: List[str]) -> int:
    """``repro backends``: list execution backends and probe availability."""
    parser = argparse.ArgumentParser(
        prog="repro backends",
        description="List the registered execution backends with their "
        "capability flags and an availability probe (e.g. whether "
        "sbatch is on PATH).",
    )
    parser.add_argument("--json", action="store_true",
                        help="emit the listing as JSON")
    args = parser.parse_args(argv)

    from repro.backend import backend_class, backend_names

    rows = []
    for name in backend_names():
        cls = backend_class(name)
        caps = cls.CAPABILITIES
        ok, reason = cls.available()
        rows.append({
            "name": name,
            "available": ok,
            "clock": caps.clock,
            "resize": caps.supports_resize,
            "faults": caps.supports_faults,
            "detail": reason,
        })
    if args.json:
        print(json.dumps(rows, indent=2, sort_keys=True))
        return 0

    def flag(value: bool) -> str:
        return "yes" if value else "no"

    print(f"{'backend':<10} {'available':<10} {'clock':<6} "
          f"{'resize':<7} {'faults':<7} detail")
    for row in rows:
        print(f"{row['name']:<10} {flag(row['available']):<10} "
              f"{row['clock']:<6} {flag(row['resize']):<7} "
              f"{flag(row['faults']):<7} {row['detail']}")
    print("select with --backend NAME ('repro run', 'repro sweep', "
          "'repro serve')")
    return 0


# -- resilience mode ----------------------------------------------------------

def _build_resilience_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro resilience",
        description="C/R vs DMR under MTBF-sampled node failures: the same "
        "fault plan replays against both mechanisms; reports completed "
        "work and makespan per MTBF (every run invariant-checked). "
        "Like 'repro sweep'/'bench', this mode always re-simulates; the "
        "registry form of the same artifact (via 'repro all', or the "
        "'resilience' name in an artifact list) runs the default MTBF "
        "sweep through the cached-artifact path instead.",
    )
    parser.add_argument("--mtbf", type=_float_list, default=None,
                        metavar="S1,S2,...",
                        help="cluster-wide MTBF values in seconds "
                        "(default 2000,1000,500; --quick: 500)")
    parser.add_argument("--quick", action="store_true",
                        help="small workload + single MTBF for CI smoke runs")
    parser.add_argument("--seed", type=int, default=None, metavar="N",
                        help="workload + fault-plan seed (default 2017)")
    parser.add_argument("--num-jobs", type=int, default=None, metavar="N",
                        help="workload size (default 20; --quick: 14)")
    parser.add_argument("--repair-time", type=float, default=None, metavar="S",
                        help="node repair time in seconds (default 600)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless DMR completed strictly "
                        "more work than C/R at the harshest MTBF")
    parser.add_argument("--csv", metavar="DIR", default=None,
                        help="also write resilience.csv into DIR")
    return parser


def _resilience_mode(argv: List[str]) -> int:
    from repro.api.registry import default_seed
    from repro.experiments import resilience as rz

    args = _build_resilience_parser().parse_args(argv)
    mtbfs = args.mtbf
    if mtbfs is not None and not mtbfs:
        print("--mtbf needs at least one value", file=sys.stderr)
        return 2
    import math

    if mtbfs is not None and any(not math.isfinite(m) or m <= 0 for m in mtbfs):
        print("--mtbf values must be positive finite seconds", file=sys.stderr)
        return 2
    if args.repair_time is not None and (
        not math.isfinite(args.repair_time) or args.repair_time <= 0
    ):
        print("--repair-time must be a positive finite number of seconds",
              file=sys.stderr)
        return 2
    if args.num_jobs is not None and args.num_jobs < 1:
        print("--num-jobs must be >= 1", file=sys.stderr)
        return 2
    if mtbfs is None:
        mtbfs = list(
            rz.RESILIENCE_QUICK_MTBFS if args.quick else rz.RESILIENCE_MTBFS
        )
    num_jobs = args.num_jobs
    if num_jobs is None:
        num_jobs = (
            rz.RESILIENCE_QUICK_NUM_JOBS if args.quick else rz.RESILIENCE_NUM_JOBS
        )
    result = rz.run_resilience(
        seed=default_seed(args.seed),
        mtbfs=mtbfs,
        num_jobs=num_jobs,
        repair_time=(
            rz.REPAIR_TIME if args.repair_time is None else args.repair_time
        ),
    )
    print(result.as_table())
    harshest = min(mtbfs)
    cr = result.row(harshest, "cr")
    dmr = result.row(harshest, "dmr")
    ahead = dmr.completed_work > cr.completed_work
    print(
        f"at MTBF {harshest:g}s: DMR completed {100 * dmr.work_fraction:.1f}% "
        f"vs C/R {100 * cr.work_fraction:.1f}% -> "
        f"{'DMR strictly ahead' if ahead else 'no separation'}"
    )
    if args.csv is not None:
        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, "resilience.csv")
        with open(path, "w") as fh:
            fh.write(result.as_csv())
        print(f"[csv written to {path}]")
    if args.check and not ahead:
        print("resilience check failed: DMR did not beat C/R", file=sys.stderr)
        return 1
    return 0


# -- trace mode ---------------------------------------------------------------

def _build_trace_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro trace",
        description="Run one telemetry-enabled scenario and export its "
        "spans plus the per-job timeline as a Chrome trace-event JSON "
        "file, loadable at https://ui.perfetto.dev.",
    )
    parser.add_argument("scenario", nargs="?", default="fig1",
                        help="named scenario (default: fig1 — the DMR "
                        "rendition of the Section VIII testbed under an "
                        "MTBF-sampled fault plan, so scheduler passes, "
                        "reconfigurations and fault injections all appear)")
    parser.add_argument("--workload", choices=("fs", "realapps"),
                        default="fs", help="workload family (default fs)")
    parser.add_argument("--num-jobs", type=int, default=None, metavar="N",
                        help="workload size (default 20; 14 with --quick)")
    parser.add_argument("--seed", type=int, default=None, metavar="S",
                        help="base seed (default 2017)")
    parser.add_argument("--mtbf", type=float, default=None, metavar="S",
                        help="cluster-wide MTBF of the injected fault plan "
                        "in seconds (default 500)")
    parser.add_argument("--max-spans", type=int, default=None, metavar="N",
                        help="span-buffer bound (default 100000; overflow "
                        "is counted, not fatal)")
    parser.add_argument("--out", metavar="FILE", default="trace.json",
                        help="output path (default trace.json)")
    parser.add_argument("--quick", action="store_true",
                        help="CI-sized run (smaller workload)")
    return parser


def _trace_mode(argv: List[str]) -> int:
    from repro.api import Session
    from repro.cluster.configs import marenostrum_preliminary
    from repro.errors import SimulationTimeout, TelemetryError
    from repro.experiments.resilience import (
        HORIZON_FACTOR,
        REPAIR_TIME,
        RESILIENCE_NUM_JOBS,
        RESILIENCE_QUICK_NUM_JOBS,
    )
    from repro.faults import FaultPlan
    from repro.obs.perfetto import export_perfetto

    args = _build_trace_parser().parse_args(argv)
    if args.scenario.lower() != "fig1":
        print(f"unknown trace scenario {args.scenario!r}; known: fig1",
              file=sys.stderr)
        return 2
    seed = 2017 if args.seed is None else args.seed
    num_jobs = args.num_jobs if args.num_jobs is not None else (
        RESILIENCE_QUICK_NUM_JOBS if args.quick else RESILIENCE_NUM_JOBS
    )
    mtbf = 500.0 if args.mtbf is None else args.mtbf

    base = Session(cluster=marenostrum_preliminary()).with_seed(seed)
    spec = (base.fs_workload(num_jobs) if args.workload == "fs"
            else base.realapp_workload(num_jobs))
    # Same shape as the resilience artifact: measure to a horizon a hair
    # above the fault-free rigid makespan, with an MTBF-sampled plan.
    baseline = base.run(spec, flexible=False)
    horizon = HORIZON_FACTOR * baseline.summary.makespan
    plan = FaultPlan.from_mtbf(
        mtbf=mtbf,
        horizon=horizon,
        num_nodes=base.cluster.num_nodes,
        seed=seed,
        repair_time=REPAIR_TIME,
    )
    cid = f"trace-{args.scenario.lower()}-{seed}"
    session = base.with_faults(plan).with_telemetry(
        correlation_id=cid, max_spans=args.max_spans
    )
    run = session.submit(spec, flexible=True)
    try:
        run.execute(horizon)
    except SimulationTimeout:
        pass  # horizon cut the run short; spans up to the cut still export
    telemetry = run.sim.telemetry
    try:
        info = export_perfetto(
            args.out,
            spans=telemetry.spans,
            trace=run.sim.controller.trace,
            correlation_id=cid,
            dropped=telemetry.dropped,
        )
    except TelemetryError as exc:
        print(f"trace export failed: {exc}", file=sys.stderr)
        return 1
    counts = telemetry.counts_by_name()
    print(
        f"{args.scenario.lower()}: {num_jobs} {args.workload} jobs, "
        f"mtbf {mtbf:g}s, horizon {horizon:.0f}s (cid {cid})"
    )
    for name in sorted(counts):
        print(f"  {counts[name]:>5}  {name}")
    print(
        f"[{info['events']} trace events on {info['tracks']} tracks "
        f"({telemetry.dropped} spans dropped) written to {info['path']}]"
    )
    return 0


# -- sweep / bench / cache modes ---------------------------------------------

def _csv_list(cast, kind: str):
    """Argparse type: comma-separated list of ``cast``-able values."""

    def parse(text: str):
        try:
            return [cast(part) for part in text.split(",") if part]
        except ValueError:
            raise argparse.ArgumentTypeError(
                f"not a comma-separated {kind} list: {text!r}"
            )

    return parse


_int_list = _csv_list(int, "int")
_float_list = _csv_list(float, "float")
_str_list = _csv_list(str, "string")


def _store_for(args: argparse.Namespace):
    if args.no_cache:
        return None
    from repro.store import default_store

    return default_store(args.store)


class _PrintProgress:
    """Stderr per-cell progress lines for ``repro sweep`` / ``bench``."""

    def on_cell_start(self, index, total, spec):
        print(f"[{index + 1:>3}/{total}] run    {spec.describe()}",
              file=sys.stderr)

    def on_cell_done(self, index, total, outcome):
        tag = "cached" if outcome.cached else f"{outcome.wall_time:.1f}s"
        print(
            f"[{index + 1:>3}/{total}] done   {outcome.spec.describe()} ({tag})",
            file=sys.stderr,
        )


def _sweep_progress(quiet: bool):
    from repro.sweep import SweepObserver  # noqa: F401  (protocol anchor)

    return () if quiet else (_PrintProgress(),)


def _report_store(store) -> None:
    if store is None:
        return
    s = store.stats()
    served = s["hits"]
    total = s["hits"] + s["misses"]
    print(
        f"store {store.root}: served {served}/{total} lookups from cache "
        f"({s['puts']} new records); inspect with 'repro cache ls'"
    )


def _build_sweep_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro sweep",
        description="Run a parameter grid as independent cells with "
        "seed-ensemble statistics (mean, median, stdev, 95% CI).",
    )
    parser.add_argument("--artifact", action="append", metavar="NAME",
                        help="ensemble a registered artifact (repeatable)")
    parser.add_argument("--workload", action="append", metavar="FAMILY",
                        choices=("fs", "realapps"),
                        help="sweep a workload family instead (repeatable)")
    parser.add_argument("--num-jobs", type=_int_list, default=None,
                        metavar="N1,N2,...", help="workload sizes axis")
    parser.add_argument("--nodes", type=_int_list, default=None,
                        metavar="N1,N2,...", help="cluster sizes axis")
    parser.add_argument("--policies", type=_str_list, default=None,
                        metavar="P1,P2,...",
                        help="policy presets axis (default, deepest, literal)")
    parser.add_argument("--seeds", type=int, default=5, metavar="K",
                        help="ensemble width: K consecutive seeds (default 5)")
    parser.add_argument("--base-seed", type=int, default=None, metavar="S",
                        help="first seed of the ensemble (default 2017)")
    parser.add_argument("--async", dest="async_mode", action="store_true",
                        help="asynchronous DMR mode for workload cells")
    parser.add_argument("--backend", metavar="NAME", default=None,
                        help="execution backend for workload cells "
                        "(default: sim; see 'repro backends')")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (1 = serial, default)")
    parser.add_argument("--csv", nargs="?", const="-", default=None,
                        metavar="DIR",
                        help="emit aggregated CSV (bare: to stdout; "
                        "DIR: into DIR/sweep.csv)")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="result-store directory")
    parser.add_argument("--no-cache", action="store_true",
                        help="bypass the on-disk result store")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="collect per-cell telemetry spans and export "
                        "them as a Perfetto-loadable Chrome trace to FILE")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-cell progress on stderr")
    return parser


def _sweep_mode(argv: List[str]) -> int:
    from repro.errors import SimulationTimeout, SweepError
    from repro.sweep import Sweep, SweepRunner
    from repro.sweep.spec import DEFAULT_BASE_SEED

    args = _build_sweep_parser().parse_args(argv)
    if args.backend is not None:
        from repro.backend import backend_names

        if args.backend not in backend_names():
            print(f"unknown backend {args.backend!r}; see 'repro backends'",
                  file=sys.stderr)
            return 2
    store = _store_for(args)
    try:
        sweep = Sweep.over(
            seeds=args.seeds,
            base_seed=(DEFAULT_BASE_SEED if args.base_seed is None
                       else args.base_seed),
            artifacts=args.artifact,
            workloads=args.workload,
            num_jobs=args.num_jobs,
            nodes=args.nodes,
            policies=args.policies,
            async_mode=args.async_mode,
            backend=args.backend if args.backend is not None else "sim",
        )
    except SweepError as exc:
        print(f"invalid sweep: {exc}", file=sys.stderr)
        return 2
    if any(c.kind == "artifact" for c in sweep.cells):
        registry = builtin_registry()
        unknown = sorted(
            {c.artifact for c in sweep.cells
             if c.kind == "artifact" and c.artifact not in registry}
        )
        if unknown:
            print(f"unknown artifact(s): {', '.join(unknown)}; try 'repro list'",
                  file=sys.stderr)
            return 2
    telemetry_config = None
    if args.trace is not None:
        from repro.obs.spans import TelemetryConfig

        telemetry_config = TelemetryConfig(correlation_id="sweep")
    try:
        runner = SweepRunner(
            jobs=args.jobs, store=store,
            observers=_sweep_progress(args.quiet),
            telemetry=telemetry_config,
        )
        result = runner.run(sweep)
    except SimulationTimeout as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    except SweepError as exc:
        print(f"sweep failed: {exc}", file=sys.stderr)
        return 1
    aggregate = result.aggregate()
    print(aggregate.as_table())
    print(
        f"{len(result)} cells over seeds {sweep.seeds[0]}..{sweep.seeds[-1]} "
        f"({result.cached_cells} cached, {result.computed_cells} computed, "
        f"jobs={result.jobs}, compute {result.compute_wall_time:.1f}s)"
    )
    events = result.total_events()
    if events["raw_events"]:
        print(
            f"observed across the ensemble: {events['completions']} job "
            f"completions, {events['resizes']} resizes"
        )
    _report_store(store)
    if args.trace is not None:
        from repro.errors import TelemetryError
        from repro.obs.perfetto import export_perfetto
        from repro.obs.spans import Span

        spans = []
        for cell in result.cells:
            for data in cell.spans:
                span = Span.from_dict(data)
                cid = data.get("cid")
                # One track group per cell so concurrent cells' sim
                # clocks do not interleave on a shared track.
                if cid and span.track != "sweep":
                    span.track = f"{cid}/{span.track}"
                spans.append(span)
        try:
            info = export_perfetto(
                args.trace, spans=spans, correlation_id="sweep"
            )
        except TelemetryError as exc:
            print(f"trace export failed: {exc}", file=sys.stderr)
            return 1
        print(
            f"[{info['events']} trace events on {info['tracks']} tracks "
            f"written to {info['path']}]"
        )
    if args.csv == "-":
        print(aggregate.as_csv(), end="")
    elif args.csv is not None:
        os.makedirs(args.csv, exist_ok=True)
        path = os.path.join(args.csv, "sweep.csv")
        with open(path, "w") as fh:
            fh.write(aggregate.as_csv())
        print(f"[csv written to {path}]")
    return 0


def _build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description="Seed-ensemble bench of the headline artifacts "
        "(fig1/fig3/table2); emits BENCH_sweep.json.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="small ensemble for CI smoke runs")
    parser.add_argument("--seeds", type=int, default=None, metavar="K",
                        help="ensemble width (default: 5, or 2 with --quick)")
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (default 1)")
    parser.add_argument("--base-seed", type=int, default=None, metavar="S")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="output path (default BENCH_sweep.json)")
    parser.add_argument("--store", metavar="DIR", default=None)
    parser.add_argument("--no-cache", action="store_true")
    parser.add_argument("--quiet", action="store_true")
    return parser


def _build_bench_sched_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench sched",
        description="Scheduler-scale bench: replay large synthetic "
        "Feitelson/SWF traces through both scheduler modes; emits "
        "BENCH_sched.json with pass counts, wall-clock and the "
        "incremental-vs-legacy comparison-work ratio.",
    )
    parser.add_argument("--quick", action="store_true",
                        help="single small trace for CI smoke runs")
    parser.add_argument("--sizes", type=_int_list, default=None,
                        metavar="N1,N2,...",
                        help="trace sizes in jobs (default 5000,20000,50000; "
                        "--quick: 2000)")
    parser.add_argument("--seed", type=int, default=None, metavar="S",
                        help="trace seed (default 2017)")
    parser.add_argument("--no-legacy", action="store_true",
                        help="skip the legacy-scheduler replays")
    parser.add_argument("--legacy-cap", type=int, default=None, metavar="N",
                        help="largest trace replayed with the legacy "
                        "scheduler (default 20000)")
    parser.add_argument("--out", metavar="FILE", default=None,
                        help="output path (default BENCH_sched.json)")
    parser.add_argument("--check", action="store_true",
                        help="re-run the smallest committed size and compare "
                        "the deterministic metrics against the committed "
                        "BENCH_sched.json (timestamps/wall-clock/RSS are "
                        "ignored); writes nothing")
    parser.add_argument("--profile", metavar="FILE", default=None,
                        help="dump cProfile pstats of the largest "
                        "incremental replay to FILE")
    parser.add_argument("--trace", metavar="FILE", default=None,
                        help="export telemetry spans of the largest "
                        "incremental replay as a Perfetto-loadable "
                        "Chrome trace to FILE")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress progress lines on stderr")
    return parser


def _bench_sched_mode(argv: List[str]) -> int:
    from repro.errors import SweepError
    from repro.sweep.bench import (
        SCHED_BENCH_PATH,
        SCHED_LEGACY_CAP,
        check_sched_bench,
        run_sched_bench,
        write_bench,
    )
    from repro.sweep.spec import DEFAULT_BASE_SEED

    args = _build_bench_sched_parser().parse_args(argv)
    progress = None if args.quiet else (
        lambda message: print(f"[bench sched] {message}", file=sys.stderr)
    )
    if args.check:
        committed_path = args.out if args.out else SCHED_BENCH_PATH
        size = args.sizes[0] if args.sizes else None
        try:
            drifts = check_sched_bench(
                committed_path, size=size, progress=progress
            )
        except SweepError as exc:
            print(f"bench check failed: {exc}", file=sys.stderr)
            return 1
        if drifts:
            print(f"{committed_path} drifted from the current scheduler:")
            for line in drifts:
                print(f"  {line}")
            return 1
        print(
            f"{committed_path}: deterministic metrics match "
            "(volatile fields ignored)"
        )
        return 0
    data = run_sched_bench(
        sizes=args.sizes,
        quick=args.quick,
        seed=DEFAULT_BASE_SEED if args.seed is None else args.seed,
        legacy=not args.no_legacy,
        legacy_cap=(SCHED_LEGACY_CAP if args.legacy_cap is None
                    else args.legacy_cap),
        progress=progress,
        profile_path=args.profile,
        trace_path=args.trace,
    )
    path = write_bench(data, args.out if args.out else SCHED_BENCH_PATH)
    for size, entry in data["traces"].items():
        inc = entry["incremental"]
        line = (
            f"{size:>6} jobs  incremental: {inc['wall_s']:.1f}s wall, "
            f"{inc['comparisons']} comparisons, {inc['passes']} passes"
        )
        if "speedup" in entry:
            ratios = entry["speedup"]
            line += (
                f"  | legacy {entry['legacy']['wall_s']:.1f}s "
                f"({ratios['comparisons_ratio']:.0f}x comparisons, "
                f"{ratios['wall_ratio']:.1f}x wall)"
            )
        print(line)
    print(f"total {data['total_wall_s']:.1f}s; [bench written to {path}]")
    return 0


def _bench_mode(argv: List[str]) -> int:
    from repro.errors import SimulationTimeout, SweepError
    from repro.sweep import run_bench, write_bench
    from repro.sweep.bench import BENCH_PATH
    from repro.sweep.spec import DEFAULT_BASE_SEED

    if argv and argv[0].lower() == "sched":
        return _bench_sched_mode(argv[1:])
    args = _build_bench_parser().parse_args(argv)
    store = _store_for(args)
    try:
        data = run_bench(
            seeds=args.seeds,
            jobs=args.jobs,
            quick=args.quick,
            base_seed=(DEFAULT_BASE_SEED if args.base_seed is None
                       else args.base_seed),
            store=store,
            observers=_sweep_progress(args.quiet),
        )
    except (SimulationTimeout, SweepError) as exc:
        print(f"bench failed: {exc}", file=sys.stderr)
        return 1
    path = write_bench(data, args.out if args.out else BENCH_PATH)
    for name, entry in data["artifacts"].items():
        print(
            f"{name:<8} {entry['cells']} cells "
            f"({entry['cached_cells']} cached) in {entry['ensemble_wall_s']:.1f}s"
        )
    print(f"total {data['total_wall_s']:.1f}s over seeds {data['seeds']}")
    print(f"[bench written to {path}]")
    _report_store(store)
    return 0


def _cache_mode(argv: List[str]) -> int:
    parser = argparse.ArgumentParser(
        prog="repro cache",
        description="Inspect or empty the on-disk result store.",
    )
    parser.add_argument("action", choices=("ls", "clear"))
    parser.add_argument("--store", metavar="DIR", default=None)
    parser.add_argument("--json", action="store_true",
                        help="emit the ls inventory as JSON (stable "
                        "ordering; includes hit/miss/put stats)")
    args = parser.parse_args(argv)

    from repro.store import default_store

    store = default_store(args.store)
    if args.action == "clear":
        if args.json:
            print("--json applies to 'ls' only", file=sys.stderr)
            return 2
        removed = store.clear()
        print(f"removed {removed} record(s) from {store.root}")
        return 0
    if args.json:
        import json

        print(json.dumps(store.listing(), indent=2, sort_keys=True))
        return 0
    entries = store.entries()
    print(f"store {store.root} (salt {store.salt}): {len(entries)} record(s)")
    for entry in entries:
        print(f"  {entry.describe()}")
    return 0


def _serve_mode(argv: List[str]) -> int:
    from repro.serve.app import (
        DEFAULT_HOST,
        DEFAULT_PORT,
        ReproServer,
        run_server,
    )
    from repro.serve.jobs import DEFAULT_QUEUE_LIMIT, DEFAULT_WORKERS

    parser = argparse.ArgumentParser(
        prog="repro serve",
        description="Run the scheduler-as-a-service HTTP server "
        "(REST/JSON API with live SSE event streams).",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, metavar="ADDR")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, metavar="N",
                        help=f"listen port (default {DEFAULT_PORT}; 0 picks "
                        "an ephemeral port)")
    parser.add_argument("--workers", type=int, default=DEFAULT_WORKERS,
                        metavar="N",
                        help="simulation worker threads "
                        f"(default {DEFAULT_WORKERS})")
    parser.add_argument("--queue-limit", type=int,
                        default=DEFAULT_QUEUE_LIMIT, metavar="N",
                        help="max queued submissions before 429 "
                        f"(default {DEFAULT_QUEUE_LIMIT})")
    parser.add_argument("--store", metavar="DIR", default=None,
                        help="result-store directory backing sweeps and "
                        "artifact rendering")
    parser.add_argument("--no-cache", action="store_true",
                        help="serve without a result store")
    parser.add_argument("--backend", metavar="NAME", default="sim",
                        help="execution backend for workload submissions "
                        "(default: sim; see 'repro backends')")
    parser.add_argument("--time-scale", type=float, default=None, metavar="X",
                        help="compress workload seconds onto the backend "
                        "clock by X (wall-clock backends only)")
    args = parser.parse_args(argv)

    from repro.backend import backend_names

    if args.backend not in backend_names():
        print(f"unknown backend {args.backend!r}; see 'repro backends'",
              file=sys.stderr)
        return 2
    if args.time_scale is not None and (
        args.time_scale <= 0 or args.backend == "sim"
    ):
        print("--time-scale must be positive and needs a wall-clock "
              "--backend", file=sys.stderr)
        return 2
    backend_options = (
        {} if args.time_scale is None else {"time_scale": args.time_scale}
    )
    store = _store_for(args)
    server = ReproServer(
        host=args.host,
        port=args.port,
        workers=args.workers,
        queue_limit=args.queue_limit,
        store=store,
        backend=args.backend,
        backend_options=backend_options,
    )

    def announce(srv) -> None:
        print(f"repro serve: listening on http://{srv.host}:{srv.port} "
              f"({srv.workers} workers, queue limit {srv.queue_limit}, "
              f"backend {srv.backend})",
              flush=True)

    run_server(server, announce=announce)
    print("repro serve: drained and stopped")
    return 0


def _loadgen_mode(argv: List[str]) -> int:
    from repro.serve.app import DEFAULT_HOST, DEFAULT_PORT
    from repro.serve.loadgen import (
        DEFAULT_CLIENTS,
        DEFAULT_NUM_JOBS,
        DEFAULT_REQUESTS,
        Loadgen,
        LoadgenError,
        check_report,
        summarize,
    )

    parser = argparse.ArgumentParser(
        prog="repro loadgen",
        description="Benchmark a running `repro serve` with concurrent "
        "workload submissions and SSE event streams.",
    )
    parser.add_argument("--host", default=DEFAULT_HOST, metavar="ADDR")
    parser.add_argument("--port", type=int, default=DEFAULT_PORT, metavar="N")
    parser.add_argument("--clients", type=int, default=DEFAULT_CLIENTS,
                        metavar="N", help="concurrent client sessions "
                        f"(default {DEFAULT_CLIENTS})")
    parser.add_argument("--requests", type=int, default=DEFAULT_REQUESTS,
                        metavar="N", help="total workload submissions "
                        f"(default {DEFAULT_REQUESTS})")
    parser.add_argument("--num-jobs", type=int, default=DEFAULT_NUM_JOBS,
                        metavar="N", help="jobs per submitted workload "
                        f"(default {DEFAULT_NUM_JOBS})")
    parser.add_argument("--seed", type=int, default=2017, metavar="S")
    parser.add_argument("--quick", action="store_true",
                        help="small CI-sized run (2 clients, 4 requests)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless throughput is non-zero, "
                        "every job completed and the drain was clean")
    parser.add_argument("--out", metavar="PATH", default="BENCH_serve.json",
                        help="report path (default BENCH_serve.json)")
    args = parser.parse_args(argv)

    clients = 2 if args.quick else args.clients
    requests = 4 if args.quick else args.requests
    gen = Loadgen(
        host=args.host,
        port=args.port,
        clients=clients,
        requests=requests,
        num_jobs=args.num_jobs,
        seed=args.seed,
    )
    try:
        report = gen.run()
    except (LoadgenError, ConnectionError, OSError) as exc:
        print(f"loadgen failed: {exc}", file=sys.stderr)
        print(f"(is `repro serve` running on "
              f"{args.host}:{args.port}?)", file=sys.stderr)
        return 1
    with open(args.out, "w", encoding="utf-8") as fh:
        json.dump(report, fh, indent=2, sort_keys=True)
        fh.write("\n")
    print(summarize(report))
    print(f"[report written to {args.out}]")
    if args.check:
        failures = check_report(report)
        for failure in failures:
            print(f"check failed: {failure}", file=sys.stderr)
        return 1 if failures else 0
    return 0


def main(argv: List[str] | None = None) -> int:
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0].lower() == "serve":
        return _serve_mode(argv[1:])
    if argv and argv[0].lower() == "loadgen":
        return _loadgen_mode(argv[1:])
    if argv and argv[0].lower() == "sweep":
        return _sweep_mode(argv[1:])
    if argv and argv[0].lower() == "bench":
        return _bench_mode(argv[1:])
    if argv and argv[0].lower() == "cache":
        return _cache_mode(argv[1:])
    if argv and argv[0].lower() == "resilience":
        return _resilience_mode(argv[1:])
    if argv and argv[0].lower() == "trace":
        return _trace_mode(argv[1:])
    if argv and argv[0].lower() == "backends":
        return _backends_mode(argv[1:])
    args = build_parser().parse_args(argv)
    if args.artifacts[0].lower() == "run":
        if len(args.artifacts) > 1:
            print("run mode takes no artifact names", file=sys.stderr)
            return 2
        return _run_user_workload(args)
    if args.workload is not None:
        print("--workload requires the 'run' mode", file=sys.stderr)
        return 2
    if args.backend is not None or args.time_scale is not None:
        print("--backend/--time-scale require the 'run' mode "
              "(artifacts always render through the simulator)",
              file=sys.stderr)
        return 2

    registry = builtin_registry()
    if args.no_cache:
        registry.detach_store()
    else:
        # Rendered figures/tables are served from (and persisted to) the
        # on-disk store, so a repeated `repro figN` skips the simulation.
        from repro.store import default_store

        registry.attach_store(default_store(args.store))
    wanted: List[str] = []
    for name in args.artifacts:
        key = name.lower()
        if key == "list":
            _print_listing(registry)
            continue
        if key == "all":
            wanted.extend(registry.names())
            continue
        if key not in registry:
            print(f"unknown artifact {name!r}; try 'list'", file=sys.stderr)
            return 2
        wanted.append(key)

    seen = set()
    for key in wanted:
        if key in seen:
            continue
        seen.add(key)
        print(registry.render(key, seed=args.seed))
        if args.csv is not None and registry.get(key).supports_csv:
            _emit_csv(registry, key, args.seed, args.csv)
    return 0


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
