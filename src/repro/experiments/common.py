"""Shared experiment driver: run one workload, collect the paper metrics.

Every figure/table reproduction builds on :func:`run_workload`: it stands
up a fresh simulation (machine + Slurm controller + Nanos++ launcher),
submits the workload's jobs at their arrival times, runs to completion and
returns the trace plus Table II summary.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.cluster.configs import ClusterConfig
from repro.errors import ReproError
from repro.metrics.summary import WorkloadSummary, summarize
from repro.metrics.timeline import (
    StepSeries,
    allocated_nodes_series,
    completed_jobs_series,
    running_jobs_series,
)
from repro.metrics.trace import Trace
from repro.runtime.nanos import RuntimeConfig, install_runtime_launcher
from repro.sim.engine import Environment
from repro.slurm.controller import SlurmConfig, SlurmController
from repro.slurm.job import Job
from repro.workload.spec import WorkloadSpec


@dataclass
class WorkloadResult:
    """Everything an experiment needs from one workload execution."""

    workload_name: str
    flexible: bool
    jobs: List[Job]
    trace: Trace
    summary: WorkloadSummary

    @property
    def makespan(self) -> float:
        return self.summary.makespan

    def allocation_series(self) -> StepSeries:
        return allocated_nodes_series(self.trace)

    def running_series(self) -> StepSeries:
        return running_jobs_series(self.trace)

    def completed_series(self) -> StepSeries:
        return completed_jobs_series(self.trace)


def run_workload(
    spec: WorkloadSpec,
    cluster: ClusterConfig,
    flexible: bool,
    runtime_config: Optional[RuntimeConfig] = None,
    slurm_config: Optional[SlurmConfig] = None,
    max_sim_time: float = 50_000_000.0,
) -> WorkloadResult:
    """Execute one rendition (fixed or flexible) of a workload.

    ``flexible=False`` forces every job rigid regardless of the spec —
    this is how the paper's paired fixed/flexible comparisons are run.
    """
    env = Environment()
    machine = cluster.build_machine()
    controller = SlurmController(env, machine, config=slurm_config)
    install_runtime_launcher(controller, cluster, runtime_config)

    jobs: List[Job] = []

    def submitter():
        t = 0.0
        for job_spec in spec.jobs:
            if job_spec.arrival_time > t:
                yield env.timeout(job_spec.arrival_time - t)
                t = job_spec.arrival_time
            jobs.append(controller.submit(job_spec.build_job(flexible)))

    env.process(submitter(), name="submitter")
    env.run(until=max_sim_time)
    if len(jobs) < len(spec.jobs) or not controller.all_done():
        raise ReproError(
            f"workload {spec.name!r} did not finish by t={max_sim_time}: "
            f"{len(spec.jobs) - len(jobs)} unsubmitted, "
            f"{len(controller.pending)} pending, {len(controller.running)} running"
        )

    summary = summarize(jobs, controller.trace, machine.num_nodes)
    return WorkloadResult(
        workload_name=spec.name,
        flexible=flexible,
        jobs=jobs,
        trace=controller.trace,
        summary=summary,
    )


@dataclass
class PairedComparison:
    """A fixed-vs-flexible pair on the same workload (the paper's design)."""

    fixed: WorkloadResult
    flexible: WorkloadResult

    @property
    def makespan_gain(self) -> float:
        from repro.metrics.summary import gain_percent

        return gain_percent(self.fixed.makespan, self.flexible.makespan)

    @property
    def wait_gain(self) -> float:
        from repro.metrics.summary import gain_percent

        return gain_percent(
            self.fixed.summary.avg_wait_time, self.flexible.summary.avg_wait_time
        )


def run_paired(
    spec: WorkloadSpec,
    cluster: ClusterConfig,
    runtime_config: Optional[RuntimeConfig] = None,
    slurm_config: Optional[SlurmConfig] = None,
) -> PairedComparison:
    """Run the fixed and flexible renditions of the same workload."""
    return PairedComparison(
        fixed=run_workload(spec, cluster, flexible=False,
                           runtime_config=runtime_config, slurm_config=slurm_config),
        flexible=run_workload(spec, cluster, flexible=True,
                              runtime_config=runtime_config, slurm_config=slurm_config),
    )
