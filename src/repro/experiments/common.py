"""Backwards-compatible shims over the :mod:`repro.api` facade.

Historically every figure driver called :func:`run_workload` here, which
privately assembled ``Environment`` + ``SlurmController`` + the runtime
launcher.  That assembly now lives in one place —
:class:`repro.api.Session` — and this module keeps the old call
signatures alive for tests, benchmarks and external scripts.  New code
should use the session directly::

    from repro.api import Session

    result = Session(cluster=cluster).run(spec, flexible=True)
"""

from __future__ import annotations

from typing import Optional

from repro.api.results import PairedComparison, WorkloadResult
from repro.api.session import DEFAULT_MAX_SIM_TIME, Session
from repro.cluster.configs import ClusterConfig
from repro.runtime.nanos import RuntimeConfig
from repro.slurm.controller import SlurmConfig
from repro.workload.spec import WorkloadSpec

__all__ = [
    "PairedComparison",
    "WorkloadResult",
    "run_paired",
    "run_workload",
]


def run_workload(
    spec: WorkloadSpec,
    cluster: ClusterConfig,
    flexible: bool,
    runtime_config: Optional[RuntimeConfig] = None,
    slurm_config: Optional[SlurmConfig] = None,
    max_sim_time: float = DEFAULT_MAX_SIM_TIME,
) -> WorkloadResult:
    """Execute one rendition (fixed or flexible) of a workload.

    Equivalent to ``Session(...).run(spec, flexible=flexible)``.
    """
    session = Session(cluster=cluster, slurm=slurm_config, runtime=runtime_config)
    return session.run(spec, flexible=flexible, max_sim_time=max_sim_time)


def run_paired(
    spec: WorkloadSpec,
    cluster: ClusterConfig,
    runtime_config: Optional[RuntimeConfig] = None,
    slurm_config: Optional[SlurmConfig] = None,
) -> PairedComparison:
    """Run the fixed and flexible renditions of the same workload."""
    session = Session(cluster=cluster, slurm=slurm_config, runtime=runtime_config)
    return session.run_paired(spec)
