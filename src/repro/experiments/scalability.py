"""Section IX-A — the individual-scalability pre-study.

Before running the production workloads, the paper evaluates each real
application's strong scaling and classifies it:

* **High scalability** (CG, Jacobi): best speed-up at 32 processes, but
  marginal gains below 10% beyond 8 — the "sweet configuration spot";
* **Constant performance** (N-body): peak at 16 processes with less than
  10% total gain over sequential — sweet spot at a single process.

These classifications are what the Table I ``preferred`` values encode.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.api import artifact
from repro.apps.base import AppModel
from repro.apps.cg import conjugate_gradient
from repro.apps.jacobi import jacobi
from repro.apps.nbody import nbody
from repro.metrics.report import format_table

PROC_COUNTS = (1, 2, 4, 8, 16, 32)


@dataclass
class ScalabilityRow:
    """One application's strong-scaling profile."""

    app_name: str
    speedups: Dict[int, float]
    step_times: Dict[int, float]
    preferred: int

    @property
    def peak_procs(self) -> int:
        """Process count with the best speed-up."""
        return max(self.speedups, key=lambda p: self.speedups[p])

    @property
    def sweet_spot(self) -> int:
        """The paper's sweet-spot criteria.

        Constant-performance applications (total gain < 10%) get a
        single process; otherwise the spot is the first process count
        from which "the difference gain between tests drops below 10%" —
        i.e. every further doubling improves the speed-up by less than
        10%.
        """
        if self.speedups[self.peak_procs] < 1.10:
            return 1
        counts = sorted(self.speedups)
        for i, procs in enumerate(counts):
            marginal_gains = [
                self.speedups[counts[j + 1]] / self.speedups[counts[j]]
                for j in range(i, len(counts) - 1)
            ]
            if all(g < 1.10 for g in marginal_gains):
                return procs
        return self.peak_procs


@dataclass
class ScalabilityResult:
    rows: List[ScalabilityRow]

    def row(self, app_name: str) -> ScalabilityRow:
        for r in self.rows:
            if r.app_name == app_name:
                return r
        raise KeyError(app_name)

    def as_table(self) -> str:
        header = ["application"] + [f"S({p})" for p in PROC_COUNTS] + [
            "peak", "sweet spot", "Table I preferred",
        ]
        cells = []
        for r in self.rows:
            cells.append(
                [r.app_name]
                + [f"{r.speedups[p]:.2f}" for p in PROC_COUNTS]
                + [r.peak_procs, r.sweet_spot, r.preferred]
            )
        return format_table(
            header, cells, title="Section IX-A: individual application scalability"
        )


def run_scalability(
    factories: Sequence[Callable[[], AppModel]] = (
        conjugate_gradient,
        jacobi,
        nbody,
    ),
    proc_counts: Sequence[int] = PROC_COUNTS,
) -> ScalabilityResult:
    """Profile each application's scaling across ``proc_counts``."""
    rows = []
    for factory in factories:
        app = factory()
        speedups = {p: app.scalability.speedup(p) for p in proc_counts}
        step_times = {p: app.step_time(p) for p in proc_counts}
        assert app.resize is not None
        rows.append(
            ScalabilityRow(
                app_name=app.name,
                speedups=speedups,
                step_times=step_times,
                preferred=app.resize.preferred or 1,
            )
        )
    return ScalabilityResult(rows=rows)


@artifact("scalability",
          description="Section IX-A individual application scalability")
def _scalability_artifact(seed: Optional[int] = None) -> ScalabilityResult:
    # Deterministic scalability curves — the seed does not apply.
    return run_scalability()


if __name__ == "__main__":  # pragma: no cover
    print(run_scalability().as_table())
