"""Experiment drivers: one module per paper figure/table.

Each driver runs its workloads through :class:`repro.api.Session` and
registers its artifacts with :func:`repro.api.artifact`; the CLI serves
them from that registry.
"""

from repro.experiments.common import (
    PairedComparison,
    WorkloadResult,
    run_paired,
    run_workload,
)

__all__ = [
    "PairedComparison",
    "WorkloadResult",
    "run_paired",
    "run_workload",
]
