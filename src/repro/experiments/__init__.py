"""Experiment drivers: one module per paper figure/table."""

from repro.experiments.common import (
    PairedComparison,
    WorkloadResult,
    run_paired,
    run_workload,
)

__all__ = [
    "PairedComparison",
    "WorkloadResult",
    "run_paired",
    "run_workload",
]
