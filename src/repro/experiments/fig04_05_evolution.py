"""Figs. 4 & 5 — evolution in time of the 10-job and 25-job FS workloads.

The paper's evolution charts plot allocated nodes, running jobs and
completed jobs against time for the fixed and flexible renditions.  The
10-job flexible workload reaches almost-full allocation (explaining its
outsized gain); the 25-job one exposes the last-job effect that narrows
the benefit.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.api import PairedComparison, Session, artifact, default_seed
from repro.cluster.configs import ClusterConfig, marenostrum_preliminary
from repro.metrics.report import format_evolution
from repro.runtime.nanos import RuntimeConfig
from repro.workload.generator import FSWorkloadConfig, fs_workload


@dataclass
class EvolutionResult:
    """Paired evolution data for one workload size."""

    num_jobs: int
    pair: PairedComparison

    def as_text(self, width: int = 64) -> str:
        out = []
        for result in (self.pair.fixed, self.pair.flexible):
            label = "flexible" if result.flexible else "fixed"
            t1 = result.makespan
            out.append(
                format_evolution(
                    f"{self.num_jobs}-job workload ({label})",
                    [
                        ("allocated nodes", result.allocation_series()),
                        ("running jobs", result.running_series()),
                        ("completed jobs", result.completed_series()),
                    ],
                    0.0,
                    t1,
                    width=width,
                )
            )
        return "\n".join(out)

    @property
    def flexible_avg_allocation(self) -> float:
        r = self.pair.flexible
        return r.allocation_series().average(0.0, r.makespan)

    @property
    def fixed_avg_allocation(self) -> float:
        r = self.pair.fixed
        return r.allocation_series().average(0.0, r.makespan)


def run_evolution(
    num_jobs: int,
    seed: int = 2017,
    cluster: Optional[ClusterConfig] = None,
    fs_config: Optional[FSWorkloadConfig] = None,
    async_mode: bool = False,
    session: Optional[Session] = None,
) -> EvolutionResult:
    """Run one paired workload and keep its full traces.

    The evolution series come from the session's live
    :class:`~repro.api.TimelineObserver`, not from post-hoc scraping.
    """
    session = (
        (session or Session())
        .with_cluster(cluster or marenostrum_preliminary())
        .with_runtime(RuntimeConfig(async_mode=async_mode))
        .with_seed(seed)
    )
    spec = fs_workload(num_jobs, seed=seed, config=fs_config or FSWorkloadConfig())
    return EvolutionResult(num_jobs=num_jobs, pair=session.run_paired(spec))


def run_fig04(seed: int = 2017) -> EvolutionResult:
    """Fig. 4: the 10-job workload."""
    return run_evolution(10, seed=seed)


def run_fig05(seed: int = 2017) -> EvolutionResult:
    """Fig. 5: the 25-job workload."""
    return run_evolution(25, seed=seed)


@artifact("fig4", description="Evolution in time of the 10-job FS workload")
def _fig4_artifact(seed: Optional[int] = None) -> EvolutionResult:
    return run_fig04(seed=default_seed(seed))


@artifact("fig5", description="Evolution in time of the 25-job FS workload")
def _fig5_artifact(seed: Optional[int] = None) -> EvolutionResult:
    return run_fig05(seed=default_seed(seed))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig04().as_text())
    print(run_fig05().as_text())
