"""Figs. 6 & 7 — asynchronous reconfiguration scheduling.

``dmr_icheck_status`` negotiates the resize during the current step and
applies it at the next reconfiguring point.  The applied decision can be
stale: Fig. 6 dissects how the 10-job workload loses allocation windows
to outdated expansion targets; Fig. 7 repeats the Fig. 3 sweep in
asynchronous mode, where small workloads can lose to the fixed rendition
while larger ones retain a ~6% gain.
"""

from __future__ import annotations

from typing import Optional, Sequence

from repro.api import Session, artifact, default_seed
from repro.cluster.configs import ClusterConfig, marenostrum_preliminary
from repro.experiments.fig03_sync import SweepResult, SweepRow
from repro.experiments.fig04_05_evolution import EvolutionResult, run_evolution
from repro.runtime.nanos import RuntimeConfig
from repro.workload.generator import FSWorkloadConfig, fs_workload

FIG7_JOB_COUNTS = (10, 25, 50, 100, 200, 400)


def run_fig06(seed: int = 2017) -> EvolutionResult:
    """Fig. 6: evolution of the 10-job workload under async scheduling."""
    return run_evolution(10, seed=seed, async_mode=True)


def run_fig07(
    job_counts: Sequence[int] = FIG7_JOB_COUNTS,
    seed: int = 2017,
    cluster: Optional[ClusterConfig] = None,
    fs_config: Optional[FSWorkloadConfig] = None,
    session: Optional[Session] = None,
) -> SweepResult:
    """Fig. 7: the fixed-vs-flexible sweep with asynchronous decisions."""
    fs_config = fs_config or FSWorkloadConfig()
    session = (
        (session or Session())
        .with_cluster(cluster or marenostrum_preliminary())
        .with_runtime(RuntimeConfig(async_mode=True))
        .with_seed(seed)
    )
    rows = []
    for n in job_counts:
        spec = fs_workload(n, seed=seed, config=fs_config)
        rows.append(SweepRow(n, session.run_paired(spec)))
    return SweepResult(
        title="Fig. 7: fixed vs flexible workloads (asynchronous scheduling)",
        rows=rows,
    )


@artifact("fig6",
          description="Evolution of the 10-job workload, asynchronous mode")
def _fig6_artifact(seed: Optional[int] = None) -> EvolutionResult:
    return run_fig06(seed=default_seed(seed))


@artifact("fig7", csv=True,
          description="Fixed vs flexible FS workloads, asynchronous scheduling")
def _fig7_artifact(seed: Optional[int] = None) -> SweepResult:
    return run_fig07(seed=default_seed(seed))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig07().as_table())
