"""Fig. 3 — fixed vs flexible FS workloads, synchronous scheduling.

Workloads of 10..400 Flexible Sleep jobs on the 20-node preliminary
testbed, executed once rigid and once malleable.  The paper observes a
gain band of roughly 10-15% for the mid-size workloads (higher for the
10-job one thanks to near-full allocation, Fig. 4), with the benefit
slowly decreasing as the finite workload grows.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.api import PairedComparison, Session, artifact, default_seed
from repro.cluster.configs import ClusterConfig, marenostrum_preliminary
from repro.metrics.report import format_table
from repro.runtime.nanos import RuntimeConfig
from repro.workload.generator import FSWorkloadConfig, fs_workload

#: The paper's workload sizes.
FIG3_JOB_COUNTS = (10, 25, 50, 100, 200, 400)


@dataclass
class SweepRow:
    """One workload size of a fixed-vs-flexible sweep."""

    num_jobs: int
    pair: PairedComparison

    @property
    def fixed_time(self) -> float:
        return self.pair.fixed.makespan

    @property
    def flexible_time(self) -> float:
        return self.pair.flexible.makespan

    @property
    def gain(self) -> float:
        return self.pair.makespan_gain


@dataclass
class SweepResult:
    title: str
    rows: List[SweepRow]

    def _cells(self) -> List[List[object]]:
        return [
            [r.num_jobs, r.fixed_time, r.flexible_time, r.gain] for r in self.rows
        ]

    def as_table(self) -> str:
        return format_table(
            ["jobs", "fixed (s)", "flexible (s)", "gain (%)"],
            self._cells(),
            title=self.title,
        )

    def as_csv(self) -> str:
        from repro.metrics.report import format_csv

        return format_csv(["jobs", "fixed_s", "flexible_s", "gain_pct"], self._cells())


def run_fig03(
    job_counts: Sequence[int] = FIG3_JOB_COUNTS,
    seed: int = 2017,
    cluster: Optional[ClusterConfig] = None,
    fs_config: Optional[FSWorkloadConfig] = None,
    session: Optional[Session] = None,
) -> SweepResult:
    """Run the synchronous fixed-vs-flexible sweep.

    ``session`` may carry observers or Slurm tuning; the driver pins the
    paper's testbed, runtime mode and seed on top of it.
    """
    fs_config = fs_config or FSWorkloadConfig()
    session = (
        (session or Session())
        .with_cluster(cluster or marenostrum_preliminary())
        .with_runtime(RuntimeConfig(async_mode=False))
        .with_seed(seed)
    )
    rows = []
    for n in job_counts:
        spec = fs_workload(n, seed=seed, config=fs_config)
        rows.append(SweepRow(n, session.run_paired(spec)))
    return SweepResult(
        title="Fig. 3: fixed vs flexible workloads (synchronous scheduling)",
        rows=rows,
    )


@artifact("fig3", csv=True,
          description="Fixed vs flexible FS workloads, synchronous scheduling")
def _fig3_artifact(seed: Optional[int] = None) -> SweepResult:
    return run_fig03(seed=default_seed(seed))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig03().as_table())
