"""Resilience — C/R vs DMR under node failures (Fig. 1 taken to faults).

Fig. 1 compares the *cost* of one reconfiguration under checkpoint/restart
against the DMR API.  This artifact extends the comparison to the scenario
that motivates it operationally: nodes that actually fail.  The same
MTBF-sampled fault plan is replayed against two renditions of the same
workload on the Section VIII testbed:

* **C/R** — rigid jobs with periodic checkpoints; a node death kills the
  job, which is requeued and restarts from its last checkpoint (rollback
  + relaunch + checkpoint read, the Fig. 1 cost structure);
* **DMR** — flexible jobs; the controller answers a node death with a
  forced-shrink decision (``DecisionReason.NODE_FAILURE``) the runtime
  services at its next reconfiguring point, evacuating the dying node
  through the ordinary malleability machinery ("shrink to survive").

Both renditions run to the same measurement horizon (a hair above the
fault-free rigid makespan); the headline metric is the fraction of the
workload's total serial work completed by the horizon.  Every run is
checked live by an :class:`~repro.testing.invariants.InvariantObserver`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.api import Session, artifact, default_seed
from repro.api.session import SessionRun
from repro.cluster.configs import marenostrum_preliminary
from repro.errors import SimulationTimeout
from repro.faults import FaultPlan
from repro.metrics.report import format_csv, format_table
from repro.metrics.trace import EventKind
from repro.runtime.nanos import RuntimeConfig
from repro.testing import InvariantObserver
from repro.workload.spec import WorkloadSpec

#: Default cluster-wide mean-time-between-failures sweep (seconds).
RESILIENCE_MTBFS: Tuple[float, ...] = (2000.0, 1000.0, 500.0)
#: Quick (CI) sweep.
RESILIENCE_QUICK_MTBFS: Tuple[float, ...] = (500.0,)
#: Default workload size (Section VIII testbed: 20 nodes).
RESILIENCE_NUM_JOBS = 20
RESILIENCE_QUICK_NUM_JOBS = 14
#: C/R baseline checkpoints every this many iterations (of 25).
CHECKPOINT_PERIOD_STEPS = 5
#: Node repair time, seconds.
REPAIR_TIME = 600.0
#: Measurement horizon = this factor x the fault-free rigid makespan: a
#: hair of slack, so completing 100% under faults means the mechanism
#: genuinely absorbed them rather than coasting on schedule head-room.
HORIZON_FACTOR = 1.02


@dataclass(frozen=True)
class ResilienceRow:
    """One (MTBF, mechanism) cell of the comparison."""

    mtbf: Optional[float]  # None = fault-free baseline
    mechanism: str  # "cr" | "dmr"
    completed_work: float  # serial-seconds finished by the horizon
    total_work: float
    makespan: Optional[float]  # None when the horizon cut the run short
    failures: int
    requeues: int
    forced_shrinks: int
    checkpoint_writes: int

    @property
    def work_fraction(self) -> float:
        return self.completed_work / self.total_work if self.total_work else 0.0

    @property
    def drained(self) -> bool:
        return self.makespan is not None


@dataclass
class ResilienceResult:
    rows: List[ResilienceRow]
    horizon: float
    num_jobs: int
    seed: int
    invariant_checks: int

    def row(self, mtbf: Optional[float], mechanism: str) -> ResilienceRow:
        for r in self.rows:
            if r.mtbf == mtbf and r.mechanism == mechanism:
                return r
        raise KeyError(f"no row for mtbf={mtbf} mechanism={mechanism}")

    def as_table(self) -> str:
        cells = []
        for r in self.rows:
            cells.append(
                [
                    "-" if r.mtbf is None else f"{r.mtbf:g}",
                    r.mechanism.upper(),
                    f"{100.0 * r.work_fraction:.1f}%",
                    "-" if r.makespan is None else f"{r.makespan:.0f}",
                    r.failures,
                    r.requeues,
                    r.forced_shrinks,
                    r.checkpoint_writes,
                ]
            )
        return format_table(
            ["MTBF (s)", "mechanism", "work done", "makespan (s)",
             "failures", "requeues", "forced shrinks", "ckpt writes"],
            cells,
            title=(
                f"Resilience: C/R vs DMR under node failures "
                f"({self.num_jobs} jobs, horizon {self.horizon:.0f} s, "
                f"{self.invariant_checks} invariant checks)"
            ),
        )

    def as_csv(self) -> str:
        return format_csv(
            ["mtbf_s", "mechanism", "work_fraction", "completed_work_s",
             "total_work_s", "makespan_s", "failures", "requeues",
             "forced_shrinks", "checkpoint_writes"],
            [
                [
                    "" if r.mtbf is None else r.mtbf,
                    r.mechanism,
                    r.work_fraction,
                    r.completed_work,
                    r.total_work,
                    "" if r.makespan is None else r.makespan,
                    r.failures,
                    r.requeues,
                    r.forced_shrinks,
                    r.checkpoint_writes,
                ]
                for r in self.rows
            ],
        )


def _total_work(spec: WorkloadSpec) -> float:
    """The workload's serial work: sum of iterations x serial step time."""
    total = 0.0
    for js in spec.jobs:
        app = js.app_factory()
        total += app.iterations * app.serial_step_time
    return total


def _completed_work(run: SessionRun) -> float:
    """Serial-seconds of useful progress currently held by the jobs.

    Requeued C/R incarnations restart from their checkpoint, so lost
    (rolled-back) work correctly does not count.
    """
    done = 0.0
    for job in run.jobs:
        app = job.payload
        done += app.completed_steps * app.serial_step_time
    return done


def _run_mechanism(
    session: Session,
    spec: WorkloadSpec,
    plan: Optional[FaultPlan],
    mechanism: str,
    horizon: float,
    checkpoint_period: int,
) -> Tuple[ResilienceRow, int]:
    observer = InvariantObserver()
    s = session.observe(observer).with_faults(plan)
    if mechanism == "cr":
        flexible = False
        s = s.with_runtime(
            RuntimeConfig(checkpoint_period_steps=checkpoint_period)
        )
    else:
        flexible = True
    run = s.submit(spec, flexible=flexible)
    makespan: Optional[float] = None
    try:
        result = run.execute(horizon)
        makespan = result.summary.makespan
    except SimulationTimeout:
        pass  # horizon cut the run short; partial work still counts
    trace = run.sim.controller.trace
    row = ResilienceRow(
        mtbf=None,
        mechanism=mechanism,
        completed_work=_completed_work(run),
        total_work=_total_work(spec),
        makespan=makespan,
        failures=len(trace.of_kind(EventKind.NODE_FAIL)),
        requeues=sum(j.requeues for j in run.jobs),
        # Count *serviced* evacuations (the forced DMR_CHECK marker), not
        # issued decisions: a superseding failure can collapse a parked
        # decision into a requeue that never shrinks.
        forced_shrinks=sum(
            1
            for e in trace.of_kind(EventKind.DMR_CHECK)
            if e.data.get("forced")
        ),
        checkpoint_writes=len(trace.of_kind(EventKind.CHECKPOINT_WRITE)),
    )
    return row, observer.verify_final()


def run_resilience(
    seed: int = 2017,
    mtbfs: Sequence[float] = RESILIENCE_MTBFS,
    num_jobs: int = RESILIENCE_NUM_JOBS,
    checkpoint_period: int = CHECKPOINT_PERIOD_STEPS,
    repair_time: float = REPAIR_TIME,
    horizon: Optional[float] = None,
) -> ResilienceResult:
    """Run the resilience comparison for one seed."""
    from dataclasses import replace

    base = Session(cluster=marenostrum_preliminary()).with_seed(seed)
    spec = base.fs_workload(num_jobs)

    # The measurement horizon: just above the fault-free rigid makespan,
    # so a mechanism only completes 100% by actually coping with faults.
    baseline = base.run(spec, flexible=False)
    if horizon is None:
        horizon = HORIZON_FACTOR * baseline.summary.makespan

    rows: List[ResilienceRow] = []
    checks = 0
    for mechanism in ("cr", "dmr"):
        row, n = _run_mechanism(
            base, spec, None, mechanism, horizon, checkpoint_period
        )
        rows.append(row)  # fault-free baseline row (mtbf=None)
        checks += n
    num_nodes = base.cluster.num_nodes
    for mtbf in mtbfs:
        plan = FaultPlan.from_mtbf(
            mtbf=mtbf,
            horizon=horizon,
            num_nodes=num_nodes,
            seed=seed,
            repair_time=repair_time,
        )
        for mechanism in ("cr", "dmr"):
            row, n = _run_mechanism(
                base, spec, plan, mechanism, horizon, checkpoint_period
            )
            rows.append(replace(row, mtbf=mtbf))
            checks += n
    return ResilienceResult(
        rows=rows,
        horizon=horizon,
        num_jobs=num_jobs,
        seed=seed,
        invariant_checks=checks,
    )


def run_resilience_quick(seed: int = 2017) -> ResilienceResult:
    """The CI-sized rendition (one MTBF, smaller workload)."""
    return run_resilience(
        seed=seed,
        mtbfs=RESILIENCE_QUICK_MTBFS,
        num_jobs=RESILIENCE_QUICK_NUM_JOBS,
    )


@artifact(
    "resilience",
    csv=True,
    description="C/R vs DMR completed work and makespan under node failures",
)
def _resilience_artifact(seed: Optional[int] = None) -> ResilienceResult:
    return run_resilience(seed=default_seed(seed))


if __name__ == "__main__":  # pragma: no cover
    print(run_resilience().as_table())
