"""Fig. 8 — heterogeneous workloads: sweeping the rate of flexible jobs.

100-job FS workloads where 0/25/50/75/100% of the jobs are flexible.  The
paper reports monotonically decreasing execution time as the flexible
ratio grows: ~10% gain already at a 50% rate and ~12% at 100%.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import List, Optional, Sequence

from repro.api import Session, WorkloadResult, artifact, default_seed
from repro.cluster.configs import ClusterConfig, marenostrum_preliminary
from repro.metrics.report import format_table
from repro.metrics.summary import gain_percent
from repro.runtime.nanos import RuntimeConfig
from repro.workload.generator import FSWorkloadConfig, fs_workload

FIG8_RATES = (0.0, 0.25, 0.50, 0.75, 1.0)
FIG8_NUM_JOBS = 100


@dataclass
class Fig08Row:
    flexible_rate: float
    results: List[WorkloadResult]

    @property
    def makespan(self) -> float:
        """Mean execution time over the seeds."""
        return sum(r.makespan for r in self.results) / len(self.results)


@dataclass
class Fig08Result:
    rows: List[Fig08Row]

    @property
    def baseline(self) -> float:
        """The all-fixed (0%) execution time."""
        return self.rows[0].makespan

    def gain_at(self, rate: float) -> float:
        for row in self.rows:
            if row.flexible_rate == rate:
                return gain_percent(self.baseline, row.makespan)
        raise KeyError(f"no row for rate {rate}")

    def _cells(self) -> list:
        return [
            [
                int(r.flexible_rate * 100),
                r.makespan,
                gain_percent(self.baseline, r.makespan),
            ]
            for r in self.rows
        ]

    def as_table(self) -> str:
        return format_table(
            ["flexible rate (%)", "execution time (s)", "gain vs 0% (%)"],
            self._cells(),
            title="Fig. 8: execution time of 100-job workloads vs rate of flexible jobs",
        )

    def as_csv(self) -> str:
        from repro.metrics.report import format_csv

        return format_csv(["flexible_rate_pct", "makespan_s", "gain_pct"], self._cells())


def run_fig08(
    num_jobs: int = FIG8_NUM_JOBS,
    rates: Sequence[float] = FIG8_RATES,
    seeds: Sequence[int] = (2017, 2018, 2019),
    cluster: Optional[ClusterConfig] = None,
    fs_config: Optional[FSWorkloadConfig] = None,
    session: Optional[Session] = None,
) -> Fig08Result:
    """Run the heterogeneous-rate sweep.

    Within one seed, jobs keep identical sizes/runtimes/arrivals across
    rates and the flexible subsets are nested as the rate grows (the
    per-job uniform draw is compared against the rate); several seeds are
    averaged because which jobs end up flexible perturbs packing.
    """
    base_cfg = fs_config or FSWorkloadConfig()
    session = (
        (session or Session())
        .with_cluster(cluster or marenostrum_preliminary())
        .with_runtime(RuntimeConfig())
    )
    rows = []
    for rate in rates:
        cfg = replace(base_cfg, flexible_ratio=rate)
        results = []
        for seed in seeds:
            spec = fs_workload(num_jobs, seed=seed, config=cfg)
            results.append(session.run(spec, flexible=True))
        rows.append(Fig08Row(rate, results))
    return Fig08Result(rows=rows)


@artifact("fig8", csv=True,
          description="Execution time vs rate of flexible jobs (heterogeneous)")
def _fig8_artifact(seed: Optional[int] = None) -> Fig08Result:
    base = default_seed(seed)
    return run_fig08(seeds=(base, base + 1, base + 2))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig08().as_table())
