"""Figs. 10-12 & Table II — the Section IX real-application workloads.

Workloads of 50/100/200/400 jobs mixing CG, Jacobi and N-body (one third
each, fixed-seed random order) on the 65-node production testbed, each job
submitted at its Table I *maximum* size.  The paper's headline results:

* Fig. 10 — flexible cuts the workload execution time by ~41-49%;
* Fig. 11 — average job waiting time drops by ~56-69%;
* Table II — flexible uses ~30% fewer allocated node-hours (utilization
  rate ~70% vs ~98%) while jobs individually run longer (shrunk to their
  sweet spot);
* Fig. 12 — evolution of the 50-job workload: fewer allocated nodes, more
  jobs running concurrently, throughput overtaking the fixed rendition.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache
from typing import Dict, List, Optional, Sequence

from repro.api import PairedComparison, Session, artifact, default_seed
from repro.cluster.configs import ClusterConfig, marenostrum_production
from repro.metrics.report import format_evolution, format_table
from repro.runtime.nanos import RuntimeConfig
from repro.workload.generator import realapp_workload

FIG10_JOB_COUNTS = (50, 100, 200, 400)


@dataclass
class RealAppRow:
    num_jobs: int
    pair: PairedComparison

    @property
    def makespan_gain(self) -> float:
        return self.pair.makespan_gain

    @property
    def wait_gain(self) -> float:
        return self.pair.wait_gain


@dataclass
class RealAppResult:
    rows: List[RealAppRow]

    def row(self, num_jobs: int) -> RealAppRow:
        for r in self.rows:
            if r.num_jobs == num_jobs:
                return r
        raise KeyError(num_jobs)

    # -- Fig. 10 -----------------------------------------------------------
    def fig10_table(self) -> str:
        return format_table(
            ["jobs", "fixed (s)", "flexible (s)", "gain (%)"],
            [
                [
                    r.num_jobs,
                    r.pair.fixed.makespan,
                    r.pair.flexible.makespan,
                    r.makespan_gain,
                ]
                for r in self.rows
            ],
            title="Fig. 10: real-application workload execution times",
        )

    # -- Fig. 11 ------------------------------------------------------------
    def fig11_table(self) -> str:
        return format_table(
            ["jobs", "fixed wait (s)", "flexible wait (s)", "gain (%)"],
            [
                [
                    r.num_jobs,
                    r.pair.fixed.summary.avg_wait_time,
                    r.pair.flexible.summary.avg_wait_time,
                    r.wait_gain,
                ]
                for r in self.rows
            ],
            title="Fig. 11: average job waiting times",
        )

    # -- Table II --------------------------------------------------------------
    def table2(self) -> str:
        headers = ["measure"]
        for r in self.rows:
            headers += [f"{r.num_jobs} fixed", f"{r.num_jobs} flexible"]
        measures = [
            ("Avg. resource utilization rate (%)",
             lambda s: 100.0 * s.utilization_rate),
            ("Avg. job waiting time (s)", lambda s: s.avg_wait_time),
            ("Avg. job execution time (s)", lambda s: s.avg_execution_time),
            ("Avg. job completion time (s)", lambda s: s.avg_completion_time),
        ]
        rows = []
        for label, fn in measures:
            row: List[object] = [label]
            for r in self.rows:
                row.append(fn(r.pair.fixed.summary))
                row.append(fn(r.pair.flexible.summary))
            rows.append(row)
        return format_table(headers, rows, title="Table II: summary of measures")

    def as_csv(self) -> str:
        """All Section IX measures, one row per (workload, rendition)."""
        from repro.metrics.report import format_csv

        rows = []
        for r in self.rows:
            for result in (r.pair.fixed, r.pair.flexible):
                s = result.summary
                rows.append(
                    [
                        r.num_jobs,
                        "flexible" if result.flexible else "fixed",
                        s.makespan,
                        s.avg_wait_time,
                        s.avg_execution_time,
                        s.avg_completion_time,
                        100.0 * s.utilization_rate,
                        s.resize_count,
                    ]
                )
        return format_csv(
            [
                "num_jobs", "rendition", "makespan_s", "avg_wait_s",
                "avg_exec_s", "avg_completion_s", "utilization_pct", "resizes",
            ],
            rows,
        )

    # -- Fig. 12 -----------------------------------------------------------------
    def fig12_text(self, num_jobs: int = 50, width: int = 64) -> str:
        r = self.row(num_jobs)
        out = []
        for result in (r.pair.fixed, r.pair.flexible):
            label = "flexible" if result.flexible else "fixed"
            out.append(
                format_evolution(
                    f"Fig. 12: {num_jobs}-job real-app workload ({label})",
                    [
                        ("allocated nodes", result.allocation_series()),
                        ("running jobs", result.running_series()),
                        ("completed jobs", result.completed_series()),
                    ],
                    0.0,
                    result.makespan,
                    width=width,
                )
            )
        return "\n".join(out)


def run_realapps(
    job_counts: Sequence[int] = FIG10_JOB_COUNTS,
    seed: int = 2017,
    cluster: Optional[ClusterConfig] = None,
    arrival_mean: float = 30.0,
    session: Optional[Session] = None,
) -> RealAppResult:
    """Run the Section IX study (Figs. 10, 11, 12 and Table II)."""
    session = (
        (session or Session())
        .with_cluster(cluster or marenostrum_production())
        .with_runtime(RuntimeConfig())
        .with_seed(seed)
    )
    rows = []
    for n in job_counts:
        spec = realapp_workload(n, seed=seed, arrival_mean=arrival_mean)
        rows.append(RealAppRow(n, session.run_paired(spec)))
    return RealAppResult(rows=rows)


@lru_cache(maxsize=4)
def realapps_result(seed: int = 2017) -> RealAppResult:
    """Cached Section IX run shared by figs. 10-12 and Table II.

    The four artifacts render different views of the same (expensive)
    paired executions; the cache guarantees one run per seed however
    many of them the CLI asks for.
    """
    return run_realapps(seed=seed)


@artifact("fig10", text=RealAppResult.fig10_table,
          description="Real-application workload execution times")
def _fig10_artifact(seed: Optional[int] = None) -> RealAppResult:
    return realapps_result(default_seed(seed))


@artifact("fig11", text=RealAppResult.fig11_table,
          description="Average job waiting times (real applications)")
def _fig11_artifact(seed: Optional[int] = None) -> RealAppResult:
    return realapps_result(default_seed(seed))


@artifact("fig12", text=RealAppResult.fig12_text,
          description="Evolution of the 50-job real-application workload")
def _fig12_artifact(seed: Optional[int] = None) -> RealAppResult:
    return realapps_result(default_seed(seed))


@artifact("table2", text=RealAppResult.table2, csv=True,
          description="Summary of measures (Table II)")
def _table2_artifact(seed: Optional[int] = None) -> RealAppResult:
    return realapps_result(default_seed(seed))


if __name__ == "__main__":  # pragma: no cover
    result = run_realapps()
    print(result.fig10_table())
    print(result.fig11_table())
    print(result.table2())
    print(result.fig12_text())
