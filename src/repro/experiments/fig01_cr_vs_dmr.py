"""Fig. 1 — N-body non-solving stages: C/R vs the DMR API.

The paper resizes a 48-process N-body simulation to 12, 24 and 48
processes and compares the cost of the non-solving stages under a
checkpoint/restart mechanism against the DMR API.  The headline result is
the "spawning" factor labels: C/R spawning is 31.4x / 63.75x / 77x more
expensive for 48-12 / 48-24 / 48-48 because it round-trips the state
through the shared filesystem and relaunches the job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.api import artifact
from repro.checkpoint.cr import (
    CheckpointRestart,
    CRConfig,
    DMRReconfiguration,
    ReconfigurationCost,
    spawning_factor,
)
from repro.cluster.configs import ClusterConfig, marenostrum_production
from repro.cluster.network import GiB
from repro.metrics.report import format_table

#: The paper's initial process count and resize targets.
FIG1_INITIAL_PROCS = 48
FIG1_TARGETS = (12, 24, 48)

#: N-body state for the Fig. 1 runs. The paper does not report the problem
#: size; we use a multi-GiB particle set so that redistribution (not only
#: spawn) contributes to the DMR cost, as in the original measurement.
FIG1_STATE_BYTES = 8.0 * GiB


@dataclass(frozen=True)
class Fig01Row:
    """One resize target of Fig. 1."""

    initial_procs: int
    target_procs: int
    cr: ReconfigurationCost
    dmr: ReconfigurationCost

    @property
    def factor(self) -> float:
        """The bar label: C/R spawning cost over DMR spawning cost."""
        return spawning_factor(self.cr, self.dmr)


@dataclass
class Fig01Result:
    rows: List[Fig01Row]
    state_bytes: float

    def as_table(self) -> str:
        return format_table(
            ["procs (init-resized)", "C/R spawning (s)", "DMR spawning (s)", "factor"],
            [
                [
                    f"{r.initial_procs}-{r.target_procs}",
                    r.cr.total,
                    r.dmr.total,
                    f"{r.factor:.1f}x",
                ]
                for r in self.rows
            ],
            title="Fig. 1: N-body non-solving (spawning) stages, C/R vs DMR API",
        )

    def as_csv(self) -> str:
        from repro.metrics.report import format_csv

        return format_csv(
            ["initial_procs", "target_procs", "cr_s", "dmr_s", "factor"],
            [
                [r.initial_procs, r.target_procs, r.cr.total, r.dmr.total, r.factor]
                for r in self.rows
            ],
        )


def run_fig01(
    cluster: ClusterConfig | None = None,
    state_bytes: float = FIG1_STATE_BYTES,
    initial_procs: int = FIG1_INITIAL_PROCS,
    targets: Tuple[int, ...] = FIG1_TARGETS,
    cr_config: CRConfig | None = None,
) -> Fig01Result:
    """Compute the Fig. 1 comparison."""
    cluster = cluster or marenostrum_production()
    cr = CheckpointRestart(cluster, cr_config)
    dmr = DMRReconfiguration(cluster)
    rows = [
        Fig01Row(
            initial_procs=initial_procs,
            target_procs=target,
            cr=cr.reconfigure(state_bytes, initial_procs, target),
            dmr=dmr.reconfigure(state_bytes, initial_procs, target),
        )
        for target in targets
    ]
    return Fig01Result(rows=rows, state_bytes=state_bytes)


@artifact("fig1", csv=True,
          description="C/R vs DMR non-solving (spawning) stages")
def _fig1_artifact(seed: Optional[int] = None) -> Fig01Result:
    # Fully analytic (cost models only) — the seed does not apply.
    return run_fig01()


if __name__ == "__main__":  # pragma: no cover
    print(run_fig01().as_table())
