"""Fig. 9 — the checking-period inhibitor on micro-step applications.

FS workloads whose steps average ~2 seconds: a DMR call at every iteration
then spends a meaningful share of the step on runtime<->RMS communication.
The paper compares, against the fixed baseline, a flexible run without the
inhibitor and with inhibition periods of 2/5/10/20 s, finding that the
uninhibited run can even lose to the fixed workload while a ~5 s period
performs best.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence

from repro.api import Session, artifact, default_seed
from repro.cluster.configs import ClusterConfig, marenostrum_preliminary
from repro.metrics.report import format_table
from repro.metrics.summary import gain_percent
from repro.runtime.nanos import RuntimeConfig
from repro.workload.generator import FSWorkloadConfig, fs_workload

FIG9_JOB_COUNTS = (10, 25, 50, 100)
#: None = no inhibitor (the paper's plain "Flexible" group).
FIG9_PERIODS = (None, 2.0, 5.0, 10.0, 20.0)

#: Micro-step FS configuration: ~2 s average steps ("we reduced the time
#: step in the model to an average of 2 seconds").
MICROSTEP_CONFIG = FSWorkloadConfig(
    steps=50,
    step_cap=8.0,
    step_short_mean=1.6,
    step_long_mean=4.0,
)


@dataclass
class Fig09Cell:
    num_jobs: int
    period: Optional[float]
    makespan: float
    fixed_makespan: float

    @property
    def gain(self) -> float:
        return gain_percent(self.fixed_makespan, self.makespan)

    @property
    def label(self) -> str:
        return "Flexible" if self.period is None else f"Sched {self.period:g}"


@dataclass
class Fig09Result:
    cells: List[Fig09Cell]

    def cell(self, num_jobs: int, period: Optional[float]) -> Fig09Cell:
        for c in self.cells:
            if c.num_jobs == num_jobs and c.period == period:
                return c
        raise KeyError((num_jobs, period))

    def by_period(self, period: Optional[float]) -> List[Fig09Cell]:
        return [c for c in self.cells if c.period == period]

    def as_table(self) -> str:
        periods = sorted({c.period for c in self.cells}, key=lambda p: (-1 if p is None else p))
        counts = sorted({c.num_jobs for c in self.cells})
        rows = []
        for period in periods:
            label = "Flexible" if period is None else f"Sched {period:g}"
            row: List[object] = [label]
            for n in counts:
                c = self.cell(n, period)
                row.append(f"{c.makespan:.0f}s ({c.gain:+.1f}%)")
            rows.append(row)
        return format_table(
            ["configuration"] + [f"{n} jobs" for n in counts],
            rows,
            title="Fig. 9: micro-step workloads, inhibition periods (gain vs fixed)",
        )

    def as_csv(self) -> str:
        from repro.metrics.report import format_csv

        return format_csv(
            ["num_jobs", "period_s", "makespan_s", "fixed_makespan_s", "gain_pct"],
            [
                [c.num_jobs, 0.0 if c.period is None else c.period, c.makespan,
                 c.fixed_makespan, c.gain]
                for c in self.cells
            ],
        )


def run_fig09(
    job_counts: Sequence[int] = FIG9_JOB_COUNTS,
    periods: Sequence[Optional[float]] = FIG9_PERIODS,
    seed: int = 2017,
    cluster: Optional[ClusterConfig] = None,
    check_cost: float = 0.15,
    session: Optional[Session] = None,
) -> Fig09Result:
    """Run the inhibitor-period study."""
    base = (
        (session or Session())
        .with_cluster(cluster or marenostrum_preliminary())
        .with_seed(seed)
    )
    flexible_session = base.with_runtime(RuntimeConfig(check_cost=check_cost))
    cells: List[Fig09Cell] = []
    for n in job_counts:
        # Fixed baseline, shared across all periods of this workload size.
        base_spec = fs_workload(n, seed=seed, config=MICROSTEP_CONFIG)
        fixed = base.run(base_spec, flexible=False)
        for period in periods:
            cfg = replace(MICROSTEP_CONFIG, sched_period=period or 0.0)
            spec = fs_workload(n, seed=seed, config=cfg)
            flexible = flexible_session.run(spec, flexible=True)
            cells.append(
                Fig09Cell(
                    num_jobs=n,
                    period=period,
                    makespan=flexible.makespan,
                    fixed_makespan=fixed.makespan,
                )
            )
    return Fig09Result(cells=cells)


@artifact("fig9", csv=True,
          description="Micro-step workloads under checking-inhibitor periods")
def _fig9_artifact(seed: Optional[int] = None) -> Fig09Result:
    return run_fig09(seed=default_seed(seed))


if __name__ == "__main__":  # pragma: no cover
    print(run_fig09().as_table())
