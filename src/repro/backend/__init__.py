"""Pluggable execution backends (the Session -> scheduler seam).

Public surface::

    from repro.backend import (
        AccountingRecord, BackendCapabilities, BackendSpec, ExecutionBackend,
        JobRequest, backend_class, backend_names, create_backend, run_workload,
    )

See :mod:`repro.backend.base` for the contract, :mod:`repro.backend.sim`
and :mod:`repro.backend.subprocess_slurm` for the implementations, and
:mod:`repro.backend.fake_slurmd` for the hermetic CI stand-in.
"""

from repro.backend.base import (
    AccountingRecord,
    BackendCapabilities,
    BackendEvent,
    BackendSpec,
    ExecutionBackend,
    JobRequest,
    backend_class,
    backend_names,
    create_backend,
    register_backend,
)
from repro.backend.driver import run_workload

__all__ = [
    "AccountingRecord",
    "BackendCapabilities",
    "BackendEvent",
    "BackendSpec",
    "ExecutionBackend",
    "JobRequest",
    "backend_class",
    "backend_names",
    "create_backend",
    "register_backend",
    "run_workload",
]
