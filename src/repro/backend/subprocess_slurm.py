"""Real Slurm behind the backend contract, Kive ``slurmlib``-style.

Drives a Slurm installation through its command-line tools — the same
surface the paper's protocol is defined against — with subprocess calls:

* ``sbatch --parsable -J <name> -N <nodes> -t <limit> --wrap "sleep D"``
* ``scancel <id>``
* ``scontrol update JobId=<id> TimeLimit=<limit>``
* ``sacct --parsable2 --noheader --format=... -j id1,id2,...``

Accounting is *batched*: one ``sacct`` call covers every job this
backend submitted, and results are cached for ``poll_interval`` wall
seconds (the poll-interval budget), so a driver polling in a tight loop
costs one subprocess per interval, not one per job per iteration — the
lesson of Kive's slurmlib, which Slurm operators learn the hard way.

State strings parse into first-class :class:`~repro.slurm.job.JobState`
members, including the real-cluster-only taxonomy (``NODE_FAIL``,
``PREEMPTED``, ``SUSPENDED``, ``DEADLINE``, ``BOOT_FAIL``) and the
suffixed forms (``CANCELLED by <uid>``).

Every command is overridable — constructor option, else environment
variable (``REPRO_SLURM_SBATCH`` etc.), else the bare tool name — which
is how the conformance suite points this backend at the hermetic
:mod:`repro.backend.fake_slurmd` spool instead of a slurmctld.
"""

from __future__ import annotations

import os
import shlex
import shutil
import subprocess
import time
from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.backend.base import (
    AccountingRecord,
    BackendCapabilities,
    ExecutionBackend,
    JobRequest,
    register_backend,
)
from repro.errors import BackendError
from repro.slurm.job import TERMINAL_STATES, JobState

#: (option key, environment variable, default executable).
_COMMANDS = (
    ("sbatch", "REPRO_SLURM_SBATCH", "sbatch"),
    ("scancel", "REPRO_SLURM_SCANCEL", "scancel"),
    ("squeue", "REPRO_SLURM_SQUEUE", "squeue"),
    ("sacct", "REPRO_SLURM_SACCT", "sacct"),
    ("scontrol", "REPRO_SLURM_SCONTROL", "scontrol"),
)

#: sacct fields the accounting query requests, in order.
_SACCT_FIELDS = "JobID,JobName,State,NNodes,Submit,Start,End,ElapsedRaw"


def format_timelimit(seconds: float) -> str:
    """Seconds -> an sbatch/scontrol ``minutes:seconds`` time spec."""
    if seconds <= 0:
        raise BackendError(f"time limit must be positive, got {seconds}")
    whole = int(seconds)
    if whole < seconds:
        whole += 1  # never round a limit down
    return f"{whole // 60}:{whole % 60:02d}"


def parse_sacct_time(text: str) -> Optional[float]:
    """One sacct time cell -> epoch seconds (None when not applicable).

    Real sacct prints ISO-8601 to whole seconds (``2017-08-07T12:00:05``)
    or ``Unknown``/``None``; the fake prints epoch floats for sub-second
    precision.  Accept all of them.
    """
    text = text.strip()
    if not text or text in ("Unknown", "None", "N/A", "NONE", "INVALID"):
        return None
    try:
        return float(text)
    except ValueError:
        pass
    try:
        return time.mktime(time.strptime(text, "%Y-%m-%dT%H:%M:%S"))
    except ValueError:
        raise BackendError(f"unparseable sacct timestamp {text!r}") from None


@register_backend
class SubprocessSlurmBackend(ExecutionBackend):
    """``sbatch``/``scancel``/``sacct`` subprocess calls as a backend."""

    name = "slurm"
    #: No external resize: growing a running Slurm job needs the paper's
    #: in-application protocol, which a --wrap "sleep" job cannot run.
    CAPABILITIES = BackendCapabilities(
        supports_resize=False, supports_faults=False, clock="wall"
    )

    def __init__(
        self,
        poll_interval: float = 0.2,
        partition: Optional[str] = None,
        **commands: str,
    ) -> None:
        unknown = set(commands) - {key for key, _, _ in _COMMANDS}
        if unknown:
            raise BackendError(f"unknown slurm backend options: {sorted(unknown)}")
        self.poll_interval = poll_interval
        self.partition = partition
        self._commands: Dict[str, List[str]] = {}
        for key, env_var, default in _COMMANDS:
            value = commands.get(key) or os.environ.get(env_var) or default
            self._commands[key] = shlex.split(value)
        self._submitted: List[str] = []
        self._names: Dict[str, str] = {}
        self._last_states: Dict[str, JobState] = {}
        self._cache: Optional[Tuple[float, Set[str], Dict[str, AccountingRecord]]] = None

    # -- clock ----------------------------------------------------------------
    def now(self) -> float:
        return time.time()

    def wait(self, seconds: float) -> None:
        if seconds < 0:
            raise BackendError(f"cannot wait a negative time ({seconds})")
        if seconds:
            time.sleep(seconds)

    # -- subprocess plumbing --------------------------------------------------
    def _run(self, tool: str, args: Sequence[str]) -> str:
        cmd = self._commands[tool] + list(args)
        try:
            proc = subprocess.run(
                cmd, capture_output=True, text=True, timeout=60.0
            )
        except FileNotFoundError as exc:
            raise BackendError(f"{tool}: executable not found ({cmd[0]!r})") from exc
        except subprocess.TimeoutExpired as exc:
            raise BackendError(f"{tool} timed out: {cmd}") from exc
        if proc.returncode != 0:
            raise BackendError(
                f"{tool} failed (exit {proc.returncode}): "
                f"{proc.stderr.strip() or proc.stdout.strip()}"
            )
        return proc.stdout

    # -- job control ----------------------------------------------------------
    def submit(self, request: JobRequest) -> str:
        args = [
            "--parsable",
            "-J",
            request.name,
            "-N",
            str(request.num_nodes),
            "-t",
            format_timelimit(request.time_limit),
        ]
        if self.partition:
            args += ["-p", self.partition]
        args += ["--wrap", f"sleep {request.duration}"]
        out = self._run("sbatch", args).strip()
        if not out:
            raise BackendError("sbatch produced no job id")
        # --parsable prints "jobid" or "jobid;cluster".
        job_id = out.splitlines()[-1].split(";")[0].strip()
        self._submitted.append(job_id)
        self._names[job_id] = request.name
        self._last_states[job_id] = JobState.PENDING
        self._cache = None
        self._emit("job_submit", job_id, name=request.name, nodes=request.num_nodes)
        return job_id

    def _known(self, job_id: str) -> None:
        if job_id not in self._names:
            raise BackendError(f"slurm backend: unknown job id {job_id!r}")

    def cancel(self, job_id: str) -> None:
        self._known(job_id)
        self._run("scancel", [job_id])
        self._cache = None

    def update_nodes(self, job_id: str, num_nodes: int) -> None:
        raise BackendError(
            "slurm backend: external resize is unsupported (the paper's "
            "expand protocol must run inside the application; see "
            "capabilities.supports_resize)"
        )

    def update_time_limit(self, job_id: str, time_limit: float) -> None:
        self._known(job_id)
        self._run(
            "scontrol",
            ["update", f"JobId={job_id}", f"TimeLimit={format_timelimit(time_limit)}"],
        )
        self._cache = None

    # -- accounting -----------------------------------------------------------
    def query_jobs(
        self, job_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, AccountingRecord]:
        wanted = list(job_ids) if job_ids is not None else list(self._submitted)
        for job_id in wanted:
            self._known(job_id)
        if not wanted:
            return {}
        key = set(wanted)
        if self._cache is not None:
            at, cached_ids, cached = self._cache
            if key <= cached_ids and self.now() - at < self.poll_interval:
                return {job_id: cached[job_id] for job_id in wanted if job_id in cached}
        records = self._sacct(list(self._submitted))
        self._cache = (self.now(), set(records), records)
        self._note_transitions(records)
        return {job_id: records[job_id] for job_id in wanted if job_id in records}

    def _sacct(self, job_ids: List[str]) -> Dict[str, AccountingRecord]:
        out = self._run(
            "sacct",
            [
                "--parsable2",
                "--noheader",
                f"--format={_SACCT_FIELDS}",
                "-j",
                ",".join(job_ids),
            ],
        )
        records: Dict[str, AccountingRecord] = {}
        for line in out.splitlines():
            line = line.strip()
            if not line:
                continue
            cells = line.split("|")
            if len(cells) < 8:
                raise BackendError(f"malformed sacct row: {line!r}")
            job_id = cells[0].strip()
            if "." in job_id or "+" in job_id:
                continue  # job steps (4242.batch) and het components
            start = parse_sacct_time(cells[5])
            records[job_id] = AccountingRecord(
                job_id=job_id,
                name=cells[1],
                state=JobState.from_slurm(cells[2]),
                num_nodes=int(cells[3] or 0),
                submit_time=parse_sacct_time(cells[4]),
                start_time=start,
                end_time=parse_sacct_time(cells[6]),
                elapsed=float(cells[7]) if cells[7].strip() else None,
            )
        # sacct can lag a freshly submitted job; surface it as PENDING
        # rather than dropping it from the answer.
        for job_id in job_ids:
            if job_id not in records:
                records[job_id] = AccountingRecord(
                    job_id=job_id,
                    name=self._names.get(job_id, ""),
                    state=JobState.PENDING,
                    num_nodes=0,
                )
        return records

    def _note_transitions(self, records: Dict[str, AccountingRecord]) -> None:
        for job_id, record in records.items():
            last = self._last_states.get(job_id)
            if record.state is last:
                continue
            self._last_states[job_id] = record.state
            if record.state is JobState.RUNNING:
                self._emit("job_start", job_id, nodes=record.num_nodes)
            elif record.state in TERMINAL_STATES:
                self._emit("job_end", job_id, state=record.state.value)

    # -- availability ---------------------------------------------------------
    @classmethod
    def available(cls) -> Tuple[bool, str]:
        missing = []
        for key, env_var, default in _COMMANDS:
            value = os.environ.get(env_var) or default
            argv0 = shlex.split(value)[0]
            if shutil.which(argv0) is None and not os.path.exists(argv0):
                missing.append(f"{key} ({argv0})")
        if missing:
            return False, "not on PATH: " + ", ".join(missing)
        return True, "slurm command-line tools found"
