"""Workload execution over the backend contract.

:func:`run_workload` is the backend-neutral counterpart of
:meth:`repro.api.session.SessionRun.execute`: it paces a
:class:`~repro.workload.spec.WorkloadSpec` through *any*
:class:`~repro.backend.base.ExecutionBackend` and rebuilds the familiar
:class:`~repro.api.results.WorkloadResult` from the backend's accounting
records — no trace scraping, no reliance on simulator internals.  The
session routes non-sim backends here (the sim backend keeps its native
in-process path, whose golden traces are pinned byte-for-byte).

Because accounting is the source of truth, the trace attached to the
result is *synthetic*: submit/start/end and allocation-change events
reconstructed from the records, enough for the timeline/summary helpers
and the session observer protocol to work unchanged.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.api.observers import ObserverDispatch
from repro.api.results import WorkloadResult
from repro.backend.base import (
    DEFAULT_DRAIN_TIMEOUT,
    AccountingRecord,
    ExecutionBackend,
    JobRequest,
)
from repro.metrics.summary import summarize
from repro.metrics.trace import EventKind, Trace
from repro.obs.spans import CLOCK_WALL, Telemetry
from repro.slurm.job import Job, JobState
from repro.workload.spec import WorkloadSpec


@dataclass
class _JobResolver:
    """``controller.get_job`` stand-in for the observer dispatch."""

    jobs: Dict[int, Job]

    def get_job(self, job_id: int) -> Job:
        return self.jobs[job_id]


def _request_for(job: Job, time_scale: float) -> JobRequest:
    """Translate a materialized :class:`Job` into a backend request."""
    app = job.payload
    duration = app.total_time(job.num_nodes) * time_scale
    min_nodes = max_nodes = None
    if job.is_flexible and job.resize_request is not None:
        min_nodes = job.resize_request.min_procs
        max_nodes = job.resize_request.max_procs
    return JobRequest(
        name=job.name,
        num_nodes=job.num_nodes,
        duration=duration,
        time_limit=job.time_limit * time_scale,
        min_nodes=min_nodes,
        max_nodes=max_nodes,
    )


def _apply_record(job: Job, record: AccountingRecord, t0: float) -> None:
    """Fold the backend's accounting truth into the Job object."""

    def rel(t: Optional[float]) -> Optional[float]:
        return None if t is None else max(t - t0, 0.0)

    job.submit_time = rel(record.submit_time)
    job.start_time = rel(record.start_time)
    job.end_time = rel(record.end_time)
    if record.num_nodes >= 1:
        job.num_nodes = record.num_nodes
    # Defensive fallbacks: summarize() needs every job to carry a full
    # submit/start/end triple, and a real sacct can answer "Unknown" for
    # a job cancelled while pending.
    if job.submit_time is None:
        job.submit_time = 0.0
    if job.start_time is None:
        job.start_time = job.end_time if job.end_time is not None else job.submit_time
    if job.end_time is None:
        elapsed = record.elapsed if record.elapsed is not None else 0.0
        job.end_time = job.start_time + elapsed
    # Drive the state machine along a legal path where one exists; a
    # backend reporting an exotic path (e.g. BOOT_FAIL straight from
    # PENDING) still lands on the accounting state.
    if record.state is not job.state:
        try:
            if job.state is JobState.PENDING and record.state not in (
                JobState.CANCELLED,
                JobState.BOOT_FAIL,
                JobState.DEADLINE,
                JobState.PENDING,
            ):
                job.transition(JobState.RUNNING)
            if record.state is not job.state:
                job.transition(record.state)
        except Exception:
            job.state = record.state


def _synthesize_trace(
    jobs: List[Tuple[Job, AccountingRecord]],
    observers: Tuple[object, ...],
) -> Trace:
    """Rebuild a canonical-looking trace from accounting records.

    Events are recorded in time order (ties broken submit < start < end)
    so live observers see a plausible stream and the timeline helpers
    (``allocated_nodes_series`` et al.) work on the result.
    """
    trace = Trace()
    if observers:
        dispatch = ObserverDispatch(
            _JobResolver({job.job_id: job for job, _ in jobs}),
            tuple(observers),  # type: ignore[arg-type]
        )
        trace.subscribe(dispatch)

    SUBMIT, START, END = 0, 1, 2
    moments: List[Tuple[float, int, int, Job, AccountingRecord]] = []
    for job, record in jobs:
        moments.append((job.submit_time or 0.0, SUBMIT, job.job_id, job, record))
        if record.start_time is not None:
            moments.append((job.start_time, START, job.job_id, job, record))
        moments.append((job.end_time, END, job.job_id, job, record))
    moments.sort(key=lambda m: (m[0], m[1], m[2]))

    nodes_used = 0
    started: set = set()
    for time, phase, _, job, record in moments:
        if phase == SUBMIT:
            trace.record(
                time,
                EventKind.JOB_SUBMIT,
                job.job_id,
                name=job.name,
                nodes=job.num_nodes,
                flexible=job.is_flexible,
                resizer=False,
            )
        elif phase == START:
            started.add(job.job_id)
            nodes_used += job.num_nodes
            trace.record(
                time,
                EventKind.JOB_START,
                job.job_id,
                nodes=job.num_nodes,
                node_ids=(),
                resizer=False,
            )
            trace.record(
                time, EventKind.ALLOC_CHANGE, None, nodes_used=nodes_used
            )
        else:
            kind = (
                EventKind.JOB_CANCEL
                if record.state is JobState.CANCELLED
                else EventKind.JOB_END
            )
            if kind is EventKind.JOB_CANCEL:
                trace.record(time, kind, job.job_id)
            else:
                trace.record(time, kind, job.job_id, state=record.state.value)
            if job.job_id in started:
                started.discard(job.job_id)
                nodes_used -= job.num_nodes
                trace.record(
                    time, EventKind.ALLOC_CHANGE, None, nodes_used=nodes_used
                )
    return trace


def run_workload(
    backend: ExecutionBackend,
    spec: WorkloadSpec,
    flexible: bool = True,
    session=None,
    time_scale: float = 1.0,
    drain_timeout: Optional[float] = None,
) -> WorkloadResult:
    """Execute a workload through a backend and assemble the result.

    ``time_scale`` compresses the workload's virtual seconds onto the
    backend clock (a wall-clock backend cannot afford to *actually*
    sleep through an hour-long trace); durations, arrivals and limits
    all scale together, so the schedule's shape is preserved.
    """
    if time_scale <= 0:
        raise ValueError(f"time_scale must be positive, got {time_scale}")
    capabilities = backend.capabilities
    if drain_timeout is None:
        if capabilities.clock == "sim" and session is not None:
            drain_timeout = session.max_sim_time
        else:
            drain_timeout = DEFAULT_DRAIN_TIMEOUT

    telemetry = None
    if session is not None and session.telemetry is not None:
        telemetry = Telemetry(session.telemetry)
    observers = tuple(session.observers) if session is not None else ()

    wall_start = backend.now()
    t0 = wall_start
    by_backend_id: Dict[str, Job] = {}
    jobs: List[Job] = []
    for index, job_spec in enumerate(spec.jobs, start=1):
        target = t0 + job_spec.arrival_time * time_scale
        if target > backend.now():
            backend.wait(target - backend.now())
        job = job_spec.build_job(flexible)
        job.job_id = index
        backend_id = backend.submit(_request_for(job, time_scale))
        by_backend_id[backend_id] = job
        jobs.append(job)

    records = backend.drain(timeout=drain_timeout)

    paired: List[Tuple[Job, AccountingRecord]] = []
    for backend_id, job in by_backend_id.items():
        record = records[backend_id]
        _apply_record(job, record, t0)
        paired.append((job, record))

    trace = _synthesize_trace(paired, observers)
    num_nodes = (
        session.cluster.num_nodes
        if session is not None and session.cluster is not None
        else max((j.num_nodes for j in jobs), default=1)
    )
    summary = summarize(jobs, trace, num_nodes)
    if telemetry is not None:
        telemetry.record(
            "backend.run",
            wall_start,
            backend.now(),
            clock=CLOCK_WALL if capabilities.clock == "wall" else "sim",
            backend=backend.name,
            workload=spec.name,
            jobs=len(jobs),
        )
    return WorkloadResult(
        workload_name=spec.name,
        flexible=flexible,
        jobs=jobs,
        trace=trace,
        summary=summary,
        timelines=None,
        telemetry=telemetry,
        accounting=tuple(records[bid] for bid in by_backend_id),
        backend=backend.name,
    )
