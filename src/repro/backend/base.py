"""The execution-backend seam: one contract, many schedulers.

The paper defines its malleability protocol against Slurm's *external*
API (``sbatch``/``scontrol``/``scancel``), so nothing above the
scheduler seam should care whether jobs run inside the in-process
simulator or on a real cluster.  :class:`ExecutionBackend` is that seam:
a small imperative contract (submit, cancel, update, query accounting,
drain) plus capability flags, implemented by

* :class:`repro.backend.sim.SimBackend` — the default, wrapping today's
  ``Environment`` + ``SlurmController`` + ``SlurmAPI`` stack;
* :class:`repro.backend.subprocess_slurm.SubprocessSlurmBackend` — real
  ``sbatch``/``scancel``/``squeue``/``sacct`` subprocess calls in the
  Kive ``slurmlib`` style (state-string parsing, batched accounting
  polls with an interval budget).

The shared conformance suite (``tests/backend/conformance.py``) runs the
identical scenario matrix against every registered backend, so sim-vs-
real divergence is a pytest artifact instead of an unknown.

Job identifiers are backend-scoped *strings* (real Slurm ids are opaque
text like ``"4242"`` or ``"4242+0"``); times are seconds on the
backend's own clock (``capabilities.clock``: simulated seconds for the
sim, wall-clock seconds for subprocess Slurm).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import (
    Any,
    Callable,
    ClassVar,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Type,
)

from repro.errors import BackendError, BackendUnavailableError
from repro.slurm.job import TERMINAL_STATES, JobState

#: Default drain timeout, in backend-clock seconds.
DEFAULT_DRAIN_TIMEOUT = 3600.0

#: Spec options consumed by the workload driver, not the backend
#: constructor (``run_workload``'s time compression).
DRIVER_OPTIONS = frozenset({"time_scale"})


@dataclass(frozen=True)
class BackendCapabilities:
    """What a backend can do; conformance scenarios gate on these."""

    #: ``update_nodes`` grows/shrinks running jobs (the paper's protocol).
    supports_resize: bool = False
    #: The backend can inject node failures (sim only today).
    supports_faults: bool = False
    #: ``"sim"`` (virtual seconds, free to advance) or ``"wall"``.
    clock: str = "sim"


@dataclass(frozen=True)
class JobRequest:
    """A backend-neutral job submission (the ``sbatch`` argument set)."""

    name: str
    num_nodes: int
    #: Seconds of work the job performs (the ``--wrap "sleep D"`` body).
    duration: float
    #: Walltime limit in seconds (``-t``); jobs exceeding it time out
    #: where the backend enforces limits.
    time_limit: float
    #: Resize bounds for backends that support it; None = rigid.
    min_nodes: Optional[int] = None
    max_nodes: Optional[int] = None

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise BackendError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.duration < 0:
            raise BackendError(f"duration must be >= 0, got {self.duration}")
        if self.time_limit <= 0:
            raise BackendError(
                f"time_limit must be positive, got {self.time_limit}"
            )

    @property
    def flexible(self) -> bool:
        return self.min_nodes is not None or self.max_nodes is not None


@dataclass(frozen=True)
class AccountingRecord:
    """One ``sacct`` row, backend-neutral: the job's accounting truth."""

    job_id: str
    name: str
    state: JobState
    num_nodes: int
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Seconds the job actually ran (ElapsedRaw).
    elapsed: Optional[float] = None

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES


@dataclass(frozen=True)
class BackendEvent:
    """A lifecycle notification delivered to backend subscribers."""

    time: float
    kind: str
    job_id: str
    data: Mapping[str, Any] = field(default_factory=dict)


class ExecutionBackend(abc.ABC):
    """Abstract scheduler: the contract every backend implements.

    Lifecycle: construct (usually via :func:`create_backend`), submit
    work, advance the clock with :meth:`wait` while polling
    :meth:`query_jobs`, then :meth:`drain` and :meth:`close`.  Backends
    are single-use and not thread-safe; callers serialize access.
    """

    #: Registry key and the ``--backend`` CLI value.
    name: ClassVar[str] = "abstract"

    #: Class-level capability flags.  Kept on the class (not just the
    #: instance) so ``repro backends`` can list them without paying a
    #: constructor — a :class:`~repro.backend.sim.SimBackend` builds a
    #: whole simulation on instantiation.
    CAPABILITIES: ClassVar[BackendCapabilities] = BackendCapabilities()

    @property
    def capabilities(self) -> BackendCapabilities:
        """Static capability flags for this backend instance."""
        return self.CAPABILITIES

    # -- clock --------------------------------------------------------------
    @abc.abstractmethod
    def now(self) -> float:
        """Current time on the backend's clock, in seconds."""

    @abc.abstractmethod
    def wait(self, seconds: float) -> None:
        """Advance the backend clock by ``seconds`` (sleep or simulate)."""

    # -- job control --------------------------------------------------------
    @abc.abstractmethod
    def submit(self, request: JobRequest) -> str:
        """Submit a job; returns the backend's job id (``sbatch``)."""

    @abc.abstractmethod
    def cancel(self, job_id: str) -> None:
        """Cancel a pending or running job (``scancel``)."""

    @abc.abstractmethod
    def update_nodes(self, job_id: str, num_nodes: int) -> None:
        """Resize a running job (``scontrol update NumNodes``).

        Backends with ``supports_resize=False`` raise
        :class:`~repro.errors.BackendError`.
        """

    @abc.abstractmethod
    def update_time_limit(self, job_id: str, time_limit: float) -> None:
        """Change a job's walltime limit (``scontrol update TimeLimit``)."""

    # -- accounting ---------------------------------------------------------
    @abc.abstractmethod
    def query_jobs(
        self, job_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, AccountingRecord]:
        """Batched accounting query (``sacct -j id1,id2,...``).

        ``None`` means "every job this backend instance submitted".
        One call, however many ids — callers must not loop per-job.
        """

    def drain(self, timeout: float = DEFAULT_DRAIN_TIMEOUT) -> Dict[str, AccountingRecord]:
        """Wait until every submitted job is terminal; return accounting.

        Raises :class:`~repro.errors.BackendError` when jobs are still
        live after ``timeout`` backend-clock seconds.
        """
        deadline = self.now() + timeout
        while True:
            records = self.query_jobs()
            live = sorted(
                job_id
                for job_id, record in records.items()
                if not record.is_terminal
            )
            if not live:
                return records
            if self.now() >= deadline:
                raise BackendError(
                    f"{self.name} backend: drain timed out after {timeout}s "
                    f"with live jobs {live}"
                )
            self.wait(min(self.poll_interval, max(deadline - self.now(), 0.0)))

    #: Seconds between accounting polls inside :meth:`drain` (the
    #: poll-interval budget; subclasses tune it to their clock).
    poll_interval: float = 1.0

    # -- events -------------------------------------------------------------
    def subscribe(self, callback: Callable[[BackendEvent], None]) -> None:
        """Deliver lifecycle events to ``callback`` as they are observed."""
        self._subscribers().append(callback)

    def _subscribers(self) -> List[Callable[[BackendEvent], None]]:
        subs = getattr(self, "_event_subscribers", None)
        if subs is None:
            subs = []
            self._event_subscribers = subs
        return subs

    def _emit(self, kind: str, job_id: str, **data: Any) -> None:
        event = BackendEvent(time=self.now(), kind=kind, job_id=job_id, data=data)
        for callback in self._subscribers():
            callback(event)

    # -- lifecycle ----------------------------------------------------------
    def close(self) -> None:
        """Release backend resources; further calls are undefined."""

    def __enter__(self) -> "ExecutionBackend":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # -- availability probe --------------------------------------------------
    @classmethod
    def available(cls) -> Tuple[bool, str]:
        """Whether this backend can run here, with a human-readable reason."""
        return True, "always available"

    @classmethod
    def from_spec(cls, spec: "BackendSpec", session=None) -> "ExecutionBackend":
        """Construct an instance from a picklable spec (see subclasses)."""
        options = {
            key: value
            for key, value in spec.options
            if key not in DRIVER_OPTIONS
        }
        return cls(**options)  # type: ignore[call-arg]


@dataclass(frozen=True)
class BackendSpec:
    """Picklable, hashable backend selection: name plus plain options.

    This is what rides on :class:`~repro.api.session.SessionSpec` across
    the sweep engine's process boundary; workers reconstitute the live
    backend with :func:`create_backend` on the other side.
    """

    name: str = "sim"
    #: Sorted (key, value) pairs of primitive options.
    options: Tuple[Tuple[str, Any], ...] = ()

    @classmethod
    def of(cls, name: str, **options: Any) -> "BackendSpec":
        return cls(name=name, options=tuple(sorted(options.items())))

    def option(self, key: str, default: Any = None) -> Any:
        for name, value in self.options:
            if name == key:
                return value
        return default

    def as_dict(self) -> Dict[str, Any]:
        return {"name": self.name, **dict(self.options)}


#: name -> backend class.
_BACKENDS: Dict[str, Type[ExecutionBackend]] = {}


def register_backend(cls: Type[ExecutionBackend]) -> Type[ExecutionBackend]:
    """Class decorator: expose a backend under its ``name``."""
    _BACKENDS[cls.name] = cls
    return cls


def _ensure_builtins() -> None:
    # Built-in backends register on import; imported lazily so this
    # module stays dependency-light (subprocess_slurm pulls in shutil
    # and subprocess, sim pulls in the whole simulation stack).
    import repro.backend.sim  # noqa: F401
    import repro.backend.subprocess_slurm  # noqa: F401


def backend_names() -> List[str]:
    """Registered backend names, sorted."""
    _ensure_builtins()
    return sorted(_BACKENDS)


def backend_class(name: str) -> Type[ExecutionBackend]:
    """Resolve a backend class by registry name."""
    _ensure_builtins()
    try:
        return _BACKENDS[name]
    except KeyError:
        raise BackendUnavailableError(
            f"unknown backend {name!r}; registered: {backend_names()}"
        ) from None


def create_backend(spec: BackendSpec, session=None) -> ExecutionBackend:
    """Instantiate the backend a spec describes.

    ``session`` carries the cluster/Slurm/runtime configuration backends
    may honour (the sim backend requires it; subprocess Slurm ignores
    everything but the spec options).
    """
    return backend_class(spec.name).from_spec(spec, session=session)
