"""A hermetic fake Slurm CLI for CI: sbatch/squeue/sacct/scancel/scontrol.

Run as ``python -m repro.backend.fake_slurmd <tool> [args...]``.  Jobs
are JSON records in a spool directory (``$REPRO_FAKE_SLURMD_SPOOL``);
state is *computed lazily from the wall clock*, so there is no daemon:
a job submitted with ``--wrap "sleep 3"`` reads RUNNING for three
seconds after submission and COMPLETED afterwards, and a job whose
sleep exceeds its ``-t`` limit reads TIMEOUT — the same semantics the
simulator's walltime enforcer implements.

Deliberate deviations from real Slurm, chosen for test determinism:

* the fake cluster has unlimited nodes, so jobs start the instant they
  are submitted (no PENDING window);
* ``sacct`` timestamps are epoch seconds with sub-second precision
  (real sacct prints whole-second ISO text; the subprocess backend's
  parser accepts both).

Everything else mirrors the real tools closely enough that
:class:`~repro.backend.subprocess_slurm.SubprocessSlurmBackend` cannot
tell the difference: ``--parsable`` sbatch output, ``--parsable2``
sacct rows, ``CANCELLED by <uid>`` state strings, and ``scontrol
update`` that accepts TimeLimit but refuses NumNodes on a running job
(exit 1), exactly like an unprivileged ``scontrol`` would.
"""

from __future__ import annotations

import json
import os
import sys
import time
from pathlib import Path
from typing import Dict, List, Optional

SPOOL_ENV = "REPRO_FAKE_SLURMD_SPOOL"


def _spool() -> Path:
    spool = os.environ.get(SPOOL_ENV)
    if not spool:
        print(f"fake_slurmd: {SPOOL_ENV} is not set", file=sys.stderr)
        raise SystemExit(2)
    path = Path(spool)
    path.mkdir(parents=True, exist_ok=True)
    return path


def parse_timelimit(text: str) -> float:
    """Slurm time spec -> seconds: M, M:S, H:M:S or D-H:M:S."""
    text = text.strip()
    days = 0.0
    if "-" in text:
        day_part, text = text.split("-", 1)
        days = float(day_part)
    parts = [float(p) for p in text.split(":")]
    if len(parts) == 1:
        # Bare number = minutes, as sbatch -t documents.
        seconds = parts[0] * 60.0
    elif len(parts) == 2:
        seconds = parts[0] * 60.0 + parts[1]
    elif len(parts) == 3:
        seconds = parts[0] * 3600.0 + parts[1] * 60.0 + parts[2]
    else:
        raise ValueError(f"bad time limit {text!r}")
    return days * 86400.0 + seconds


def _load(path: Path) -> Dict:
    return json.loads(path.read_text())


def _save(spool: Path, job: Dict) -> None:
    (spool / f"job-{job['id']}.json").write_text(json.dumps(job))


def _jobs(spool: Path) -> Dict[int, Dict]:
    out = {}
    for path in spool.glob("job-*.json"):
        job = _load(path)
        out[job["id"]] = job
    return out


def _status(job: Dict, now: Optional[float] = None):
    """(state string, end time or None) computed from the wall clock."""
    if now is None:
        now = time.time()
    start = job["start"]
    natural_end = start + job["duration"]
    timeout_at = start + job["time_limit_s"]
    cancelled = job.get("cancelled_at")
    finish_at = min(natural_end, timeout_at)
    if cancelled is not None and cancelled < finish_at:
        return "CANCELLED by 0", cancelled
    if now < start:
        return "PENDING", None
    if now < finish_at:
        return "RUNNING", None
    if timeout_at < natural_end:
        return "TIMEOUT", timeout_at
    return "COMPLETED", natural_end


def _next_id(spool: Path) -> int:
    existing = _jobs(spool)
    return max(existing, default=0) + 1


def _cmd_sbatch(argv: List[str]) -> int:
    spool = _spool()
    name, nodes, limit, wrap, parsable = "wrap", 1, 60.0, None, False
    i = 0
    while i < len(argv):
        arg = argv[i]
        if arg == "--parsable":
            parsable = True
        elif arg in ("-J", "--job-name"):
            i += 1
            name = argv[i]
        elif arg in ("-N", "--nodes"):
            i += 1
            nodes = int(argv[i])
        elif arg in ("-t", "--time"):
            i += 1
            limit = parse_timelimit(argv[i])
        elif arg == "--wrap":
            i += 1
            wrap = argv[i]
        elif arg in ("-p", "--partition", "-o", "--output"):
            i += 1  # accepted and ignored
        else:
            print(f"sbatch: unrecognized option {arg!r}", file=sys.stderr)
            return 1
        i += 1
    if wrap is None:
        print("sbatch: a --wrap command is required", file=sys.stderr)
        return 1
    duration = 0.0
    tokens = wrap.split()
    if tokens and tokens[0] == "sleep" and len(tokens) > 1:
        duration = float(tokens[1])
    now = time.time()
    job = {
        "id": _next_id(spool),
        "name": name,
        "nodes": nodes,
        "duration": duration,
        "time_limit_s": limit,
        "submit": now,
        # Unlimited fake nodes: every job starts immediately.
        "start": now,
    }
    _save(spool, job)
    if parsable:
        print(job["id"])
    else:
        print(f"Submitted batch job {job['id']}")
    return 0


def _wanted_ids(argv: List[str]) -> Optional[List[int]]:
    for i, arg in enumerate(argv):
        if arg in ("-j", "--jobs") and i + 1 < len(argv):
            return [int(x) for x in argv[i + 1].split(",") if x]
        if arg.startswith("--jobs="):
            return [int(x) for x in arg.split("=", 1)[1].split(",") if x]
    return None


def _cmd_sacct(argv: List[str]) -> int:
    spool = _spool()
    fields = ["JobID", "JobName", "State", "NNodes", "Submit", "Start", "End", "ElapsedRaw"]
    for i, arg in enumerate(argv):
        if arg == "--format" and i + 1 < len(argv):
            fields = argv[i + 1].split(",")
        elif arg.startswith("--format="):
            fields = arg.split("=", 1)[1].split(",")
    wanted = _wanted_ids(argv)
    jobs = _jobs(spool)
    ids = wanted if wanted is not None else sorted(jobs)
    now = time.time()
    for job_id in ids:
        job = jobs.get(job_id)
        if job is None:
            continue
        state, end = _status(job, now)
        elapsed = (end if end is not None else now) - job["start"]
        values = {
            "JobID": str(job["id"]),
            "JobName": job["name"],
            "State": state,
            "NNodes": str(job["nodes"]),
            "Submit": repr(job["submit"]),
            "Start": repr(job["start"]),
            "End": "Unknown" if end is None else repr(end),
            "ElapsedRaw": repr(max(elapsed, 0.0)),
        }
        print("|".join(values.get(f, "") for f in fields))
    return 0


def _cmd_squeue(argv: List[str]) -> int:
    spool = _spool()
    wanted = _wanted_ids(argv)
    jobs = _jobs(spool)
    ids = wanted if wanted is not None else sorted(jobs)
    now = time.time()
    for job_id in ids:
        job = jobs.get(job_id)
        if job is None:
            continue
        state, _ = _status(job, now)
        if state in ("PENDING", "RUNNING"):
            print(f"{job['id']}|{state}")
    return 0


def _cmd_scancel(argv: List[str]) -> int:
    spool = _spool()
    ids = [int(a) for a in argv if not a.startswith("-")]
    if not ids:
        print("scancel: no job id given", file=sys.stderr)
        return 1
    jobs = _jobs(spool)
    now = time.time()
    for job_id in ids:
        job = jobs.get(job_id)
        if job is None:
            print(f"scancel: error: Invalid job id {job_id}", file=sys.stderr)
            return 1
        state, _ = _status(job, now)
        if state in ("PENDING", "RUNNING") and "cancelled_at" not in job:
            job["cancelled_at"] = now
            _save(spool, job)
    return 0


def _cmd_scontrol(argv: List[str]) -> int:
    spool = _spool()
    if not argv or argv[0] != "update":
        print(f"scontrol: unsupported invocation {argv!r}", file=sys.stderr)
        return 1
    updates = {}
    for arg in argv[1:]:
        if "=" not in arg:
            print(f"scontrol: bad update token {arg!r}", file=sys.stderr)
            return 1
        key, value = arg.split("=", 1)
        updates[key.lower()] = value
    job_id = updates.pop("jobid", None)
    if job_id is None:
        print("scontrol: JobId required", file=sys.stderr)
        return 1
    jobs = _jobs(spool)
    job = jobs.get(int(job_id))
    if job is None:
        print("scontrol: error: Invalid job id specified", file=sys.stderr)
        return 1
    state, _ = _status(job)
    for key, value in updates.items():
        if key == "timelimit":
            if state not in ("PENDING", "RUNNING"):
                print(
                    "scontrol: error: Job/step already completing or completed",
                    file=sys.stderr,
                )
                return 1
            job["time_limit_s"] = parse_timelimit(value)
        elif key == "numnodes":
            # Like real (unprivileged) Slurm: no resizing running jobs
            # from the outside; the paper's protocol exists because of
            # exactly this restriction.
            print(
                "scontrol: error: Job is no longer pending execution",
                file=sys.stderr,
            )
            return 1
        else:
            print(f"scontrol: unsupported field {key!r}", file=sys.stderr)
            return 1
    _save(spool, job)
    return 0


_COMMANDS = {
    "sbatch": _cmd_sbatch,
    "sacct": _cmd_sacct,
    "squeue": _cmd_squeue,
    "scancel": _cmd_scancel,
    "scontrol": _cmd_scontrol,
}


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] not in _COMMANDS:
        print(
            f"fake_slurmd: expected one of {sorted(_COMMANDS)}, got {argv[:1]}",
            file=sys.stderr,
        )
        return 2
    return _COMMANDS[argv[0]](argv[1:])


if __name__ == "__main__":  # pragma: no cover - exercised via subprocess
    raise SystemExit(main())
