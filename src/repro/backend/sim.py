"""The default execution backend: the in-process simulator.

Two things live here:

* :func:`assemble` — the one place in the codebase that wires the
  simulation stack together (environment + machine + controller +
  runtime launcher + observers + faults).  It used to be the body of
  :meth:`repro.api.session.Session.build`; the session now delegates
  here, so the native path — and its byte-identical golden traces — is
  unchanged.
* :class:`SimBackend` — the same stack exposed through the
  :class:`~repro.backend.base.ExecutionBackend` contract, so the
  conformance suite can run the identical scenario matrix against the
  simulator and a real (or fake) Slurm.  Jobs submitted through the
  contract carry a :class:`~repro.backend.base.JobRequest` payload and
  are executed by a plain sleep launcher — exactly what the subprocess
  backend's ``sbatch --wrap "sleep D"`` does — rather than the Nanos++
  application model, which belongs to the native session path.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Sequence, Tuple

from repro.backend.base import (
    AccountingRecord,
    BackendCapabilities,
    BackendSpec,
    ExecutionBackend,
    JobRequest,
    register_backend,
)
from repro.core.actions import DecisionReason, ResizeAction, ResizeRequest
from repro.errors import BackendError, SchedulerError
from repro.metrics.trace import EventKind, TraceEvent
from repro.sim.process import Interrupt
from repro.slurm.controller import SlurmConfig
from repro.slurm.job import Job, JobClass, JobState
from repro.slurm.resize import expand_protocol


def assemble(session, extra_observers: Tuple[object, ...] = ()):
    """Wire up a live simulation for a session (the sim-backend seam).

    Experiments, benchmarks, the CLI and the sim backend all go through
    this function (via :meth:`~repro.api.session.Session.build`).
    """
    # Imported here: repro.api.session imports this module lazily, and
    # these are the assembly-only dependencies.
    from repro.api.observers import ObserverDispatch
    from repro.api.session import LiveSimulation
    from repro.cluster.configs import marenostrum_production
    from repro.faults import install_faults
    from repro.obs.spans import Telemetry
    from repro.runtime.nanos import install_runtime_launcher
    from repro.sim.engine import Environment
    from repro.slurm.controller import SlurmController

    cluster = session.cluster if session.cluster is not None else marenostrum_production()
    env = Environment()
    machine = cluster.build_machine()
    controller = SlurmController(env, machine, config=session.slurm)
    telemetry = None
    if session.telemetry is not None:
        telemetry = Telemetry(session.telemetry)
        controller.telemetry = telemetry
    install_runtime_launcher(controller, cluster, session.runtime)
    observers = session.observers + tuple(extra_observers)
    dispatch = None
    if observers:
        dispatch = ObserverDispatch(controller, observers)
        controller.trace.subscribe(dispatch)
    injector = install_faults(controller, session.faults)
    return LiveSimulation(
        env=env,
        machine=machine,
        controller=controller,
        dispatch=dispatch,
        injector=injector,
        telemetry=telemetry,
    )


@register_backend
class SimBackend(ExecutionBackend):
    """The simulator behind the backend contract."""

    name = "sim"
    CAPABILITIES = BackendCapabilities(
        supports_resize=True, supports_faults=True, clock="sim"
    )
    #: Sim seconds between accounting polls while draining (cheap: the
    #: event calendar is what actually advances time).
    poll_interval = 1.0

    def __init__(self, session=None) -> None:
        from repro.api.session import Session

        if session is None:
            session = Session()
        if session.slurm is None:
            # The contract's timeout scenario needs walltime enforcement,
            # which the native paper workloads leave off.
            session = session.with_slurm(SlurmConfig(enforce_time_limits=True))
        self._session = session
        # Through Session.build so session observers (and the test
        # harness's invariant observer) attach exactly as on the native
        # path.
        self._sim = session.build()
        self._env = self._sim.env
        self._controller = self._sim.controller
        self._controller.launcher = self._launch
        self._jobs: Dict[str, Job] = {}
        self._durations: Dict[int, float] = {}
        self._controller.trace.subscribe(self._bridge)

    # -- contract: clock ------------------------------------------------------
    def now(self) -> float:
        return self._env.now

    def wait(self, seconds: float) -> None:
        if seconds < 0:
            raise BackendError(f"cannot wait a negative time ({seconds})")
        if seconds == 0:
            return
        self._env.run(until=self._env.now + seconds)

    # -- the sleep launcher ---------------------------------------------------
    def _launch(self, job: Job) -> None:
        duration = self._durations.get(job.job_id, 0.0)

        def body():
            try:
                yield self._env.timeout(duration)
            except Interrupt:
                # scancel / time-limit: the controller already settled
                # the job's state before interrupting us.
                return
            if job.job_id in self._controller.running:
                self._controller.finish_job(job, JobState.COMPLETED)

        proc = self._env.process(body(), name=f"sleep-{job.job_id}")
        self._controller.register_job_process(job, proc)

    # -- contract: job control ------------------------------------------------
    def submit(self, request: JobRequest) -> str:
        resize = None
        job_class = JobClass.RIGID
        if request.flexible:
            lo = request.min_nodes or 1
            hi = request.max_nodes or max(request.num_nodes, lo)
            resize = ResizeRequest(min_procs=lo, max_procs=hi, factor=1)
            job_class = JobClass.MALLEABLE
        job = Job(
            name=request.name,
            num_nodes=request.num_nodes,
            time_limit=request.time_limit,
            job_class=job_class,
            resize_request=resize,
            payload=request,
        )
        self._controller.submit(job)
        self._durations[job.job_id] = request.duration
        job_id = str(job.job_id)
        self._jobs[job_id] = job
        # Let same-timestamp scheduling happen before the caller returns,
        # mirroring sbatch + an immediately-consistent squeue.
        self._env.run(until=self._env.now)
        return job_id

    def _job(self, job_id: str) -> Job:
        try:
            return self._jobs[job_id]
        except KeyError:
            raise BackendError(f"sim backend: unknown job id {job_id!r}") from None

    def cancel(self, job_id: str) -> None:
        job = self._job(job_id)
        if job.is_terminal:
            raise BackendError(
                f"sim backend: job {job_id} is already {job.state.value}"
            )
        self._controller.cancel_job(job)
        self._env.run(until=self._env.now)

    def update_time_limit(self, job_id: str, time_limit: float) -> None:
        job = self._job(job_id)
        try:
            self._controller.update_time_limit(job, time_limit)
        except SchedulerError as exc:
            raise BackendError(str(exc)) from exc

    def update_nodes(self, job_id: str, num_nodes: int) -> None:
        """Operator-driven resize (``scontrol update NumNodes``).

        Expansion runs the paper's 4-step protocol (resizer job, detach,
        cancel, attach); shrinking is the single-step update.  Either
        way the decision is recorded first, exactly like a policy-driven
        resize, so the trace keeps its decision→ack pairing.
        """
        job = self._job(job_id)
        if job.job_id not in self._controller.running:
            raise BackendError(f"sim backend: job {job_id} is not running")
        current = job.num_nodes
        if num_nodes == current:
            return
        if num_nodes < 1:
            raise BackendError(f"target node count must be >= 1, got {num_nodes}")
        action = (
            ResizeAction.EXPAND if num_nodes > current else ResizeAction.SHRINK
        )
        self._controller.trace.record(
            self._env.now,
            EventKind.RESIZE_DECISION,
            job.job_id,
            action=action.value,
            target=num_nodes,
            reason=DecisionReason.OPERATOR.value,
            beneficiary=None,
        )
        if action is ResizeAction.EXPAND:
            outcome: Dict[str, object] = {}

            def driver():
                result = yield from expand_protocol(
                    self._controller, job, num_nodes
                )
                outcome["nodes"] = result

            self._env.process(driver(), name=f"operator-expand-{job.job_id}")
            deadline = (
                self._env.now + self._controller.config.resizer_timeout + 1.0
            )
            while "nodes" not in outcome and self._env.peek() <= deadline:
                self._env.step()
            if outcome.get("nodes") is None:
                raise BackendError(
                    f"sim backend: expand of job {job_id} to {num_nodes} "
                    "nodes aborted (no resources)"
                )
        else:
            try:
                self._controller.shrink_job(job, num_nodes)
            except SchedulerError as exc:
                raise BackendError(str(exc)) from exc
            self._env.run(until=self._env.now)

    # -- contract: accounting -------------------------------------------------
    def query_jobs(
        self, job_ids: Optional[Sequence[str]] = None
    ) -> Dict[str, AccountingRecord]:
        wanted = list(job_ids) if job_ids is not None else list(self._jobs)
        out: Dict[str, AccountingRecord] = {}
        for job_id in wanted:
            job = self._job(job_id)
            elapsed = None
            if job.start_time is not None:
                end = job.end_time if job.end_time is not None else self._env.now
                elapsed = end - job.start_time
            out[job_id] = AccountingRecord(
                job_id=job_id,
                name=job.name,
                state=job.state,
                num_nodes=job.num_nodes,
                submit_time=job.submit_time,
                start_time=job.start_time,
                end_time=job.end_time,
                elapsed=elapsed,
            )
        return out

    # -- events ---------------------------------------------------------------
    def _bridge(self, event: TraceEvent) -> None:
        if event.job_id is None or str(event.job_id) not in self._jobs:
            return
        self._emit(event.kind.value, str(event.job_id), **event.data)

    def close(self) -> None:
        if self._sim.dispatch is not None:
            try:
                self._controller.trace.unsubscribe(self._sim.dispatch)
            except ValueError:
                pass
        try:
            self._controller.trace.unsubscribe(self._bridge)
        except ValueError:
            pass

    # -- construction ---------------------------------------------------------
    @classmethod
    def available(cls) -> Tuple[bool, str]:
        return True, "in-process simulator (no external requirements)"

    @classmethod
    def from_spec(cls, spec: BackendSpec, session=None) -> "SimBackend":
        return cls(session=session)
