"""Deterministic discrete-event simulation kernel.

The workload-level experiments of the reproduction run entirely in virtual
time on this kernel: the Slurm substrate, the Nanos++ runtime model and the
application iteration models are all simulation processes.

Public surface::

    env = Environment()
    env.process(gen)          # start a generator-based process
    env.timeout(5.0)          # waitable delay
    env.run(until=...)        # drive the clock

plus :class:`RandomStreams` for named reproducible randomness and
:class:`Store`/:class:`Resource` for inter-process coordination.
"""

from repro.sim.calendar import EventCalendar
from repro.sim.engine import EmptySchedule, Environment
from repro.sim.events import AllOf, AnyOf, Condition, ConditionValue, Event, Timeout
from repro.sim.process import Interrupt, Process
from repro.sim.resources import Resource, Store
from repro.sim.rng import RandomStreams

__all__ = [
    "AllOf",
    "AnyOf",
    "Condition",
    "ConditionValue",
    "EmptySchedule",
    "Environment",
    "Event",
    "EventCalendar",
    "Interrupt",
    "Process",
    "RandomStreams",
    "Resource",
    "Store",
    "Timeout",
]
