"""Indexed event calendar — the engine's pending-event structure.

The original engine kept one global binary heap of
``(time, priority, serial, event)`` tuples: every ``schedule``/``step``
paid a full O(log n) sift over 4-tuple comparisons, and — because
discrete-event workloads are extremely tie-heavy (a submission burst, a
scheduling pass and the protocol messages it triggers all land on the
*same* timestamp) — most of that comparison work re-derived an ordering
the calendar can know structurally.

:class:`EventCalendar` indexes events by exact timestamp instead:

* a dict maps each *distinct* timestamp to its bucket;
* a bucket maps priority -> FIFO deque of events (append/popleft);
* a small heap orders only the distinct timestamps.

Inserting into an existing timestamp is O(1) (dict hit + deque append),
and draining the events of the current timestamp is O(1) per event — the
timestamp heap is touched exactly once per *distinct* time, when its
bucket is created and when it empties.  Only genuinely new timestamps
pay a heap sift, over bare floats rather than 4-tuples.

Ordering is **identical** to the old heap, which the golden-trace suite
and the Hypothesis differential tests (tests/sim/test_calendar_properties
.py) pin event-for-event:

1. earlier timestamps first;
2. within a timestamp, lower priority values first (URGENT before
   NORMAL before the controller's low-priority pass ticks), even when
   the urgent event was scheduled *after* normal ones already queued at
   that time;
3. within (timestamp, priority), strict insertion (FIFO) order.

Invariants the calendar guarantees (relied on by the engine):

* the timestamp heap holds exactly the timestamps with a non-empty
  bucket — no stale entries, so :meth:`peek_time` is O(1) and exact;
* an event is returned exactly once, in the order defined above;
* ``len(calendar)`` is the number of not-yet-popped events.
"""

from __future__ import annotations

from collections import deque
from heapq import heappop, heappush
from typing import Any, Deque, Dict, List, Tuple


class EventCalendar:
    """Timestamp-indexed pending-event store with deterministic ordering."""

    __slots__ = ("_times", "_buckets", "_size")

    def __init__(self) -> None:
        #: Heap of the *distinct* timestamps that have pending events.
        self._times: List[float] = []
        #: time -> {priority: FIFO deque of events}.
        self._buckets: Dict[float, Dict[int, Deque[Any]]] = {}
        self._size = 0

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    def push(self, time: float, priority: int, event: Any) -> None:
        """Insert ``event`` at ``time``; O(1) for an already-known time."""
        bucket = self._buckets.get(time)
        if bucket is None:
            heappush(self._times, time)
            self._buckets[time] = {priority: deque((event,))}
        else:
            queue = bucket.get(priority)
            if queue is None:
                bucket[priority] = deque((event,))
            else:
                queue.append(event)
        self._size += 1

    def peek_time(self) -> float:
        """Earliest pending timestamp (``inf`` when empty)."""
        return self._times[0] if self._times else float("inf")

    def pop(self) -> Tuple[float, int, Any]:
        """Remove and return the next ``(time, priority, event)``."""
        if not self._size:
            raise IndexError("pop from an empty EventCalendar")
        time = self._times[0]
        bucket = self._buckets[time]
        # Buckets hold at most a handful of distinct priorities (URGENT,
        # NORMAL and the controller's pass priority), so min() over the
        # keys is effectively constant work.
        priority = min(bucket)
        queue = bucket[priority]
        event = queue.popleft()
        if not queue:
            del bucket[priority]
            if not bucket:
                del self._buckets[time]
                heappop(self._times)
        self._size -= 1
        return time, priority, event
