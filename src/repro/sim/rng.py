"""Named, reproducible random-number streams.

Every stochastic component in the simulator draws from its own named stream
derived from a single base seed.  Two runs with the same base seed produce
identical traces, and adding a new consumer of randomness does not perturb
the draws of existing streams (streams are keyed by name, not by creation
order).
"""

from __future__ import annotations

import hashlib
from typing import Dict, Sequence

import numpy as np


def _stream_seed(base_seed: int, name: str) -> np.random.SeedSequence:
    digest = hashlib.sha256(f"{base_seed}:{name}".encode()).digest()
    words = [int.from_bytes(digest[i : i + 4], "little") for i in range(0, 16, 4)]
    return np.random.SeedSequence(words)


class RandomStreams:
    """A registry of independent named :class:`numpy.random.Generator` streams."""

    def __init__(self, base_seed: int = 0) -> None:
        self.base_seed = int(base_seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def stream(self, name: str) -> np.random.Generator:
        """Return (creating on first use) the generator for ``name``."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(_stream_seed(self.base_seed, name))
            self._streams[name] = gen
        return gen

    # -- distribution helpers ------------------------------------------------
    def uniform(self, name: str, low: float = 0.0, high: float = 1.0) -> float:
        return float(self.stream(name).uniform(low, high))

    def exponential(self, name: str, mean: float) -> float:
        """Exponential variate with the given mean."""
        if mean <= 0:
            raise ValueError(f"mean must be positive, got {mean}")
        return float(self.stream(name).exponential(mean))

    def hyperexponential(
        self,
        name: str,
        means: Sequence[float],
        probabilities: Sequence[float],
    ) -> float:
        """Two-or-more branch hyperexponential variate.

        With probability ``probabilities[i]`` the sample is exponential with
        mean ``means[i]``.  Used by the Feitelson workload model to produce
        heavy-tailed runtimes.
        """
        if len(means) != len(probabilities):
            raise ValueError("means and probabilities must have the same length")
        total = float(sum(probabilities))
        if not np.isclose(total, 1.0):
            raise ValueError(f"probabilities must sum to 1, got {total}")
        gen = self.stream(name)
        branch = int(gen.choice(len(means), p=np.asarray(probabilities) / total))
        return float(gen.exponential(means[branch]))

    def choice(self, name: str, options: Sequence, p: Sequence[float] | None = None):
        """Pick one element of ``options`` (optionally weighted)."""
        gen = self.stream(name)
        idx = int(gen.choice(len(options), p=p))
        return options[idx]

    def integers(self, name: str, low: int, high: int) -> int:
        """Uniform integer in ``[low, high]`` inclusive."""
        return int(self.stream(name).integers(low, high + 1))

    def bernoulli(self, name: str, p: float) -> bool:
        """True with probability ``p``."""
        if not 0.0 <= p <= 1.0:
            raise ValueError(f"probability must be in [0, 1], got {p}")
        return bool(self.stream(name).random() < p)

    def spawn(self, name: str) -> "RandomStreams":
        """Derive an independent child registry (e.g. per experiment cell)."""
        digest = hashlib.sha256(f"{self.base_seed}:spawn:{name}".encode()).digest()
        return RandomStreams(int.from_bytes(digest[:8], "little"))
