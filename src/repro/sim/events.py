"""Event primitives for the discrete-event simulation kernel.

The design follows the classic process-interaction style (as popularized by
SimPy): an :class:`Event` is a one-shot occurrence that carries a value or an
exception, and callbacks fire when the event is processed by the engine.
Processes (see :mod:`repro.sim.process`) are generators that ``yield`` events
to wait on them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Callable, Iterable, List, Optional

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.engine import Environment

#: Sentinel for "event has not been triggered yet".
PENDING = object()

#: Scheduling priorities; lower sorts earlier within the same timestamp.
URGENT = 0
NORMAL = 1


class Event:
    """A one-shot occurrence in simulated time.

    An event goes through three phases: *pending* (just created),
    *triggered* (scheduled with a value at some simulation time), and
    *processed* (its callbacks have run).
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_defused")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        #: Callables invoked with this event once it is processed.
        self.callbacks: Optional[List[Callable[["Event"], None]]] = []
        self._value: Any = PENDING
        self._ok: bool = True
        self._defused: bool = False

    # -- state ----------------------------------------------------------
    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled for processing."""
        return self._value is not PENDING

    @property
    def processed(self) -> bool:
        """True once callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True if the event carries a value rather than an exception."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._ok

    @property
    def value(self) -> Any:
        """The event payload (or the exception it failed with)."""
        if self._value is PENDING:
            raise SimulationError(f"{self!r} has not been triggered")
        return self._value

    # -- triggering -----------------------------------------------------
    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        self._ok = True
        self._value = value
        self.env.schedule(self, priority=priority)
        return self

    def fail(self, exception: BaseException, priority: int = NORMAL) -> "Event":
        """Trigger the event with an exception.

        The exception is re-raised inside every process waiting on the
        event.  If nothing waits on it, the engine raises it at the top
        level (unless :meth:`defuse` was called).
        """
        if self._value is not PENDING:
            raise SimulationError(f"{self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"{exception!r} is not an exception")
        self._ok = False
        self._value = exception
        self.env.schedule(self, priority=priority)
        return self

    def trigger(self, event: "Event") -> None:
        """Mirror the outcome of another event (callback helper)."""
        if event._ok:
            self.succeed(event._value)
        else:
            self.defused_fail(event._value)

    def defuse(self) -> None:
        """Mark a failed event as handled so the engine will not crash."""
        self._defused = True

    def defused_fail(self, exception: BaseException) -> "Event":
        """Fail the event but pre-defuse it (used by condition plumbing)."""
        self.fail(exception)
        self._defused = True
        return self

    def __repr__(self) -> str:
        state = (
            "processed" if self.processed
            else "triggered" if self.triggered
            else "pending"
        )
        return f"<{type(self).__name__} {state} at {id(self):#x}>"


class Timeout(Event):
    """An event that fires ``delay`` units of simulated time after creation."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay!r}")
        super().__init__(env)
        self.delay = delay
        self._ok = True
        self._value = value
        env.schedule(self, delay=delay)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay}>"


class ConditionValue:
    """Mapping-like result of a condition: events → values, in firing order."""

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: List[Event] = []

    def __getitem__(self, key: Event) -> Any:
        if key not in self.events:
            raise KeyError(repr(key))
        return key._value

    def __contains__(self, key: Event) -> bool:
        return key in self.events

    def __len__(self) -> int:
        return len(self.events)

    def __iter__(self):
        return iter(self.events)

    def __eq__(self, other: object) -> bool:
        if isinstance(other, ConditionValue):
            return self.todict() == other.todict()
        if isinstance(other, dict):
            return self.todict() == other
        return NotImplemented

    def todict(self) -> dict:
        return {e: e._value for e in self.events}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<ConditionValue {self.todict()!r}>"


class Condition(Event):
    """Waits for a boolean combination of other events.

    ``evaluate`` receives ``(events, count_of_fired)`` and returns True once
    the condition is satisfied.  Use the :meth:`all_of` / :meth:`any_of`
    evaluators, or the :class:`AllOf` / :class:`AnyOf` conveniences.
    """

    __slots__ = ("_evaluate", "_events", "_count")

    def __init__(
        self,
        env: "Environment",
        evaluate: Callable[[List[Event], int], bool],
        events: Iterable[Event],
    ) -> None:
        super().__init__(env)
        self._evaluate = evaluate
        self._events = list(events)
        self._count = 0

        for event in self._events:
            if event.env is not env:
                raise SimulationError("cannot mix events from different environments")

        # Immediately satisfied (e.g. empty AllOf)?
        if self._evaluate(self._events, 0):
            self.succeed(ConditionValue())
            return

        for event in self._events:
            if event.callbacks is None:  # already processed
                self._check(event)
            else:
                event.callbacks.append(self._check)

    def _build_value(self) -> ConditionValue:
        value = ConditionValue()
        for event in self._events:
            if event.callbacks is None and event._value is not PENDING:
                value.events.append(event)
        return value

    def _check(self, event: Event) -> None:
        if self._value is not PENDING:
            return  # already triggered
        self._count += 1
        if not event._ok:
            event.defuse()
            self.fail(event._value)
        elif self._evaluate(self._events, self._count):
            self.succeed(PENDING)  # placeholder; patched below

    def succeed(self, value: Any = None, priority: int = NORMAL) -> "Event":
        if value is PENDING:
            value = None  # will be rebuilt when processed
        # Build the condition value lazily at trigger time so that all
        # already-processed child events are included.
        if value is None:
            value = self._build_value()
        return super().succeed(value, priority=priority)

    @staticmethod
    def all_of(events: List[Event], count: int) -> bool:
        """Satisfied once every event has fired."""
        return len(events) == count

    @staticmethod
    def any_of(events: List[Event], count: int) -> bool:
        """Satisfied once at least one event has fired (or there are none)."""
        return count > 0 or not events


class AllOf(Condition):
    """Condition satisfied when *all* of the given events have fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.all_of, events)


class AnyOf(Condition):
    """Condition satisfied when *any* of the given events has fired."""

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env, Condition.any_of, events)
