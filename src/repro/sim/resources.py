"""Waitable resources built on top of the event kernel.

:class:`Store` is an unbounded FIFO channel (used for runtime↔RMS message
passing), and :class:`Resource` is a counted semaphore with FIFO fairness
(used e.g. to model a shared filesystem's bounded concurrency).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Deque, TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.events import Event

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Store:
    """Unbounded FIFO store of items with blocking ``get``."""

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self._items: Deque[Any] = deque()
        self._getters: Deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    @property
    def items(self) -> tuple:
        """Snapshot of queued items (oldest first)."""
        return tuple(self._items)

    def put(self, item: Any) -> None:
        """Deposit ``item``; wakes the oldest waiting getter, if any."""
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)

    def get(self) -> Event:
        """Return an event that fires with the next available item."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event

    def try_get(self) -> Any:
        """Non-blocking get; returns None when empty."""
        return self._items.popleft() if self._items else None


class Resource:
    """Counted resource with FIFO request queue.

    Usage from a process::

        req = resource.request()
        yield req
        try:
            ...critical section...
        finally:
            resource.release()
    """

    def __init__(self, env: "Environment", capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiters: Deque[Event] = deque()

    @property
    def in_use(self) -> int:
        return self._in_use

    @property
    def queued(self) -> int:
        return len(self._waiters)

    def request(self) -> Event:
        """Event that fires once a slot is granted to the caller."""
        event = Event(self.env)
        if self._in_use < self.capacity:
            self._in_use += 1
            event.succeed()
        else:
            self._waiters.append(event)
        return event

    def release(self) -> None:
        """Give a slot back, handing it to the oldest waiter if present."""
        if self._in_use <= 0:
            raise SimulationError("release() without matching request()")
        if self._waiters:
            # Hand the slot over without decrementing the busy count.
            self._waiters.popleft().succeed()
        else:
            self._in_use -= 1
