"""Generator-based simulation processes.

A process wraps a Python generator.  The generator ``yield``\\ s
:class:`~repro.sim.events.Event` instances; the process suspends until the
event is processed and the event's value is sent back into the generator
(or its exception is thrown into it).  A process is itself an event that
fires when the generator terminates, carrying its return value.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Any, Generator, Optional

from repro.errors import SimulationError
from repro.sim.events import Event, NORMAL, PENDING, URGENT

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.engine import Environment


class Interrupt(Exception):
    """Raised inside a process that another entity interrupted.

    The interrupt ``cause`` is available as ``exc.cause``.
    """

    @property
    def cause(self) -> Any:
        return self.args[0]


class InterruptEvent(Event):
    """Internal urgent event used to deliver an interrupt to a process."""

    __slots__ = ("process",)

    def __init__(self, process: "Process", cause: Any) -> None:
        # Bypass Event.__init__ triggering rules: interrupts are born failed.
        super().__init__(process.env)
        self.process = process
        self._ok = False
        self._value = Interrupt(cause)
        self._defused = True
        self.callbacks = [process._resume_interrupt]
        self.env.schedule(self, priority=URGENT)


class Process(Event):
    """A running process; also an event that fires on termination."""

    __slots__ = ("_generator", "_target", "name")

    def __init__(
        self,
        env: "Environment",
        generator: Generator[Event, Any, Any],
        name: Optional[str] = None,
    ) -> None:
        if not hasattr(generator, "throw"):
            raise SimulationError(f"{generator!r} is not a generator")
        super().__init__(env)
        self._generator = generator
        self.name = name or getattr(generator, "__name__", "process")
        #: The event this process currently waits on (None when terminated
        #: or just scheduled to start).
        self._target: Optional[Event] = None
        # Kick-start the process at the current time via an initializer event.
        init = Event(env)
        init.callbacks.append(self._resume)
        init._ok = True
        init._value = None
        env.schedule(init, priority=URGENT)

    @property
    def is_alive(self) -> bool:
        """True while the wrapped generator has not exited."""
        return self._value is PENDING

    @property
    def target(self) -> Optional[Event]:
        """The event this process is currently waiting for."""
        return self._target

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if not self.is_alive:
            raise SimulationError(f"{self!r} has terminated and cannot be interrupted")
        if self is self.env.active_process:
            raise SimulationError("a process cannot interrupt itself")
        InterruptEvent(self, cause)

    # -- resumption -----------------------------------------------------
    def _resume_interrupt(self, event: InterruptEvent) -> None:
        if not self.is_alive:  # terminated before the interrupt fired
            return
        # Unsubscribe from the event we were waiting on: the interrupt wins.
        if self._target is not None and self._target.callbacks is not None:
            try:
                self._target.callbacks.remove(self._resume)
            except ValueError:  # pragma: no cover - defensive
                pass
        self._resume(event)

    def _resume(self, event: Event) -> None:
        env = self.env
        env._active_process = self
        while True:
            try:
                if event._ok:
                    next_event = self._generator.send(event._value)
                else:
                    event._defused = True
                    next_event = self._generator.throw(event._value)
            except StopIteration as exc:
                env._active_process = None
                self._ok = True
                self._value = exc.value
                env.schedule(self, priority=NORMAL)
                return
            except BaseException as exc:
                env._active_process = None
                self._ok = False
                self._value = exc
                env.schedule(self, priority=NORMAL)
                return

            if not isinstance(next_event, Event):
                env._active_process = None
                err = SimulationError(
                    f"process {self.name!r} yielded a non-event: {next_event!r}"
                )
                # Crash the process with a helpful error.
                try:
                    self._generator.throw(err)
                except StopIteration as exc:
                    self._ok = True
                    self._value = exc.value
                except BaseException as exc:
                    self._ok = False
                    self._value = exc
                env.schedule(self, priority=NORMAL)
                return

            if next_event.callbacks is None:
                # Already processed: loop immediately with its value.
                event = next_event
                continue

            self._target = next_event
            next_event.callbacks.append(self._resume)
            break
        env._active_process = None

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {'alive' if self.is_alive else 'done'}>"
