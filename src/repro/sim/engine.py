"""The discrete-event simulation engine.

:class:`Environment` owns the simulation clock and the pending-event
calendar (:class:`repro.sim.calendar.EventCalendar`).  Events scheduled
at the same timestamp are processed in (priority, insertion order), which
makes every simulation fully deterministic.

Everything above this module runs as generator-based processes on one
:class:`Environment`: each job's :class:`repro.runtime.nanos.NanosRuntime`
is a process whose reconfiguring points call into the DMR core
(:class:`repro.core.dmr.DMRSession`), the Slurm controller schedules its
passes as same-timestamp events at low priority (so all state changes at a
timestamp settle before a pass observes them), and the
:class:`repro.core.protocol.RMSChannel` handshake models each protocol
message as a timed event.  Determinism here is what makes the paper's
paired fixed-vs-flexible comparisons exactly reproducible: identical
workloads see identical event orders, so any makespan difference is
attributable to the resize decisions alone.
"""

from __future__ import annotations

from typing import Any, Generator, Iterable, Optional

from repro.errors import SimulationError
from repro.sim.calendar import EventCalendar
from repro.sim.events import AllOf, AnyOf, Event, NORMAL, Timeout
from repro.sim.process import Process


class EmptySchedule(SimulationError):
    """Raised by :meth:`Environment.step` when no events remain."""


class StopSimulation(Exception):
    """Internal control-flow exception that ends :meth:`Environment.run`."""


class Environment:
    """A deterministic discrete-event simulation environment."""

    __slots__ = ("_now", "_queue", "_active_process", "_events_processed")

    def __init__(self, initial_time: float = 0.0) -> None:
        self._now = float(initial_time)
        self._queue = EventCalendar()
        self._active_process: Optional[Process] = None
        self._events_processed = 0

    # -- clock ------------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulation time."""
        return self._now

    @property
    def events_processed(self) -> int:
        """Total events processed so far (benchmark instrumentation)."""
        return self._events_processed

    @property
    def active_process(self) -> Optional[Process]:
        """The process currently being resumed, if any."""
        return self._active_process

    # -- scheduling --------------------------------------------------------
    def schedule(self, event: Event, priority: int = NORMAL, delay: float = 0.0) -> None:
        """Enqueue a triggered event ``delay`` time units from now."""
        if delay < 0:
            raise SimulationError(f"negative delay {delay!r}")
        self._queue.push(self._now + delay, priority, event)

    def peek(self) -> float:
        """Time of the next scheduled event, or ``inf`` if none."""
        return self._queue.peek_time()

    def step(self) -> None:
        """Process the next event, advancing the clock."""
        try:
            self._now, _, event = self._queue.pop()
        except IndexError:
            raise EmptySchedule("no scheduled events") from None
        self._events_processed += 1

        callbacks, event.callbacks = event.callbacks, None
        if callbacks is None:  # pragma: no cover - double-processing guard
            raise SimulationError(f"{event!r} processed twice")
        for callback in callbacks:
            callback(event)

        if not event._ok and not event._defused:
            # Nobody handled the failure: crash the simulation loudly.
            exc = event._value
            raise exc

    # -- running -------------------------------------------------------------
    def run(self, until: Any = None) -> Any:
        """Run the simulation.

        ``until`` may be ``None`` (run until the schedule drains), a number
        (run up to that simulation time), or an :class:`Event` (run until it
        is processed; its value is returned).
        """
        stop: Optional[Event] = None
        if until is not None:
            if isinstance(until, Event):
                stop = until
            else:
                at = float(until)
                if at < self._now:
                    raise SimulationError(
                        f"until={at} lies in the past (now={self._now})"
                    )
                stop = Timeout(self, at - self._now)

            def _halt(event: Event) -> None:
                raise StopSimulation(event)

            if stop.callbacks is None:
                return stop.value if stop.ok else None
            stop.callbacks.append(_halt)

        try:
            while True:
                self.step()
        except StopSimulation as marker:
            ev: Event = marker.args[0]
            if not ev.ok:
                raise ev.value
            return ev.value
        except EmptySchedule:
            if stop is not None and not stop.triggered:
                raise SimulationError(
                    "simulation ran out of events before the 'until' condition"
                ) from None
            return None

    # -- factories -----------------------------------------------------------
    def event(self) -> Event:
        """Create a fresh, untriggered event."""
        return Event(self)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event that fires after ``delay`` time units."""
        return Timeout(self, delay, value)

    def process(
        self, generator: Generator[Event, Any, Any], name: Optional[str] = None
    ) -> Process:
        """Start a new process from ``generator``."""
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all ``events`` have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when any of ``events`` has fired."""
        return AnyOf(self, events)
