"""`repro.obs` — unified, zero-dependency telemetry.

Three pieces, each usable alone:

* :mod:`repro.obs.registry` — numbers: a process-wide
  :class:`MetricsRegistry` of counters/gauges/latency histograms with
  labeled families, snapshot/diff, and Prometheus text exposition;
* :mod:`repro.obs.spans` — intervals: bounded :class:`Telemetry` span
  buffers over two clocks (simulated time inside the engine, wall time
  everywhere else) with correlation ids that survive process pools;
* :mod:`repro.obs.perfetto` — rendering: stream spans + per-job trace
  timelines to Chrome trace-event JSON for ``ui.perfetto.dev``.

Entry points around the repo: ``Session.with_telemetry(...)``, the
``repro trace`` CLI verb, ``--trace`` on ``repro bench sched`` /
``repro sweep``, and ``GET /metrics`` + ``GET /v1/jobs/{id}/telemetry``
on ``repro serve``.
"""

# Import order matters: registry/spans are dependency-free; perfetto
# reaches back into repro.metrics.trace (lazily) and must come last so
# the histogram compatibility shim can import registry mid-cycle.
from repro.obs.registry import (
    DEFAULT_BUCKETS,
    DEFAULT_FIRST_BOUND,
    DEFAULT_GROWTH,
    Counter,
    Gauge,
    LatencyHistogram,
    MetricFamily,
    MetricsRegistry,
    default_registry,
    observe_all,
    parse_prometheus,
    publish_event_counts,
    publish_sched_stats,
    publish_store_stats,
)
from repro.obs.spans import (
    CLOCK_SIM,
    CLOCK_WALL,
    DEFAULT_MAX_SPANS,
    Span,
    Telemetry,
    TelemetryConfig,
)
from repro.obs.perfetto import (
    PerfettoTraceWriter,
    export_perfetto,
    spans_from_trace,
    validate_trace_file,
)

__all__ = [
    "CLOCK_SIM",
    "CLOCK_WALL",
    "Counter",
    "DEFAULT_BUCKETS",
    "DEFAULT_FIRST_BOUND",
    "DEFAULT_GROWTH",
    "DEFAULT_MAX_SPANS",
    "Gauge",
    "LatencyHistogram",
    "MetricFamily",
    "MetricsRegistry",
    "PerfettoTraceWriter",
    "Span",
    "Telemetry",
    "TelemetryConfig",
    "default_registry",
    "export_perfetto",
    "observe_all",
    "parse_prometheus",
    "publish_event_counts",
    "publish_sched_stats",
    "publish_store_stats",
    "spans_from_trace",
    "validate_trace_file",
]
