"""Chrome trace-event export: spans + per-job timeline → Perfetto.

The exporter turns what the repo already has — a simulation
:class:`~repro.metrics.trace.Trace` and/or recorded :class:`~repro.obs.
spans.Span` buffers — into the Chrome trace-event JSON array format
that ``ui.perfetto.dev`` and ``chrome://tracing`` load directly:

* every job becomes its own track (``job 7``) carrying an ``X``
  (complete) slice per incarnation, with instants for submits,
  checkpoints, DMR checks and resize acks;
* resize decision→ack intervals are derived as slices on the job's
  track, fault injections as instants on a dedicated ``faults`` track;
* recorded spans land on their own tracks (``scheduler``, ``runtime``,
  ``sweep``, ...), sim-clock and wall-clock spans on *separate process
  tracks* so each timeline stays internally coherent (sim seconds and
  Unix epochs must never share an axis).

Output is streamed through :class:`PerfettoTraceWriter` — one JSON
event at a time behind a file handle, following the
``StreamingTraceWriter`` spill pattern — so a million-job export never
materializes the event list in memory (the bounded span buffer is the
only RAM cost, and it reports its own drops).

:func:`validate_trace_file` is the schema check the CI ``obs-smoke``
step runs: well-formed JSON array, required keys per phase, and
non-decreasing timestamps within every track.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.errors import TelemetryError
from repro.obs.spans import CLOCK_SIM, CLOCK_WALL, Span

#: Process ids for the two clock domains (Perfetto groups tracks by pid).
SIM_PID = 1
WALL_PID = 2

#: Simulated seconds → trace microseconds.
_US = 1_000_000.0


class PerfettoTraceWriter:
    """Streams a Chrome trace-event JSON array to disk, one event at a time."""

    def __init__(self, path: str) -> None:
        self.path = path
        self.events_written = 0
        self._fh = open(path, "w", encoding="utf-8")
        self._fh.write("[")
        self._closed = False

    def write(self, event: Dict[str, object]) -> None:
        if self._closed:
            raise TelemetryError(f"trace writer for {self.path} is closed")
        prefix = ",\n" if self.events_written else "\n"
        self._fh.write(prefix + json.dumps(event, sort_keys=True))
        self.events_written += 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._fh.write("\n]\n" if self.events_written else "]\n")
        self._fh.close()

    def __enter__(self) -> "PerfettoTraceWriter":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# -- deriving spans from a simulation trace -----------------------------------

def spans_from_trace(trace) -> List[Span]:
    """Derive the per-job timeline spans from a retained trace.

    This is the zero-overhead half of telemetry: job run windows,
    resize decision→ack intervals, checkpoint/fault/requeue instants
    are all *already in the canonical trace*, so nothing extra is
    recorded during simulation (golden digests stay byte-identical) and
    the intervals are reconstructed here at export time.
    """
    from repro.metrics.trace import EventKind

    instants_on_job_track = {
        EventKind.JOB_SUBMIT: "job.submit",
        EventKind.DMR_CHECK: "dmr.check",
        EventKind.CHECKPOINT_WRITE: "checkpoint.write",
        EventKind.CHECKPOINT_READ: "checkpoint.read",
        EventKind.JOB_REQUEUE: "job.requeue",
        EventKind.RESIZE_EXPAND: "resize.expand",
        EventKind.RESIZE_SHRINK: "resize.shrink",
        EventKind.RESIZE_ABORT: "resize.abort",
    }
    fault_kinds = {
        EventKind.NODE_FAIL: "fault.node_fail",
        EventKind.NODE_RECOVER: "fault.node_recover",
        EventKind.NODE_DRAIN: "fault.node_drain",
        EventKind.NODE_RESUME: "fault.node_resume",
        EventKind.NODE_SLOWDOWN: "fault.node_slowdown",
        EventKind.NET_DEGRADE: "fault.net_degrade",
    }
    decision_acks = {
        EventKind.RESIZE_EXPAND, EventKind.RESIZE_SHRINK,
        EventKind.RESIZE_ABORT,
    }

    spans: List[Span] = []
    running_since: Dict[int, float] = {}
    pending_decision: Dict[int, Tuple[float, Dict[str, object]]] = {}
    for event in trace.events:
        kind, job_id = event.kind, event.job_id
        track = f"job {job_id}" if job_id is not None else "faults"
        if kind is EventKind.JOB_START:
            running_since[job_id] = event.time
        elif kind in (EventKind.JOB_END, EventKind.JOB_CANCEL,
                      EventKind.JOB_REQUEUE):
            start = running_since.pop(job_id, None)
            if start is not None:
                spans.append(Span(
                    "job.run", start, event.time, CLOCK_SIM, track,
                    {"job_id": job_id, "outcome": kind.value},
                ))
        if kind is EventKind.RESIZE_DECISION:
            pending_decision[job_id] = (event.time, dict(event.data))
            spans.append(Span(
                "resize.decision", event.time, None, CLOCK_SIM, track,
                {"job_id": job_id, **event.data},
            ))
        elif kind in decision_acks and job_id in pending_decision:
            decided_at, data = pending_decision.pop(job_id)
            spans.append(Span(
                "resize.decision_to_ack", decided_at, event.time,
                CLOCK_SIM, track,
                {"job_id": job_id, "ack": kind.value, **data},
            ))
        name = instants_on_job_track.get(kind)
        if name is not None:
            spans.append(Span(
                name, event.time, None, CLOCK_SIM, track,
                {"job_id": job_id, **event.data},
            ))
        name = fault_kinds.get(kind)
        if name is not None:
            spans.append(Span(
                name, event.time, None, CLOCK_SIM, "faults",
                dict(event.data),
            ))
    # Anything still running when the trace ends stays open-ended; emit
    # it as an instant so the track is not silently empty.
    for job_id, start in sorted(running_since.items()):
        spans.append(Span(
            "job.running_at_end", start, None, CLOCK_SIM, f"job {job_id}",
            {"job_id": job_id},
        ))
    return spans


# -- export -------------------------------------------------------------------

def _track_key(span: Span) -> Tuple[int, str]:
    pid = SIM_PID if span.clock == CLOCK_SIM else WALL_PID
    return pid, span.track


def export_perfetto(
    path: str,
    spans: Sequence[Span] = (),
    trace=None,
    correlation_id: Optional[str] = None,
    dropped: int = 0,
) -> Dict[str, object]:
    """Write spans (plus a trace's derived timeline) as trace-event JSON.

    Returns a summary dict (event/track counts and the carried-through
    drop counter) that CLI surfaces print after writing the file.
    """
    all_spans: List[Span] = list(spans)
    if trace is not None:
        all_spans.extend(spans_from_trace(trace))
    if not all_spans:
        raise TelemetryError(
            "nothing to export: no spans recorded and no trace events"
        )

    # Wall timestamps are Unix epochs; rebase them so the wall tracks
    # start near zero like the sim tracks do.
    wall_starts = [s.start for s in all_spans if s.clock == CLOCK_WALL]
    wall_t0 = min(wall_starts) if wall_starts else 0.0

    # Group per track and sort by start so every track's ts column is
    # non-decreasing (the validator's per-track monotonicity check).
    tracks: Dict[Tuple[int, str], List[Span]] = {}
    for span in all_spans:
        tracks.setdefault(_track_key(span), []).append(span)

    def track_order(key: Tuple[int, str]) -> Tuple[int, int, object]:
        pid, name = key
        if name.startswith("job "):
            try:
                return (pid, 1, int(name[4:]))
            except ValueError:
                return (pid, 1, name)
        return (pid, 0, name)

    with PerfettoTraceWriter(path) as writer:
        writer.write({
            "ph": "M", "name": "process_name", "pid": SIM_PID, "tid": 0,
            "args": {"name": "simulated time"},
        })
        writer.write({
            "ph": "M", "name": "process_name", "pid": WALL_PID, "tid": 0,
            "args": {"name": "wall clock"},
        })
        span_events = 0
        for tid, key in enumerate(sorted(tracks, key=track_order), start=1):
            pid, track_name = key
            writer.write({
                "ph": "M", "name": "thread_name", "pid": pid, "tid": tid,
                "args": {"name": track_name},
            })
            for span in sorted(tracks[key], key=lambda s: s.start):
                base = span.start - (wall_t0 if pid == WALL_PID else 0.0)
                event: Dict[str, object] = {
                    "name": span.name,
                    "pid": pid,
                    "tid": tid,
                    "ts": base * _US,
                    "cat": span.clock,
                }
                args = dict(span.attrs)
                if correlation_id is not None:
                    args.setdefault("cid", correlation_id)
                if args:
                    event["args"] = args
                if span.instant:
                    event["ph"] = "i"
                    event["s"] = "t"
                else:
                    event["ph"] = "X"
                    event["dur"] = max(span.duration, 0.0) * _US
                writer.write(event)
                span_events += 1
        total = writer.events_written
    return {
        "path": path,
        "events": total,
        "spans": span_events,
        "tracks": len(tracks),
        "dropped_spans": dropped,
    }


# -- validation (CI smoke + tests) --------------------------------------------

def validate_trace_file(path: str) -> Dict[str, object]:
    """Check a trace-event file is loadable, non-empty and well-ordered.

    Raises :class:`~repro.errors.TelemetryError` on the first problem;
    returns a summary (event count, tracks, span-name histogram) that
    the CI step prints and asserts against.
    """
    try:
        with open(path, "r", encoding="utf-8") as fh:
            data = json.load(fh)
    except (OSError, json.JSONDecodeError) as exc:
        raise TelemetryError(f"cannot load trace {path}: {exc}") from exc
    if not isinstance(data, list):
        raise TelemetryError(f"{path}: trace-event JSON must be an array")
    if not data:
        raise TelemetryError(f"{path}: trace is empty")

    last_ts: Dict[Tuple[object, object], float] = {}
    names: Dict[str, int] = {}
    by_phase: Dict[str, int] = {}
    track_names: Dict[Tuple[object, object], str] = {}
    for index, event in enumerate(data):
        if not isinstance(event, dict):
            raise TelemetryError(f"{path}: event {index} is not an object")
        phase = event.get("ph")
        name = event.get("name")
        if not isinstance(phase, str) or not isinstance(name, str):
            raise TelemetryError(
                f"{path}: event {index} lacks 'ph'/'name' strings"
            )
        by_phase[phase] = by_phase.get(phase, 0) + 1
        if phase == "M":
            if name == "thread_name":
                key = (event.get("pid"), event.get("tid"))
                track_names[key] = event["args"]["name"]
            continue
        ts = event.get("ts")
        if not isinstance(ts, (int, float)) or isinstance(ts, bool):
            raise TelemetryError(
                f"{path}: event {index} ({name!r}) has no numeric 'ts'"
            )
        if phase == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                raise TelemetryError(
                    f"{path}: complete event {index} ({name!r}) needs "
                    f"'dur' >= 0"
                )
        key = (event.get("pid"), event.get("tid"))
        previous = last_ts.get(key)
        if previous is not None and ts < previous:
            raise TelemetryError(
                f"{path}: ts went backwards on track {key} at event "
                f"{index} ({name!r}): {ts} < {previous}"
            )
        last_ts[key] = float(ts)
        names[name] = names.get(name, 0) + 1
    return {
        "events": len(data),
        "tracks": len(last_ts),
        "track_names": sorted(track_names.values()),
        "names": names,
        "by_phase": by_phase,
    }
