"""Lightweight spans over two clocks: simulation time and wall time.

A :class:`Span` is a named interval with free-form attributes; a
:class:`Telemetry` recorder is a bounded buffer of them plus the
correlation id that ties one recorder's output to the serve job, sweep
cell or session that produced it.  Two clocks coexist deliberately:

* ``sim`` spans carry *simulated* timestamps (seconds of virtual time,
  e.g. a runtime reconfiguration window from quiesce to redistribution
  done) — recorded by engine-side code that already knows both ends of
  the interval, so there is no context-manager bookkeeping on the hot
  path;
* ``wall`` spans carry Unix-epoch timestamps (a serve request, a sweep
  worker run) and are usually recorded with the :meth:`Telemetry.wall_
  span` context manager.

The Perfetto exporter keeps the two clocks on separate process tracks,
so both timelines stay internally coherent.

The buffer is bounded (:attr:`TelemetryConfig.max_spans`); once full,
further spans increment :attr:`Telemetry.dropped` instead of silently
vanishing or growing without limit — million-job benches can run with
telemetry on and report exactly how much they shed.

Correlation: a :class:`TelemetryConfig` is a frozen, picklable value
that travels on ``Session``/``SessionSpec``.  A parent (serve job,
sweep runner) mints an id, derives per-cell child ids with
:meth:`TelemetryConfig.child`, and process-pool workers build their own
recorder from the shipped config — worker spans come back tagged with
the parent's trace lineage.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Dict, Iterable, Iterator, List, Mapping, Optional

CLOCK_SIM = "sim"
CLOCK_WALL = "wall"

#: Default span-buffer bound.  Roughly 2.5 spans/job on the scheduler
#: bench, so 100k holds a 20k-job replay with real headroom while
#: keeping the worst case tens of MB, not unbounded.
DEFAULT_MAX_SPANS = 100_000


@dataclass(frozen=True)
class TelemetryConfig:
    """Picklable telemetry settings carried by Session/SessionSpec."""

    correlation_id: Optional[str] = None
    max_spans: int = DEFAULT_MAX_SPANS

    def __post_init__(self) -> None:
        if self.max_spans < 1:
            raise ValueError(f"max_spans must be >= 1, got {self.max_spans}")

    def child(self, suffix: object) -> "TelemetryConfig":
        """The same config scoped one level down (``parent/suffix``)."""
        base = self.correlation_id
        cid = str(suffix) if base is None else f"{base}/{suffix}"
        return replace(self, correlation_id=cid)


class Span:
    """One named interval (or instant, when ``end`` is None)."""

    __slots__ = ("name", "start", "end", "clock", "track", "attrs")

    def __init__(
        self,
        name: str,
        start: float,
        end: Optional[float],
        clock: str = CLOCK_SIM,
        track: str = "main",
        attrs: Optional[Dict[str, object]] = None,
    ) -> None:
        self.name = name
        self.start = float(start)
        self.end = None if end is None else float(end)
        self.clock = clock
        self.track = track
        self.attrs = attrs or {}

    @property
    def duration(self) -> float:
        return 0.0 if self.end is None else self.end - self.start

    @property
    def instant(self) -> bool:
        return self.end is None

    def as_dict(self) -> Dict[str, object]:
        data: Dict[str, object] = {
            "name": self.name,
            "start": self.start,
            "end": self.end,
            "clock": self.clock,
            "track": self.track,
        }
        if self.attrs:
            data["attrs"] = dict(self.attrs)
        return data

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Span":
        return cls(
            name=str(data["name"]),
            start=float(data["start"]),  # type: ignore[arg-type]
            end=None if data.get("end") is None else float(data["end"]),  # type: ignore[arg-type]
            clock=str(data.get("clock", CLOCK_SIM)),
            track=str(data.get("track", "main")),
            attrs=dict(data.get("attrs", {})),  # type: ignore[arg-type]
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        span = f"@{self.start:g}" if self.instant else \
            f"[{self.start:g}, {self.end:g}]"
        return f"Span({self.name!r} {span} {self.clock}/{self.track})"


class Telemetry:
    """A bounded span recorder with an explicit drop counter."""

    __slots__ = ("config", "spans", "dropped")

    def __init__(self, config: Optional[TelemetryConfig] = None) -> None:
        self.config = config or TelemetryConfig()
        self.spans: List[Span] = []
        self.dropped = 0

    @property
    def correlation_id(self) -> Optional[str]:
        return self.config.correlation_id

    # -- recording -----------------------------------------------------------
    def record(
        self,
        name: str,
        start: float,
        end: Optional[float],
        clock: str = CLOCK_SIM,
        track: str = "main",
        **attrs: object,
    ) -> None:
        """Record one finished interval (both ends already known)."""
        if len(self.spans) >= self.config.max_spans:
            self.dropped += 1
            return
        self.spans.append(Span(name, start, end, clock, track, attrs or None))

    def append(self, span: Span) -> None:
        """Append a pre-built span (the scheduler hot-path entry point).

        :meth:`record` packs kwargs into an attrs dict on every call —
        fine everywhere except a per-pass call site, where the packing
        dominates the recording cost.  Hot paths build the
        :class:`Span` themselves and land here.
        """
        if len(self.spans) >= self.config.max_spans:
            self.dropped += 1
            return
        self.spans.append(span)

    def instant(
        self,
        name: str,
        at: float,
        clock: str = CLOCK_SIM,
        track: str = "main",
        **attrs: object,
    ) -> None:
        """Record a point event (rendered as a Perfetto instant)."""
        self.record(name, at, None, clock, track, **attrs)

    @contextmanager
    def wall_span(self, name: str, track: str = "wall",
                  **attrs: object) -> Iterator[None]:
        """Time a wall-clock block (serve requests, sweep workers)."""
        start = time.time()
        try:
            yield
        finally:
            self.record(name, start, time.time(), CLOCK_WALL, track, **attrs)

    # -- (de)serialization ---------------------------------------------------
    def as_dicts(self) -> List[Dict[str, object]]:
        """JSON-ready span list, each tagged with the correlation id."""
        cid = self.correlation_id
        out = []
        for span in self.spans:
            data = span.as_dict()
            if cid is not None:
                data["cid"] = cid
            out.append(data)
        return out

    def extend_from_dicts(
        self, payload: Iterable[Mapping[str, object]]
    ) -> None:
        """Fold spans shipped back from a worker into this recorder."""
        for data in payload:
            if len(self.spans) >= self.config.max_spans:
                self.dropped += 1
                continue
            span = Span.from_dict(data)
            if "cid" in data:
                span.attrs.setdefault("cid", data["cid"])
            self.spans.append(span)

    def counts_by_name(self) -> Dict[str, int]:
        out: Dict[str, int] = {}
        for span in self.spans:
            out[span.name] = out.get(span.name, 0) + 1
        return out
