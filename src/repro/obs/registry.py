"""Process-wide metrics registry with Prometheus text exposition.

The registry is the "numbers" half of :mod:`repro.obs` (spans are the
"intervals" half).  It holds named *families* of counters, gauges and
:class:`LatencyHistogram`\\ s; a family with label names fans out into
one child metric per label-value combination, exactly like a Prometheus
client.  Everything is plain Python — no dependencies — and the whole
surface is built for the repo's two consumption paths:

* ``GET /metrics`` on ``repro serve`` renders :meth:`MetricsRegistry.
  render_prometheus` (the standard ``text/plain; version=0.0.4``
  exposition, parseable back with :func:`parse_prometheus`);
* tests and benches take :meth:`MetricsRegistry.snapshot` before/after
  an operation and assert on :meth:`MetricsRegistry.diff`.

Hot paths (the scheduler inner loop) never talk to the registry per
operation; they keep their plain-int tallies (``SchedStats``,
``EventCounter``, store hit/miss counts) and *publish* them through the
``publish_*`` bridges below — either once per run or lazily from a
collector callback at scrape time.

:class:`LatencyHistogram` lives here now (it started as
``repro.metrics.histogram``, which remains as a compatibility shim):
the registry is its primary consumer and ``repro.obs`` must not import
from ``repro.metrics``.
"""

from __future__ import annotations

import threading
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

#: Default bucket geometry: 0.1 ms doubling up to ~104 s (21 finite
#: buckets + overflow), which spans everything from an in-memory status
#: lookup to a full workload simulation behind one request.
DEFAULT_FIRST_BOUND = 0.0001
DEFAULT_BUCKETS = 21
DEFAULT_GROWTH = 2.0


class LatencyHistogram:
    """Streaming histogram over non-negative durations in seconds.

    A Prometheus-style histogram with geometric bucket bounds:
    observations are O(1) to record, the memory footprint is a few
    dozen integers no matter how many requests are observed, and
    quantiles (p50/p99) are estimated by linear interpolation inside
    the bucket that crosses the requested rank, clamped to the observed
    ``[min, max]`` range so an estimate can never leave the data.  The
    estimation error is bounded by the bucket ratio (×2 by default) —
    the right trade for service telemetry, where retaining every sample
    is exactly what a server absorbing heavy traffic cannot afford.
    """

    __slots__ = ("bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self,
        first_bound: float = DEFAULT_FIRST_BOUND,
        buckets: int = DEFAULT_BUCKETS,
        growth: float = DEFAULT_GROWTH,
    ) -> None:
        if first_bound <= 0 or buckets < 1 or growth <= 1:
            raise ValueError(
                "histogram needs first_bound > 0, buckets >= 1, growth > 1"
            )
        bounds: List[float] = []
        bound = first_bound
        for _ in range(buckets):
            bounds.append(bound)
            bound *= growth
        #: Upper bounds of the finite buckets; the implicit last bucket
        #: is (bounds[-1], +inf).
        self.bounds = tuple(bounds)
        self.counts = [0] * (buckets + 1)
        self.count = 0
        self.total = 0.0
        self.min: Optional[float] = None
        self.max: Optional[float] = None

    def observe(self, seconds: float) -> None:
        """Record one duration (negative values clamp to zero)."""
        value = 0.0 if seconds < 0 else float(seconds)
        index = 0
        for index, bound in enumerate(self.bounds):
            if value <= bound:
                break
        else:
            index = len(self.bounds)  # overflow bucket
        self.counts[index] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def quantile(self, q: float) -> float:
        """Estimated q-quantile in seconds (0 for an empty histogram).

        Interpolates linearly inside the crossing bucket and clamps the
        estimate to the observed ``[min, max]`` — raw interpolation can
        otherwise report values below the smallest or above the largest
        observation (a single sample mid-bucket, a one-bucket geometry,
        q at the extremes).  The overflow bucket reports the observed
        maximum (no upper bound to interpolate toward).
        """
        if not 0 <= q <= 1:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        # count > 0 implies min/max are set.
        if q == 0:
            return self.min  # type: ignore[return-value]
        if q == 1:
            return self.max  # type: ignore[return-value]
        rank = q * self.count
        seen = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if seen + count >= rank:
                if index >= len(self.bounds):
                    return self.max  # type: ignore[return-value]
                hi = self.bounds[index]
                lo = self.bounds[index - 1] if index > 0 else 0.0
                fraction = (rank - seen) / count
                estimate = lo + (hi - lo) * fraction
                return min(max(estimate, self.min), self.max)  # type: ignore
            seen += count
        return self.max  # type: ignore[return-value]

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else 0.0

    def merge(self, other: "LatencyHistogram") -> "LatencyHistogram":
        """Fan another histogram's tallies into this one (same geometry).

        Returns ``self`` so worker tallies can be folded in a chain.
        Merging an empty histogram is a no-op; merging *into* an empty
        one copies the other side's extrema.
        """
        if not isinstance(other, LatencyHistogram):
            raise ValueError(
                f"can only merge another LatencyHistogram, got "
                f"{type(other).__name__}"
            )
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        # Read the other side first: merging a histogram into itself
        # must double every tally, not loop over a list it is mutating.
        other_counts = list(other.counts)
        other_count, other_total = other.count, other.total
        other_min, other_max = other.min, other.max
        for index, count in enumerate(other_counts):
            self.counts[index] += count
        self.count += other_count
        self.total += other_total
        if other_min is not None:
            self.min = other_min if self.min is None else min(self.min, other_min)
        if other_max is not None:
            self.max = other_max if self.max is None else max(self.max, other_max)
        return self

    def as_dict(self) -> Dict[str, object]:
        """JSON form: summary quantiles in ms + the raw bucket counts.

        The ``*_s`` fields carry the exact internal state (seconds), so
        :meth:`from_dict` round-trips losslessly; the ``*_ms`` fields
        are display conveniences kept for existing consumers.
        """
        return {
            "count": self.count,
            "sum_s": self.total,
            "min_s": self.min,
            "max_s": self.max,
            "mean_ms": 1000.0 * self.mean,
            "min_ms": 0.0 if self.min is None else 1000.0 * self.min,
            "max_ms": 0.0 if self.max is None else 1000.0 * self.max,
            "p50_ms": 1000.0 * self.quantile(0.50),
            "p99_ms": 1000.0 * self.quantile(0.99),
            "bucket_bounds_s": list(self.bounds),
            "bucket_bounds_ms": [1000.0 * b for b in self.bounds],
            "bucket_counts": list(self.counts),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "LatencyHistogram":
        """Rebuild a histogram from :meth:`as_dict` output (lossless).

        Accepts older payloads that only carried ``bucket_bounds_ms``
        (reconstructed with a /1000 scale, which may cost one ulp).
        """
        bounds = data.get("bucket_bounds_s")
        if bounds is None:
            bounds = [float(b) / 1000.0 for b in data["bucket_bounds_ms"]]
        bounds = tuple(float(b) for b in bounds)
        if not bounds or any(
            b <= 0 or (i and b <= bounds[i - 1]) for i, b in enumerate(bounds)
        ):
            raise ValueError(f"bucket bounds must be positive increasing: {bounds}")
        counts = [int(c) for c in data["bucket_counts"]]
        if len(counts) != len(bounds) + 1:
            raise ValueError(
                f"expected {len(bounds) + 1} bucket counts, got {len(counts)}"
            )
        count = int(data["count"])
        if count != sum(counts) or any(c < 0 for c in counts):
            raise ValueError("bucket counts do not sum to 'count'")
        hist = cls.__new__(cls)
        hist.bounds = bounds
        hist.counts = counts
        hist.count = count
        hist.total = float(data["sum_s"])
        min_s = data.get("min_s", data.get("min_ms"))
        max_s = data.get("max_s", data.get("max_ms"))
        if "min_s" not in data and min_s is not None:
            min_s, max_s = float(min_s) / 1000.0, float(max_s) / 1000.0
        if count == 0:
            min_s = max_s = None
        hist.min = None if min_s is None else float(min_s)
        hist.max = None if max_s is None else float(max_s)
        return hist


def observe_all(histogram: LatencyHistogram, values: Sequence[float]) -> None:
    """Record a batch of durations (loadgen convenience)."""
    for value in values:
        histogram.observe(value)


# -- scalar metrics -----------------------------------------------------------

class Counter:
    """A monotonically increasing tally.

    :meth:`set` exists for the publish/collector path, where a plain-int
    hot-path tally is mirrored into the registry wholesale at scrape
    time; interactive code should only :meth:`inc`.
    """

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount

    def set(self, value: float) -> None:
        self.value = float(value)


class Gauge:
    """A value that can go both ways (queue depth, uptime, RSS)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class MetricFamily:
    """One named metric with zero or more label dimensions.

    ``family.labels(route="GET /health")`` returns (creating on first
    use) the child metric for that label combination; the convenience
    mutators (``inc``/``set``/``observe``) route through ``labels``
    so unlabeled families read naturally: ``family.inc()``.
    """

    __slots__ = ("name", "kind", "help", "label_names", "_children",
                 "_factory", "_lock")

    def __init__(self, name: str, kind: str, help_text: str,
                 label_names: Tuple[str, ...], factory: Callable) -> None:
        self.name = name
        self.kind = kind
        self.help = help_text
        self.label_names = label_names
        self._children: Dict[Tuple[str, ...], object] = {}
        self._factory = factory
        self._lock = threading.Lock()

    def labels(self, **labels: object):
        if tuple(sorted(labels)) != tuple(sorted(self.label_names)):
            raise ValueError(
                f"metric {self.name!r} takes labels {sorted(self.label_names)}, "
                f"got {sorted(labels)}"
            )
        key = tuple(str(labels[name]) for name in self.label_names)
        child = self._children.get(key)
        if child is None:
            with self._lock:
                child = self._children.setdefault(key, self._factory())
        return child

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        self.labels(**labels).inc(amount)

    def set(self, value: float, **labels: object) -> None:
        self.labels(**labels).set(value)

    def observe(self, seconds: float, **labels: object) -> None:
        self.labels(**labels).observe(seconds)

    def samples(self) -> Iterator[Tuple[Tuple[str, ...], object]]:
        """(label values, child) pairs in sorted label order."""
        return iter(sorted(self._children.items()))


# -- the registry -------------------------------------------------------------

class MetricsRegistry:
    """A named collection of metric families plus scrape-time collectors.

    Families are get-or-create: asking twice for the same name returns
    the same family (and raises if the kind or label names disagree),
    so independent modules can share a metric without coordination.
    Collectors are callables invoked with the registry right before a
    snapshot or render — the bridge for values that live elsewhere
    (store hit counts, queue depths) and are only mirrored on demand.
    """

    def __init__(self) -> None:
        self._families: Dict[str, MetricFamily] = {}
        self._collectors: List[Callable[["MetricsRegistry"], None]] = []
        self._lock = threading.Lock()

    # -- family construction -------------------------------------------------
    def _family(self, name: str, kind: str, help_text: str,
                labels: Sequence[str], factory: Callable) -> MetricFamily:
        labels = tuple(labels)
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, kind, help_text, labels, factory)
                self._families[name] = family
                return family
        if family.kind != kind or family.label_names != labels:
            raise ValueError(
                f"metric {name!r} already registered as {family.kind} with "
                f"labels {list(family.label_names)}; cannot re-register as "
                f"{kind} with labels {list(labels)}"
            )
        return family

    def counter(self, name: str, help: str = "",
                labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "counter", help, labels, Counter)

    def gauge(self, name: str, help: str = "",
              labels: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, "gauge", help, labels, Gauge)

    def histogram(
        self,
        name: str,
        help: str = "",
        labels: Sequence[str] = (),
        first_bound: float = DEFAULT_FIRST_BOUND,
        buckets: int = DEFAULT_BUCKETS,
        growth: float = DEFAULT_GROWTH,
    ) -> MetricFamily:
        def factory() -> LatencyHistogram:
            return LatencyHistogram(first_bound, buckets, growth)

        return self._family(name, "histogram", help, labels, factory)

    def families(self) -> List[MetricFamily]:
        with self._lock:
            return [self._families[name] for name in sorted(self._families)]

    # -- collectors ----------------------------------------------------------
    def register_collector(
        self, collector: Callable[["MetricsRegistry"], None]
    ) -> None:
        with self._lock:
            self._collectors.append(collector)

    def collect(self) -> None:
        """Run every collector (a failing collector is counted, not fatal)."""
        with self._lock:
            collectors = list(self._collectors)
        errors = self.counter(
            "repro_collector_errors_total",
            "Scrape-time collector callbacks that raised.",
        )
        for collector in collectors:
            try:
                collector(self)
            except Exception:  # noqa: BLE001 - a scrape must never 500
                errors.inc()

    # -- snapshot / diff -----------------------------------------------------
    def snapshot(self) -> Dict[str, float]:
        """Flat ``name{labels}`` → value map (after running collectors).

        Histograms contribute their ``_count`` and ``_sum`` series —
        the scalar views a diff can subtract meaningfully.
        """
        self.collect()
        flat: Dict[str, float] = {}
        for family in self.families():
            for values, child in family.samples():
                key = _sample_name(family.name, family.label_names, values)
                if family.kind == "histogram":
                    flat[_suffix(key, "_count")] = float(child.count)
                    flat[_suffix(key, "_sum")] = float(child.total)
                else:
                    flat[key] = float(child.value)
        return flat

    @staticmethod
    def diff(before: Mapping[str, float],
             after: Mapping[str, float]) -> Dict[str, float]:
        """Non-zero deltas between two :meth:`snapshot` maps."""
        out: Dict[str, float] = {}
        for key, value in after.items():
            delta = value - before.get(key, 0.0)
            if delta:
                out[key] = delta
        return out

    # -- Prometheus text exposition ------------------------------------------
    def render_prometheus(self) -> str:
        """The standard ``text/plain; version=0.0.4`` exposition.

        Families with no children still emit their ``# HELP``/``# TYPE``
        header, so a scraper can assert a metric *exists* (e.g. the
        observer-error counter) before anything has incremented it.
        """
        self.collect()
        lines: List[str] = []
        for family in self.families():
            if family.help:
                lines.append(f"# HELP {family.name} {_escape_help(family.help)}")
            lines.append(f"# TYPE {family.name} {family.kind}")
            for values, child in family.samples():
                pairs = list(zip(family.label_names, values))
                if family.kind == "histogram":
                    cumulative = 0
                    for bound, count in zip(child.bounds, child.counts):
                        cumulative += count
                        lines.append(_sample_line(
                            family.name + "_bucket",
                            pairs + [("le", _format_value(bound))],
                            cumulative,
                        ))
                    lines.append(_sample_line(
                        family.name + "_bucket", pairs + [("le", "+Inf")],
                        child.count,
                    ))
                    lines.append(_sample_line(
                        family.name + "_sum", pairs, child.total))
                    lines.append(_sample_line(
                        family.name + "_count", pairs, child.count))
                else:
                    lines.append(_sample_line(family.name, pairs, child.value))
        return "\n".join(lines) + "\n"


def _suffix(sample_name: str, suffix: str) -> str:
    if "{" in sample_name:
        base, rest = sample_name.split("{", 1)
        return f"{base}{suffix}{{{rest}"
    return sample_name + suffix


def _sample_name(name: str, label_names: Sequence[str],
                 values: Sequence[str]) -> str:
    if not label_names:
        return name
    inner = ",".join(
        f'{label}="{_escape_label(value)}"'
        for label, value in zip(label_names, values)
    )
    return f"{name}{{{inner}}}"


def _sample_line(name: str, pairs: Sequence[Tuple[str, str]],
                 value: float) -> str:
    if pairs:
        inner = ",".join(
            f'{label}="{_escape_label(text)}"' for label, text in pairs
        )
        name = f"{name}{{{inner}}}"
    return f"{name} {_format_value(value)}"


def _format_value(value: float) -> str:
    as_float = float(value)
    if as_float.is_integer() and abs(as_float) < 1e15:
        return str(int(as_float))
    return repr(as_float)


def _escape_label(value: str) -> str:
    return (str(value).replace("\\", r"\\").replace('"', r"\"")
            .replace("\n", r"\n"))


def _escape_help(text: str) -> str:
    return text.replace("\\", r"\\").replace("\n", r"\n")


# -- a tiny exposition parser (CI smoke + tests; no new deps) ----------------

def parse_prometheus(text: str) -> Tuple[Dict[str, float], Dict[str, str]]:
    """Parse a text exposition into ``(samples, types)``.

    ``samples`` maps ``name{labels}`` (exactly as rendered) to the
    float value; ``types`` maps family name to its ``# TYPE``.  Raises
    :class:`ValueError` on any malformed non-comment line, which is the
    point: the CI smoke asserts the server's exposition *parses*.
    """
    samples: Dict[str, float] = {}
    types: Dict[str, str] = {}
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.strip()
        if not line:
            continue
        if line.startswith("#"):
            parts = line.split(None, 3)
            if len(parts) >= 4 and parts[1] == "TYPE":
                types[parts[2]] = parts[3]
            continue
        name, space, value_text = line.rpartition(" ")
        if not space or not name:
            raise ValueError(f"line {lineno}: no value in {raw!r}")
        if name.count("{") != name.count("}") or (
            "{" in name and not name.endswith("}")
        ):
            raise ValueError(f"line {lineno}: malformed labels in {raw!r}")
        bare = name.split("{", 1)[0]
        if not bare or not all(
            c.isalnum() or c in "_:" for c in bare
        ) or bare[0].isdigit():
            raise ValueError(f"line {lineno}: bad metric name in {raw!r}")
        try:
            value = float(value_text)
        except ValueError as exc:
            raise ValueError(
                f"line {lineno}: bad value {value_text!r}"
            ) from exc
        samples[name] = value
    return samples, types


# -- the process default registry --------------------------------------------

_DEFAULT = MetricsRegistry()


def default_registry() -> MetricsRegistry:
    """The process-wide registry (serve renders it next to its own)."""
    return _DEFAULT


# -- publish bridges ----------------------------------------------------------
#
# Hot-path tallies stay plain ints; these helpers mirror a finished
# run's snapshot into a registry as labeled counter increments, so
# repeated runs in one process accumulate operator-visible totals.

def publish_sched_stats(registry: MetricsRegistry,
                        snapshot: Mapping[str, float]) -> None:
    """Fold one run's ``SchedStats.snapshot()`` into the registry."""
    ops = registry.counter(
        "repro_sched_ops_total",
        "Scheduler hot-path operation tallies, accumulated per run.",
        labels=("op",),
    )
    for op in ("fifo_passes", "backfill_passes", "key_evals",
               "running_end_evals", "heap_pushes", "heap_pops",
               "queue_rebuilds", "jobs_examined", "jobs_started"):
        value = snapshot.get(op)
        if value:
            ops.inc(value, op=op)


def publish_event_counts(registry: MetricsRegistry,
                         counts: Mapping[str, int]) -> None:
    """Fold an ``EventCounter.as_dict()`` into the registry."""
    events = registry.counter(
        "repro_session_events_total",
        "Simulation trace events observed by sessions, by hook.",
        labels=("hook",),
    )
    for hook, value in counts.items():
        if value:
            events.inc(value, hook=hook)


def publish_store_stats(registry: MetricsRegistry,
                        before: Mapping[str, int],
                        after: Mapping[str, int]) -> None:
    """Fold a store's hit/miss/put delta (two ``store.stats()`` calls)."""
    lookups = registry.counter(
        "repro_store_lookups_total",
        "Result-store lookups by outcome.",
        labels=("result",),
    )
    puts = registry.counter(
        "repro_store_puts_total", "Result-store records written.",
    )
    for key, label in (("hits", "hit"), ("misses", "miss")):
        delta = after.get(key, 0) - before.get(key, 0)
        if delta > 0:
            lookups.inc(delta, result=label)
    delta = after.get("puts", 0) - before.get("puts", 0)
    if delta > 0:
        puts.inc(delta)
