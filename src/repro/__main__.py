"""``python -m repro`` — regenerate the paper's tables and figures."""

from repro.cli import main

raise SystemExit(main())
