"""``repro bench`` — the canonical benchmarks.

Two verbs share this module:

* ``repro bench`` — multi-seed ensemble of the paper's headline
  artifacts (Fig. 1, Fig. 3, Table II) through the sweep engine,
  emitting ``BENCH_sweep.json``: per-artifact wall-clock statistics plus
  per-metric simulated-result statistics with 95% confidence bands.
* ``repro bench sched`` — the scheduler-scale benchmark: replays large
  synthetic Feitelson traces (and their SWF round trip) through a bare
  :class:`~repro.slurm.controller.SlurmController` in both scheduler
  modes and emits ``BENCH_sched.json`` with pass counts, wall-clock and
  the comparison-work ratio of the incremental hot path over the legacy
  resort-per-pass one.

``--quick`` shrinks either bench for CI smoke runs.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

from repro.metrics.summary import metric_stats
from repro.sweep.runner import SweepObserver, SweepRunner
from repro.sweep.spec import DEFAULT_BASE_SEED, Sweep

#: The headline artifacts the bench ensembles (all CSV-capable).
BENCH_ARTIFACTS = ("fig1", "fig3", "table2")

#: Default output file (the repo's bench trajectory is BENCH_*.json).
BENCH_PATH = "BENCH_sweep.json"

#: Ensemble widths: full runs 5 seeds, quick (CI smoke) runs 2.
BENCH_SEEDS = 5
QUICK_SEEDS = 2

#: Scheduler-scale bench outputs and trace sizes.
SCHED_BENCH_PATH = "BENCH_sched.json"
SCHED_SIZES = (5000, 20000, 50000)
SCHED_QUICK_SIZES = (2000,)
#: Legacy (O(n^2)) replays are capped by default: at 50k jobs the
#: resort-per-pass scheduler is exactly what this bench exists to retire.
SCHED_LEGACY_CAP = 20000
#: Replays at or above this many jobs run *lean*: a non-retaining trace
#: and ``retain_finished=False``, so memory tracks the live jobs instead
#: of the whole history (what makes the million-job row feasible).
SCHED_LEAN_MIN = 200_000

#: Payload keys that legitimately differ between two runs of the same
#: bench on the same code: timestamps, wall-clock and anything derived
#: from it, and memory high-water marks.  ``--check``-style comparisons
#: must ignore exactly these — comparing ``generated_unix`` (or any
#: wall-derived ratio) makes every check fail by construction.
VOLATILE_BENCH_KEYS = frozenset({
    "generated_unix",
    "total_wall_s",
    "wall_s",
    "wall_us_per_pass",
    "events_per_sec",
    "peak_rss_mb",
    "wall_ratio",
    "wall_per_pass_ratio",
})


def run_bench(
    seeds: Optional[int] = None,
    jobs: int = 1,
    quick: bool = False,
    base_seed: int = DEFAULT_BASE_SEED,
    artifacts: Sequence[str] = BENCH_ARTIFACTS,
    store=None,
    observers: Sequence[SweepObserver] = (),
) -> Dict[str, object]:
    """Run the bench ensembles; returns the ``BENCH_sweep.json`` payload."""
    if seeds is None:
        seeds = QUICK_SEEDS if quick else BENCH_SEEDS
    runner = SweepRunner(jobs=jobs, store=store, observers=observers)
    per_artifact: Dict[str, object] = {}
    t_total = time.perf_counter()
    for name in artifacts:
        sweep = Sweep.over(seeds=seeds, base_seed=base_seed, artifacts=[name])
        t0 = time.perf_counter()
        result = runner.run(sweep)
        ensemble_wall = time.perf_counter() - t0
        per_artifact[name] = {
            "cells": len(result),
            "cached_cells": result.cached_cells,
            "ensemble_wall_s": ensemble_wall,
            "cell_wall": metric_stats(
                [c.wall_time for c in result.cells]
            ).as_dict(),
            "events": result.total_events(),
            "metrics": result.aggregate().as_dict(),
        }
    return {
        "bench": "sweep",
        "version": _version(),
        "quick": quick,
        "seeds": list(range(base_seed, base_seed + seeds)),
        "jobs": jobs,
        "generated_unix": time.time(),
        "artifacts": per_artifact,
        "total_wall_s": time.perf_counter() - t_total,
    }


def write_bench(data: Dict[str, object], path: str = BENCH_PATH) -> str:
    """Serialize a bench payload to disk; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


# -- the scheduler-scale bench (repro bench sched) ----------------------------

def replay_sched_trace(
    trace,
    num_nodes: Optional[int] = None,
    incremental: bool = True,
    backfill_interval: float = 30.0,
    lean: bool = False,
    telemetry=None,
) -> Dict[str, object]:
    """Replay a scheduler trace through a bare controller; return stats.

    Jobs are rigid and carry no application payload: a started job simply
    occupies its nodes for its trace runtime, so the measurement isolates
    the scheduler hot path (queue maintenance, FIFO passes, EASY
    backfill) from the runtime/DMR machinery.

    ``lean=True`` replays with a non-retaining trace and without the
    finished-job archive (:attr:`SlurmConfig.retain_finished` off), so a
    million-job replay holds only the live jobs in memory.  Scheduling
    decisions — and therefore every deterministic stat — are identical
    in both modes.

    ``telemetry`` (a :class:`~repro.obs.spans.Telemetry`) attaches span
    recording to the replayed controller; the perf budget tests pin its
    overhead on this exact function.
    """
    from repro.cluster.machine import Machine
    from repro.metrics.trace import Trace
    from repro.sim.engine import Environment
    from repro.slurm.controller import SlurmConfig, SlurmController
    from repro.slurm.job import Job

    if num_nodes is None:
        num_nodes = autosize_cluster(trace)
    env = Environment()
    machine = Machine(num_nodes)
    controller = SlurmController(
        env,
        machine,
        SlurmConfig(
            incremental_queue=incremental,
            backfill_interval=backfill_interval,
            retain_finished=not lean,
        ),
        trace=Trace(retain=not lean),
    )
    if telemetry is not None:
        controller.telemetry = telemetry
    runtimes: Dict[int, float] = {}

    def execute(job):
        yield env.timeout(runtimes[job.job_id])
        controller.finish_job(job)

    controller.launcher = lambda job: env.process(
        execute(job), name=f"run-{job.job_id}"
    )

    def submitter():
        for tj in sorted(trace, key=lambda t: t.arrival):
            if tj.arrival > env.now:
                yield env.timeout(tj.arrival - env.now)
            job = Job(name=tj.name, num_nodes=tj.nodes, time_limit=tj.limit)
            controller.submit(job)
            runtimes[job.job_id] = tj.runtime

    env.process(submitter(), name="sched-bench-arrivals")
    t0 = time.perf_counter()
    env.run()
    wall = time.perf_counter() - t0
    if not controller.all_done():
        from repro.errors import SweepError

        raise SweepError(
            f"sched bench trace did not drain: {len(controller.pending)} "
            f"pending, {len(controller.running)} running on {num_nodes} nodes"
        )
    stats = controller.stats.snapshot()
    if telemetry is not None:
        stats["spans_recorded"] = len(telemetry.spans)
        stats["spans_dropped"] = telemetry.dropped
    return {
        "mode": "incremental" if incremental else "legacy",
        "jobs": len(trace),
        "nodes": num_nodes,
        "lean": lean,
        "wall_s": wall,
        "makespan_s": env.now,
        "sim_events": env.events_processed,
        "events_per_sec": env.events_processed / wall if wall else 0.0,
        "peak_rss_mb": peak_rss_mb(),
        "wall_us_per_pass": (
            1e6 * wall / stats["passes"] if stats["passes"] else 0.0
        ),
        **stats,
    }


def peak_rss_mb() -> float:
    """Process peak RSS in MiB (the kernel's high-water mark).

    Monotone over the process lifetime: a bench row's value is the
    high-water mark *as of the end of that replay*, so only the largest
    (last) replay's number bounds the bench itself.
    """
    import resource
    import sys

    rss = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    # ru_maxrss is KiB on Linux, bytes on macOS.
    divisor = 1024.0 if sys.platform != "darwin" else 1024.0 * 1024.0
    return rss / divisor


def autosize_cluster(trace, target_utilization: float = 0.9) -> int:
    """Cluster size giving the trace sustained queue pressure.

    Sized so the offered load (node-seconds per second of arrivals) fills
    ``target_utilization`` of the machine: large enough that the trace
    drains, small enough that a real pending queue builds up and the
    scheduler actually has work to do.
    """
    span = max(t.arrival for t in trace) or 1.0
    work = sum(t.nodes * t.runtime for t in trace)
    widest = max(t.nodes for t in trace)
    return max(widest, int(work / span / target_utilization))


def run_sched_bench(
    sizes: Optional[Sequence[int]] = None,
    quick: bool = False,
    seed: int = DEFAULT_BASE_SEED,
    legacy: bool = True,
    legacy_cap: int = SCHED_LEGACY_CAP,
    progress=None,
    profile_path: Optional[str] = None,
    trace_path: Optional[str] = None,
) -> Dict[str, object]:
    """Run the scheduler-scale bench; returns the BENCH_sched.json payload.

    For every trace size: replay with the incremental scheduler, replay
    with the legacy resort-per-pass scheduler (up to ``legacy_cap``
    jobs), and record the comparison-work and wall-clock ratios.  The
    smallest size is additionally replayed from an SWF round trip of the
    trace, covering the real-log import path.  Sizes at or above
    ``SCHED_LEAN_MIN`` replay lean (flat memory, see
    :func:`replay_sched_trace`).

    ``profile_path`` wraps the *largest* size's incremental replay in
    cProfile and dumps pstats data there (the CI flamegraph artifact);
    ``trace_path`` records that same replay's spans and exports them as
    a Perfetto-loadable Chrome trace-event file.
    """
    from repro.workload.generator import sched_trace, sched_trace_via_swf

    if sizes is None:
        sizes = SCHED_QUICK_SIZES if quick else SCHED_SIZES
    say = progress if progress is not None else (lambda message: None)
    t_total = time.perf_counter()
    traces: Dict[str, object] = {}
    generated = {}
    for size in sizes:
        if size not in generated:
            say(f"generating {size}-job Feitelson trace")
            generated[size] = sched_trace(size, seed=seed)
        trace = generated[size]
        lean = size >= SCHED_LEAN_MIN
        say(
            f"replaying {size}-job trace (incremental scheduler"
            + (", lean)" if lean else ")")
        )
        telemetry = None
        if trace_path is not None and size == max(sizes):
            from repro.obs.spans import Telemetry, TelemetryConfig

            telemetry = Telemetry(
                TelemetryConfig(correlation_id=f"bench-sched-{size}")
            )
        if profile_path is not None and size == max(sizes):
            import cProfile

            profiler = cProfile.Profile()
            profiler.enable()
            incremental = replay_sched_trace(
                trace, incremental=True, lean=lean, telemetry=telemetry
            )
            profiler.disable()
            profiler.dump_stats(profile_path)
            say(f"profile of the {size}-job replay written to {profile_path}")
        else:
            incremental = replay_sched_trace(
                trace, incremental=True, lean=lean, telemetry=telemetry
            )
        if telemetry is not None:
            from repro.obs.perfetto import export_perfetto

            exported = export_perfetto(
                trace_path,
                spans=telemetry.spans,
                correlation_id=telemetry.correlation_id,
                dropped=telemetry.dropped,
            )
            say(
                f"perfetto trace of the {size}-job replay "
                f"({exported['events']} events) written to {trace_path}"
            )
        entry: Dict[str, object] = {"incremental": incremental}
        if legacy and size <= legacy_cap:
            say(f"replaying {size}-job trace (legacy scheduler)")
            entry["legacy"] = replay_sched_trace(trace, incremental=False)
            entry["speedup"] = speedup_of(entry["legacy"], entry["incremental"])
        traces[str(size)] = entry

    swf_size = min(sizes)
    say(f"replaying {swf_size}-job SWF round-trip trace")
    swf_trace = sched_trace_via_swf(generated[swf_size])
    swf_entry: Dict[str, object] = {
        "incremental": replay_sched_trace(swf_trace, incremental=True)
    }
    if legacy and swf_size <= legacy_cap:
        swf_entry["legacy"] = replay_sched_trace(swf_trace, incremental=False)
        swf_entry["speedup"] = speedup_of(
            swf_entry["legacy"], swf_entry["incremental"]
        )
    return {
        "bench": "sched",
        "version": _version(),
        "quick": quick,
        "seed": seed,
        "sizes": list(sizes),
        "generated_unix": time.time(),
        "traces": traces,
        "swf_roundtrip": {str(swf_size): swf_entry},
        "total_wall_s": time.perf_counter() - t_total,
    }


def speedup_of(
    legacy: Dict[str, object], incremental: Dict[str, object]
) -> Dict[str, float]:
    """Legacy-over-incremental ratios (higher = bigger win)."""

    def ratio(key: str) -> float:
        denominator = float(incremental[key]) or 1.0
        return float(legacy[key]) / denominator

    return {
        "comparisons_ratio": ratio("comparisons"),
        "key_evals_ratio": ratio("key_evals"),
        "wall_ratio": ratio("wall_s"),
        "wall_per_pass_ratio": ratio("wall_us_per_pass"),
    }


def bench_drift(
    committed: Dict[str, object],
    fresh: Dict[str, object],
    _path: str = "",
) -> "list[str]":
    """Deterministic-metric differences between two sched-bench payloads.

    Compares only the keys present in *both* payloads and skips
    ``VOLATILE_BENCH_KEYS`` (timestamps, wall-clock, RSS) entirely — a
    check that diffs ``generated_unix`` fails on every run by
    construction, which is exactly the bug this helper exists to fix.
    Returns human-readable ``path: committed != fresh`` lines (empty
    means no drift).
    """
    drifts: list = []
    shared = (committed.keys() & fresh.keys()) - VOLATILE_BENCH_KEYS
    for key in sorted(shared):
        where = f"{_path}.{key}" if _path else str(key)
        old, new = committed[key], fresh[key]
        if isinstance(old, dict) and isinstance(new, dict):
            drifts.extend(bench_drift(old, new, where))
        elif old != new:
            drifts.append(f"{where}: committed {old!r} != fresh {new!r}")
    return drifts


def check_sched_bench(
    path: str = SCHED_BENCH_PATH,
    size: Optional[int] = None,
    progress=None,
) -> "list[str]":
    """Re-run one committed bench size and report deterministic drift.

    Loads the committed payload at ``path``, replays its smallest trace
    size (or ``size``) with the committed seed, and compares the
    deterministic scheduler metrics via :func:`bench_drift`.  Returns
    the drift lines; an empty list means the committed numbers still
    describe the current scheduler.
    """
    from repro.errors import SweepError

    try:
        with open(path, encoding="utf-8") as fh:
            committed = json.load(fh)
    except (OSError, ValueError) as exc:
        raise SweepError(f"cannot read committed bench {path}: {exc}") from exc
    committed_sizes = sorted(int(s) for s in committed.get("traces", {}))
    if not committed_sizes:
        raise SweepError(f"{path} has no trace entries to check against")
    if size is None:
        size = committed_sizes[0]
    elif size not in committed_sizes:
        raise SweepError(
            f"size {size} not in committed bench (has {committed_sizes})"
        )
    entry = committed["traces"][str(size)]
    fresh = run_sched_bench(
        sizes=[size],
        seed=int(committed.get("seed", DEFAULT_BASE_SEED)),
        legacy="legacy" in entry,
        progress=progress,
    )
    drifts = bench_drift(entry, fresh["traces"][str(size)], f"traces.{size}")
    swf = committed.get("swf_roundtrip", {}).get(str(size))
    if swf is not None:
        drifts.extend(
            bench_drift(
                swf,
                fresh["swf_roundtrip"][str(size)],
                f"swf_roundtrip.{size}",
            )
        )
    return drifts


def _version() -> str:
    from repro import __version__

    return __version__
