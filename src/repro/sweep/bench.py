"""``repro bench`` — the canonical seed-ensemble benchmark.

Runs a multi-seed ensemble of the paper's headline artifacts (Fig. 1,
Fig. 3, Table II) through the sweep engine and emits
``BENCH_sweep.json``: per-artifact wall-clock statistics (how fast the
reproduction runs) plus per-metric simulated-result statistics with
95% confidence bands (how stable the reproduction's claims are across
seeds).  ``--quick`` shrinks the ensemble for CI smoke runs.
"""

from __future__ import annotations

import json
import time
from typing import Dict, Optional, Sequence

from repro.metrics.summary import metric_stats
from repro.sweep.runner import SweepObserver, SweepRunner
from repro.sweep.spec import DEFAULT_BASE_SEED, Sweep

#: The headline artifacts the bench ensembles (all CSV-capable).
BENCH_ARTIFACTS = ("fig1", "fig3", "table2")

#: Default output file (the repo's bench trajectory is BENCH_*.json).
BENCH_PATH = "BENCH_sweep.json"

#: Ensemble widths: full runs 5 seeds, quick (CI smoke) runs 2.
BENCH_SEEDS = 5
QUICK_SEEDS = 2


def run_bench(
    seeds: Optional[int] = None,
    jobs: int = 1,
    quick: bool = False,
    base_seed: int = DEFAULT_BASE_SEED,
    artifacts: Sequence[str] = BENCH_ARTIFACTS,
    store=None,
    observers: Sequence[SweepObserver] = (),
) -> Dict[str, object]:
    """Run the bench ensembles; returns the ``BENCH_sweep.json`` payload."""
    if seeds is None:
        seeds = QUICK_SEEDS if quick else BENCH_SEEDS
    runner = SweepRunner(jobs=jobs, store=store, observers=observers)
    per_artifact: Dict[str, object] = {}
    t_total = time.perf_counter()
    for name in artifacts:
        sweep = Sweep.over(seeds=seeds, base_seed=base_seed, artifacts=[name])
        t0 = time.perf_counter()
        result = runner.run(sweep)
        ensemble_wall = time.perf_counter() - t0
        per_artifact[name] = {
            "cells": len(result),
            "cached_cells": result.cached_cells,
            "ensemble_wall_s": ensemble_wall,
            "cell_wall": metric_stats(
                [c.wall_time for c in result.cells]
            ).as_dict(),
            "events": result.total_events(),
            "metrics": result.aggregate().as_dict(),
        }
    return {
        "bench": "sweep",
        "version": _version(),
        "quick": quick,
        "seeds": list(range(base_seed, base_seed + seeds)),
        "jobs": jobs,
        "generated_unix": time.time(),
        "artifacts": per_artifact,
        "total_wall_s": time.perf_counter() - t_total,
    }


def write_bench(data: Dict[str, object], path: str = BENCH_PATH) -> str:
    """Serialize a bench payload to disk; returns the path written."""
    with open(path, "w", encoding="utf-8") as fh:
        json.dump(data, fh, indent=2, sort_keys=True)
        fh.write("\n")
    return path


def _version() -> str:
    from repro import __version__

    return __version__
