"""``repro.sweep`` — the parallel parameter-sweep engine.

Declares grids (:class:`Sweep` / :class:`RunSpec`), executes the cells
on a process pool (:class:`SweepRunner`), aggregates seed ensembles
into mean/median/stdev/95%-CI statistics (:class:`SweepResult` /
:class:`Aggregate`), and powers the ``repro sweep`` and ``repro bench``
CLI verbs.
"""

from repro.sweep.aggregate import Aggregate, AggregateRow, SweepResult
from repro.sweep.bench import (
    bench_drift,
    check_sched_bench,
    replay_sched_trace,
    run_bench,
    run_sched_bench,
    write_bench,
)
from repro.sweep.runner import (
    CellOutcome,
    SweepObserver,
    SweepRunner,
    execute_cell,
    metrics_from_csv,
)
from repro.sweep.spec import POLICY_PRESETS, RunSpec, Sweep

__all__ = [
    "Aggregate",
    "AggregateRow",
    "CellOutcome",
    "POLICY_PRESETS",
    "RunSpec",
    "Sweep",
    "SweepObserver",
    "SweepResult",
    "SweepRunner",
    "bench_drift",
    "check_sched_bench",
    "execute_cell",
    "metrics_from_csv",
    "replay_sched_trace",
    "run_bench",
    "run_sched_bench",
    "write_bench",
]
