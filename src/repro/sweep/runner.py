"""Sweep execution: serial or on a ``ProcessPoolExecutor`` worker pool.

The execution contract:

* :func:`execute_cell` is a module-level, picklable function — the only
  thing shipped to workers is a :class:`~repro.sweep.spec.RunSpec`, and
  the only thing shipped back is a small JSON-able payload (metrics,
  compute wall time, and the fanned-in
  :class:`~repro.api.observers.EventCounter` tallies).  Heavy result
  objects (jobs, traces) never cross the process boundary.
* Workers are fresh processes, so the artifact registry's in-memory
  per-``(name, seed)`` cache is empty by construction — a cell can never
  observe another cell's results (see
  :class:`~repro.api.registry.ArtifactRegistry`).
* Errors raised in a worker surface in the parent as the *real*
  exception: :class:`~repro.errors.SimulationTimeout` (and every other
  ``ReproError``) survives the pickle round trip with its payload.
* Results are assembled in *grid order*, never completion order, so a
  sweep's output is byte-identical for any ``jobs`` setting.

Per-cell progress streams through :class:`SweepObserver` hooks in the
parent; inside each cell the existing ``SessionObserver`` machinery
observes the simulation (an :class:`EventCounter` always rides along,
and in serial mode callers may attach their own live observers).
"""

from __future__ import annotations

import time
from concurrent.futures import FIRST_EXCEPTION, ProcessPoolExecutor, wait
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import SweepError
from repro.obs.registry import default_registry, publish_store_stats
from repro.obs.spans import CLOCK_WALL, Telemetry, TelemetryConfig
from repro.sweep.aggregate import SweepResult
from repro.sweep.spec import POLICY_PRESETS, RunSpec, Sweep


@dataclass(frozen=True)
class CellOutcome:
    """One executed (or cache-served) cell."""

    spec: RunSpec
    metrics: Dict[str, float]
    #: Seconds of compute the cell cost *when it was computed* (a cached
    #: cell reports the original compute time, not the lookup time).
    wall_time: float
    cached: bool
    #: Fanned-in EventCounter tallies (empty for analytic artifacts).
    events: Dict[str, int]
    #: Span dicts shipped back from the worker when the runner had
    #: telemetry enabled.  Cache-served payloads written before spans
    #: existed (or by a telemetry-free run) simply have none.
    spans: Tuple[Dict[str, object], ...] = ()


class SweepObserver:
    """Parent-side progress hooks; every method defaults to a no-op."""

    def on_cell_start(self, index: int, total: int, spec: RunSpec) -> None:
        """A cell is about to execute (cache misses only)."""

    def on_cell_done(self, index: int, total: int, outcome: CellOutcome) -> None:
        """A cell's outcome is available (computed or cache-served)."""


def metrics_from_csv(csv_text: str) -> Dict[str, float]:
    """Flatten an artifact's CSV table into named scalar metrics.

    The first column — plus any column containing a non-numeric cell —
    is treated as a row axis; if that does not identify rows uniquely,
    further leading columns are promoted until it does (Fig. 1 needs
    both ``initial_procs`` and ``target_procs``).  Every remaining cell
    becomes one metric keyed ``column[axis=value;...]``, e.g.
    ``flexible_s[jobs=25]`` for Fig. 3 or
    ``makespan_s[num_jobs=50;rendition=fixed]`` for Table II (``;``
    keeps metric names comma-free, so aggregate CSV needs no quoting).
    """
    lines = [ln for ln in csv_text.strip().splitlines() if ln]
    if len(lines) < 2:
        raise SweepError("CSV has no data rows to extract metrics from")
    header = lines[0].split(",")
    rows = [ln.split(",") for ln in lines[1:]]
    if any(len(r) != len(header) for r in rows):
        raise SweepError("ragged CSV; cannot extract metrics")

    def numeric(cell: str) -> Optional[float]:
        try:
            return float(cell)
        except ValueError:
            return None

    axis_cols = {0}
    for i in range(len(header)):
        if any(numeric(r[i]) is None for r in rows):
            axis_cols.add(i)

    def labels() -> List[str]:
        return [
            ";".join(f"{header[i]}={row[i]}" for i in sorted(axis_cols))
            for row in rows
        ]

    # Promote further columns into the axis until every row is unique.
    for i in range(len(header)):
        if len(set(labels())) == len(rows):
            break
        axis_cols.add(i)

    metric_cols = [i for i in range(len(header)) if i not in axis_cols]
    if not metric_cols:
        raise SweepError("CSV has no numeric metric columns")

    metrics: Dict[str, float] = {}
    for row, label in zip(rows, labels()):
        for i in metric_cols:
            metrics[f"{header[i]}[{label}]"] = float(row[i])
    return metrics


def _execute_artifact_cell(spec: RunSpec) -> Dict[str, float]:
    from repro.api.registry import builtin_registry

    registry = builtin_registry()
    art = registry.get(spec.artifact)
    if not art.supports_csv:
        sweepable = [n for n in registry.names()
                     if registry.get(n).supports_csv]
        raise SweepError(
            f"artifact {spec.artifact!r} has no CSV metric form; "
            f"sweepable artifacts: {', '.join(sweepable)}"
        )
    return metrics_from_csv(registry.render_csv(spec.artifact, seed=spec.seed))


def session_spec_for(spec: RunSpec):
    """Resolve a workload cell's axes into a picklable ``SessionSpec``.

    This is the cell's full execution identity as a session: cluster
    preset/override, Algorithm 1 policy preset, runtime mode, seed and
    horizon.  ``SessionSpec.build()`` reconstitutes the session on
    whichever side of the process boundary the cell runs.
    """
    from repro.api.session import DEFAULT_MAX_SIM_TIME, SessionSpec
    from repro.backend.base import BackendSpec
    from repro.cluster.configs import (
        ClusterConfig,
        marenostrum_preliminary,
        marenostrum_production,
    )
    from repro.runtime.nanos import RuntimeConfig
    from repro.slurm.controller import SlurmConfig

    if spec.nodes is not None:
        cluster = ClusterConfig(num_nodes=spec.nodes)
    elif spec.workload == "fs":
        cluster = marenostrum_preliminary()
    else:
        cluster = marenostrum_production()
    return SessionSpec(
        cluster=cluster,
        slurm=SlurmConfig(policy=POLICY_PRESETS[spec.policy]),
        runtime=RuntimeConfig(async_mode=spec.async_mode),
        seed=spec.seed,
        max_sim_time=(DEFAULT_MAX_SIM_TIME if spec.max_sim_time is None
                      else spec.max_sim_time),
        # Non-sim cells route Session.run through the backend seam on
        # whichever side of the process boundary they execute.
        backend=(None if spec.backend == "sim"
                 else BackendSpec.of(spec.backend)),
    )


def _execute_workload_cell(
    spec: RunSpec, session_observers=(), telemetry_config=None
) -> Tuple[Dict[str, float], Dict[str, int], List[Dict[str, object]]]:
    from repro.api import EventCounter
    from repro.workload.generator import fs_workload, realapp_workload

    counter = EventCounter()
    session = session_spec_for(spec).build().observe(counter, *session_observers)
    if telemetry_config is not None:
        session = session.with_telemetry(telemetry_config)
    if spec.workload == "fs":
        workload = fs_workload(spec.num_jobs, seed=spec.seed)
    else:
        workload = realapp_workload(spec.num_jobs, seed=spec.seed)
    pair = session.run_paired(workload)
    fixed, flexible = pair.fixed.summary, pair.flexible.summary
    # Tiny under-subscribed workloads may never queue a job; a 0-wait
    # fixed rendition makes the gain ratio undefined, not infinite.
    wait_gain = pair.wait_gain if fixed.avg_wait_time > 0 else 0.0
    metrics = {
        "fixed_makespan_s": fixed.makespan,
        "flexible_makespan_s": flexible.makespan,
        "makespan_gain_pct": pair.makespan_gain,
        "fixed_avg_wait_s": fixed.avg_wait_time,
        "flexible_avg_wait_s": flexible.avg_wait_time,
        "wait_gain_pct": wait_gain,
        "fixed_utilization_pct": 100.0 * fixed.utilization_rate,
        "flexible_utilization_pct": 100.0 * flexible.utilization_rate,
        "flexible_resizes": float(flexible.resize_count),
    }
    spans: List[Dict[str, object]] = []
    for result in (pair.fixed, pair.flexible):
        if result.telemetry is None:
            continue
        rendition = "flexible" if result.flexible else "fixed"
        for data in result.telemetry.as_dicts():
            data.setdefault("attrs", {})["rendition"] = rendition
            spans.append(data)
    return metrics, counter.as_dict(), spans


def execute_cell(
    spec: RunSpec, session_observers=(), telemetry_config=None
) -> Dict[str, object]:
    """Run one cell to completion; the worker-side entry point.

    Returns the JSON-able store payload.  ``session_observers`` only
    applies in-process (serial mode) — live observers cannot cross a
    process boundary, which is exactly why the :class:`EventCounter`
    tallies (and, with telemetry enabled, the span dicts) are returned
    by value.
    """
    t0 = time.perf_counter()
    wall_start = time.time()
    spans: List[Dict[str, object]] = []
    if spec.kind == "artifact":
        metrics = _execute_artifact_cell(spec)
        events: Dict[str, int] = {}
    else:
        metrics, events, spans = _execute_workload_cell(
            spec, session_observers, telemetry_config
        )
    wall_time = time.perf_counter() - t0
    payload: Dict[str, object] = {
        "metrics": metrics,
        "wall_time": wall_time,
        "events": events,
    }
    if telemetry_config is not None:
        cell = Telemetry(telemetry_config)
        cell.record(
            "sweep.cell", wall_start, time.time(), CLOCK_WALL, track="sweep",
            kind=spec.kind, wall_time=wall_time, backend=spec.backend,
        )
        payload["spans"] = cell.as_dicts() + spans
    return payload


def _outcome(spec: RunSpec, payload: Dict[str, object], cached: bool) -> CellOutcome:
    return CellOutcome(
        spec=spec,
        metrics={k: float(v) for k, v in payload["metrics"].items()},
        wall_time=float(payload["wall_time"]),
        cached=cached,
        events={k: int(v) for k, v in payload.get("events", {}).items()},
        # Payloads cached before telemetry existed carry no spans.
        spans=tuple(payload.get("spans", ())),
    )


class SweepRunner:
    """Executes a :class:`Sweep`, store-first, serially or on a pool.

    ``jobs=1`` runs every miss in-process (and honours
    ``session_observers``); ``jobs>1`` fans misses out to a
    ``ProcessPoolExecutor``.  Either way the store is consulted first
    and populated after, and the returned cells are in grid order.
    """

    def __init__(
        self,
        jobs: int = 1,
        store=None,
        observers: Sequence[SweepObserver] = (),
        session_observers=(),
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        if jobs < 1:
            raise SweepError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.store = store
        self.observers = tuple(observers)
        self.session_observers = tuple(session_observers)
        #: When set, each computed cell records spans under the child
        #: correlation id ``<cid>/<cell index>`` — the config is
        #: picklable, so pool workers attach to the parent trace too.
        self.telemetry = telemetry

    def _cell_config(self, index: int) -> Optional[TelemetryConfig]:
        if self.telemetry is None:
            return None
        return self.telemetry.child(index)

    # -- hooks --------------------------------------------------------------
    def _notify_start(self, index: int, total: int, spec: RunSpec) -> None:
        for obs in self.observers:
            obs.on_cell_start(index, total, spec)

    def _notify_done(self, index: int, total: int, outcome: CellOutcome) -> None:
        for obs in self.observers:
            obs.on_cell_done(index, total, outcome)

    # -- execution ----------------------------------------------------------
    def run(self, sweep: Sweep) -> SweepResult:
        total = len(sweep)
        outcomes: Dict[RunSpec, CellOutcome] = {}
        store_stats_before = None if self.store is None else self.store.stats()

        # Store-first pass: serve every known cell from disk.
        pending: List[Tuple[int, RunSpec]] = []
        for index, spec in enumerate(sweep.cells):
            payload = None if self.store is None else self.store.get(spec.as_dict())
            if payload is not None:
                outcome = _outcome(spec, payload, cached=True)
                outcomes[spec] = outcome
                self._notify_done(index, total, outcome)
            else:
                pending.append((index, spec))

        if pending and self.jobs == 1:
            for index, spec in pending:
                self._notify_start(index, total, spec)
                payload = execute_cell(
                    spec, self.session_observers, self._cell_config(index)
                )
                outcomes[spec] = self._finish(index, total, spec, payload)
        elif pending:
            workers = min(self.jobs, len(pending))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                futures = {}
                for index, spec in pending:
                    self._notify_start(index, total, spec)
                    futures[pool.submit(
                        execute_cell, spec, (), self._cell_config(index)
                    )] = (index, spec)
                done, not_done = wait(futures, return_when=FIRST_EXCEPTION)
                # On failure: cancel what never started, but let cells
                # already running finish and persist every completed
                # sibling before surfacing the error — their compute is
                # paid for, and a re-run after the fix finds them in
                # the store.
                settled = list(done)
                settled.extend(f for f in not_done if not f.cancel())
                failure = None
                for fut in settled:
                    index, spec = futures[fut]
                    try:
                        # Blocks only for the already-running stragglers.
                        payload = fut.result()
                    except Exception as exc:
                        # The worker's real exception, pickled with its
                        # payload intact.
                        if failure is None:
                            failure = exc
                        continue
                    outcomes[spec] = self._finish(index, total, spec, payload)
                if failure is not None:
                    raise failure

        if store_stats_before is not None:
            # Mirror this run's hit/miss/put deltas into the process-wide
            # registry so ``/metrics`` scrapes see store behaviour.
            publish_store_stats(
                default_registry(), store_stats_before, self.store.stats()
            )

        return SweepResult(
            cells=tuple(outcomes[spec] for spec in sweep.cells),
            jobs=self.jobs,
        )

    def _finish(
        self, index: int, total: int, spec: RunSpec, payload: Dict[str, object]
    ) -> CellOutcome:
        if self.store is not None:
            self.store.put(spec.as_dict(), payload)
        outcome = _outcome(spec, payload, cached=False)
        self._notify_done(index, total, outcome)
        return outcome
