"""Statistical aggregation of sweep cells into seed-ensemble bands.

Cells sharing every non-seed axis form one *group*; within a group each
metric's values across seeds collapse into a
:class:`~repro.metrics.summary.MetricStats` (mean, median, sample
stdev, Student-t 95% CI).  Output ordering is canonical — groups in
grid order, metrics alphabetically — and the CSV renderer formats
floats with a fixed ``%.10g``, so aggregated output is byte-identical
regardless of worker count or completion order (the
``tests/sweep/test_determinism.py`` contract).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Tuple

from repro.metrics.report import format_table
from repro.metrics.summary import MetricStats, metric_stats

if TYPE_CHECKING:  # pragma: no cover
    from repro.sweep.runner import CellOutcome


@dataclass(frozen=True)
class AggregateRow:
    """One (group, metric) ensemble statistic."""

    group: str
    metric: str
    stats: MetricStats


@dataclass(frozen=True)
class Aggregate:
    """The aggregated view of a sweep: one row per (group, metric)."""

    rows: Tuple[AggregateRow, ...]

    def as_table(self) -> str:
        return format_table(
            ["group", "metric", "n", "mean ± 95% CI", "median", "stdev"],
            [
                [
                    r.group,
                    r.metric,
                    r.stats.n,
                    r.stats.format_mean_ci(),
                    r.stats.median,
                    r.stats.stdev,
                ]
                for r in self.rows
            ],
            title="Sweep aggregate (per-metric seed-ensemble statistics)",
        )

    def as_csv(self) -> str:
        lines = ["group,metric,n,mean,ci95_half,ci_low,ci_high,median,stdev"]
        for r in self.rows:
            s = r.stats
            lines.append(
                f"{r.group},{r.metric},{s.n},{s.mean:.10g},{s.ci95_half:.10g},"
                f"{s.ci_low:.10g},{s.ci_high:.10g},{s.median:.10g},{s.stdev:.10g}"
            )
        return "\n".join(lines) + "\n"

    def as_dict(self) -> Dict[str, Dict[str, dict]]:
        """Nested ``group -> metric -> stats`` form (the bench currency)."""
        out: Dict[str, Dict[str, dict]] = {}
        for r in self.rows:
            out.setdefault(r.group, {})[r.metric] = r.stats.as_dict()
        return out


@dataclass(frozen=True)
class SweepResult:
    """Every executed cell of one sweep, in grid order."""

    cells: Tuple["CellOutcome", ...]
    #: Worker-pool width the sweep ran with (1 = serial).
    jobs: int = 1

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def cached_cells(self) -> int:
        return sum(1 for c in self.cells if c.cached)

    @property
    def computed_cells(self) -> int:
        return len(self.cells) - self.cached_cells

    @property
    def compute_wall_time(self) -> float:
        """Total per-cell compute seconds spent *this* run (misses only)."""
        return sum(c.wall_time for c in self.cells if not c.cached)

    def total_events(self) -> Dict[str, int]:
        """Fan the per-cell worker tallies into ensemble totals."""
        from repro.api.observers import EventCounter

        counter = EventCounter()
        for cell in self.cells:
            counter.merge(cell.events)
        return counter.as_dict()

    def aggregate(self) -> Aggregate:
        """Collapse the seed axis into per-group, per-metric statistics."""
        groups: Dict[str, Dict[str, List[float]]] = {}
        for cell in self.cells:  # grid order fixes group order
            by_metric = groups.setdefault(cell.spec.group_label(), {})
            for metric, value in cell.metrics.items():
                by_metric.setdefault(metric, []).append(value)
        rows = [
            AggregateRow(group=group, metric=metric,
                         stats=metric_stats(values))
            for group, by_metric in groups.items()
            for metric, values in sorted(by_metric.items())
        ]
        return Aggregate(rows=tuple(rows))
