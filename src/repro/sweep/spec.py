"""Sweep grids: picklable cell specs and the :class:`Sweep` builder.

A :class:`RunSpec` is the *fully-resolved* description of one
independent run — everything a worker process needs to reproduce the
cell bit-for-bit, and everything the result store needs to address it.
Two cell kinds exist:

* **artifact cells** re-run a registered paper artifact (``fig3``,
  ``table2``, ...) at a given seed and extract its numeric metric table;
* **workload cells** run a paired fixed/flexible workload comparison on
  a :class:`~repro.api.session.SessionSpec` assembled from named axes
  (workload family × size × cluster nodes × policy preset).

Seeding is deterministic by construction: each cell carries its own
explicit seed (``Sweep.over(seeds=5)`` expands to base, base+1, ...),
so the grid — and therefore every worker — is independent of scheduling
order and worker count.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, fields
from typing import Any, Dict, Iterable, Optional, Sequence, Tuple, Union

from repro.errors import SweepError
from repro.slurm.reconfig import PolicyConfig

#: Base seed grids expand from when only a count is given (the paper's
#: year, matching the registry default).
DEFAULT_BASE_SEED = 2017

#: Named Algorithm 1 policy variants a sweep can put on an axis.  The
#: names are the stable, store-addressable identity; the configs mirror
#: the ablation benches (default vs literal-paper readings).
POLICY_PRESETS: Dict[str, PolicyConfig] = {
    "default": PolicyConfig(),
    "deepest": PolicyConfig(shrink_mode="deepest"),
    "literal": PolicyConfig(
        shrink_mode="deepest", expand_with_pending=True, shrink_beneficiary="any"
    ),
}

#: Workload families a workload cell can draw from.
WORKLOAD_FAMILIES = ("fs", "realapps")


@dataclass(frozen=True)
class RunSpec:
    """One sweep cell: a picklable, fully-resolved, hashable run identity."""

    kind: str  # "artifact" | "workload"
    seed: int
    artifact: Optional[str] = None
    workload: Optional[str] = None
    num_jobs: Optional[int] = None
    nodes: Optional[int] = None
    policy: Optional[str] = None
    async_mode: bool = False
    max_sim_time: Optional[float] = None
    #: Execution backend for workload cells (registry name; see
    #: :mod:`repro.backend`).  Artifact cells always render through the
    #: simulator.
    backend: str = "sim"

    def __post_init__(self) -> None:
        if not self.backend:
            raise SweepError("backend must be a registry name, got ''")
        if self.kind == "artifact":
            if not self.artifact:
                raise SweepError("artifact cells need an artifact name")
            if self.backend != "sim":
                raise SweepError(
                    "artifact cells always render through the simulator; "
                    f"backend={self.backend!r} is a workload-cell axis"
                )
            for field_name in ("workload", "num_jobs", "nodes", "policy"):
                if getattr(self, field_name) is not None:
                    raise SweepError(
                        f"artifact cells take no {field_name!r} axis "
                        f"(got {getattr(self, field_name)!r})"
                    )
        elif self.kind == "workload":
            if self.artifact is not None:
                raise SweepError("workload cells take no artifact name")
            if self.workload not in WORKLOAD_FAMILIES:
                raise SweepError(
                    f"unknown workload family {self.workload!r}; "
                    f"known: {', '.join(WORKLOAD_FAMILIES)}"
                )
            if self.num_jobs is None or self.num_jobs < 1:
                raise SweepError(
                    f"workload cells need num_jobs >= 1, got {self.num_jobs}"
                )
            if self.nodes is not None and self.nodes < 1:
                raise SweepError(f"nodes must be >= 1, got {self.nodes}")
            if self.policy is None:
                # Canonicalize: policy=None and policy="default" execute
                # identically, so they must be ONE cell identity (store
                # key, equality, group label).
                object.__setattr__(self, "policy", "default")
            if self.policy not in POLICY_PRESETS:
                raise SweepError(
                    f"unknown policy preset {self.policy!r}; "
                    f"known: {', '.join(POLICY_PRESETS)}"
                )
        else:
            raise SweepError(f"unknown cell kind {self.kind!r}")

    # -- identity -----------------------------------------------------------
    def as_dict(self) -> Dict[str, Any]:
        """The canonical (store-addressable) form: every field, resolved."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def group_axes(self) -> Tuple[Tuple[str, Any], ...]:
        """The non-seed axes this cell belongs to (aggregation identity).

        ``async_mode`` only shows when set, and ``backend`` only when
        non-default — both are constant within one sweep, and the
        defaults would just be label noise.
        """
        return tuple(
            (f.name, getattr(self, f.name))
            for f in fields(self)
            if f.name != "seed" and getattr(self, f.name) is not None
            and not (f.name == "async_mode" and not getattr(self, f.name))
            and not (f.name == "backend" and getattr(self, f.name) == "sim")
        )

    def group_label(self) -> str:
        """Human/CSV-safe group identity, e.g. ``workload=fs;num_jobs=25``."""
        return ";".join(
            f"{k}={v}" for k, v in self.group_axes() if k != "kind"
        )

    def describe(self) -> str:
        return f"{self.group_label()};seed={self.seed}"


def _seed_axis(
    seeds: Union[int, Iterable[int]], base_seed: int
) -> Tuple[int, ...]:
    if isinstance(seeds, bool):
        raise SweepError("seeds must be a count or an iterable of seeds")
    if isinstance(seeds, int):
        if seeds < 1:
            raise SweepError(f"need at least one seed, got {seeds}")
        return tuple(range(base_seed, base_seed + seeds))
    expanded = tuple(int(s) for s in seeds)
    if not expanded:
        raise SweepError("need at least one seed")
    if len(set(expanded)) != len(expanded):
        raise SweepError(f"duplicate seeds in {expanded}")
    return expanded


@dataclass(frozen=True)
class Sweep:
    """An ordered grid of independent cells (the unit a runner executes)."""

    cells: Tuple[RunSpec, ...]

    def __post_init__(self) -> None:
        if not self.cells:
            raise SweepError("a sweep needs at least one cell")
        if len(set(self.cells)) != len(self.cells):
            raise SweepError("duplicate cells in sweep grid")

    def __len__(self) -> int:
        return len(self.cells)

    @property
    def seeds(self) -> Tuple[int, ...]:
        """The distinct seeds in grid order."""
        return tuple(dict.fromkeys(c.seed for c in self.cells))

    @classmethod
    def over(
        cls,
        *,
        seeds: Union[int, Iterable[int]],
        base_seed: int = DEFAULT_BASE_SEED,
        artifacts: Optional[Sequence[str]] = None,
        workloads: Optional[Sequence[str]] = None,
        num_jobs: Optional[Sequence[int]] = None,
        nodes: Optional[Sequence[Optional[int]]] = None,
        policies: Optional[Sequence[str]] = None,
        async_mode: bool = False,
        max_sim_time: Optional[float] = None,
        backend: str = "sim",
    ) -> "Sweep":
        """Expand a declarative grid into cells.

        Either ``artifacts`` (artifact ensembles) or ``workloads`` (+
        ``num_jobs`` and optionally ``nodes``/``policies``) spans the
        non-seed axes; seeds always span the replication axis.  The
        expansion order is the deterministic row-major product, seeds
        innermost, so cell identity never depends on executor behaviour.
        """
        seed_axis = _seed_axis(seeds, base_seed)
        if artifacts and workloads:
            raise SweepError("a sweep is over artifacts or workloads, not both")
        cells = []
        if artifacts:
            for extra_name, extra in (
                ("num_jobs", num_jobs), ("nodes", nodes), ("policies", policies)
            ):
                if extra:
                    raise SweepError(f"artifact sweeps take no {extra_name!r} axis")
            if backend != "sim":
                raise SweepError(
                    "artifact sweeps always render through the simulator; "
                    "backend applies to workload sweeps"
                )
            for name, seed in itertools.product(artifacts, seed_axis):
                cells.append(
                    RunSpec(
                        kind="artifact",
                        artifact=name,
                        seed=seed,
                        async_mode=async_mode,
                        max_sim_time=max_sim_time,
                    )
                )
        elif workloads:
            if not num_jobs:
                raise SweepError("workload sweeps need a num_jobs axis")
            for family, n, node_count, policy, seed in itertools.product(
                workloads,
                num_jobs,
                nodes or (None,),
                policies or ("default",),
                seed_axis,
            ):
                cells.append(
                    RunSpec(
                        kind="workload",
                        workload=family,
                        num_jobs=n,
                        nodes=node_count,
                        policy=policy,
                        seed=seed,
                        async_mode=async_mode,
                        max_sim_time=max_sim_time,
                        backend=backend,
                    )
                )
        else:
            raise SweepError("a sweep needs an artifacts or workloads axis")
        return cls(cells=tuple(cells))
