"""The Slurm external API surface used by the runtime (Section III).

The paper's methodology builds job resizing out of four stock Slurm
operations, exposed here exactly as enumerated:

Expanding job A by N_B nodes:

1. :meth:`SlurmAPI.submit_dependent` — submit job B requesting N_B nodes
   with a dependency on A (and maximum priority);
2. :meth:`SlurmAPI.update_job_to_zero_nodes` — update B to 0 nodes,
   producing a set of allocated nodes not attached to any job;
3. :meth:`SlurmAPI.cancel` — cancel B;
4. :meth:`SlurmAPI.update_job_nodes` — update A to N_A + N_B nodes.

Shrinking job A is a single :meth:`SlurmAPI.update_job_nodes` call to the
smaller size.  :meth:`SlurmAPI.check_status` is the extension entry point
the reconfiguration plug-in answers (Section IV).

:mod:`repro.slurm.resize` drives these steps with the waiting/abort logic
of Section V-B; this facade exists so the protocol is testable one step
at a time, like the real ``scontrol``/``sbatch``/``scancel`` calls.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.actions import ResizeDecision, ResizeRequest
from repro.errors import SchedulerError
from repro.slurm.controller import SlurmController
from repro.slurm.job import Job, JobState, make_resizer


class SlurmAPI:
    """Facade over the controller mirroring Slurm's external API."""

    def __init__(self, controller: SlurmController) -> None:
        self.controller = controller

    # -- squeue-style introspection ----------------------------------------
    def squeue(self) -> List[Job]:
        """Pending jobs in scheduling order (like ``squeue --sort=-p``)."""
        return self.controller.pending_jobs()

    def running(self) -> List[Job]:
        return self.controller.running_jobs()

    def job_nodelist(self, job: Job) -> Tuple[str, ...]:
        """The job's node list (``scontrol show job``'s NodeList)."""
        return self.controller.machine.hostnames_of(job.job_id)

    # -- sbatch / scancel -----------------------------------------------------
    def submit(self, job: Job) -> Job:
        return self.controller.submit(job)

    def submit_dependent(
        self, parent: Job, extra_nodes: int, max_priority: bool = True
    ) -> Job:
        """Step 1: submit the resizer job B (dependency on A)."""
        resizer = make_resizer(parent, extra_nodes)
        if not max_priority:
            resizer.priority_boost = 0.0
        return self.controller.submit(resizer)

    def cancel(self, job: Job) -> None:
        """``scancel``: step 3 of the expansion (and general cancellation)."""
        self.controller.cancel_job(job)

    # -- scontrol update ----------------------------------------------------------
    def update_job_to_zero_nodes(self, job: Job) -> Tuple[int, ...]:
        """Step 2: detach a running job's whole allocation.

        Returns the now-unattached node set ("a set of N_B allocated
        nodes which are not attached to any job").
        """
        return self.controller.detach_all_nodes(job)

    def update_job_nodes(
        self, job: Job, num_nodes: int, attach: Optional[Tuple[int, ...]] = None
    ) -> Tuple[int, ...]:
        """``scontrol update JobId=A NumNodes=N``: grow or shrink job A.

        Growing requires the explicit node set detached in step 2
        (``attach``); shrinking releases the highest-numbered nodes.
        Returns the job's node set after the update.
        """
        current = job.num_nodes
        if num_nodes == current:
            return self.controller.machine.nodes_of(job.job_id)
        if num_nodes > current:
            if attach is None or len(attach) != num_nodes - current:
                raise SchedulerError(
                    f"growing {current} -> {num_nodes} needs exactly "
                    f"{num_nodes - current} detached nodes"
                )
            self.controller.grow_job(job, attach)
        else:
            self.controller.shrink_job(job, num_nodes)
        return self.controller.machine.nodes_of(job.job_id)

    def update_time_limit(self, job: Job, time_limit: float) -> None:
        """``scontrol update JobId=A TimeLimit=...``."""
        self.controller.update_time_limit(job, time_limit)

    # -- the reconfiguration plug-in entry point ---------------------------------
    def check_status(self, job: Job, request: ResizeRequest) -> ResizeDecision:
        """Ask the resource-selection plug-in for the resize decision."""
        return self.controller.check_status(job, request)
