"""The job-resize protocol built from Slurm primitives (Section III).

Expanding job A by N_B nodes:

1. submit a *resizer job* B requesting N_B nodes, dependent on A, with
   maximum priority;
2. once B runs, update B to 0 nodes — its allocation detaches;
3. cancel B;
4. update A to N_A + N_B nodes, attaching the detached set.

If B does not start within a threshold, it is cancelled and the expansion
aborts (the RMS may have given the nodes to another job meanwhile — more
likely under asynchronous scheduling).

Shrinking job A is a single update; the *synchronized* part (waiting for
per-node ACKs so Slurm does not kill live processes) is modeled by the
runtime layer before it calls :func:`shrink_protocol`.
"""

from __future__ import annotations

from typing import Generator, Optional, Tuple

from repro.metrics.trace import EventKind
from repro.sim.events import Event
from repro.slurm.controller import SlurmController
from repro.slurm.job import Job, make_resizer


def expand_protocol(
    controller: SlurmController,
    job: Job,
    target_nodes: int,
    timeout: Optional[float] = None,
) -> Generator[Event, object, Optional[Tuple[int, ...]]]:
    """Expand ``job`` to ``target_nodes``; returns the new node ids, or
    None when the action had to be aborted.

    This is a simulation-process generator: drive it with ``yield from``
    inside a process (the Nanos++ runtime model does).
    """
    env = controller.env
    extra = target_nodes - job.num_nodes
    if extra < 1:
        raise ValueError(
            f"expand target {target_nodes} does not exceed current {job.num_nodes}"
        )
    if timeout is None:
        timeout = controller.config.resizer_timeout

    resizer = make_resizer(job, extra)
    controller.submit(resizer)
    started = controller.started_event(resizer)
    deadline = env.timeout(timeout)
    yield env.any_of([started, deadline])

    if not started.triggered or resizer.job_id not in controller.running:
        # The scheduler gave the nodes to someone else — or a node failure
        # killed the resizer between its start and this resumption: abort.
        if not resizer.is_terminal:
            controller.cancel_job(resizer)
        controller.trace.record(
            env.now,
            EventKind.RESIZE_ABORT,
            job.job_id,
            wanted=target_nodes,
            resizer=resizer.job_id,
        )
        return None

    detached = controller.detach_all_nodes(resizer)
    controller.cancel_job(resizer)
    controller.grow_job(job, detached)
    return controller.machine.nodes_of(job.job_id)


def shrink_protocol(
    controller: SlurmController,
    job: Job,
    target_nodes: int,
    victims: Optional[Tuple[int, ...]] = None,
) -> Tuple[int, ...]:
    """Shrink ``job`` to ``target_nodes``; returns the released node ids.

    Callers must have quiesced the outgoing ranks first (offload tasks
    complete, ACKs gathered) — the runtime layer does this.  ``victims``
    pins the released nodes (forced shrinks evacuate the DOWN ones).
    """
    return controller.shrink_job(job, target_nodes, victims=victims)
