"""Slurm workload-manager substrate.

Implements the pieces of Slurm the paper relies on: the pending queue with
multifactor priorities, EASY backfill, job lifecycle management, the
node-resize protocol (Section III) and the reconfiguration policy plug-in
(Section IV, Algorithm 1).
"""

from repro.slurm.accounting import Accounting, JobRecord
from repro.slurm.api import SlurmAPI
from repro.slurm.backfill import Reservation, compute_shadow, plan_backfill
from repro.slurm.controller import SlurmConfig, SlurmController
from repro.slurm.job import (
    Job,
    JobClass,
    JobState,
    TERMINAL_STATES,
    make_resizer,
)
from repro.slurm.priority import MultifactorConfig, MultifactorPriority
from repro.slurm.reconfig import PolicyConfig, PolicyView, ReconfigurationPolicy
from repro.slurm.resize import expand_protocol, shrink_protocol

__all__ = [
    "Accounting",
    "Job",
    "JobRecord",
    "JobClass",
    "JobState",
    "MultifactorConfig",
    "MultifactorPriority",
    "PolicyConfig",
    "PolicyView",
    "ReconfigurationPolicy",
    "Reservation",
    "SlurmAPI",
    "SlurmConfig",
    "SlurmController",
    "TERMINAL_STATES",
    "compute_shadow",
    "expand_protocol",
    "make_resizer",
    "plan_backfill",
    "shrink_protocol",
]
