"""Slurm workload-manager substrate.

Implements the pieces of Slurm the paper relies on: the pending queue with
multifactor priorities, EASY backfill, job lifecycle management, the
node-resize protocol (Section III) and the reconfiguration policy plug-in
(Section IV, Algorithm 1).
"""

from repro.slurm.accounting import Accounting, JobRecord
from repro.slurm.api import SlurmAPI
from repro.slurm.backfill import (
    BF_MAX_JOB_TEST,
    Reservation,
    compute_shadow,
    freed_at_end,
    plan_backfill,
)
from repro.slurm.controller import SlurmConfig, SlurmController
from repro.slurm.job import (
    Job,
    JobClass,
    JobState,
    TERMINAL_STATES,
    make_resizer,
)
from repro.slurm.priority import MultifactorConfig, MultifactorPriority
from repro.slurm.queue import PendingQueue, SchedStats
from repro.slurm.reconfig import PolicyConfig, PolicyView, ReconfigurationPolicy
from repro.slurm.resize import expand_protocol, shrink_protocol

__all__ = [
    "Accounting",
    "BF_MAX_JOB_TEST",
    "Job",
    "JobRecord",
    "JobClass",
    "JobState",
    "MultifactorConfig",
    "MultifactorPriority",
    "PendingQueue",
    "PolicyConfig",
    "PolicyView",
    "ReconfigurationPolicy",
    "Reservation",
    "SchedStats",
    "SlurmAPI",
    "SlurmConfig",
    "SlurmController",
    "TERMINAL_STATES",
    "compute_shadow",
    "expand_protocol",
    "freed_at_end",
    "make_resizer",
    "plan_backfill",
    "shrink_protocol",
]
