"""EASY-backfill scheduling, the policy the paper enables in Slurm.

Given the priority-ordered pending queue and the expected end times of the
running jobs, the planner starts queue-head jobs while nodes last, makes a
single reservation for the first blocked job, and then backfills lower-
priority jobs that cannot delay that reservation — the textbook EASY
algorithm (Lifka '95), which is what Slurm's ``sched/backfill`` implements
with default settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import AbstractSet, List, Sequence, Tuple

from repro.slurm.job import Job

#: Shared empty default for the unreturnable-nodes correction.
_NO_UNRETURNABLE: AbstractSet[int] = frozenset()

#: How deep into the queue a backfill pass looks (Slurm's
#: ``bf_max_job_test`` default).
BF_MAX_JOB_TEST = 100


@dataclass(frozen=True)
class Reservation:
    """The shadow reservation made for the highest-priority blocked job."""

    job: Job
    #: Earliest time enough nodes will be free for it.
    shadow_time: float
    #: Nodes that remain free at shadow time beyond the reserved ones;
    #: backfill jobs larger than this must finish before shadow_time.
    extra_nodes: int


def freed_at_end(job: Job, unreturnable: AbstractSet[int] = _NO_UNRETURNABLE) -> int:
    """Nodes the machine actually gets back when ``job`` ends.

    A started job mid-resize holds fewer nodes than ``num_nodes`` claims:
    a resizer whose allocation was detached for an expansion holds zero,
    and a job half-way through the shrink protocol holds its reduced set.
    Those detached nodes are already in the free pool, so counting the
    nominal ``num_nodes`` would tally them twice, inflate the shadow
    computation's ``extra_nodes``, and let phase 2 of the planner park a
    long backfill job on nodes the reservation counted on — delaying the
    reserved head job past its shadow time.

    ``unreturnable`` (the machine's dead-without-repair or
    operator-drained held nodes) are likewise subtracted: they leave the
    job's allocation at its end but never rejoin the pool, so counting
    them would promise the reservation nodes that will not exist.
    """
    if job.start_time is None:
        # Picked to start in this same pass: will be allocated num_nodes.
        return job.num_nodes
    if not unreturnable:
        return len(job.nodes)
    return sum(1 for idx in job.nodes if idx not in unreturnable)


def expected_end_of(job: Job, now: float) -> float:
    """Backfill planning horizon of a running or just-picked job."""
    # Jobs picked to start in this same pass have no start_time yet.
    return job.expected_end if job.start_time is not None else now + job.time_limit


def compute_shadow(
    blocked: Job,
    free_now: int,
    running: Sequence[Job],
    now: float,
    presorted: bool = False,
    unreturnable: AbstractSet[int] = _NO_UNRETURNABLE,
) -> Reservation:
    """Find when ``blocked`` can start, assuming jobs end at their limits.

    ``presorted`` callers (the controller's incremental scheduler) pass
    ``running`` already ordered by expected end, skipping the per-pass
    re-sort this function would otherwise pay.
    """
    needed = blocked.num_nodes
    available = free_now

    if presorted:
        ends = running
    else:
        ends = sorted(running, key=lambda job: expected_end_of(job, now))
    shadow = now
    for job in ends:
        if available >= needed:
            break
        available += freed_at_end(job, unreturnable)
        shadow = expected_end_of(job, now)
    # If even all running jobs ending is not enough the job can never start
    # with the current machine; park the reservation at infinity.
    if available < needed:
        return Reservation(blocked, float("inf"), available)
    return Reservation(blocked, shadow, available - needed)


def plan_backfill(
    pending_by_priority: Sequence[Job],
    running: Sequence[Job],
    free_nodes: int,
    now: float,
    max_job_test: int = BF_MAX_JOB_TEST,
    running_presorted: bool = False,
    unreturnable: AbstractSet[int] = _NO_UNRETURNABLE,
) -> Tuple[List[Job], Reservation | None]:
    """Choose which pending jobs to start right now.

    Returns ``(jobs_to_start, reservation)`` where ``reservation`` describes
    the shadow slot of the first job that could not start (None if the whole
    queue fits).  ``max_job_test`` caps how deep into the queue the pass
    looks (Slurm's ``bf_max_job_test``, default 100).  ``running_presorted``
    promises ``running`` is already ordered by expected end (the
    controller's cached index), so the shadow computation skips its sort.
    """
    starts: List[Job] = []
    free = free_nodes
    queue = list(pending_by_priority)[:max_job_test]

    # Phase 1: start jobs in strict priority order until one is blocked.
    blocked_index = None
    for i, job in enumerate(queue):
        if job.num_nodes <= free:
            starts.append(job)
            free -= job.num_nodes
        else:
            blocked_index = i
            break
    if blocked_index is None:
        return starts, None

    blocked = queue[blocked_index]
    if running_presorted:
        # Merge this pass's picks (which end at now + limit) into the
        # already-sorted running sequence instead of re-sorting everything.
        effective_running = _merge_by_end(running, starts, now)
        reservation = compute_shadow(
            blocked, free, effective_running, now, presorted=True,
            unreturnable=unreturnable,
        )
    else:
        effective_running = list(running) + starts
        reservation = compute_shadow(
            blocked, free, effective_running, now, unreturnable=unreturnable
        )

    # Phase 2: backfill strictly-lower-priority jobs around the reservation.
    #
    # Two admission rules, textbook EASY: a job that ends by shadow_time
    # returns its nodes before the reservation needs them (availability
    # between now and the shadow only grows — running jobs end, and the
    # policy vetoes expansions while jobs are pending), so it consumes no
    # reservation budget; a job that outlives the shadow squats on nodes
    # the reservation counted available, so it must fit inside
    # ``extra_nodes`` and is debited from it.  The debit keeps ``extra``
    # honest for every later candidate; correctness of the no-debit short
    # path depends on compute_shadow counting only actually-held nodes
    # (see freed_at_end).
    extra = reservation.extra_nodes
    for job in queue[blocked_index + 1 :]:
        if job.num_nodes > free:
            continue
        fits_before_shadow = now + job.time_limit <= reservation.shadow_time
        fits_beside = job.num_nodes <= extra
        if fits_before_shadow or fits_beside:
            starts.append(job)
            free -= job.num_nodes
            if not fits_before_shadow:
                # It occupies nodes the reservation was counting on.
                extra -= job.num_nodes
    return starts, reservation


def _merge_by_end(
    running_sorted: Sequence[Job], starts: List[Job], now: float
) -> List[Job]:
    """Merge an end-sorted running sequence with this pass's picks."""
    picked = sorted(starts, key=lambda job: expected_end_of(job, now))
    merged: List[Job] = []
    i = j = 0
    while i < len(running_sorted) and j < len(picked):
        if expected_end_of(running_sorted[i], now) <= expected_end_of(picked[j], now):
            merged.append(running_sorted[i])
            i += 1
        else:
            merged.append(picked[j])
            j += 1
    merged.extend(running_sorted[i:])
    merged.extend(picked[j:])
    return merged
