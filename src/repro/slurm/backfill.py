"""EASY-backfill scheduling, the policy the paper enables in Slurm.

Given the priority-ordered pending queue and the expected end times of the
running jobs, the planner starts queue-head jobs while nodes last, makes a
single reservation for the first blocked job, and then backfills lower-
priority jobs that cannot delay that reservation — the textbook EASY
algorithm (Lifka '95), which is what Slurm's ``sched/backfill`` implements
with default settings.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.slurm.job import Job


@dataclass(frozen=True)
class Reservation:
    """The shadow reservation made for the highest-priority blocked job."""

    job: Job
    #: Earliest time enough nodes will be free for it.
    shadow_time: float
    #: Nodes that remain free at shadow time beyond the reserved ones;
    #: backfill jobs larger than this must finish before shadow_time.
    extra_nodes: int


def compute_shadow(
    blocked: Job,
    free_now: int,
    running: Sequence[Job],
    now: float,
) -> Reservation:
    """Find when ``blocked`` can start, assuming jobs end at their limits."""
    needed = blocked.num_nodes
    available = free_now

    def expected_end(job: Job) -> float:
        # Jobs picked to start in this same pass have no start_time yet.
        return job.expected_end if job.start_time is not None else now + job.time_limit

    ends = sorted(running, key=expected_end)
    shadow = now
    for job in ends:
        if available >= needed:
            break
        available += job.num_nodes
        shadow = expected_end(job)
    # If even all running jobs ending is not enough the job can never start
    # with the current machine; park the reservation at infinity.
    if available < needed:
        return Reservation(blocked, float("inf"), available)
    return Reservation(blocked, shadow, available - needed)


def plan_backfill(
    pending_by_priority: Sequence[Job],
    running: Sequence[Job],
    free_nodes: int,
    now: float,
    max_job_test: int = 100,
) -> Tuple[List[Job], Reservation | None]:
    """Choose which pending jobs to start right now.

    Returns ``(jobs_to_start, reservation)`` where ``reservation`` describes
    the shadow slot of the first job that could not start (None if the whole
    queue fits).  ``max_job_test`` caps how deep into the queue the pass
    looks (Slurm's ``bf_max_job_test``, default 100).
    """
    starts: List[Job] = []
    free = free_nodes
    queue = list(pending_by_priority)[:max_job_test]

    # Phase 1: start jobs in strict priority order until one is blocked.
    blocked_index = None
    for i, job in enumerate(queue):
        if job.num_nodes <= free:
            starts.append(job)
            free -= job.num_nodes
        else:
            blocked_index = i
            break
    if blocked_index is None:
        return starts, None

    blocked = queue[blocked_index]
    effective_running = list(running) + starts
    reservation = compute_shadow(blocked, free, effective_running, now)

    # Phase 2: backfill strictly-lower-priority jobs around the reservation.
    extra = reservation.extra_nodes
    for job in queue[blocked_index + 1 :]:
        if job.num_nodes > free:
            continue
        fits_before_shadow = now + job.time_limit <= reservation.shadow_time
        fits_beside = job.num_nodes <= extra
        if fits_before_shadow or fits_beside:
            starts.append(job)
            free -= job.num_nodes
            if not fits_before_shadow:
                # It occupies nodes the reservation was not counting on.
                extra -= job.num_nodes
    return starts, reservation
