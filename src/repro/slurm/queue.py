"""Incrementally-maintained pending queue — the scheduler's hot path.

The original controller re-sorted the whole pending queue with freshly
computed multifactor priorities on *every* scheduling pass, making each
submit/finish/shrink O(n log n) in the total queue and the full trace
O(n^2) — fine for the paper's 10-400 job workloads, hopeless for 50k-job
SWF replays.  :class:`PendingQueue` keeps the queue in a binary heap
ordered by :meth:`~repro.slurm.priority.MultifactorPriority.sort_key`,
which is *time-invariant* while every entry's age factor is below
saturation, so a scheduling pass only pays O(k log n) for the k jobs it
actually examines and a job's key is computed once at submission instead
of once per pass.

Saturation (a job pending longer than ``PriorityMaxAge``, 7 days by
default) breaks the time-invariance: a saturated job's priority stops
growing while younger jobs keep catching up.  The queue watches the
earliest saturation deadline and, once crossed, degrades to re-keying the
live entries per distinct timestamp — exactly the legacy cost, only for
queues that have had jobs pending for a week.

:class:`SchedStats` counts the work both scheduler modes perform
(priority-key evaluations, heap traffic, jobs examined per pass); the
``repro bench sched`` harness reads it to prove the incremental path does
asymptotically less work than the legacy resort-per-pass path.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from itertools import count
from typing import Dict, List, Optional, Tuple

from repro.slurm.job import Job
from repro.slurm.priority import MultifactorPriority


@dataclass
class SchedStats:
    """Operation counts of the scheduling hot path.

    ``key_evals`` (multifactor priority-key computations) plus
    ``running_end_evals`` (expected-end keys computed for backfill's
    shadow ordering) make up the bench's "comparisons" metric: they are
    the per-job work the legacy scheduler redoes on every pass and the
    incremental scheduler performs once per queue update.
    """

    fifo_passes: int = 0
    backfill_passes: int = 0
    key_evals: int = 0
    running_end_evals: int = 0
    heap_pushes: int = 0
    heap_pops: int = 0
    queue_rebuilds: int = 0
    jobs_examined: int = 0
    jobs_started: int = 0
    max_examined_in_pass: int = 0
    max_queue_depth: int = 0

    def record_pass(self, kind: str, examined: int, started: int) -> None:
        if kind == "backfill":
            self.backfill_passes += 1
        else:
            self.fifo_passes += 1
        self.jobs_examined += examined
        self.jobs_started += started
        if examined > self.max_examined_in_pass:
            self.max_examined_in_pass = examined

    @property
    def passes(self) -> int:
        return self.fifo_passes + self.backfill_passes

    @property
    def comparisons(self) -> int:
        """The bench's headline cost metric (see class docstring)."""
        return self.key_evals + self.running_end_evals

    def snapshot(self) -> Dict[str, float]:
        """Plain-dict view (what ``BENCH_sched.json`` records per run)."""
        return {
            "passes": self.passes,
            "fifo_passes": self.fifo_passes,
            "backfill_passes": self.backfill_passes,
            "key_evals": self.key_evals,
            "running_end_evals": self.running_end_evals,
            "comparisons": self.comparisons,
            "heap_pushes": self.heap_pushes,
            "heap_pops": self.heap_pops,
            "queue_rebuilds": self.queue_rebuilds,
            "jobs_examined": self.jobs_examined,
            "jobs_started": self.jobs_started,
            "max_examined_in_pass": self.max_examined_in_pass,
            "max_queue_depth": self.max_queue_depth,
            "examined_per_pass": (
                self.jobs_examined / self.passes if self.passes else 0.0
            ),
            "comparisons_per_pass": (
                self.comparisons / self.passes if self.passes else 0.0
            ),
        }


#: Heap entries are mutable ``[key, serial, job]`` triples; a dead entry
#: (removed or re-keyed) has its job slot cleared and is skipped lazily
#: at pop time.  The serial breaks exact key ties (a re-keyed job briefly
#: coexists with its dead predecessor under the same key), so the job
#: slot itself is never compared.
_Entry = List[object]


class PendingQueue:
    """Priority-ordered pending jobs with O(log n) incremental updates."""

    def __init__(
        self, engine: MultifactorPriority, stats: Optional[SchedStats] = None
    ) -> None:
        self.engine = engine
        self.stats = stats if stats is not None else SchedStats()
        self._heap: List[_Entry] = []
        self._entries: Dict[int, _Entry] = {}
        #: Keys of jobs popped by an in-flight pass, kept so push_back
        #: can reinsert without recomputing.
        self._checked_out: Dict[int, Tuple] = {}
        self._ordered_cache: Optional[List[Job]] = None
        #: Earliest time any current entry's age factor saturates.
        self._min_expiry = float("inf")
        #: True once a saturated entry is live: static keys are no longer
        #: trustworthy and the queue re-keys per distinct timestamp.
        self._stale = False
        self._fresh_at = float("-inf")
        self._serial = count()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, job: Job) -> bool:
        return job.job_id in self._entries

    # -- updates -----------------------------------------------------------
    def add(self, job: Job, now: float) -> None:
        """Insert a newly pending job (its key is computed once, here)."""
        self._insert(job, self._key(job, now))
        depth = len(self._entries)
        if depth > self.stats.max_queue_depth:
            self.stats.max_queue_depth = depth

    def discard(self, job: Job) -> None:
        """Remove a job wherever it is (no-op when absent)."""
        entry = self._entries.pop(job.job_id, None)
        if entry is not None:
            entry[2] = None  # lazily dropped at the next pop that sees it
            self._ordered_cache = None
        self._checked_out.pop(job.job_id, None)

    def reprioritize(self, job: Job, now: float) -> None:
        """Re-key a pending job after a priority change (e.g. max-priority
        boost of a shrink beneficiary)."""
        entry = self._entries.pop(job.job_id, None)
        if entry is None:
            return
        entry[2] = None
        self._insert(job, self._key(job, now))

    # -- pass-side consumption ---------------------------------------------
    def peek_head(self, now: float) -> Optional[Job]:
        """The highest-priority job without checking it out (None if empty).

        Lets a scheduling pass look at the queue head for free: when the
        head does not fit the free nodes the pass ends without ever
        touching the heap, instead of paying a pop/push-back round trip
        for every event-driven pass in a saturated system.  Dead entries
        encountered on the way are dropped, exactly as in
        :meth:`pop_head`.
        """
        self._ensure_fresh(now)
        heap = self._heap
        while heap:
            entry = heap[0]
            job = entry[2]
            if job is None or self._entries.get(job.job_id) is not entry:
                heapq.heappop(heap)  # dead entry
                continue
            return job
        return None

    def pop_head(self, now: float) -> Optional[Job]:
        """Check out the highest-priority job (None when empty).

        The caller either starts the job, abandons it via :meth:`forget`,
        or returns it untouched with :meth:`push_back` (no re-keying).
        """
        self._ensure_fresh(now)
        heap = self._heap
        while heap:
            entry = heap[0]
            job = entry[2]
            if job is None or self._entries.get(job.job_id) is not entry:
                heapq.heappop(heap)  # dead entry
                continue
            heapq.heappop(heap)
            del self._entries[job.job_id]
            self._checked_out[job.job_id] = entry[0]
            self.stats.heap_pops += 1
            self._ordered_cache = None
            return job
        return None

    def push_back(self, job: Job) -> None:
        """Return a checked-out job to the queue with its cached key."""
        key = self._checked_out.pop(job.job_id)
        self._insert(job, key)

    def forget(self, job: Job) -> None:
        """Drop the checkout record of a job that started (or died)."""
        self._checked_out.pop(job.job_id, None)

    # -- ordered views -------------------------------------------------------
    def ordered(self, now: float) -> List[Job]:
        """All pending jobs in scheduling order (fresh list per call).

        Jobs currently checked out by an in-flight pass are not listed;
        passes are synchronous, so outside observers never see a
        checkout in progress.
        """
        self._ensure_fresh(now)
        if self._ordered_cache is None:
            live = sorted(
                (entry for entry in self._entries.values()),
                key=lambda entry: entry[0],
            )
            self._ordered_cache = [entry[2] for entry in live]
        return list(self._ordered_cache)

    # -- internals -----------------------------------------------------------
    def _key(self, job: Job, now: float) -> Tuple:
        self.stats.key_evals += 1
        return self.engine.sort_key(job, now)

    def _insert(self, job: Job, key: Tuple) -> None:
        entry: _Entry = [key, next(self._serial), job]
        self._entries[job.job_id] = entry
        heapq.heappush(self._heap, entry)
        self.stats.heap_pushes += 1
        self._note_expiry(job)
        self._ordered_cache = None

    def _note_expiry(self, job: Job) -> None:
        if job.priority_boost == float("inf") or job.submit_time is None:
            return  # pinned to the front / keyed as submit 0.0: no drift
        expiry = job.submit_time + self.engine.config.max_age
        if expiry < self._min_expiry:
            self._min_expiry = expiry

    def _ensure_fresh(self, now: float) -> None:
        if not self._stale and now < self._min_expiry:
            return
        if self._stale and self._fresh_at == now:
            return
        self._rebuild(now)

    def _rebuild(self, now: float) -> None:
        """Re-key every live entry at ``now`` (saturated-queue fallback)."""
        jobs = [entry[2] for entry in self._entries.values()]
        self._heap = []
        self._entries = {}
        self._min_expiry = float("inf")
        self._stale = False
        self._ordered_cache = None
        for job in jobs:
            key = self._key(job, now)
            entry: _Entry = [key, next(self._serial), job]
            self._entries[job.job_id] = entry
            self._heap.append(entry)
            self._note_expiry(job)
            if (
                job.priority_boost != float("inf")
                and job.submit_time is not None
                and now - job.submit_time >= self.engine.config.max_age
            ):
                self._stale = True
        heapq.heapify(self._heap)
        self._fresh_at = now
        self.stats.queue_rebuilds += 1
