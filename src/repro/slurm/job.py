"""Job descriptor and lifecycle state machine.

Follows the classification of Feitelson & Rudolph used by the paper
(Section II): *rigid*, *moldable*, *malleable* and *evolving*, collapsed
into *fixed* (constant process count) and *flexible* (reconfigurable
on-the-fly) categories.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, List, Optional, Tuple

from repro.core.actions import ResizeRequest
from repro.errors import JobStateError


class JobState(enum.Enum):
    """Slurm-like job lifecycle states.

    Covers both the states the simulator reaches today and the states only
    a real Slurm can produce (preemption, suspension, QOS deadlines, node
    boot failures) so that the subprocess backend can map ``sacct`` output
    onto first-class members instead of collapsing them into FAILED.
    """

    PENDING = "pending"
    RUNNING = "running"
    COMPLETING = "completing"
    COMPLETED = "completed"
    CANCELLED = "cancelled"
    FAILED = "failed"
    TIMEOUT = "timeout"
    #: Evicted by a higher-priority job or QOS preemption.
    PREEMPTED = "preempted"
    #: Paused by ``scontrol suspend``; resumable.
    SUSPENDED = "suspended"
    #: Killed because the QOS/reservation deadline passed.
    DEADLINE = "deadline"
    #: Allocated nodes failed to boot; the job never ran.
    BOOT_FAIL = "boot_fail"
    #: An allocated node died mid-run and the job was not requeued.
    NODE_FAIL = "node_fail"

    @classmethod
    def from_slurm(cls, text: str) -> "JobState":
        """Parse a Slurm state string (``squeue``/``sacct`` output).

        Handles the suffixed forms real Slurm emits ("CANCELLED by 1234"),
        and maps transient scheduler states onto the nearest lifecycle
        member (RESIZING is a running job mid-reconfiguration; REQUEUED
        jobs are back in the queue).
        """
        token = text.strip().split()[0].upper() if text.strip() else ""
        mapped = _SLURM_STATE_ALIASES.get(token)
        if mapped is not None:
            return mapped
        try:
            return cls[token]
        except KeyError:
            raise JobStateError(f"unknown Slurm job state {text!r}") from None


#: Slurm state strings that do not match a member name directly.
_SLURM_STATE_ALIASES = {
    "RESIZING": JobState.RUNNING,
    "REQUEUED": JobState.PENDING,
    "REQUEUE_FED": JobState.PENDING,
    "REQUEUE_HOLD": JobState.PENDING,
    "CONFIGURING": JobState.PENDING,
    "STAGE_OUT": JobState.COMPLETING,
    "SIGNALING": JobState.COMPLETING,
    "CANCELLED+": JobState.CANCELLED,
    "OUT_OF_MEMORY": JobState.FAILED,
    "REVOKED": JobState.CANCELLED,
}

#: Legal state transitions.
_TRANSITIONS = {
    JobState.PENDING: {
        JobState.RUNNING,
        JobState.CANCELLED,
        # Allocation never materialised / deadline hit while queued.
        JobState.BOOT_FAIL,
        JobState.DEADLINE,
    },
    JobState.RUNNING: {
        JobState.COMPLETING,
        JobState.COMPLETED,
        JobState.CANCELLED,
        JobState.FAILED,
        JobState.TIMEOUT,
        # Requeue-on-node-failure: back to the pending queue.
        JobState.PENDING,
        JobState.SUSPENDED,
        JobState.PREEMPTED,
        JobState.DEADLINE,
        JobState.NODE_FAIL,
    },
    JobState.SUSPENDED: {
        JobState.RUNNING,
        JobState.CANCELLED,
        JobState.FAILED,
        JobState.TIMEOUT,
        JobState.PREEMPTED,
        JobState.DEADLINE,
        JobState.NODE_FAIL,
    },
    JobState.COMPLETING: {JobState.COMPLETED},
    JobState.COMPLETED: set(),
    JobState.CANCELLED: set(),
    JobState.FAILED: set(),
    JobState.TIMEOUT: set(),
    JobState.PREEMPTED: set(),
    JobState.DEADLINE: set(),
    JobState.BOOT_FAIL: set(),
    JobState.NODE_FAIL: set(),
}

#: States from which a job will never run (again).
TERMINAL_STATES = frozenset(
    {
        JobState.COMPLETED,
        JobState.CANCELLED,
        JobState.FAILED,
        JobState.TIMEOUT,
        JobState.PREEMPTED,
        JobState.DEADLINE,
        JobState.BOOT_FAIL,
        JobState.NODE_FAIL,
    }
)


class JobClass(enum.Enum):
    """Feitelson & Rudolph job classification."""

    RIGID = "rigid"
    MOLDABLE = "moldable"
    MALLEABLE = "malleable"
    EVOLVING = "evolving"

    @property
    def is_flexible(self) -> bool:
        """Flexible = process count reconfigurable during execution."""
        return self in (JobClass.MALLEABLE, JobClass.EVOLVING)


@dataclass
class Job:
    """A schedulable (and possibly malleable) job."""

    name: str
    num_nodes: int
    time_limit: float
    job_class: JobClass = JobClass.RIGID
    #: DMR reconfiguration parameters; required for flexible jobs.
    resize_request: Optional[ResizeRequest] = None
    #: Opaque application payload (an AppModel for simulated executions).
    payload: Any = None
    #: Identifier; assigned by the controller at submission.
    job_id: int = -1
    state: JobState = JobState.PENDING
    submit_time: Optional[float] = None
    start_time: Optional[float] = None
    end_time: Optional[float] = None
    #: Static priority boost (resizer jobs and shrink beneficiaries get a
    #: very large one, per the paper's "maximum priority").
    priority_boost: float = 0.0
    #: True for the transient resizer jobs of the expand protocol.
    is_resizer: bool = False
    #: Flexible submission (the paper's future work): allow the scheduler
    #: to start this job below its submitted size, down to
    #: ``resize_request.min_procs``.  Combines with MALLEABLE for jobs
    #: that are both moldable at start and reconfigurable at runtime.
    moldable_start: bool = False
    #: Parent job (for resizer jobs: the job being expanded).
    parent_id: Optional[int] = None
    #: Dependency: job_id that must be running/complete before this starts.
    dependency: Optional[int] = None
    #: Nodes currently assigned (maintained by the controller).
    nodes: Tuple[int, ...] = ()
    #: Resize history: (time, old_size, new_size) triples.
    resizes: List[Tuple[float, int, int]] = field(default_factory=list)
    #: Node count the job was originally submitted with.
    submitted_nodes: int = field(default=-1)
    #: Walltime limit the job was submitted with.  Resizes rescale
    #: ``time_limit``; a requeue restores this original value so the
    #: fresh full-width incarnation is not scheduled against a limit
    #: anchored to a dead incarnation's elapsed time.
    submitted_time_limit: float = field(default=-1.0)
    #: How many times the job was requeued (node failures).
    requeues: int = 0
    #: Application progress captured by the job's last checkpoint write;
    #: a requeued job restarts from here when checkpointing is enabled.
    checkpoint_steps: int = 0

    def __post_init__(self) -> None:
        if self.num_nodes < 1:
            raise JobStateError(f"num_nodes must be >= 1, got {self.num_nodes}")
        if self.time_limit <= 0:
            raise JobStateError(f"time_limit must be positive, got {self.time_limit}")
        if self.submitted_nodes < 0:
            self.submitted_nodes = self.num_nodes
        if self.submitted_time_limit < 0:
            self.submitted_time_limit = self.time_limit
        if self.is_flexible and self.resize_request is None:
            raise JobStateError(f"flexible job {self.name!r} needs a resize_request")

    # -- classification -----------------------------------------------------
    @property
    def is_flexible(self) -> bool:
        return self.job_class.is_flexible

    # -- state machine --------------------------------------------------------
    def transition(self, new_state: JobState) -> None:
        if new_state not in _TRANSITIONS[self.state]:
            raise JobStateError(
                f"job {self.job_id} ({self.name}): illegal transition "
                f"{self.state.value} -> {new_state.value}"
            )
        self.state = new_state

    @property
    def is_terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    @property
    def is_pending(self) -> bool:
        return self.state is JobState.PENDING

    @property
    def is_running(self) -> bool:
        return self.state in (JobState.RUNNING, JobState.COMPLETING)

    # -- bookkeeping ------------------------------------------------------------
    def record_resize(self, time: float, new_size: int) -> None:
        self.resizes.append((time, self.num_nodes, new_size))
        self.num_nodes = new_size

    @property
    def expected_end(self) -> float:
        """Backfill planning horizon: start + walltime limit."""
        if self.start_time is None:
            raise JobStateError(f"job {self.job_id} has not started")
        return self.start_time + self.time_limit

    # -- paper metrics ----------------------------------------------------------
    @property
    def wait_time(self) -> float:
        """Queue time: submission to start."""
        if self.submit_time is None or self.start_time is None:
            raise JobStateError(f"job {self.job_id} missing submit/start time")
        return self.start_time - self.submit_time

    @property
    def execution_time(self) -> float:
        """Run time: start to end."""
        if self.start_time is None or self.end_time is None:
            raise JobStateError(f"job {self.job_id} missing start/end time")
        return self.end_time - self.start_time

    @property
    def completion_time(self) -> float:
        """The paper's 'completion time': waiting plus execution."""
        return self.wait_time + self.execution_time

    def __repr__(self) -> str:
        return (
            f"<Job {self.job_id} {self.name!r} {self.state.value} "
            f"nodes={self.num_nodes}>"
        )


def make_resizer(parent: Job, extra_nodes: int, time_limit: float = 3600.0) -> Job:
    """Build the transient resizer job used by the expand protocol.

    Per Section V-B: it requests the node difference, depends on the
    original job, and carries maximum priority so the RMS decision is
    honoured quickly.
    """
    if extra_nodes < 1:
        raise JobStateError(f"resizer needs >= 1 extra node, got {extra_nodes}")
    return Job(
        name=f"{parent.name}-resizer",
        num_nodes=extra_nodes,
        time_limit=time_limit,
        job_class=JobClass.RIGID,
        is_resizer=True,
        parent_id=parent.job_id,
        dependency=parent.job_id,
        priority_boost=float("inf"),
    )
