"""Multifactor job priority, as enabled in the paper's Slurm configuration.

The paper configures Slurm with the *multifactor* priority policy at
default values; the factors that matter for these workloads are job age
(FIFO fairness), job size, and the explicit "maximum priority" boost that
the reconfiguration machinery applies to resizer jobs and to the queued
job that triggered a shrink (Algorithm 1, line 18).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.slurm.job import Job


@dataclass(frozen=True)
class MultifactorConfig:
    """Weights of the Slurm multifactor plugin (defaults mirror Slurm's)."""

    weight_age: float = 1000.0
    weight_job_size: float = 1000.0
    #: Age at which the age factor saturates at 1.0 (PriorityMaxAge).
    max_age: float = 7 * 24 * 3600.0
    #: If True larger jobs get higher size factor (Slurm default favors
    #: large jobs to fight starvation).
    favor_big: bool = True

    def __post_init__(self) -> None:
        if self.max_age <= 0:
            raise ValueError(f"max_age must be positive, got {self.max_age}")


class MultifactorPriority:
    """Computes job priorities; higher value = scheduled earlier."""

    def __init__(self, config: MultifactorConfig, cluster_nodes: int) -> None:
        if cluster_nodes < 1:
            raise ValueError(f"cluster_nodes must be >= 1, got {cluster_nodes}")
        self.config = config
        self.cluster_nodes = cluster_nodes

    def age_factor(self, job: Job, now: float) -> float:
        if job.submit_time is None:
            return 0.0
        age = max(0.0, now - job.submit_time)
        return min(1.0, age / self.config.max_age)

    def size_factor(self, job: Job) -> float:
        frac = min(1.0, job.num_nodes / self.cluster_nodes)
        return frac if self.config.favor_big else 1.0 - frac

    def priority(self, job: Job, now: float) -> float:
        """Total priority including any explicit boost."""
        if job.priority_boost == float("inf"):
            return float("inf")
        return (
            self.config.weight_age * self.age_factor(job, now)
            + self.config.weight_job_size * self.size_factor(job)
            + job.priority_boost
        )

    def sort_queue(self, jobs: list[Job], now: float) -> list[Job]:
        """Stable priority order: descending priority, FIFO ties."""
        # Python's sort is stable; pre-sorting by submission order keeps
        # FIFO among equal priorities regardless of caller ordering.
        by_submit = sorted(
            jobs, key=lambda j: (j.submit_time if j.submit_time is not None else 0.0, j.job_id)
        )
        return sorted(by_submit, key=lambda j: self.priority(j, now), reverse=True)

    def sort_key(self, job: Job, now: float) -> tuple:
        """Total-order key whose ascending sort equals :meth:`sort_queue`.

        The age factor contributes ``weight_age * (now - submit)/max_age``
        to every unsaturated job; dropping the job-independent
        ``weight_age * now/max_age`` term leaves a key that does not
        change as the clock advances, which is what lets the incremental
        :class:`~repro.slurm.queue.PendingQueue` key each job once at
        submission instead of re-sorting per pass.

        The invariance breaks once a job's age factor saturates
        (``age >= max_age``): its priority freezes while younger jobs
        keep gaining.  A saturated job's key is therefore expressed on
        the same shifted scale but is only valid at this exact ``now``;
        the queue detects the first saturation and re-keys per timestamp
        from then on.
        """
        submit = job.submit_time if job.submit_time is not None else 0.0
        boost = job.priority_boost
        if boost == float("inf"):
            rel = float("-inf")
        else:
            cfg = self.config
            size = cfg.weight_job_size * self.size_factor(job)
            if max(0.0, now - submit) >= cfg.max_age:
                # Saturated: true priority is weight_age + size + boost.
                rel = -(
                    cfg.weight_age + size + boost
                    - cfg.weight_age * now / cfg.max_age
                )
            else:
                rel = -(size + boost - cfg.weight_age * submit / cfg.max_age)
        return (rel, submit, job.job_id)
