"""The ``slurmctld`` analogue: queueing, dispatch, resize bookkeeping.

The controller is event-driven: every submission, completion, cancellation
and shrink triggers a scheduling pass (priority sort + EASY backfill).
Running jobs are *driven from outside* — the Nanos++ runtime model (or a
test) executes the job and calls :meth:`SlurmController.finish_job` when it
completes, mirroring how real Slurm learns about job termination from the
node daemons.

**DMR core integration.** This module is the RMS side of the
:mod:`repro.core` protocol:

* :meth:`SlurmController.check_status` is the entry point a
  :class:`repro.core.dmr.DMRSession` (or a
  :class:`repro.core.protocol.RMSChannel` message exchange) invokes at a
  reconfiguring point.  It takes the application's
  :class:`~repro.core.actions.ResizeRequest`, evaluates Algorithm 1 via
  :class:`~repro.slurm.reconfig.ReconfigurationPolicy`, and answers with a
  :class:`~repro.core.actions.ResizeDecision` whose
  :class:`~repro.core.actions.DecisionReason` is recorded in the trace.
* :meth:`SlurmController.policy_view` snapshots the scheduler state that
  decision is computed against.  Asynchronous mode
  (``dmr_icheck_status``) deliberately passes a *stale* snapshot taken one
  step earlier — the staleness analysed in Fig. 6.
* :meth:`SlurmController.detach_all_nodes`, :meth:`SlurmController.grow_job`
  and :meth:`SlurmController.shrink_job` are the Section III Slurm API
  steps the runtime's resize protocol (:mod:`repro.slurm.resize`) drives
  after an affirmative decision; the runtime then wraps the result in a
  :class:`repro.core.handler.OffloadHandler` for data redistribution.
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field, replace
from itertools import count
from time import perf_counter
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.cluster.machine import Machine
from repro.cluster.node import NodeState
from repro.core.actions import (
    DecisionReason,
    ResizeAction,
    ResizeDecision,
    ResizeRequest,
)
from repro.errors import SchedulerError
from repro.metrics.trace import EventKind, Trace
from repro.obs.spans import Span
from repro.sim.engine import Environment
from repro.sim.events import Event
from repro.slurm.backfill import BF_MAX_JOB_TEST, plan_backfill
from repro.slurm.job import Job, JobState, TERMINAL_STATES
from repro.slurm.priority import MultifactorConfig, MultifactorPriority
from repro.slurm.queue import PendingQueue, SchedStats
from repro.slurm.reconfig import PolicyConfig, PolicyView, ReconfigurationPolicy


@dataclass(frozen=True)
class SlurmConfig:
    """Controller tunables (defaults mirror the paper's Slurm setup)."""

    priority: MultifactorConfig = field(default_factory=MultifactorConfig)
    policy: PolicyConfig = field(default_factory=PolicyConfig)
    #: Seconds an expansion waits for its resizer job before aborting
    #: (Section V-B: "If the waiting time reaches a threshold, RJ is
    #: canceled and the action is aborted").
    resizer_timeout: float = 30.0
    #: One-way latency of a runtime<->RMS API call.
    rpc_latency: float = 0.05
    #: Period of the backfill scheduler thread (Slurm's bf_interval).
    #: Event-driven passes are FIFO-only, exactly as in Slurm, where
    #: sched/backfill only runs periodically.
    backfill_interval: float = 30.0
    #: Kill jobs that exceed their walltime limit (Slurm's default
    #: behaviour; off by default here because the paper's workloads are
    #: well-behaved and malleable jobs rescale their limits on resize).
    enforce_time_limits: bool = False
    #: Use the incrementally-maintained pending queue and running-jobs
    #: expected-end index (O(k log n) per pass in jobs actually touched)
    #: instead of the legacy re-sort-everything-per-pass path.  Both
    #: produce byte-identical schedules (pinned by the golden-trace
    #: suite); the flag exists so benches and the golden tests can run
    #: the legacy scheduler for comparison.
    incremental_queue: bool = True
    #: Keep finished :class:`Job` records (and their start events) after
    #: completion.  Experiments need the archive for post-hoc metrics;
    #: million-job replays turn it off so controller memory stays
    #: proportional to the *live* jobs, not the whole trace
    #: (``finished_count`` still counts completions either way).
    retain_finished: bool = True


class SlurmController:
    """Workload manager: pending queue, running set, resize operations."""

    def __init__(
        self,
        env: Environment,
        machine: Machine,
        config: Optional[SlurmConfig] = None,
        trace: Optional[Trace] = None,
    ) -> None:
        self.env = env
        self.machine = machine
        self.config = config or SlurmConfig()
        self.trace = trace if trace is not None else Trace()
        self.priority_engine = MultifactorPriority(
            self.config.priority, machine.num_nodes
        )
        self.policy = ReconfigurationPolicy(self.config.policy)

        self._ids = count(1)
        self.pending: Dict[int, Job] = {}
        self.running: Dict[int, Job] = {}
        self.finished: List[Job] = []
        #: Completions seen so far (kept even when ``retain_finished`` is
        #: off and :attr:`finished` stays empty).
        self.finished_count = 0
        #: Hot-path instrumentation (read by ``repro bench sched``).
        self.stats = SchedStats()
        #: Span recorder (:class:`repro.obs.spans.Telemetry`), installed
        #: by ``Session.build`` when telemetry is enabled; None keeps
        #: the scheduling hot path free of any recording cost.
        self.telemetry = None
        #: Incremental priority queue (None in legacy resort-per-pass mode).
        self.queue: Optional[PendingQueue] = (
            PendingQueue(self.priority_engine, self.stats)
            if self.config.incremental_queue
            else None
        )
        # Running jobs ordered by (expected_end, start order) — the
        # accounting plan_backfill's shadow computation needs, maintained
        # incrementally on start/finish/resize instead of re-sorted per
        # backfill pass.
        self._end_keys: List[Tuple[float, int]] = []
        self._end_jobs: List[Job] = []
        self._end_key_of: Dict[int, Tuple[float, int]] = {}
        self._start_seq = count()
        #: Called with each newly started (non-resizer) job; the runtime
        #: layer installs a hook here that launches the job's execution.
        self.launcher: Optional[Callable[[Job], None]] = None
        self._start_events: Dict[int, Event] = {}
        #: Simulation process executing each running job (registered by
        #: the runtime layer; used to deliver time-limit kills).
        self.job_processes: Dict[int, object] = {}
        #: Forced resize decisions issued by node failures, keyed by job
        #: id; the runtime services them at the next reconfiguring point.
        self.forced: Dict[int, ResizeDecision] = {}
        #: Jobs whose runtime has taken a forced decision and is paying
        #: the evacuation costs (quiesce/spawn/redistribute) before the
        #: shrink lands; the invariant harness treats this window as a
        #: legitimate reason to still hold a DOWN node.
        self.evacuating: set = set()
        #: Hook restoring a requeued job's payload (the runtime layer
        #: installs checkpoint-aware restoration; the default restarts
        #: the application from scratch via ``payload.fresh_copy()``).
        self.requeue_restore: Optional[Callable[[Job], None]] = None
        self._pass_scheduled = False
        self._backfill_thread_alive = False

        machine.subscribe(self._on_alloc_change)

    # -- machine observer --------------------------------------------------
    def _on_alloc_change(self, used: int) -> None:
        self.trace.record(
            self.env.now, EventKind.ALLOC_CHANGE, nodes_used=used,
            nodes_total=self.machine.num_nodes,
        )

    # -- queue introspection -------------------------------------------------
    def pending_jobs(self, include_resizers: bool = True) -> List[Job]:
        """Pending queue in multifactor priority order."""
        if self.queue is not None:
            jobs = self.queue.ordered(self.env.now)
            if include_resizers:
                return jobs
            return [j for j in jobs if not j.is_resizer]
        jobs = [
            j
            for j in self.pending.values()
            if include_resizers or not j.is_resizer
        ]
        # Legacy path: every ordered view recomputes one priority per job.
        self.stats.key_evals += len(jobs)
        return self.priority_engine.sort_queue(jobs, self.env.now)

    # -- running-jobs expected-end index -------------------------------------
    def _running_insert(self, job: Job) -> None:
        key = (job.expected_end, next(self._start_seq))
        self.stats.running_end_evals += 1
        i = bisect_left(self._end_keys, key)
        self._end_keys.insert(i, key)
        self._end_jobs.insert(i, job)
        self._end_key_of[job.job_id] = key

    def _running_remove(self, job: Job) -> None:
        key = self._end_key_of.pop(job.job_id, None)
        if key is None:
            return
        i = bisect_left(self._end_keys, key)
        del self._end_keys[i]
        del self._end_jobs[i]

    def _running_reposition(self, job: Job) -> None:
        """Re-place a running job whose expected end changed (resize)."""
        key = self._end_key_of.pop(job.job_id, None)
        if key is None:
            return
        i = bisect_left(self._end_keys, key)
        del self._end_keys[i]
        del self._end_jobs[i]
        # Keep the original start sequence so ties among equal expected
        # ends resolve in start order, exactly like the legacy stable sort
        # over the running dict.
        new_key = (job.expected_end, key[1])
        self.stats.running_end_evals += 1
        i = bisect_left(self._end_keys, new_key)
        self._end_keys.insert(i, new_key)
        self._end_jobs.insert(i, job)
        self._end_key_of[job.job_id] = new_key

    def running_jobs(self) -> List[Job]:
        return list(self.running.values())

    def all_done(self) -> bool:
        """True when nothing is pending or running."""
        return not self.pending and not self.running

    def get_job(self, job_id: int) -> Job:
        for pool in (self.pending, self.running):
            if job_id in pool:
                return pool[job_id]
        for job in self.finished:
            if job.job_id == job_id:
                return job
        raise SchedulerError(f"unknown job id {job_id}")

    # -- submission / completion ------------------------------------------------
    def submit(self, job: Job) -> Job:
        """Enqueue a job; assigns its id and submit time."""
        if job.job_id != -1:
            raise SchedulerError(f"job {job.job_id} was already submitted")
        job.job_id = next(self._ids)
        job.submit_time = self.env.now
        self.pending[job.job_id] = job
        if self.queue is not None:
            self.queue.add(job, self.env.now)
        self._start_events[job.job_id] = Event(self.env)
        self.trace.record(
            self.env.now,
            EventKind.JOB_SUBMIT,
            job.job_id,
            name=job.name,
            nodes=job.num_nodes,
            flexible=job.is_flexible,
            resizer=job.is_resizer,
        )
        self.request_schedule()
        self._ensure_backfill_thread()
        return job

    def started_event(self, job: Job) -> Event:
        """Event fired (with the job) the moment the job starts running."""
        try:
            return self._start_events[job.job_id]
        except KeyError:
            raise SchedulerError(f"job {job.job_id} was never submitted") from None

    def finish_job(self, job: Job, state: JobState = JobState.COMPLETED) -> None:
        """Mark a running job as finished and release its nodes."""
        if job.job_id not in self.running:
            raise SchedulerError(f"job {job.job_id} is not running")
        if job.nodes:
            self.machine.release(job.job_id)
        job.nodes = ()
        job.transition(state)
        job.end_time = self.env.now
        del self.running[job.job_id]
        self._running_remove(job)
        self.forced.pop(job.job_id, None)
        self.evacuating.discard(job.job_id)
        self._archive(job)
        self.trace.record(
            self.env.now, EventKind.JOB_END, job.job_id, state=state.value
        )
        self.request_schedule()

    def _archive(self, job: Job) -> None:
        """Record a completion; lean mode drops the record immediately.

        With ``retain_finished`` off, the finished :class:`Job` and its
        start event are released so controller memory tracks the live
        jobs only (``job_processes`` is left to its owners — the bench
        replays that run lean never populate it).
        """
        self.finished_count += 1
        if self.config.retain_finished:
            self.finished.append(job)
        else:
            self._start_events.pop(job.job_id, None)

    def cancel_job(self, job: Job) -> None:
        """Cancel a pending or running job (releases any held nodes)."""
        if job.job_id in self.pending:
            del self.pending[job.job_id]
            if self.queue is not None:
                self.queue.discard(job)
            job.transition(JobState.CANCELLED)
            job.end_time = self.env.now
            self._archive(job)
        elif job.job_id in self.running:
            if job.nodes:
                self.machine.release(job.job_id)
            job.nodes = ()
            job.transition(JobState.CANCELLED)
            job.end_time = self.env.now
            del self.running[job.job_id]
            self._running_remove(job)
            self._archive(job)
            proc = self.job_processes.get(job.job_id)
            if (
                proc is not None
                and getattr(proc, "is_alive", False)
                and proc is not self.env.active_process
            ):
                proc.interrupt(cause="scancel")
        else:
            raise SchedulerError(f"job {job.job_id} cannot be cancelled")
        self.forced.pop(job.job_id, None)
        self.evacuating.discard(job.job_id)
        self.trace.record(self.env.now, EventKind.JOB_CANCEL, job.job_id)
        self.request_schedule()

    # -- scheduling ----------------------------------------------------------------
    def request_schedule(self) -> None:
        """Arrange a scheduling pass at the current timestamp (deduplicated)."""
        if self._pass_scheduled:
            return
        self._pass_scheduled = True
        tick = Event(self.env)
        tick.callbacks.append(self._scheduling_pass)
        tick._ok = True
        tick._value = None
        # Low priority: runs after all same-timestamp state changes settle.
        self.env.schedule(tick, priority=10)

    def _dependency_satisfied(self, job: Job) -> bool:
        if job.dependency is None:
            return True
        try:
            dep = self.get_job(job.dependency)
        except SchedulerError:
            if not self.config.retain_finished:
                # Lean mode drops finished jobs; an unknown dependency can
                # only be one that already completed.
                return True
            raise
        # "expand"-style dependency: parent must be running (or done).
        return dep.is_running or dep.state in TERMINAL_STATES

    def _scheduling_pass(self, _event: Event) -> None:
        """Event-driven pass: strict priority (FIFO) starts only.

        Mirrors Slurm's main scheduler, which does not backfill; lower
        priority jobs only jump the queue during the periodic backfill
        thread's pass (:meth:`_backfill_pass`).

        Incremental mode peeks at the priority heap's head and only
        checks a job out once it is known to start (or be skipped for an
        unsatisfied dependency) — O(k log n) in the k jobs that actually
        move, and O(1) with *zero* heap traffic for the common saturated
        case where the head does not fit.  Legacy mode re-sorts the whole
        queue, as the original controller did; both produce the same
        starts in the same order.
        """
        self._pass_scheduled = False
        if self.queue is None:
            self._scheduling_pass_legacy()
            return
        wall_t0 = perf_counter() if self.telemetry is not None else 0.0
        now = self.env.now
        free = self.machine.free_count
        examined = started = 0
        deferred: List[Job] = []  # dependency-unsatisfied, skipped over
        while True:
            job = self.queue.peek_head(now)
            if job is None:
                break
            examined += 1
            if not self._dependency_satisfied(job):
                self.queue.pop_head(now)
                deferred.append(job)
                continue
            if job.num_nodes > free:
                # Moldable jobs (the paper's future-work "flexible
                # submission") may start below their submitted size.
                fitted = self._moldable_fit(job, free)
                if fitted is None:
                    # Strict order: the blocked head stops the pass.  It
                    # was never checked out, so nothing is pushed back.
                    break
                self.queue.pop_head(now)
                job.num_nodes = fitted
            else:
                self.queue.pop_head(now)
            self._start_job(job)
            started += 1
            free -= job.num_nodes
        for job in deferred:
            self.queue.push_back(job)
        self._note_pass("fifo", examined, started, wall_t0)

    def _scheduling_pass_legacy(self) -> None:
        wall_t0 = perf_counter() if self.telemetry is not None else 0.0
        free = self.machine.free_count
        examined = started = 0
        for job in self.pending_jobs():
            examined += 1
            if not self._dependency_satisfied(job):
                continue
            if job.num_nodes > free:
                fitted = self._moldable_fit(job, free)
                if fitted is None:
                    break
                job.num_nodes = fitted
            self._start_job(job)
            started += 1
            free -= job.num_nodes
        self._note_pass("fifo", examined, started, wall_t0)

    def _note_pass(self, kind: str, examined: int, started: int,
                   wall_t0: float) -> None:
        """Tally a finished pass; span-record it when telemetry is on.

        A pass is instantaneous in simulated time (zero-duration span at
        ``env.now``); the measured wall-clock cost rides along as an
        attribute, which is what the bench's overhead pin watches.
        """
        self.stats.record_pass(kind, examined, started)
        if self.telemetry is not None:
            now = self.env.now
            self.telemetry.append(Span(
                "sched.pass", now, now, "sim", "scheduler",
                {"kind": kind, "examined": examined, "started": started,
                 "wall_us": (perf_counter() - wall_t0) * 1e6},
            ))

    def _moldable_fit(self, job: Job, free: int) -> Optional[int]:
        """Size a moldable job into ``free`` nodes (largest fit, or None).

        The paper's conclusions propose non-rigid submission: "giving a
        range of number of nodes required instead of a fixed value".  A
        moldable job starts at the largest factor-reachable size within
        [min_procs, submitted] that fits the free nodes.
        """
        from repro.slurm.job import JobClass

        moldable = job.job_class is JobClass.MOLDABLE or job.moldable_start
        if not moldable or job.resize_request is None:
            return None
        request = job.resize_request
        size = job.num_nodes
        candidates = [size] + list(request.shrink_sizes(size))
        for candidate in candidates:
            if candidate <= free and candidate >= request.min_procs:
                return candidate
        return None

    def _ensure_backfill_thread(self) -> None:
        if self._backfill_thread_alive or self.config.backfill_interval <= 0:
            return
        self._backfill_thread_alive = True
        self.env.process(self._backfill_loop(), name="slurm-backfill")

    def _backfill_loop(self):
        """The sched/backfill thread: one EASY pass per bf_interval.

        The thread parks itself when the system drains (``all_done``);
        :meth:`submit` restarts it on the next arrival, so an
        idle-then-burst workload keeps getting backfill passes.  The
        alive flag is cleared in a ``finally`` so a crashed pass can
        never permanently wedge the restart logic.
        """
        try:
            while not self.all_done():
                self._backfill_pass()
                yield self.env.timeout(self.config.backfill_interval)
        finally:
            self._backfill_thread_alive = False

    def _backfill_pass(self) -> None:
        if self.queue is None:
            self._backfill_pass_legacy()
            return
        wall_t0 = perf_counter() if self.telemetry is not None else 0.0
        # Pop candidates in priority order until bf_max_job_test eligible
        # ones are in hand (dependency-blocked jobs are skipped, exactly
        # like the legacy full-queue filter); everything the planner does
        # not start goes back with its cached key.
        eligible: List[Job] = []
        deferred: List[Job] = []
        while len(eligible) < BF_MAX_JOB_TEST:
            job = self.queue.pop_head(self.env.now)
            if job is None:
                break
            if self._dependency_satisfied(job):
                eligible.append(job)
            else:
                deferred.append(job)
        starts, _reservation = plan_backfill(
            eligible,
            self._end_jobs,
            self.machine.free_count,
            self.env.now,
            running_presorted=True,
            unreturnable=self.machine.held_unreturnable,
        )
        started_ids = {job.job_id for job in starts}
        for job in eligible:
            if job.job_id not in started_ids:
                self.queue.push_back(job)
        for job in deferred:
            self.queue.push_back(job)
        for job in starts:
            self._start_job(job)
        self._note_pass(
            "backfill", len(eligible) + len(deferred), len(starts), wall_t0
        )

    def _backfill_pass_legacy(self) -> None:
        wall_t0 = perf_counter() if self.telemetry is not None else 0.0
        pending = self.pending_jobs()
        eligible = [j for j in pending if self._dependency_satisfied(j)]
        running = self.running_jobs()
        starts, reservation = plan_backfill(
            eligible,
            running,
            self.machine.free_count,
            self.env.now,
            unreturnable=self.machine.held_unreturnable,
        )
        if reservation is not None:
            # compute_shadow sorted every running job (plus this pass's
            # picks) by expected end.
            self.stats.running_end_evals += len(running) + len(starts)
        for job in starts:
            self._start_job(job)
        self._note_pass("backfill", len(pending), len(starts), wall_t0)

    def _start_job(self, job: Job) -> None:
        nodes = self.machine.allocate(job.job_id, job.num_nodes)
        job.nodes = nodes
        job.transition(JobState.RUNNING)
        job.start_time = self.env.now
        del self.pending[job.job_id]
        if self.queue is not None:
            self.queue.discard(job)
        self.running[job.job_id] = job
        self._running_insert(job)
        self.trace.record(
            self.env.now,
            EventKind.JOB_START,
            job.job_id,
            nodes=job.num_nodes,
            node_ids=nodes,
            resizer=job.is_resizer,
        )
        self._start_events[job.job_id].succeed(job)
        if self.config.enforce_time_limits and not job.is_resizer:
            self.env.process(self._limit_enforcer(job), name=f"limit-{job.job_id}")
        if self.launcher is not None and not job.is_resizer:
            self.launcher(job)

    def _limit_enforcer(self, job: Job):
        """Kill the job when it exceeds its (possibly rescaled) limit."""
        while job.is_running:
            deadline = job.expected_end
            if self.env.now >= deadline:
                self.finish_job(job, JobState.TIMEOUT)
                proc = self.job_processes.get(job.job_id)
                if proc is not None and getattr(proc, "is_alive", False):
                    proc.interrupt(cause="time-limit")
                return
            yield self.env.timeout(deadline - self.env.now)

    def register_job_process(self, job: Job, process: object) -> None:
        """Let the runtime layer attach the process executing ``job``."""
        self.job_processes[job.job_id] = process

    # -- reconfiguration policy entry (used by the DMR API) --------------------
    def policy_view(self) -> PolicyView:
        """Snapshot of the scheduler state for a reconfiguration decision."""
        return PolicyView(
            free_nodes=self.machine.free_count,
            pending=tuple(self.pending_jobs(include_resizers=False)),
            running_count=len(self.running),
        )

    def check_status(
        self,
        job: Job,
        request: ResizeRequest,
        view: Optional[PolicyView] = None,
    ) -> ResizeDecision:
        """Evaluate Algorithm 1 for ``job``.

        ``view`` may be a stale snapshot (asynchronous mode); by default
        the current state is used (synchronous mode).
        """
        if job.job_id not in self.running:
            raise SchedulerError(f"job {job.job_id} is not running")
        if view is None:
            view = self.policy_view()
        request = self._effective_request(job, request)
        decision = self.policy.decide(job, request, view)
        self.trace.record(
            self.env.now,
            EventKind.RESIZE_DECISION,
            job.job_id,
            action=decision.action.value,
            target=decision.target_procs,
            reason=decision.reason.value,
            beneficiary=decision.beneficiary_job_id,
        )
        if (
            decision.action is ResizeAction.SHRINK
            and decision.beneficiary_job_id is not None
        ):
            # Foster the queued job that motivated the shrink
            # (Algorithm 1, line 18: set_max_priority(targetJobId)).
            beneficiary = self.pending.get(decision.beneficiary_job_id)
            if beneficiary is not None:
                beneficiary.priority_boost = float("inf")
                if self.queue is not None:
                    self.queue.reprioritize(beneficiary, self.env.now)
        return decision

    def _effective_request(self, job: Job, request: ResizeRequest) -> ResizeRequest:
        """Clamp a moldable-start job's growth at its submitted size.

        Flexible submission gives the scheduler the range
        ``[min_procs, submitted]`` to *start* the job in; the size the
        user submitted stays the ceiling for later grow decisions even
        though the application's own ``max_procs`` may be larger.
        Without the clamp, a job molded down at start could later expand
        past the allocation it was ever asked to have (the original
        submitted size was lost when ``_moldable_fit`` overwrote
        ``num_nodes``; ``Job.submitted_nodes`` preserves it).
        """
        if not job.moldable_start:
            return request
        ceiling = max(job.submitted_nodes, job.num_nodes, request.min_procs)
        if request.max_procs <= ceiling:
            return request
        preferred = request.preferred
        if preferred is not None and preferred > ceiling:
            preferred = ceiling
        return replace(request, max_procs=ceiling, preferred=preferred)

    # -- resize mechanics (Section III's Slurm API steps) ------------------------
    def detach_all_nodes(self, job: Job) -> Tuple[int, ...]:
        """Step 2 of the expand protocol: set a job's size to 0 nodes.

        Returns the node set, now free but intended for immediate transfer
        to the parent job.
        """
        if job.job_id not in self.running:
            raise SchedulerError(f"job {job.job_id} is not running")
        nodes = self.machine.release(job.job_id)
        job.nodes = ()
        return nodes

    def _rescale_time_limit(self, job: Job, old_size: int, new_size: int) -> None:
        """Update the walltime limit after a resize.

        The runtime knows the application keeps the same amount of work,
        so it rescales the *remaining* limit by the node ratio (the
        ``scontrol update TimeLimit`` a malleability-aware runtime issues).
        Without this, shrunk jobs overrun their limits and every backfill
        reservation computed from them is fiction.
        """
        if job.start_time is None:
            return
        elapsed = self.env.now - job.start_time
        remaining = max(0.0, job.time_limit - elapsed)
        job.time_limit = elapsed + remaining * (old_size / new_size)

    def grow_job(self, job: Job, node_ids: Tuple[int, ...]) -> None:
        """Step 4: attach specific (free) nodes to a running job."""
        if job.job_id not in self.running:
            raise SchedulerError(f"job {job.job_id} is not running")
        old_size = job.num_nodes
        self.machine.allocate_specific(job.job_id, node_ids)
        job.nodes = self.machine.nodes_of(job.job_id)
        self._rescale_time_limit(job, old_size, len(job.nodes))
        job.record_resize(self.env.now, len(job.nodes))
        self._running_reposition(job)
        self.trace.record(
            self.env.now,
            EventKind.RESIZE_EXPAND,
            job.job_id,
            new_size=job.num_nodes,
            added=tuple(node_ids),
        )

    def shrink_job(
        self,
        job: Job,
        new_size: int,
        victims: Optional[Sequence[int]] = None,
    ) -> Tuple[int, ...]:
        """Shrink a running job to ``new_size`` nodes (single-step update).

        ``victims`` pins which nodes are released (the forced-shrink path
        evacuates exactly the DOWN nodes); by default the highest-indexed
        nodes go, mirroring Slurm's keep-the-head-node behaviour.
        """
        if job.job_id not in self.running:
            raise SchedulerError(f"job {job.job_id} is not running")
        if not 1 <= new_size < job.num_nodes:
            raise SchedulerError(
                f"job {job.job_id}: invalid shrink {job.num_nodes} -> {new_size}"
            )
        count_out = job.num_nodes - new_size
        if victims is None:
            victims = self.machine.shrink_candidates(job.job_id, count_out)
        elif len(victims) != count_out:
            raise SchedulerError(
                f"job {job.job_id}: shrink to {new_size} must release "
                f"{count_out} nodes, got victims {tuple(victims)}"
            )
        released = self.machine.release(job.job_id, victims)
        self.evacuating.discard(job.job_id)
        job.nodes = self.machine.nodes_of(job.job_id)
        self._rescale_time_limit(job, job.num_nodes, new_size)
        job.record_resize(self.env.now, new_size)
        self._running_reposition(job)
        self.trace.record(
            self.env.now,
            EventKind.RESIZE_SHRINK,
            job.job_id,
            new_size=new_size,
            released=released,
        )
        self.request_schedule()
        return released

    def update_time_limit(self, job: Job, time_limit: float) -> None:
        """``scontrol update TimeLimit``: change a job's walltime limit.

        Routed through the controller (rather than poking the job) so the
        running-jobs expected-end index stays consistent.
        """
        if time_limit <= 0:
            raise SchedulerError(f"time limit must be positive, got {time_limit}")
        if job.state in TERMINAL_STATES:
            # Real Slurm: "scontrol update" on a finished job fails with
            # "Job/step already completing or completed".
            raise SchedulerError(
                f"job {job.job_id} is already {job.state.value}; "
                "cannot update its time limit"
            )
        job.time_limit = time_limit
        # An operator update establishes the job's new baseline limit:
        # like real Slurm, it survives a requeue (unlike the runtime's
        # resize rescaling, which is anchored to one incarnation's
        # elapsed time and must not).
        job.submitted_time_limit = time_limit
        if job.job_id in self.running:
            self._running_reposition(job)

    # -- node health / fault handling (:mod:`repro.faults`) ------------------
    def _forced_shrink_serviceable(self, job: Job) -> bool:
        """Whether the job's runtime will actually service a forced shrink.

        The gate must match the runtime's own reconfiguring-point
        condition: a job whose application carries no resize support
        never reaches a reconfiguring point, so parking a forced
        decision on it would let it compute on a dead node forever.
        Payload-less jobs (bare-controller tests driving resizes by
        hand) are trusted.
        """
        if not job.is_flexible or job.resize_request is None:
            return False
        if job.payload is None:
            return True
        return getattr(job.payload, "resize", None) is not None

    def fail_node(self, node_index: int) -> bool:
        """A node died: take it DOWN and make its holder react.

        * A free node simply leaves the allocatable pool.
        * A resizer holding the node is cancelled (its expansion aborts).
        * A rigid job is requeued — it restarts from scratch (or from its
          last checkpoint when the runtime enables checkpointing).
        * A flexible job receives a *forced shrink*
          (:attr:`~repro.core.actions.DecisionReason.NODE_FAILURE`) that
          its runtime services at the next reconfiguring point, shrinking
          away from the dying node instead of dying with it — unless the
          shrink would take it below ``min_procs``, in which case it is
          requeued like a rigid job.

        Returns False (a no-op, no trace event) when the node is already
        DOWN — a fault plan may sample the same node twice.
        """
        if self.machine.nodes[node_index].state is NodeState.DOWN:
            return False
        holder = self.machine.fail_node(node_index)
        node = self.machine.nodes[node_index]
        self.trace.record(
            self.env.now,
            EventKind.NODE_FAIL,
            holder,
            node=node_index,
            hostname=node.hostname,
        )
        if holder is None:
            return True
        job = self.running.get(holder)
        if job is None:  # pragma: no cover - machine/controller desync guard
            raise SchedulerError(f"node {node_index} held by unknown job {holder}")
        if job.is_resizer:
            self.cancel_job(job)
            return True
        dead = self.machine.down_nodes_of(job.job_id)
        target = job.num_nodes - len(dead)
        request = job.resize_request
        if (
            self._forced_shrink_serviceable(job)
            and target >= max(1, request.min_procs)
        ):
            decision = ResizeDecision(
                ResizeAction.SHRINK, target, DecisionReason.NODE_FAILURE
            )
            # A further failure before the pending forced shrink is
            # serviced *supersedes* it (one shrink will evacuate both
            # dead nodes): update the decision but record no second
            # RESIZE_DECISION, so the trace stays one-decision-one-ack
            # and the forced-shrink counts match actual evacuations.
            supersedes = job.job_id in self.forced
            self.forced[job.job_id] = decision
            if not supersedes:
                self.trace.record(
                    self.env.now,
                    EventKind.RESIZE_DECISION,
                    job.job_id,
                    action=decision.action.value,
                    target=target,
                    reason=decision.reason.value,
                    beneficiary=None,
                )
        else:
            self.requeue_job(job, reason="node_failure")
        return True

    def recover_node(self, node_index: int) -> None:
        """A node was repaired; it rejoins the pool once unheld."""
        restored = self.machine.recover_node(node_index)
        self.trace.record(
            self.env.now,
            EventKind.NODE_RECOVER,
            None,
            node=node_index,
            deferred=not restored,
        )
        if restored:
            self.request_schedule()

    def drain_node(self, node_index: int) -> None:
        """Operator drain: running work finishes, no new work lands."""
        self.machine.drain_node(node_index)
        self.trace.record(
            self.env.now, EventKind.NODE_DRAIN, None, node=node_index
        )

    def resume_node(self, node_index: int) -> None:
        """Lift an operator drain."""
        self.machine.resume_node(node_index)
        self.trace.record(
            self.env.now, EventKind.NODE_RESUME, None, node=node_index
        )
        self.request_schedule()

    def requeue_job(self, job: Job, reason: str = "node_failure") -> None:
        """Send a running job back to the pending queue (Slurm requeue).

        The incarnation's process is interrupted, in-flight resizer
        children are cancelled, held nodes are released (dead ones stay
        out of the pool), and the job re-enters the queue at its original
        submit time with its payload restored via :attr:`requeue_restore`
        (default: restart from scratch).
        """
        if job.job_id not in self.running:
            raise SchedulerError(f"job {job.job_id} is not running")
        proc = self.job_processes.pop(job.job_id, None)
        if (
            proc is not None
            and getattr(proc, "is_alive", False)
            and proc is not self.env.active_process
        ):
            proc.interrupt(cause="requeue")
        for other in list(self.pending.values()) + list(self.running.values()):
            if other.is_resizer and other.parent_id == job.job_id:
                self.cancel_job(other)
        if job.nodes:
            self.machine.release(job.job_id)
        job.nodes = ()
        del self.running[job.job_id]
        self._running_remove(job)
        self.forced.pop(job.job_id, None)
        self.evacuating.discard(job.job_id)
        job.transition(JobState.PENDING)
        job.start_time = None
        job.num_nodes = job.submitted_nodes
        job.time_limit = job.submitted_time_limit
        job.requeues += 1
        if self.requeue_restore is not None:
            self.requeue_restore(job)
        else:
            fresh = getattr(job.payload, "fresh_copy", None)
            if callable(fresh):
                job.payload = fresh()
        self.pending[job.job_id] = job
        if self.queue is not None:
            self.queue.add(job, self.env.now)
        self._start_events[job.job_id] = Event(self.env)
        self.trace.record(
            self.env.now,
            EventKind.JOB_REQUEUE,
            job.job_id,
            reason=reason,
            requeues=job.requeues,
        )
        self.request_schedule()
        self._ensure_backfill_thread()

    def take_forced(self, job: Job) -> Optional[ResizeDecision]:
        """Pop the pending forced decision for ``job``, if any.

        The shrink target is recomputed against the job's *current* DOWN
        node count: failures and policy shrinks between issue and service
        can both move it.  The returned target may therefore have fallen
        below ``min_procs`` (e.g. a policy shrink released the healthy
        nodes first) — the caller must requeue the job instead of
        shrinking when that happens (``NanosRuntime`` does).
        """
        decision = self.forced.pop(job.job_id, None)
        if decision is None:
            return None
        dead = self.machine.down_nodes_of(job.job_id)
        if not dead:  # pragma: no cover - defensive; cannot heal while held
            return None
        target = job.num_nodes - len(dead)
        if target != decision.target_procs:
            decision = ResizeDecision(
                ResizeAction.SHRINK, target, DecisionReason.NODE_FAILURE
            )
        self.evacuating.add(job.job_id)
        return decision
