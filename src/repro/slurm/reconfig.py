"""The resource-selection plug-in realizing the paper's Algorithm 1.

The policy has three modes, in decreasing precedence (Section IV):

1. **Request an action** — the application "strongly suggests" an action by
   submitting a minimum above (or a maximum below) its current size.
2. **Preferred number of nodes** — steer the job toward its preferred size;
   with an empty queue the job may instead grow to its maximum.
3. **Wide optimization** — expand into idle resources when no queued job
   could use them, shrink when that lets a queued job start (the queued job
   is then boosted to maximum priority).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Literal, Optional, Tuple

from repro.core.actions import (
    DecisionReason,
    ResizeAction,
    ResizeDecision,
    ResizeRequest,
)
from repro.slurm.job import Job


@dataclass(frozen=True)
class PolicyView:
    """Snapshot of the system state a decision is based on.

    In synchronous mode the view is taken at the DMR call; in asynchronous
    mode it is the (possibly stale) view captured one step earlier, which
    is exactly the effect Section VIII-C analyses.
    """

    free_nodes: int
    #: Pending non-resizer jobs in priority order (head first).
    pending: Tuple[Job, ...] = ()
    #: Number of running jobs (including the caller).
    running_count: int = 1

    def __post_init__(self) -> None:
        if self.free_nodes < 0:
            raise ValueError(f"free_nodes must be >= 0, got {self.free_nodes}")


@dataclass(frozen=True)
class PolicyConfig:
    """Tunables of the reconfiguration plug-in."""

    #: How far to shrink when releasing resources for a queued job:
    #: ``deepest`` goes to the smallest reachable size that satisfies the
    #: queued job (a literal reading of the paper's min_procs_run),
    #: ``minimal`` frees just enough nodes (the balance the paper's
    #: narratives exhibit; the ablation bench compares both).
    shrink_mode: Literal["deepest", "minimal"] = "minimal"
    #: Whether the wide-optimization branch may expand a job while other
    #: jobs are pending (Algorithm 1, lines 19-21 literally).  Slurm is
    #: "ultimately responsible for granting the operation according to
    #: the overall system status"; granting such expansions lets running
    #: jobs re-grab every node a shrink frees and starves wide pending
    #: jobs, so the default grant policy vetoes them.  The ablation bench
    #: measures the literal variant.
    expand_with_pending: bool = False
    #: Which queued jobs a shrink may benefit: only the queue head ("the
    #: next eligible job pending in the queue", Fig. 12's narrative) or
    #: any queued job (a literal reading of Algorithm 1's line 15).
    #: Head-only keeps shrink-triggered starts consistent with the
    #: backfill reservation of the highest-priority job; "any" lets
    #: boosted beneficiaries jump wide head jobs indefinitely.
    shrink_beneficiary: Literal["head", "any"] = "head"


class ReconfigurationPolicy:
    """Algorithm 1 of the paper as a deterministic decision function."""

    def __init__(self, config: PolicyConfig | None = None) -> None:
        self.config = config or PolicyConfig()

    # -- public entry ------------------------------------------------------
    def decide(
        self,
        job: Job,
        request: ResizeRequest,
        view: PolicyView,
    ) -> ResizeDecision:
        """Produce the expand/shrink/no-action decision for ``job``."""
        current = job.num_nodes

        requested = self._requested_action(current, request, view)
        if requested is not None:
            return requested

        if request.preferred is not None:
            return self._preferred_mode(job, current, request, view)
        return self._wide_optimization(job, current, request, view)

    # -- mode 1: request an action ------------------------------------------
    def _requested_action(
        self, current: int, request: ResizeRequest, view: PolicyView
    ) -> Optional[ResizeDecision]:
        if request.min_procs > current:
            # The application demands growth to at least min_procs.
            target = request.max_procs_to(current, request.max_procs, view.free_nodes)
            if target is not None and target >= request.min_procs:
                return ResizeDecision(
                    ResizeAction.EXPAND, target, DecisionReason.REQUESTED_ACTION
                )
            return ResizeDecision.no_action(current, DecisionReason.NO_RESOURCES)
        if request.max_procs < current:
            # The application demands shrinking to at most max_procs.
            for size in request.shrink_sizes(current):
                if size <= request.max_procs:
                    return ResizeDecision(
                        ResizeAction.SHRINK, size, DecisionReason.REQUESTED_ACTION
                    )
            return ResizeDecision.no_action(current, DecisionReason.NO_RESOURCES)
        return None

    # -- mode 2: preferred number of nodes ---------------------------------
    def _preferred_mode(
        self, job: Job, current: int, request: ResizeRequest, view: PolicyView
    ) -> ResizeDecision:
        preferred = request.preferred
        assert preferred is not None

        if not view.pending:
            # "No outstanding job in the queue": growth up to the maximum
            # is allowed (Algorithm 1, lines 2-4).
            target = request.max_procs_to(current, request.max_procs, view.free_nodes)
            if target is not None and target > current:
                return ResizeDecision(
                    ResizeAction.EXPAND, target, DecisionReason.ALONE_IN_SYSTEM
                )
            return ResizeDecision.no_action(current, DecisionReason.ALONE_IN_SYSTEM)

        if preferred == current:
            # Desired size already achieved (Section IV-2).
            return ResizeDecision.no_action(current, DecisionReason.PREFERRED_REACHED)

        if preferred > current:
            target = request.max_procs_to(current, preferred, view.free_nodes)
            if target is not None and target > current:
                return ResizeDecision(
                    ResizeAction.EXPAND, target, DecisionReason.EXPAND_TO_PREFERRED
                )
        else:
            if preferred in request.shrink_sizes(current):
                return ResizeDecision(
                    ResizeAction.SHRINK, preferred, DecisionReason.SHRINK_TO_PREFERRED
                )
        # Preferred unreachable: fall through to wide optimization
        # (Algorithm 1, line 13 onward).
        return self._wide_optimization(job, current, request, view)

    # -- mode 3: wide optimization ------------------------------------------
    def _wide_optimization(
        self, job: Job, current: int, request: ResizeRequest, view: PolicyView
    ) -> ResizeDecision:
        if view.pending:
            # If some queued job already fits in the free nodes, take no
            # action: the scheduler will start it, and expanding now would
            # steal its resources.
            if any(p.num_nodes <= view.free_nodes for p in view.pending):
                return ResizeDecision.no_action(current, DecisionReason.PENDING_FITS)
            shrink = self._shrink_for_pending(current, request, view)
            if shrink is not None:
                return shrink
            # No queued job can be helped.  Algorithm 1 (lines 19-21) then
            # grows into the idle nodes; the default grant policy vetoes
            # that while jobs are pending so freed nodes can accumulate
            # for wide queued jobs (see PolicyConfig.expand_with_pending).
            if self.config.expand_with_pending:
                target = request.max_procs_to(
                    current, request.max_procs, view.free_nodes
                )
                if target is not None and target > current:
                    return ResizeDecision(
                        ResizeAction.EXPAND,
                        target,
                        DecisionReason.EXPAND_IDLE_RESOURCES,
                    )
            return ResizeDecision.no_action(current, DecisionReason.NO_RESOURCES)

        # Empty queue: expand to the job maximum (lines 22-24).
        target = request.max_procs_to(current, request.max_procs, view.free_nodes)
        if target is not None and target > current:
            return ResizeDecision(
                ResizeAction.EXPAND, target, DecisionReason.EXPAND_IDLE_RESOURCES
            )
        return ResizeDecision.no_action(current, DecisionReason.NO_RESOURCES)

    def _shrink_for_pending(
        self, current: int, request: ResizeRequest, view: PolicyView
    ) -> Optional[ResizeDecision]:
        """Find the highest-priority queued job this job could unblock."""
        shrink_sizes = request.shrink_sizes(current)  # descending
        if not shrink_sizes:
            return None
        max_freeable = current - shrink_sizes[-1]
        candidates = (
            view.pending[:1]
            if self.config.shrink_beneficiary == "head"
            else view.pending
        )
        for target_job in candidates:
            needed = target_job.num_nodes - view.free_nodes
            if needed <= 0:
                continue  # handled by the fits-already guard
            if needed > max_freeable:
                continue  # even the deepest shrink would not unblock it
            if self.config.shrink_mode == "deepest":
                size = shrink_sizes[-1]
            else:
                # Smallest release that still lets the target start.
                size = next(s for s in shrink_sizes if current - s >= needed)
            return ResizeDecision(
                ResizeAction.SHRINK,
                size,
                DecisionReason.SHRINK_FOR_PENDING,
                beneficiary_job_id=target_job.job_id,
            )
        return None
