"""Job accounting (the ``sacct`` analogue).

Builds per-job records and aggregate statistics from finished jobs —
what a site administrator would query to evaluate the adaptive-workload
deployment the paper proposes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.metrics.report import format_table
from repro.slurm.job import Job, JobState


@dataclass(frozen=True)
class JobRecord:
    """One accounting row."""

    job_id: int
    name: str
    job_class: str
    state: str
    submit_time: float
    start_time: Optional[float]
    end_time: Optional[float]
    submitted_nodes: int
    final_nodes: int
    resize_count: int
    wait_time: Optional[float]
    elapsed: Optional[float]
    #: Node-seconds actually allocated over the job's lifetime.
    node_seconds: float

    @staticmethod
    def from_job(job: Job) -> "JobRecord":
        wait = elapsed = None
        if job.start_time is not None:
            wait = job.start_time - (job.submit_time or 0.0)
            if job.end_time is not None:
                elapsed = job.end_time - job.start_time
        return JobRecord(
            job_id=job.job_id,
            name=job.name,
            job_class=job.job_class.value,
            state=job.state.value,
            submit_time=job.submit_time if job.submit_time is not None else 0.0,
            start_time=job.start_time,
            end_time=job.end_time,
            submitted_nodes=job.submitted_nodes,
            final_nodes=job.num_nodes,
            resize_count=len(job.resizes),
            wait_time=wait,
            elapsed=elapsed,
            node_seconds=_node_seconds(job),
        )


def _node_seconds(job: Job) -> float:
    """Integrate allocated nodes over the job's run, honouring resizes."""
    if job.start_time is None or job.end_time is None:
        return 0.0
    total = 0.0
    t, size = job.start_time, job.submitted_nodes
    for when, old, new in job.resizes:
        total += old * (when - t)
        t, size = when, new
    total += size * (job.end_time - t)
    return total


class Accounting:
    """Aggregates job records into site-level statistics."""

    def __init__(self, jobs: Sequence[Job], include_resizers: bool = False) -> None:
        self.records: List[JobRecord] = [
            JobRecord.from_job(j)
            for j in jobs
            if include_resizers or not j.is_resizer
        ]

    def __len__(self) -> int:
        return len(self.records)

    def completed(self) -> List[JobRecord]:
        return [r for r in self.records if r.state == JobState.COMPLETED.value]

    def by_state(self, state: JobState) -> List[JobRecord]:
        return [r for r in self.records if r.state == state.value]

    def total_node_seconds(self) -> float:
        return sum(r.node_seconds for r in self.records)

    def total_resizes(self) -> int:
        return sum(r.resize_count for r in self.records)

    def mean_wait(self) -> float:
        waits = [r.wait_time for r in self.records if r.wait_time is not None]
        return sum(waits) / len(waits) if waits else 0.0

    def sacct_table(self) -> str:
        """Render an ``sacct``-style listing."""
        rows = [
            [
                r.job_id,
                r.name,
                r.job_class,
                r.state,
                f"{r.submit_time:.0f}",
                "-" if r.start_time is None else f"{r.start_time:.0f}",
                "-" if r.end_time is None else f"{r.end_time:.0f}",
                f"{r.submitted_nodes}->{r.final_nodes}",
                r.resize_count,
                f"{r.node_seconds:.0f}",
            ]
            for r in sorted(self.records, key=lambda r: r.job_id)
        ]
        return format_table(
            [
                "jobid", "name", "class", "state", "submit", "start",
                "end", "nodes", "resizes", "node-sec",
            ],
            rows,
            title="sacct",
        )
