"""Checkpoint/restart reconfiguration baseline (the Fig. 1 comparator)."""

from repro.checkpoint.cr import (
    CheckpointRestart,
    CRConfig,
    DMRReconfiguration,
    ReconfigurationCost,
    spawning_factor,
)

__all__ = [
    "CRConfig",
    "CheckpointRestart",
    "DMRReconfiguration",
    "ReconfigurationCost",
    "spawning_factor",
]
