"""The checkpoint/restart (C/R) reconfiguration baseline (Fig. 1).

The paper motivates the DMR API by comparing it against reconfiguring a
job through checkpointing: save the application state to the shared
filesystem, terminate, resubmit at the new size, reload the state.  The
"spawning" phase of C/R is 30-80x more expensive than DMR's runtime data
redistribution because of the disk round-trip and the full job relaunch.

Both cost models below share the cluster's performance models, so the
comparison isolates exactly the mechanism difference:

* :class:`CheckpointRestart` — write(all ranks) + cancel/requeue +
  job relaunch + read(new ranks);
* :class:`DMRReconfiguration` — resize protocol RPC + ``MPI_Comm_spawn``
  + network redistribution (Listing 3 plans).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.cluster.configs import ClusterConfig
from repro.errors import CheckpointError
from repro.runtime.redistribution import plan_for_resize


@dataclass(frozen=True)
class CRConfig:
    """Checkpoint/restart mechanism parameters."""

    #: Cancel + resubmit + scheduler dispatch of the restarted job.  Slurm
    #: requeue and re-dispatch is tens of seconds even on an idle system.
    requeue_latency: float = 25.0
    #: Full-job relaunch cost per process (srun/prolog/daemon setup is far
    #: heavier than an in-job MPI_Comm_spawn).
    relaunch_per_process: float = 0.5
    #: Fixed relaunch overhead.
    relaunch_base: float = 2.0

    def __post_init__(self) -> None:
        if self.requeue_latency < 0 or self.relaunch_base < 0:
            raise CheckpointError("latencies must be >= 0")
        if self.relaunch_per_process < 0:
            raise CheckpointError("relaunch_per_process must be >= 0")


@dataclass(frozen=True)
class ReconfigurationCost:
    """Per-phase breakdown of one reconfiguration."""

    mechanism: str
    old_procs: int
    new_procs: int
    phases: Dict[str, float] = field(default_factory=dict)

    @property
    def total(self) -> float:
        return sum(self.phases.values())

    def __getitem__(self, phase: str) -> float:
        return self.phases[phase]


def _check(state_bytes: float, old: int, new: int) -> None:
    if old < 1 or new < 1:
        raise CheckpointError(f"process counts must be >= 1: {old} -> {new}")
    if state_bytes < 0:
        raise CheckpointError(f"negative state size {state_bytes}")


class CheckpointRestart:
    """Cost model of checkpoint-reconfigure-restart."""

    def __init__(self, cluster: ClusterConfig, config: CRConfig | None = None) -> None:
        self.cluster = cluster
        self.config = config or CRConfig()

    def reconfigure(self, state_bytes: float, old: int, new: int) -> ReconfigurationCost:
        """Cost of resizing ``old`` -> ``new`` processes via C/R."""
        _check(state_bytes, old, new)
        cfg, fs = self.config, self.cluster.storage
        phases = {
            "checkpoint_write": fs.write_time(state_bytes, nclients=old),
            "requeue": cfg.requeue_latency,
            "relaunch": cfg.relaunch_base + cfg.relaunch_per_process * new,
            "checkpoint_read": fs.read_time(state_bytes, nclients=new),
        }
        return ReconfigurationCost("checkpoint-restart", old, new, phases)


class DMRReconfiguration:
    """Cost model of the DMR API's runtime reconfiguration.

    Mirrors exactly what :class:`repro.runtime.nanos.NanosRuntime` charges
    during a resize, packaged for side-by-side comparison.
    """

    def __init__(
        self,
        cluster: ClusterConfig,
        rpc_latency: float = 0.1,
        ack_base: float = 0.05,
        ack_per_node: float = 0.01,
    ) -> None:
        if rpc_latency < 0:
            raise CheckpointError("rpc_latency must be >= 0")
        if ack_base < 0 or ack_per_node < 0:
            raise CheckpointError("ACK costs must be >= 0")
        self.cluster = cluster
        self.rpc_latency = rpc_latency
        self.ack_base = ack_base
        self.ack_per_node = ack_per_node

    def reconfigure(self, state_bytes: float, old: int, new: int) -> ReconfigurationCost:
        """Cost of resizing ``old`` -> ``new`` processes via the DMR API."""
        _check(state_bytes, old, new)
        plan = plan_for_resize(old, new, state_bytes)
        phases = {
            "rms_negotiation": self.rpc_latency,
            "spawn": self.cluster.spawn.spawn_time(new),
            "redistribution": self.cluster.network.redistribution_time(
                plan.bytes_out, plan.bytes_in, messages=max(1, plan.message_count)
            ),
        }
        if new < old:
            # Synchronized shrink: releasing nodes ACK to the management
            # node before Slurm reclaims them (Section V-B2).
            phases["shrink_acks"] = self.ack_base + self.ack_per_node * (old - new)
        return ReconfigurationCost("dmr", old, new, phases)


def spawning_factor(
    cr: ReconfigurationCost, dmr: ReconfigurationCost
) -> float:
    """The Fig. 1 bar label: how much costlier C/R spawning is vs DMR."""
    if dmr.total <= 0:
        raise CheckpointError("DMR cost must be positive")
    return cr.total / dmr.total
