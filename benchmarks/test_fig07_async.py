"""Bench: Fig. 7 — the fixed-vs-flexible sweep under asynchronous mode.

Paper: async scheduling underperforms sync (their conclusion: "there is
no need of using an asynchronous scheduling"); small workloads can even
lose to fixed, larger ones retain a modest gain.
"""

from conftest import emit

from repro.experiments.fig03_sync import run_fig03
from repro.experiments.fig06_07_async import run_fig07


def test_fig07_fixed_vs_flexible_async(benchmark):
    result = benchmark.pedantic(run_fig07, rounds=1, iterations=1)
    emit(result.as_table())

    sync = run_fig03()
    async_gains = {r.num_jobs: r.gain for r in result.rows}
    sync_gains = {r.num_jobs: r.gain for r in sync.rows}

    # The paper's conclusion: async never meaningfully beats sync.
    for n in async_gains:
        assert async_gains[n] <= sync_gains[n] + 1.0, (n, async_gains, sync_gains)
    # The large workloads retain a (modest) positive gain.
    assert async_gains[400] > -5.0
