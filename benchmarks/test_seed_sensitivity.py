"""Robustness: the headline conclusions hold across workload seeds.

The paper reports single runs; this bench repeats the two headline
comparisons over several independently generated workloads and checks
the conclusions are not seed artifacts.
"""

import numpy as np
from conftest import emit

from repro.cluster import marenostrum_preliminary, marenostrum_production
from repro.experiments.common import run_paired
from repro.metrics.report import format_table
from repro.runtime import RuntimeConfig
from repro.workload import fs_workload, realapp_workload

SEEDS = (2017, 7, 13, 42, 99)


def run_sensitivity():
    fs_gains = []
    for seed in SEEDS:
        pair = run_paired(
            fs_workload(25, seed=seed),
            marenostrum_preliminary(),
            runtime_config=RuntimeConfig(),
        )
        fs_gains.append(pair.makespan_gain)

    real_gains = []
    real_wait_gains = []
    for seed in SEEDS:
        pair = run_paired(
            realapp_workload(50, seed=seed),
            marenostrum_production(),
            runtime_config=RuntimeConfig(),
        )
        real_gains.append(pair.makespan_gain)
        real_wait_gains.append(pair.wait_gain)

    table = format_table(
        ["experiment", "mean gain (%)", "min", "max", "std"],
        [
            ["FS 25-job makespan", np.mean(fs_gains), np.min(fs_gains),
             np.max(fs_gains), np.std(fs_gains)],
            ["real-app 50-job makespan", np.mean(real_gains),
             np.min(real_gains), np.max(real_gains), np.std(real_gains)],
            ["real-app 50-job waiting", np.mean(real_wait_gains),
             np.min(real_wait_gains), np.max(real_wait_gains),
             np.std(real_wait_gains)],
        ],
        title=f"Seed sensitivity over seeds {SEEDS}",
    )
    return fs_gains, real_gains, real_wait_gains, table


def test_seed_sensitivity(benchmark):
    fs_gains, real_gains, wait_gains, table = benchmark.pedantic(
        run_sensitivity, rounds=1, iterations=1
    )
    emit(table)

    # FS workloads: flexible wins on every seed.
    assert all(g > 0 for g in fs_gains), fs_gains
    # Real-app workloads: the >40% makespan and >50% waiting claims hold
    # on every seed, not just the headline one.
    assert all(g > 40.0 for g in real_gains), real_gains
    assert all(g > 50.0 for g in wait_gains), wait_gains
