"""Scheduler-scale benchmarks: the ``repro bench sched`` hot path.

Replays a 2k-job synthetic Feitelson trace (and its SWF round trip)
through a bare controller in both scheduler modes, timing the replay and
pinning the properties ``BENCH_sched.json`` advertises: identical
schedules, and an incremental hot path that does at least 5x less
comparison work than the legacy resort-per-pass scheduler.
"""

from repro.sweep.bench import autosize_cluster, replay_sched_trace, speedup_of
from repro.workload.generator import sched_trace, sched_trace_via_swf

TRACE_JOBS = 2_000
SEED = 2017

_TRACE = sched_trace(TRACE_JOBS, seed=SEED)


def test_sched_replay_incremental(benchmark):
    """Time the incremental scheduler on the 2k-job trace."""
    result = benchmark.pedantic(
        lambda: replay_sched_trace(_TRACE, incremental=True),
        rounds=3,
        iterations=1,
    )
    assert result["jobs_started"] == TRACE_JOBS


def test_sched_replay_legacy(benchmark):
    """Time the legacy resort-per-pass scheduler on the same trace."""
    result = benchmark.pedantic(
        lambda: replay_sched_trace(_TRACE, incremental=False),
        rounds=3,
        iterations=1,
    )
    assert result["jobs_started"] == TRACE_JOBS


def test_modes_agree_and_incremental_wins():
    incremental = replay_sched_trace(_TRACE, incremental=True)
    legacy = replay_sched_trace(_TRACE, incremental=False)
    # Behaviour-preserving: same schedule, pass for pass.
    assert incremental["makespan_s"] == legacy["makespan_s"]
    assert incremental["jobs_started"] == legacy["jobs_started"]
    assert incremental["passes"] == legacy["passes"]
    assert incremental["sim_events"] == legacy["sim_events"]
    # The acceptance bar: >= 5x less comparison work (measured ratios on
    # this trace are >50x; 5x leaves headroom for workload drift).
    ratios = speedup_of(legacy, incremental)
    assert ratios["comparisons_ratio"] >= 5.0
    assert ratios["key_evals_ratio"] >= 5.0


def test_swf_roundtrip_trace_replays():
    swf_trace = sched_trace_via_swf(_TRACE)
    assert len(swf_trace) == TRACE_JOBS
    result = replay_sched_trace(swf_trace, incremental=True)
    assert result["jobs_started"] == TRACE_JOBS
    assert result["max_queue_depth"] > 0  # the trace really queues


def test_autosized_cluster_builds_queue_pressure():
    nodes = autosize_cluster(_TRACE)
    assert nodes >= max(t.nodes for t in _TRACE)
    stats = replay_sched_trace(_TRACE, num_nodes=nodes, incremental=True)
    # Sustained pressure: some pass examined a deep queue.
    assert stats["max_queue_depth"] >= 50
