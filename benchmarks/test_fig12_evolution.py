"""Bench: Fig. 12 — evolution in time of the 50-job real-app workload.

Paper: the flexible rendition allocates fewer nodes (jobs scaled down to
their sweet spots) while running more jobs concurrently, and its
throughput overtakes the fixed one after the early phase.
"""

from conftest import emit


def test_fig12_realapp_evolution(benchmark, realapps_result):
    result = benchmark.pedantic(lambda: realapps_result, rounds=1, iterations=1)
    emit(result.fig12_text())

    row = result.row(50)
    fixed, flex = row.pair.fixed, row.pair.flexible

    # Fewer allocated nodes on average...
    assert (
        flex.allocation_series().average(0, flex.makespan)
        < fixed.allocation_series().average(0, fixed.makespan)
    )
    # ...with more jobs running concurrently.
    assert (
        flex.running_series().average(0, flex.makespan)
        > fixed.running_series().average(0, fixed.makespan)
    )
    # Jobs were scaled down as soon as possible: shrink events early on.
    from repro.metrics import EventKind

    shrinks = flex.trace.of_kind(EventKind.RESIZE_SHRINK)
    assert len(shrinks) >= 10
    # Throughput overtakes: flexible completes all 50 jobs first.
    assert flex.makespan < fixed.makespan
