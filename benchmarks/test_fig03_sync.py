"""Bench: Fig. 3 — fixed vs flexible FS workloads, synchronous mode.

Paper: flexible wins at every size; the 10-job workload gains the most
(near-full allocation, Fig. 4) and the benefit decreases as the finite
workload grows.
"""

from conftest import emit

from repro.experiments.fig03_sync import run_fig03


def test_fig03_fixed_vs_flexible_sync(benchmark):
    result = benchmark.pedantic(run_fig03, rounds=1, iterations=1)
    emit(result.as_table())

    gains = {r.num_jobs: r.gain for r in result.rows}
    # Flexible never loses.
    assert all(g > 0 for g in gains.values()), gains
    # The 10-job workload shows the outsized gain of Fig. 4.
    assert gains[10] > 25.0
    # Mid-size workloads sit in a clear positive band.
    assert gains[25] > 10.0
    # The benefit decreases as the workload grows (Section VIII-B).
    assert gains[10] > gains[50] > gains[400]
