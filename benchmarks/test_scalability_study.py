"""Bench: Section IX-A — individual application scalability.

The pre-study the paper uses to pick each application's "sweet
configuration spot": the derived sweet spots must equal the Table I
preferred values (8 for CG/Jacobi, 1 for N-body), with CG/Jacobi
classified "high scalability" (peak at 32) and N-body "constant
performance" (peak at 16, < 10% total gain).
"""

from conftest import emit

from repro.experiments.scalability import run_scalability


def test_scalability_prestudy(benchmark):
    result = benchmark.pedantic(run_scalability, rounds=1, iterations=1)
    emit(result.as_table())

    cg = result.row("cg")
    jac = result.row("jacobi")
    nb = result.row("nbody")

    # "High scalability": best speed-up at 32 processes...
    assert cg.peak_procs == 32
    assert jac.peak_procs == 32
    # ...but < 10% marginal gain from 8 on -> sweet spot 8.
    assert cg.sweet_spot == 8
    assert jac.sweet_spot == 8

    # "Constant performance": peak at 16, < 10% total gain -> spot 1.
    assert nb.peak_procs == 16
    assert nb.speedups[16] < 1.10
    assert nb.sweet_spot == 1

    # The derived sweet spots are exactly the Table I preferred values.
    for row in result.rows:
        assert row.sweet_spot == row.preferred, row.app_name
