"""Micro-benchmarks of the substrates themselves (timed for real).

These measure the reproduction's own machinery — DES event throughput,
MPI-substrate collective rates, malleable-kernel iteration cost — so
regressions in the simulator do not silently inflate "virtual" results'
wall-clock cost.
"""

import numpy as np

from repro.api import Session
from repro.apps.kernels import make_spd_system, run_cg
from repro.cluster import ClusterConfig
from repro.mpi import run_world


# The engine class, obtained once through the public facade.  The DES
# benches below want a *bare* environment in the timed path — facade
# assembly (machine + controller + launcher) per iteration would distort
# the event-throughput numbers they exist to pin.
_ENGINE = type(Session(cluster=ClusterConfig(num_nodes=1)).build().env)


def fresh_env():
    """A bare DES environment (no scheduler attached)."""
    return _ENGINE()


def test_des_event_throughput(benchmark):
    """Schedule-and-drain 20k timeout events."""

    def run():
        env = fresh_env()
        for i in range(20_000):
            env.timeout(float(i % 97))
        env.run()
        return env.now

    result = benchmark(run)
    assert result == 96.0


def test_des_process_switching(benchmark):
    """Two processes ping-pong through 2k events."""

    def run():
        env = fresh_env()
        hits = []

        def proc(offset):
            for i in range(1000):
                yield env.timeout(1.0)
                hits.append(offset + i)

        env.process(proc(0))
        env.process(proc(10_000))
        env.run()
        return len(hits)

    assert benchmark(run) == 2000


def test_mpi_allreduce_rate(benchmark):
    """1k allreduces across 8 in-process ranks."""

    def main(ctx):
        total = 0.0
        for _ in range(1000):
            total = yield ctx.allreduce(1.0, op="sum")
        return total

    def run():
        return run_world(8, main)

    results = benchmark(run)
    assert results == [8.0] * 8


def test_mpi_p2p_throughput(benchmark):
    """Stream 2k numpy messages rank0 -> rank1."""
    payload = np.arange(256.0)

    def main(ctx):
        if ctx.rank == 0:
            for _ in range(2000):
                yield ctx.send(1, payload)
            return None
        total = 0.0
        for _ in range(2000):
            msg = yield ctx.recv(source=0)
            total += msg[0]
        return total

    results = benchmark(lambda: run_world(2, main))
    assert results[1] == 0.0


def test_malleable_cg_end_to_end(benchmark):
    """Full malleable CG (expand mid-run) on a 64x64 system."""
    a, b = make_spd_system(64, seed=11)

    def run():
        return run_cg(a, b, 10, nprocs=2, schedule={5: 4})

    x = benchmark(run)
    assert np.all(np.isfinite(x))
