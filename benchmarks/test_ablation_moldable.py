"""Extension: flexible (moldable) submission — the paper's future work.

The conclusions propose that "resource utilization could still be
improved if the job submission was not rigid, but flexible by giving a
range of number of nodes required instead of a fixed value".  This bench
implements it: Section IX jobs submitted with a [min, max] range start
shrunk when the machine is busy instead of queueing for their maximum,
on top of runtime malleability.
"""

from dataclasses import replace

from conftest import emit

from repro.cluster import marenostrum_production
from repro.experiments.common import run_workload
from repro.metrics.report import format_table
from repro.runtime import RuntimeConfig
from repro.workload import realapp_workload


def run_moldable_study(num_jobs: int = 50, seed: int = 2017):
    cluster = marenostrum_production()
    runtime = RuntimeConfig()

    spec = realapp_workload(num_jobs, seed=seed)
    fixed = run_workload(spec, cluster, flexible=False, runtime_config=runtime)
    flexible = run_workload(spec, cluster, flexible=True, runtime_config=runtime)

    mold_spec = realapp_workload(num_jobs, seed=seed)
    mold_spec.jobs = [replace(s, moldable=True) for s in mold_spec.jobs]
    moldable = run_workload(mold_spec, cluster, flexible=True, runtime_config=runtime)

    rows = []
    for label, result in [
        ("fixed (rigid submission)", fixed),
        ("flexible (paper)", flexible),
        ("flexible + moldable submission (future work)", moldable),
    ]:
        s = result.summary
        rows.append(
            [label, s.makespan, s.avg_wait_time, s.avg_completion_time,
             100 * s.utilization_rate]
        )
    table = format_table(
        ["configuration", "makespan (s)", "avg wait (s)",
         "avg completion (s)", "utilization (%)"],
        rows,
        title=f"Future work: moldable submission ({num_jobs}-job real-app workload)",
    )
    return {"fixed": fixed, "flexible": flexible, "moldable": moldable}, table


def test_ablation_moldable_submission(benchmark):
    results, table = benchmark.pedantic(run_moldable_study, rounds=1, iterations=1)
    emit(table)

    fixed = results["fixed"].summary
    flexible = results["flexible"].summary
    moldable = results["moldable"].summary

    # The paper's malleability already wins big.
    assert flexible.makespan < 0.6 * fixed.makespan
    # Moldable submission removes the wait-for-maximum bottleneck: jobs
    # start (shrunk) as soon as their minimum fits, cutting waits further.
    assert moldable.avg_wait_time < flexible.avg_wait_time
    # And it must not cost makespan.
    assert moldable.makespan < 1.1 * flexible.makespan
