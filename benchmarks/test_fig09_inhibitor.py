"""Bench: Fig. 9 — inhibition periods on micro-step workloads.

Paper: with ~2 s steps, a DMR call at every iteration spends real time on
runtime<->RMS communication; the uninhibited flexible run can lose to the
fixed baseline, while a ~5 s inhibition period performs best.
"""

from conftest import emit

from repro.experiments.fig09_inhibitor import run_fig09


def test_fig09_inhibitor_periods(benchmark):
    result = benchmark.pedantic(run_fig09, rounds=1, iterations=1)
    emit(result.as_table())

    # At the largest workload, the uninhibited flexible run is the worst
    # flexible configuration (the paper observes negligible-or-negative).
    gains_100 = {
        (c.period if c.period is not None else "off"): c.gain
        for c in result.by_period(None) + result.cells
        if c.num_jobs == 100
    }
    uninhibited = result.cell(100, None).gain
    best_inhibited = max(
        result.cell(100, p).gain for p in (2.0, 5.0, 10.0, 20.0)
    )
    assert best_inhibited > uninhibited

    # A short inhibition period (2-5 s) beats the uninhibited run on the
    # bigger workloads.
    for n in (50, 100):
        assert max(
            result.cell(n, 2.0).gain, result.cell(n, 5.0).gain
        ) >= result.cell(n, None).gain
