"""Bench: the sweep engine — grid execution, store hits, aggregation.

Not a paper figure: this measures the PR-3 subsystem itself.  A small
FS seed-ensemble is executed through :class:`SweepRunner`, then served
again from the on-disk store; the reproduction shapes asserted are the
engine's contracts (deterministic aggregates, near-free cache hits,
positive flexible gains across the ensemble).
"""

from conftest import emit

from repro.store import ResultStore
from repro.sweep import Sweep, SweepRunner

GRID = Sweep.over(seeds=3, workloads=["fs"], num_jobs=[10, 25], nodes=[20])


def test_sweep_engine_and_store(benchmark, tmp_path):
    store = ResultStore(tmp_path / "store")

    def cold_run():
        store.clear()
        return SweepRunner(jobs=1, store=store).run(GRID)

    result = benchmark.pedantic(cold_run, rounds=1, iterations=1)
    aggregate = result.aggregate()
    emit(aggregate.as_table())

    # Every cell computed, none cached, grid order preserved.
    assert result.computed_cells == len(GRID) == 6
    assert [c.spec.seed for c in result.cells[:3]] == [2017, 2018, 2019]

    # A second pass is served entirely from the store and agrees byte
    # for byte with the computed aggregate.
    again = SweepRunner(jobs=1, store=store).run(GRID)
    assert again.cached_cells == len(GRID)
    assert again.aggregate().as_csv() == aggregate.as_csv()

    # The ensemble reproduces the paper's direction at every grid point:
    # flexible beats fixed on average makespan.
    stats = {(r.group, r.metric): r.stats for r in aggregate.rows}
    for group in ("workload=fs;num_jobs=10;nodes=20;policy=default",
                  "workload=fs;num_jobs=25;nodes=20;policy=default"):
        gain = stats[(group, "makespan_gain_pct")]
        assert gain.n == 3
        assert gain.mean > 0, (group, gain)
