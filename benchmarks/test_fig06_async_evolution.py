"""Bench: Fig. 6 — asynchronous scheduling of the 10-job workload.

Paper: asynchronous decisions are applied one step late; the applied
expansion targets reflect outdated system state (J3 expanding to 2 when
16 nodes had become free), wasting allocation windows relative to the
synchronous run.
"""

from conftest import emit

from repro.experiments.fig04_05_evolution import run_evolution
from repro.experiments.fig06_07_async import run_fig06
from repro.metrics import EventKind


def test_fig06_async_evolution_10_jobs(benchmark):
    result = benchmark.pedantic(run_fig06, rounds=1, iterations=1)
    emit(result.as_text())

    sync = run_evolution(10, async_mode=False)
    # Stale decisions cost allocation: async does not beat sync.
    assert result.pair.flexible.makespan >= sync.pair.flexible.makespan
    # The async machinery really resized jobs.
    resizes = result.pair.flexible.trace.of_kind(
        EventKind.RESIZE_EXPAND, EventKind.RESIZE_SHRINK
    )
    assert len(resizes) >= 1
