"""Bench: Fig. 11 — average job waiting times of the Section IX study.

Paper: flexible reduces the average waiting time by 66.9% / 69.3% /
60.7% / 56.4% for 50/100/200/400 jobs.  Reproduction target: >50%
reductions at every size, the dominant contribution to completion time.
"""

from conftest import emit


def test_fig11_realapp_waiting_times(benchmark, realapps_result):
    result = benchmark.pedantic(lambda: realapps_result, rounds=1, iterations=1)
    emit(result.fig11_table())

    for row in result.rows:
        assert row.wait_gain > 50.0, (row.num_jobs, row.wait_gain)
    # Waiting dominates fixed completion time (the paper's motivation).
    for row in result.rows:
        s = row.pair.fixed.summary
        assert s.avg_wait_time > s.avg_execution_time
