"""Bench: Fig. 4 — evolution in time of the 10-job workload.

Paper: the flexible rendition reaches an almost-full allocation of the
20 nodes, which is where its outsized gain comes from; its throughput
(completed jobs over time) is always at least the fixed one's.
"""

from conftest import emit

from repro.experiments.fig04_05_evolution import run_fig04


def test_fig04_evolution_10_jobs(benchmark):
    result = benchmark.pedantic(run_fig04, rounds=1, iterations=1)
    emit(result.as_text())

    # Near-full allocation for the flexible rendition (paper: almost-full).
    assert result.flexible_avg_allocation > 0.85 * 20
    # Far above the fixed rendition's.
    assert result.flexible_avg_allocation > 1.5 * result.fixed_avg_allocation

    # Flexible completes the workload sooner.
    flex, fixed = result.pair.flexible, result.pair.fixed
    assert flex.makespan < fixed.makespan

    # Throughput comparison at the flexible completion point.
    t = flex.makespan
    assert flex.completed_series().at(t) >= fixed.completed_series().at(t)
