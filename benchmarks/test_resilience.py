"""Resilience benchmark: C/R vs DMR under MTBF-sampled node failures.

Times the quick resilience comparison and pins its reproduction shape:
under node failures the DMR machinery (forced shrink away from the dying
node) completes strictly more of the workload by the common horizon than
the checkpoint/restart baseline (rollback + requeue + restart), while
the fault-free renditions of both mechanisms finish everything.
"""

from conftest import emit

from repro.experiments.resilience import (
    RESILIENCE_QUICK_MTBFS,
    run_resilience_quick,
)


def test_resilience_quick(benchmark):
    result = benchmark.pedantic(run_resilience_quick, rounds=3, iterations=1)
    emit(result.as_table())

    mtbf = min(RESILIENCE_QUICK_MTBFS)
    cr, dmr = result.row(mtbf, "cr"), result.row(mtbf, "dmr")
    # The headline claim, extended to faults: DMR completes strictly
    # more work than C/R when nodes die.
    assert cr.failures > 0
    assert dmr.completed_work > cr.completed_work
    # And it does so malleably: no requeue, only forced shrinks.
    assert dmr.forced_shrinks > 0
    assert cr.requeues > 0
    # Fault-free baselines both complete everything.
    assert result.row(None, "cr").work_fraction == 1.0
    assert result.row(None, "dmr").work_fraction == 1.0
    # Every run passed the live invariant checks.
    assert result.invariant_checks > 0
