"""Bench: Fig. 10 — real-application workload execution times.

Paper: flexible cuts the total execution time of the 50/100/200/400-job
CG+Jacobi+N-body workloads by 46.5% / 49.0% / 41.4% / 42.0%.
Reproduction target: gains above 40% at every size.
"""

from conftest import emit


def test_fig10_realapp_makespans(benchmark, realapps_result):
    result = benchmark.pedantic(lambda: realapps_result, rounds=1, iterations=1)
    emit(result.fig10_table())

    for row in result.rows:
        # The paper's headline: > 40% shorter workload execution time.
        assert row.makespan_gain > 40.0, (row.num_jobs, row.makespan_gain)
        # And in a plausible band (not a degenerate baseline).
        assert row.makespan_gain < 75.0
    # Fixed execution time grows with the workload size.
    makespans = [r.pair.fixed.makespan for r in result.rows]
    assert makespans == sorted(makespans)
