"""Ablation: reconfiguration cost sensitivity (beyond the paper).

Sweeps the two cost knobs that gate how aggressively malleability pays
off: the size of the redistributed state (network time per resize) and
the blocking cost of a synchronous DMR call (the overhead the Fig. 9
inhibitor exists to amortize).
"""

from dataclasses import replace

from conftest import emit

from repro.cluster import GiB, marenostrum_preliminary
from repro.experiments.common import run_paired
from repro.metrics.report import format_table
from repro.runtime import RuntimeConfig
from repro.workload import FSWorkloadConfig, fs_workload


def sweep_state_bytes(num_jobs: int = 25, seed: int = 2017):
    cluster = marenostrum_preliminary()
    rows = []
    gains = {}
    for label, nbytes in [
        ("no data", 0.0),
        ("1 GiB (paper)", 1.0 * GiB),
        ("8 GiB", 8.0 * GiB),
        ("64 GiB", 64.0 * GiB),
    ]:
        cfg = FSWorkloadConfig(state_bytes=nbytes)
        pair = run_paired(
            fs_workload(num_jobs, seed=seed, config=cfg),
            cluster,
            runtime_config=RuntimeConfig(),
        )
        rows.append([label, pair.flexible.makespan, pair.makespan_gain])
        gains[label] = pair.makespan_gain
    table = format_table(
        ["redistributed state", "flexible makespan (s)", "gain (%)"],
        rows,
        title="Ablation: resize data volume (25-job FS workload)",
    )
    return gains, table


def sweep_check_cost(num_jobs: int = 25, seed: int = 2017):
    cluster = marenostrum_preliminary()
    rows = []
    gains = {}
    for cost in (0.0, 0.15, 1.0, 5.0):
        pair = run_paired(
            fs_workload(num_jobs, seed=seed),
            cluster,
            runtime_config=RuntimeConfig(check_cost=cost),
        )
        rows.append([cost, pair.flexible.makespan, pair.makespan_gain])
        gains[cost] = pair.makespan_gain
    table = format_table(
        ["DMR call cost (s)", "flexible makespan (s)", "gain (%)"],
        rows,
        title="Ablation: synchronous DMR call cost (25-job FS workload)",
    )
    return gains, table


def test_ablation_state_bytes(benchmark):
    gains, table = benchmark.pedantic(sweep_state_bytes, rounds=1, iterations=1)
    emit(table)
    # Cheap redistribution keeps the gain; an absurd 64 GiB per resize
    # erodes it.
    assert gains["no data"] >= gains["64 GiB"]
    assert gains["1 GiB (paper)"] > 0


def test_ablation_check_cost(benchmark):
    gains, table = benchmark.pedantic(sweep_check_cost, rounds=1, iterations=1)
    emit(table)
    # More expensive RMS round trips can only hurt.
    assert gains[0.0] >= gains[5.0]
    assert gains[0.15] > 0
