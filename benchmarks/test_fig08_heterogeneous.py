"""Bench: Fig. 8 — execution time vs rate of flexible jobs (100 jobs).

Paper: execution time decreases as the flexible ratio grows — ~10% gain
at a 50% rate, ~12% at 100%.  Reproduction target: monotone-ish decrease
with a clearly positive endpoint.
"""

from conftest import emit

from repro.experiments.fig08_heterogeneous import run_fig08


def test_fig08_flexible_ratio_sweep(benchmark):
    result = benchmark.pedantic(run_fig08, rounds=1, iterations=1)
    emit(result.as_table())

    # The all-flexible workload is the fastest.
    makespans = {r.flexible_rate: r.makespan for r in result.rows}
    assert makespans[1.0] == min(makespans.values())
    # Gains grow along the sweep's ends (0% -> 50% -> 100%).
    assert result.gain_at(1.0) > result.gain_at(0.5) >= 0.0
    assert result.gain_at(1.0) > 2.0
    # Every partially-flexible configuration at least breaks even.
    assert all(result.gain_at(r.flexible_rate) > -2.0 for r in result.rows)
