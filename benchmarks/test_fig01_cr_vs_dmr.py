"""Bench: Fig. 1 — C/R vs DMR non-solving (spawning) stages of N-body.

Paper: resizing 48 processes to 12/24/48, checkpoint/restart spawning is
31.4x / 63.75x / 77x more expensive than the DMR API.  Reproduction
target: factors of tens that *grow* toward the pure-migration case.
"""

from conftest import emit

from repro.experiments.fig01_cr_vs_dmr import run_fig01


def test_fig01_cr_vs_dmr(benchmark):
    result = benchmark.pedantic(run_fig01, rounds=1, iterations=1)
    emit(result.as_table())

    factors = {r.target_procs: r.factor for r in result.rows}
    # C/R is at least an order of magnitude costlier at every target.
    assert all(f > 10.0 for f in factors.values())
    # Same band as the paper's 31-77x labels.
    assert all(10.0 < f < 150.0 for f in factors.values())
    # The factor grows with the target size (48-48 migration worst for
    # C/R relative to DMR, as in the paper's 31.4 < 63.75 < 77).
    assert factors[12] < factors[24] < factors[48]
    # DMR stays in runtime-redistribution territory (seconds, not minutes).
    assert all(r.dmr.total < 10.0 for r in result.rows)
    assert all(r.cr.total > 30.0 for r in result.rows)
