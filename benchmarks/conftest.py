"""Shared fixtures for the figure/table reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper: it runs the
corresponding experiment once (timed via ``benchmark.pedantic``), prints
the same rows/series the paper reports, and asserts the reproduction
shapes (who wins, by roughly what factor) hold.

The Section IX study feeds four benchmarks (Figs. 10-12, Table II);
its workload executions are shared through a session-scoped cache.
"""

from __future__ import annotations

import sys

import pytest


@pytest.fixture(scope="session")
def realapps_result():
    """Run the Section IX workloads once per benchmark session."""
    from repro.experiments.fig10_12_realapps import run_realapps

    return run_realapps(job_counts=(50, 100, 200, 400))


def emit(text: str) -> None:
    """Print a reproduction table so it lands in the benchmark log."""
    sys.stdout.write("\n" + text + "\n")
