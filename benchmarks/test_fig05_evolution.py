"""Bench: Fig. 5 — evolution in time of the 25-job workload.

Paper: the 25-job workload gains less than the 10-job one — once the
last job has expanded onto the released nodes there is nothing left to
reallocate, so the final phase matches the fixed behaviour.
"""

from conftest import emit

from repro.experiments.fig04_05_evolution import run_fig04, run_fig05


def test_fig05_evolution_25_jobs(benchmark):
    result = benchmark.pedantic(run_fig05, rounds=1, iterations=1)
    emit(result.as_text())

    pair = result.pair
    # Flexible still wins...
    assert pair.makespan_gain > 0
    # ...but by less than the 10-job workload (the Fig. 4/5 contrast).
    ten = run_fig04()
    assert pair.makespan_gain < ten.pair.makespan_gain

    # Expansions did happen (the last-job expansion of the narrative).
    from repro.metrics import EventKind

    expands = pair.flexible.trace.of_kind(EventKind.RESIZE_EXPAND)
    assert len(expands) >= 1
