"""Bench: Table II — summary of measures for the Section IX workloads.

Paper (50..400 jobs):

* utilization rate: fixed ~97-99%, flexible ~69-74% (about 30% fewer
  allocated node-hours);
* avg waiting time: flexible cuts it by ~56-69%;
* avg execution time: flexible jobs run *longer* individually (they are
  shrunk to their sweet spots);
* avg completion time (wait+exec): flexible wins by a wide margin.
"""

from conftest import emit


def test_table02_summary_measures(benchmark, realapps_result):
    result = benchmark.pedantic(lambda: realapps_result, rounds=1, iterations=1)
    emit(result.table2())

    for row in result.rows:
        fixed, flex = row.pair.fixed.summary, row.pair.flexible.summary
        # Fixed saturates the machine's allocation.
        assert fixed.utilization_rate > 0.90, row.num_jobs
        # Flexible allocates ~30% less.
        assert flex.utilization_rate < 0.80, row.num_jobs
        assert flex.utilization_rate > 0.50, row.num_jobs
        # Individual executions get longer under shrinking...
        assert flex.avg_execution_time > fixed.avg_execution_time
        # ...but completion time (what users see) improves a lot.
        assert flex.avg_completion_time < 0.6 * fixed.avg_completion_time
        # Resizes actually happened.
        assert flex.resize_count >= row.num_jobs * 0.5
