"""Ablation: reconfiguration-policy design choices (beyond the paper).

DESIGN.md calls out three policy knobs whose literal-Algorithm-1 readings
differ from the grant policy that reproduces the paper's results:

* ``shrink_mode`` — shrink to the deepest reachable size vs just enough;
* ``expand_with_pending`` — wide-optimization expansion while jobs queue;
* ``shrink_beneficiary`` — shrink for the queue head only vs any job.

This bench quantifies each choice on the 50-job FS workload.
"""

from conftest import emit

from repro.cluster import marenostrum_preliminary
from repro.experiments.common import run_paired
from repro.metrics.report import format_table
from repro.runtime import RuntimeConfig
from repro.slurm import PolicyConfig, SlurmConfig
from repro.workload import fs_workload

VARIANTS = {
    "default (minimal, no-expand, head)": PolicyConfig(),
    "deepest shrink": PolicyConfig(shrink_mode="deepest"),
    "expand with pending (literal Alg.1)": PolicyConfig(expand_with_pending=True),
    "any beneficiary (literal Alg.1)": PolicyConfig(shrink_beneficiary="any"),
    "all literal Alg.1": PolicyConfig(
        shrink_mode="deepest", expand_with_pending=True, shrink_beneficiary="any"
    ),
}


def run_ablation(num_jobs: int = 50, seed: int = 2017):
    cluster = marenostrum_preliminary()
    rows = []
    results = {}
    for label, policy in VARIANTS.items():
        pair = run_paired(
            fs_workload(num_jobs, seed=seed),
            cluster,
            runtime_config=RuntimeConfig(),
            slurm_config=SlurmConfig(policy=policy),
        )
        rows.append(
            [
                label,
                pair.flexible.makespan,
                pair.makespan_gain,
                pair.flexible.summary.avg_wait_time,
            ]
        )
        results[label] = pair
    table = format_table(
        ["policy variant", "flexible makespan (s)", "gain (%)", "avg wait (s)"],
        rows,
        title="Ablation: reconfiguration policy variants (50-job FS workload)",
    )
    return results, table


def test_ablation_policy_variants(benchmark):
    results, table = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    emit(table)

    default = results["default (minimal, no-expand, head)"]
    # The default grant policy must not lose to the fixed baseline.
    assert default.makespan_gain > 0
    # Every variant still completes the workload (sanity).
    for label, pair in results.items():
        assert pair.flexible.summary.num_jobs == 50, label
    # The fully literal Algorithm 1 reading performs no better than the
    # default grant policy (it reintroduces expansion stealing).
    literal = results["all literal Alg.1"]
    assert default.flexible.makespan <= literal.flexible.makespan * 1.05
