"""The paper's qualitative narratives, validated programmatically.

Beyond the headline numbers, the paper *describes* how the system
behaves.  These tests check those descriptions hold in the reproduction's
traces — they are the closest thing to reading the original evolution
charts.
"""

import pytest

from repro.cluster import marenostrum_production
from repro.core import DecisionReason
from repro.experiments.common import run_workload
from repro.metrics import EventKind
from repro.runtime import RuntimeConfig
from repro.workload import realapp_workload


@pytest.fixture(scope="module")
def flexible_run():
    """One 30-job Section IX flexible execution, shared by the tests."""
    return run_workload(
        realapp_workload(30, seed=2017),
        marenostrum_production(),
        flexible=True,
        runtime_config=RuntimeConfig(),
    )


def test_jobs_launched_at_maximum(flexible_run):
    """'The job submission of each application is launched with its
    "maximum" value' (Section IX-A)."""
    for job in flexible_run.jobs:
        app = job.payload
        assert job.submitted_nodes == app.resize.max_procs


def test_jobs_scaled_down_as_soon_as_possible(flexible_run):
    """'In the flexible configuration, they are scaled-down as soon as
    possible' (Section IX-B): with a non-empty queue, the first serviced
    check after start shrinks the job toward its preferred size."""
    shrink_events = flexible_run.trace.of_kind(EventKind.RESIZE_SHRINK)
    assert shrink_events, "no shrink happened at all"
    jobs_by_id = {j.job_id: j for j in flexible_run.jobs}
    # Most jobs that resized at all shrank to their preferred size.
    reached_preferred = 0
    resized_jobs = [j for j in flexible_run.jobs if j.resizes]
    for job in resized_jobs:
        preferred = job.payload.resize.preferred
        if any(new == preferred for _, _, new in job.resizes):
            reached_preferred += 1
    assert reached_preferred >= 0.7 * len(resized_jobs)


def test_nbody_runs_at_single_process(flexible_run):
    """N-body's sweet spot is one process (Section IX-A): its jobs are
    shrunk from 16 to 1."""
    nbody_jobs = [j for j in flexible_run.jobs if j.name.startswith("nbody")]
    assert nbody_jobs
    shrunk_to_one = [j for j in nbody_jobs if any(n == 1 for _, _, n in j.resizes)]
    assert len(shrunk_to_one) >= 0.6 * len(nbody_jobs)


def test_green_peaks_then_scale_down(flexible_run):
    """'The allocated nodes are 64 (the green peaks in the chart);
    however, as the job prefers 8 processes, it will be scaled-down'
    (Section IX-B): allocation spikes at starts, then drops."""
    alloc = flexible_run.allocation_series()
    peak = max(alloc.values)
    avg = alloc.average(0.0, flexible_run.makespan)
    assert peak >= 60  # starts at maximum sizes push near the 65 nodes
    assert avg < 0.8 * peak  # but the steady state sits far below


def test_completion_dominated_by_waiting_in_fixed():
    """'This [waiting] time is responsible for the reduction in the
    workload execution time' (Section IX-B): fixed jobs wait far longer
    than they run."""
    fixed = run_workload(
        realapp_workload(30, seed=2017),
        marenostrum_production(),
        flexible=False,
        runtime_config=RuntimeConfig(),
    )
    s = fixed.summary
    assert s.avg_wait_time > 2 * s.avg_execution_time


def test_tail_expansion_when_queue_empties(flexible_run):
    """Once nothing is pending, survivors expand ('the expansion can be
    granted up to a specified maximum')."""
    expands = [
        e
        for e in flexible_run.trace.of_kind(EventKind.RESIZE_DECISION)
        if e["action"] == "expand"
        and e["reason"] == DecisionReason.ALONE_IN_SYSTEM.value
    ]
    assert expands, "no empty-queue expansion was ever granted"
    # At least some happen late in the run (the drain phase); early ones
    # can also occur during arrival lulls.
    last_submit = max(j.submit_time for j in flexible_run.jobs)
    assert any(e.time > last_submit for e in expands)
