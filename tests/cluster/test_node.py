"""Unit tests for the Node state machine."""

import pytest

from repro.cluster import Node, NodeState


def test_defaults_match_marenostrum():
    node = Node(index=3)
    assert node.cores == 16
    assert node.memory_gb == 128.0
    assert node.hostname == "mn0003"
    assert node.is_free


def test_validation():
    with pytest.raises(ValueError):
        Node(index=-1)
    with pytest.raises(ValueError):
        Node(index=0, cores=0)


def test_custom_hostname_preserved():
    assert Node(index=1, hostname="custom01").hostname == "custom01"


def test_assign_and_free():
    node = Node(index=0)
    node.assign(42)
    assert node.state is NodeState.ALLOCATED
    assert node.job_id == 42
    assert not node.is_free
    node.free()
    assert node.is_free
    assert node.job_id is None


def test_double_assign_rejected():
    node = Node(index=0)
    node.assign(1)
    with pytest.raises(ValueError):
        node.assign(2)


def test_drain_lifecycle():
    node = Node(index=0)
    node.assign(1)
    node.drain()
    assert node.state is NodeState.DRAINING
    node.free()
    assert node.is_free


def test_drain_requires_allocation():
    with pytest.raises(ValueError):
        Node(index=0).drain()


def test_down_node_cannot_free():
    node = Node(index=0, state=NodeState.DOWN)
    with pytest.raises(ValueError):
        node.free()
