"""Tests for node allocation bookkeeping."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import Machine, NodeState
from repro.errors import ClusterError


def test_machine_requires_nodes():
    with pytest.raises(ClusterError):
        Machine(0)


def test_fresh_machine_all_free():
    m = Machine(10)
    assert m.free_count == 10
    assert m.used_count == 0
    assert m.utilization() == 0.0


def test_allocate_lowest_indices_first():
    m = Machine(8)
    assert m.allocate(1, 3) == (0, 1, 2)
    assert m.allocate(2, 2) == (3, 4)
    assert m.free_count == 3


def test_allocate_appends_to_existing_job():
    m = Machine(8)
    m.allocate(1, 2)
    m.allocate(1, 2)
    assert m.nodes_of(1) == (0, 1, 2, 3)


def test_allocate_insufficient_raises():
    m = Machine(4)
    m.allocate(1, 3)
    with pytest.raises(ClusterError):
        m.allocate(2, 2)


def test_allocate_zero_rejected():
    with pytest.raises(ClusterError):
        Machine(4).allocate(1, 0)


def test_can_allocate():
    m = Machine(4)
    assert m.can_allocate(4)
    assert not m.can_allocate(5)
    m.allocate(1, 2)
    assert m.can_allocate(2)
    assert not m.can_allocate(3)


def test_release_all_nodes():
    m = Machine(6)
    m.allocate(1, 4)
    released = m.release(1)
    assert released == (0, 1, 2, 3)
    assert m.free_count == 6
    assert m.nodes_of(1) == ()


def test_partial_release():
    m = Machine(6)
    m.allocate(1, 4)
    m.release(1, [2, 3])
    assert m.nodes_of(1) == (0, 1)
    assert m.free_count == 4


def test_release_unowned_node_raises():
    m = Machine(6)
    m.allocate(1, 2)
    with pytest.raises(ClusterError):
        m.release(1, [5])


def test_release_jobless_raises():
    with pytest.raises(ClusterError):
        Machine(4).release(99)


def test_allocate_specific_transfers_exact_nodes():
    m = Machine(6)
    m.allocate(1, 2)          # job 1 on nodes 0,1
    m.allocate(2, 2)          # resizer on nodes 2,3
    m.release(2)              # resizer cancelled
    m.allocate_specific(1, [2, 3])
    assert m.nodes_of(1) == (0, 1, 2, 3)


def test_allocate_specific_requires_free_nodes():
    m = Machine(4)
    m.allocate(1, 2)
    with pytest.raises(ClusterError):
        m.allocate_specific(2, [1])


def test_owner_of():
    m = Machine(4)
    m.allocate(7, 2)
    assert m.owner_of(0) == 7
    assert m.owner_of(3) is None


def test_shrink_candidates_highest_first():
    m = Machine(8)
    m.allocate(1, 6)
    assert m.shrink_candidates(1, 2) == (5, 4)


def test_shrink_candidates_too_many_raises():
    m = Machine(8)
    m.allocate(1, 2)
    with pytest.raises(ClusterError):
        m.shrink_candidates(1, 3)


def test_drain_marks_nodes():
    m = Machine(4)
    m.allocate(1, 3)
    m.drain([2])
    assert m.nodes[2].state is NodeState.DRAINING


def test_observer_sees_every_change():
    m = Machine(6)
    seen = []
    m.subscribe(seen.append)
    m.allocate(1, 3)
    m.allocate(2, 1)
    m.release(1, [0])
    m.release(2)
    assert seen == [3, 4, 3, 2]


def test_hostnames_follow_indices():
    m = Machine(3)
    m.allocate(1, 2)
    assert m.hostnames_of(1) == ("mn0000", "mn0001")


def test_jobs_listing():
    m = Machine(6)
    m.allocate(1, 1)
    m.allocate(2, 1)
    assert set(m.jobs()) == {1, 2}
    m.release(1)
    assert m.jobs() == (2,)


@given(
    st.lists(st.integers(min_value=1, max_value=5), min_size=1, max_size=10),
)
@settings(max_examples=60, deadline=None)
def test_property_alloc_release_conserves_nodes(sizes):
    """Allocating arbitrary jobs then releasing them restores the pool."""
    m = Machine(32)
    placed = []
    for jid, size in enumerate(sizes):
        if m.can_allocate(size):
            m.allocate(jid, size)
            placed.append(jid)
    # Invariant: every node is owned by at most one job.
    owned = [idx for jid in placed for idx in m.nodes_of(jid)]
    assert len(owned) == len(set(owned))
    assert m.used_count == len(owned)
    for jid in placed:
        m.release(jid)
    assert m.free_count == 32
