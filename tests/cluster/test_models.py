"""Tests for network, spawn and storage performance models."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import (
    ClusterConfig,
    GiB,
    NetworkModel,
    SharedFilesystem,
    SpawnModel,
    marenostrum_preliminary,
    marenostrum_production,
)


class TestNetworkModel:
    def test_transfer_time_linear_in_bytes(self):
        net = NetworkModel(latency=0.0, bandwidth=1e9)
        assert net.transfer_time(1e9) == pytest.approx(1.0)
        assert net.transfer_time(2e9) == pytest.approx(2.0)

    def test_latency_per_message(self):
        net = NetworkModel(latency=1e-3, bandwidth=1e9)
        assert net.transfer_time(0, nmessages=5) == pytest.approx(5e-3)

    def test_validation(self):
        with pytest.raises(ValueError):
            NetworkModel(bandwidth=0)
        with pytest.raises(ValueError):
            NetworkModel(latency=-1)
        net = NetworkModel()
        with pytest.raises(ValueError):
            net.transfer_time(-1)
        with pytest.raises(ValueError):
            net.transfer_time(10, nmessages=0)

    def test_redistribution_critical_path_is_slowest_rank(self):
        net = NetworkModel(latency=0.0, bandwidth=1e9, bisection_bandwidth=1e12)
        t = net.redistribution_time({0: 4e9, 1: 1e9}, {2: 4e9, 3: 1e9})
        assert t == pytest.approx(4.0)

    def test_redistribution_rank_sending_and_receiving_sums(self):
        net = NetworkModel(latency=0.0, bandwidth=1e9, bisection_bandwidth=1e12)
        # Rank 0 both sends 1 GB and receives 1 GB -> 2 s on its NIC.
        t = net.redistribution_time({0: 1e9}, {0: 1e9})
        assert t == pytest.approx(2.0)

    def test_redistribution_bisection_cap(self):
        net = NetworkModel(latency=0.0, bandwidth=1e9, bisection_bandwidth=2e9)
        # 8 ranks sending 1 GB each: per-NIC time 1 s but fabric allows 2 GB/s.
        out = {r: 1e9 for r in range(8)}
        inn = {r + 8: 1e9 for r in range(8)}
        assert net.redistribution_time(out, inn) == pytest.approx(4.0)

    def test_redistribution_empty_is_free(self):
        assert NetworkModel().redistribution_time({}, {}) == 0.0

    def test_broadcast_time_log_rounds(self):
        net = NetworkModel(latency=0.0, bandwidth=1e9)
        one = net.transfer_time(1e6)
        assert net.broadcast_time(1e6, 8) == pytest.approx(3 * one)
        assert net.broadcast_time(1e6, 1) == 0.0
        with pytest.raises(ValueError):
            net.broadcast_time(1e6, 0)

    @given(st.floats(min_value=0, max_value=1e12))
    @settings(max_examples=50, deadline=None)
    def test_property_transfer_monotone(self, nbytes):
        net = NetworkModel()
        assert net.transfer_time(nbytes + 1) >= net.transfer_time(nbytes)


class TestSpawnModel:
    def test_spawn_grows_with_procs(self):
        sp = SpawnModel(base=0.1, per_process=0.01)
        assert sp.spawn_time(1) == pytest.approx(0.11)
        assert sp.spawn_time(48) == pytest.approx(0.58)

    def test_spawn_validation(self):
        with pytest.raises(ValueError):
            SpawnModel().spawn_time(0)


class TestSharedFilesystem:
    def test_single_client_capped_by_client_bandwidth(self):
        fs = SharedFilesystem(
            aggregate_write_bandwidth=10e9,
            per_client_bandwidth=1e9,
            metadata_latency=0.0,
        )
        assert fs.write_time(2e9, nclients=1) == pytest.approx(2.0)

    def test_many_clients_capped_by_aggregate(self):
        fs = SharedFilesystem(
            aggregate_write_bandwidth=2e9,
            per_client_bandwidth=1e9,
            metadata_latency=0.0,
        )
        assert fs.write_time(4e9, nclients=64) == pytest.approx(2.0)

    def test_read_write_asymmetry(self):
        fs = SharedFilesystem(metadata_latency=0.0)
        assert fs.read_time(1 * GiB, 64) < fs.write_time(1 * GiB, 64)

    def test_validation(self):
        fs = SharedFilesystem()
        with pytest.raises(ValueError):
            fs.write_time(-1)
        with pytest.raises(ValueError):
            fs.read_time(10, nclients=0)
        with pytest.raises(ValueError):
            SharedFilesystem(per_client_bandwidth=0)
        with pytest.raises(ValueError):
            SharedFilesystem(metadata_latency=-1)

    def test_disk_much_slower_than_network_for_1gib(self):
        """The premise behind Fig. 1: C/R disk round-trip >> network move."""
        fs = SharedFilesystem()
        net = NetworkModel()
        disk = fs.write_time(1 * GiB, 48) + fs.read_time(1 * GiB, 24)
        wire = net.redistribution_time({0: 1 * GiB / 48}, {1: 1 * GiB / 24})
        assert disk > 10 * wire


class TestClusterConfig:
    def test_presets_match_paper(self):
        assert marenostrum_preliminary().num_nodes == 20
        assert marenostrum_production().num_nodes == 65
        assert marenostrum_production().cores_per_node == 16

    def test_build_machine(self):
        m = marenostrum_preliminary().build_machine()
        assert m.num_nodes == 20
        assert m.cores_per_node == 16

    def test_invalid_config(self):
        with pytest.raises(ValueError):
            ClusterConfig(num_nodes=0)
