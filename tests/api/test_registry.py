"""Tests for the declarative artifact registry."""

import pytest

from repro.api.registry import (
    ArtifactRegistry,
    builtin_registry,
    default_seed,
)


class FakeResult:
    def __init__(self, tag):
        self.tag = tag

    def as_table(self):
        return f"table:{self.tag}"

    def as_csv(self):
        return f"csv:{self.tag}"


class TextOnlyResult:
    def as_text(self):
        return "evolution"


class TestRegistration:
    def test_round_trip(self):
        reg = ArtifactRegistry()

        @reg.artifact("demo", csv=True, description="a demo")
        def produce(seed=None):
            return FakeResult(seed)

        assert reg.names() == ["demo"]
        assert "demo" in reg
        assert reg.get("demo").description == "a demo"
        assert reg.render("demo", seed=4) == "table:4"
        assert reg.render_csv("demo", seed=4) == "csv:4"

    def test_registration_order_is_listing_order(self):
        reg = ArtifactRegistry()
        for name in ("c", "a", "b"):
            reg.artifact(name)(lambda seed=None: FakeResult(seed))
        assert reg.names() == ["c", "a", "b"]

    def test_duplicate_name_rejected(self):
        reg = ArtifactRegistry()
        reg.artifact("x")(lambda seed=None: FakeResult(seed))
        with pytest.raises(ValueError, match="already registered"):
            reg.artifact("x")(lambda seed=None: FakeResult(seed))

    def test_unknown_artifact_raises(self):
        reg = ArtifactRegistry()
        with pytest.raises(KeyError, match="unknown artifact"):
            reg.get("nope")

    def test_text_fallback_to_as_text(self):
        reg = ArtifactRegistry()
        reg.artifact("evo")(lambda seed=None: TextOnlyResult())
        assert reg.render("evo") == "evolution"

    def test_text_renderer_by_attribute_name(self):
        reg = ArtifactRegistry()
        reg.artifact("named", text="as_csv")(lambda seed=None: FakeResult(1))
        assert reg.render("named") == "csv:1"

    def test_text_renderer_by_callable(self):
        reg = ArtifactRegistry()
        reg.artifact("call", text=lambda r: r.tag.upper())(
            lambda seed=None: FakeResult("hi")
        )
        assert reg.render("call") == "HI"

    def test_unrenderable_result_is_a_type_error(self):
        reg = ArtifactRegistry()
        reg.artifact("bad")(lambda seed=None: object())
        with pytest.raises(TypeError, match="neither as_table"):
            reg.render("bad")

    def test_csv_unsupported_raises(self):
        reg = ArtifactRegistry()
        reg.artifact("textonly")(lambda seed=None: FakeResult(0))
        assert not reg.get("textonly").supports_csv
        with pytest.raises(KeyError, match="no CSV form"):
            reg.render_csv("textonly")


class TestResultCache:
    def test_producer_runs_once_per_seed(self):
        reg = ArtifactRegistry()
        calls = []

        @reg.artifact("cached", csv=True)
        def produce(seed=None):
            calls.append(seed)
            return FakeResult(seed)

        reg.render("cached", seed=1)
        reg.render_csv("cached", seed=1)
        reg.render("cached", seed=1)
        assert calls == [1]
        reg.render("cached", seed=2)
        assert calls == [1, 2]

    def test_clear_cache(self):
        reg = ArtifactRegistry()
        calls = []
        reg.artifact("c")(lambda seed=None: calls.append(seed) or FakeResult(seed))
        reg.render("c")
        reg.clear_cache()
        reg.render("c")
        assert len(calls) == 2


class TestStoreDelegation:
    """The rendered-artifact cache delegates to the on-disk store."""

    def _registry(self):
        reg = ArtifactRegistry()
        calls = []

        @reg.artifact("demo", csv=True)
        def produce(seed=None):
            calls.append(seed)
            return FakeResult(seed)

        reg.calls = calls
        return reg

    def test_second_process_equivalent_render_skips_the_producer(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        first = self._registry()
        first.attach_store(store)
        assert first.render("demo", seed=4) == "table:4"

        # A fresh registry models a fresh process: empty in-memory cache.
        second = self._registry()
        second.attach_store(store)
        assert second.render("demo", seed=4) == "table:4"
        assert second.calls == []  # served from disk, no simulation

    def test_text_and_csv_are_distinct_records(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        reg = self._registry()
        reg.attach_store(store)
        reg.render("demo", seed=1)
        reg.render_csv("demo", seed=1)
        assert len(store.entries()) == 2

    def test_default_seed_and_explicit_default_share_a_record(self, tmp_path):
        from repro.store import ResultStore

        store = ResultStore(tmp_path)
        reg = self._registry()
        reg.attach_store(store)
        reg.render("demo")
        fresh = self._registry()
        fresh.attach_store(store)
        assert fresh.render("demo", seed=2017) == "table:None"
        assert fresh.calls == []

    def test_detach_store_restores_direct_rendering(self, tmp_path):
        from repro.store import ResultStore

        reg = self._registry()
        reg.attach_store(ResultStore(tmp_path))
        reg.detach_store()
        reg.render("demo", seed=1)
        assert reg.calls == [1]


class TestWorkerCacheIsolation:
    def test_fresh_registry_has_an_empty_result_cache(self):
        """Sweep workers rely on this: a new process builds a new
        registry whose in-memory cache cannot leak across cells."""
        reg = ArtifactRegistry()
        calls = []
        reg.artifact("w")(lambda seed=None: calls.append(seed) or FakeResult(seed))
        reg.result_for("w", seed=1)
        assert calls == [1]
        reg.clear_cache()
        reg.result_for("w", seed=1)
        assert calls == [1, 1]


class TestDefaultSeed:
    def test_default_is_the_papers_year(self):
        assert default_seed(None) == 2017
        assert default_seed(5) == 5
        assert default_seed(0) == 0


class TestBuiltinRegistry:
    EXPECTED = {f"fig{i}" for i in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12)} | {
        "table2",
        "scalability",
        "resilience",
    }

    def test_covers_every_eval_artifact(self):
        assert set(builtin_registry().names()) == self.EXPECTED

    def test_csv_support_set(self):
        reg = builtin_registry()
        with_csv = {n for n in reg.names() if reg.get(n).supports_csv}
        assert with_csv == {
            "fig1", "fig3", "fig7", "fig8", "fig9", "table2", "resilience",
        }

    def test_every_artifact_is_described(self):
        reg = builtin_registry()
        assert all(reg.get(n).description for n in reg.names())

    def test_realapps_artifacts_share_one_run(self, monkeypatch):
        """fig10-12 and table2 resolve to the same lru-cached execution."""
        import repro.experiments.fig10_12_realapps as mod

        calls = []
        monkeypatch.setattr(
            mod, "run_realapps", lambda seed=2017: calls.append(seed) or object()
        )
        sentinel_seed = 987_654  # avoid polluting the real 2017 cache entry
        a = mod.realapps_result(sentinel_seed)
        b = mod.realapps_result(sentinel_seed)
        assert a is b
        assert calls == [sentinel_seed]
