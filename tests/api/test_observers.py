"""Tests for observer dispatch and live timeline assembly."""

from repro.api import CallbackObserver, Session, SessionObserver, TimelineObserver
from repro.cluster import marenostrum_preliminary
from repro.metrics import EventKind, allocated_nodes_series, running_jobs_series
from repro.slurm.job import Job
from repro.workload import FSWorkloadConfig, fs_workload

SMALL_FS = FSWorkloadConfig(steps=4)


class Recorder(SessionObserver):
    def __init__(self):
        self.submits = []
        self.starts = []
        self.resizes = []
        self.completes = []
        self.raw = []

    def on_submit(self, time, job):
        self.submits.append((time, job))

    def on_start(self, time, job):
        self.starts.append((time, job))

    def on_resize(self, time, job, event):
        self.resizes.append((time, job, event))

    def on_complete(self, time, job):
        self.completes.append((time, job))

    def on_event(self, event):
        self.raw.append(event)


def run_with(observer, num_jobs=6, flexible=True, seed=3):
    session = Session(cluster=marenostrum_preliminary()).observe(observer)
    spec = fs_workload(num_jobs, seed=seed, config=SMALL_FS)
    return session.run(spec, flexible=flexible)


class TestDispatch:
    def test_typed_callbacks_cover_every_workload_job(self):
        rec = Recorder()
        result = run_with(rec, num_jobs=6)
        assert len(rec.submits) == 6
        assert len(rec.starts) == 6
        assert len(rec.completes) == 6
        assert all(isinstance(job, Job) for _, job in rec.submits)
        # Resizer helper jobs are filtered from the typed callbacks...
        assert all(not job.is_resizer for _, job in rec.submits)
        # ...but the raw stream carries the full trace.
        assert len(rec.raw) == len(result.trace)

    def test_resize_callback_matches_trace(self):
        rec = Recorder()
        result = run_with(rec, num_jobs=6, flexible=True)
        resize_events = result.trace.of_kind(
            EventKind.RESIZE_EXPAND, EventKind.RESIZE_SHRINK
        )
        assert len(rec.resizes) == len(resize_events)
        assert len(resize_events) > 0  # this workload does reconfigure

    def test_fixed_run_never_resizes(self):
        rec = Recorder()
        run_with(rec, num_jobs=4, flexible=False)
        assert rec.resizes == []

    def test_callback_observer_adapter(self):
        done = []
        obs = CallbackObserver(on_complete=lambda t, job: done.append(job.name))
        run_with(obs, num_jobs=4)
        assert len(done) == 4

    def test_cancelled_jobs_reach_on_complete(self):
        from repro.slurm import Job, JobClass

        rec = Recorder()
        session = Session(cluster=marenostrum_preliminary()).observe(rec)
        sim = session.build()
        job = Job(name="doomed", num_nodes=2, time_limit=10.0,
                  job_class=JobClass.RIGID)
        sim.controller.submit(job)
        sim.controller.cancel_job(job)
        assert [j.name for _, j in rec.completes] == ["doomed"]

    def test_dispatch_detached_after_execution(self):
        # The returned result keeps the trace; the live hook must not pin
        # the controller/machine/environment behind it.
        result = run_with(Recorder(), num_jobs=3)
        assert result.trace._subscribers == []

    def test_observer_sees_both_renditions_of_a_pair(self):
        rec = Recorder()
        session = Session(cluster=marenostrum_preliminary()).observe(rec)
        session.run_paired(fs_workload(3, seed=1, config=SMALL_FS))
        assert len(rec.completes) == 6  # 3 fixed + 3 flexible


class FaultyObserver(SessionObserver):
    """Raises from every hook after attach; the SSE-subscriber stand-in."""

    def __init__(self, fail_on=("on_event",)):
        self.fail_on = fail_on
        self.seen = 0

    def on_event(self, event):
        self.seen += 1
        if "on_event" in self.fail_on:
            raise RuntimeError("subscriber went away")

    def on_complete(self, time, job):
        if "on_complete" in self.fail_on:
            raise RuntimeError("boom in typed hook")


class TestDispatchHardening:
    def test_raising_observer_does_not_abort_the_run(self):
        faulty = FaultyObserver()
        rec = Recorder()
        session = Session(cluster=marenostrum_preliminary()).observe(faulty, rec)
        run = session.submit(fs_workload(4, seed=3, config=SMALL_FS))
        result = run.execute()
        # The run completed, the faulty observer was called throughout,
        # and the healthy sibling still saw every callback.
        assert faulty.seen == len(result.trace)
        assert len(rec.completes) == 4
        dispatch = run.sim.dispatch
        assert dispatch.observer_errors["FaultyObserver"] == faulty.seen
        assert dispatch.suppressed_errors >= faulty.seen

    def test_typed_hook_errors_are_isolated_too(self):
        faulty = FaultyObserver(fail_on=("on_complete",))
        rec = Recorder()
        session = Session(cluster=marenostrum_preliminary()).observe(faulty, rec)
        run = session.submit(fs_workload(3, seed=1, config=SMALL_FS))
        run.execute()
        assert len(rec.completes) == 3
        assert run.sim.dispatch.observer_errors == {"FaultyObserver": 3}

    def test_strict_observer_still_propagates(self):
        import pytest

        class StrictFaulty(SessionObserver):
            strict = True

            def on_submit(self, time, job):
                raise RuntimeError("strict observers abort the run")

        session = Session(cluster=marenostrum_preliminary()).observe(StrictFaulty())
        with pytest.raises(RuntimeError, match="strict observers abort"):
            session.run(fs_workload(2, seed=1, config=SMALL_FS))

    def test_invariant_observer_is_strict(self):
        from repro.testing import InvariantObserver

        assert InvariantObserver.strict is True
        assert SessionObserver.strict is False


class TestLiveTimelines:
    def test_live_series_match_trace_scraping(self):
        result = run_with(SessionObserver(), num_jobs=6)
        live_alloc = result.allocation_series()
        live_running = result.running_series()
        scraped_alloc = allocated_nodes_series(result.trace)
        scraped_running = running_jobs_series(result.trace)
        assert live_alloc.times == scraped_alloc.times
        assert live_alloc.values == scraped_alloc.values
        assert live_running.times == scraped_running.times
        assert live_running.values == scraped_running.values

    def test_result_serves_observer_built_series(self):
        result = run_with(SessionObserver(), num_jobs=4)
        assert result.timelines is not None
        # The accessor returns the live series, not a fresh scrape.
        assert result.allocation_series() is result.timelines.allocation
        assert result.running_series() is result.timelines.running

    def test_standalone_timeline_observer(self):
        timeline = TimelineObserver()
        result = run_with(timeline, num_jobs=5)
        series = timeline.allocation_series()
        assert series.values[-1] == 0.0
        assert max(series.values) <= 20
        snap = timeline.snapshot()
        assert snap.running.at(result.trace.last_time() + 1) == 0.0
