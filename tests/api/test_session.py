"""Tests for the Session builder and execution API."""

import pytest

from repro.api import Session, SimulationTimeout
from repro.cluster import ClusterConfig, marenostrum_preliminary
from repro.errors import ReproError
from repro.runtime import RuntimeConfig
from repro.slurm import SlurmConfig
from repro.slurm.reconfig import PolicyConfig
from repro.workload import FSWorkloadConfig, fs_workload

SMALL_FS = FSWorkloadConfig(steps=4)


class TestBuilder:
    def test_with_steps_return_new_sessions(self):
        base = Session()
        seeded = base.with_seed(5)
        clustered = seeded.with_cluster(ClusterConfig(num_nodes=8))
        assert base.seed is None
        assert seeded.seed == 5
        assert seeded.cluster is None
        assert clustered.cluster.num_nodes == 8
        # The intermediate stages are untouched (immutability).
        assert base is not seeded is not clustered

    def test_with_runtime_and_slurm(self):
        session = (
            Session()
            .with_runtime(RuntimeConfig(async_mode=True))
            .with_slurm(SlurmConfig(rpc_latency=0.2))
        )
        assert session.runtime.async_mode is True
        assert session.slurm.rpc_latency == 0.2

    def test_with_policy_merges_into_slurm_config(self):
        policy = PolicyConfig(expand_with_pending=True)
        session = Session().with_slurm(SlurmConfig(rpc_latency=0.2)).with_policy(policy)
        assert session.slurm.policy is policy
        assert session.slurm.rpc_latency == 0.2
        # The other composition order also preserves both settings.
        flipped = Session().with_policy(policy).with_slurm(SlurmConfig(rpc_latency=0.2))
        assert flipped.slurm.rpc_latency == 0.2

    def test_observe_accumulates(self):
        from repro.api import SessionObserver

        a, b = SessionObserver(), SessionObserver()
        session = Session().observe(a).observe(b)
        assert session.observers == (a, b)
        assert Session().observers == ()

    def test_effective_seed_defaults_to_2017(self):
        assert Session().effective_seed == 2017
        assert Session().with_seed(9).effective_seed == 9

    def test_seeded_workload_helpers(self):
        session = Session().with_seed(5)
        spec = session.fs_workload(4, config=SMALL_FS)
        assert spec.seed == 5
        assert "seed5" in spec.name

    def test_streams_are_deterministic(self):
        a = Session().with_seed(3).streams().uniform("x")
        b = Session().with_seed(3).streams().uniform("x")
        assert a == b


class TestExecution:
    def test_build_defaults_to_production_testbed(self):
        sim = Session().build()
        assert sim.machine.num_nodes == 65
        assert sim.controller.launcher is not None

    def test_run_produces_workload_result(self):
        session = Session(cluster=marenostrum_preliminary())
        spec = fs_workload(4, seed=1, config=SMALL_FS)
        result = session.run(spec, flexible=True)
        assert result.flexible is True
        assert result.summary.num_jobs == 4
        assert result.makespan > 0
        assert result.timelines is not None

    def test_run_is_deterministic(self):
        session = Session(cluster=marenostrum_preliminary())
        spec = fs_workload(5, seed=2, config=SMALL_FS)
        a = session.run(spec, flexible=True)
        b = session.run(spec, flexible=True)
        assert a.makespan == b.makespan
        assert len(a.trace) == len(b.trace)

    def test_run_paired_flags(self):
        session = Session(cluster=marenostrum_preliminary())
        pair = session.run_paired(fs_workload(4, seed=1, config=SMALL_FS))
        assert pair.fixed.flexible is False
        assert pair.flexible.flexible is True

    def test_submit_then_execute(self):
        session = Session(cluster=marenostrum_preliminary())
        run = session.submit(fs_workload(3, seed=1, config=SMALL_FS))
        assert run.jobs == []  # nothing has executed yet
        result = run.execute()
        assert len(run.jobs) == 3
        assert result.summary.num_jobs == 3


class TestSimulationTimeout:
    def test_timeout_carries_job_state(self):
        session = Session(cluster=marenostrum_preliminary())
        spec = fs_workload(5, seed=1, config=SMALL_FS)
        with pytest.raises(SimulationTimeout, match="did not finish") as info:
            session.run(spec, flexible=False, max_sim_time=1.0)
        exc = info.value
        assert exc.workload_name == spec.name
        assert exc.max_sim_time == 1.0
        stuck = exc.unsubmitted + len(exc.pending_job_ids) + len(exc.running_job_ids)
        assert stuck > 0
        assert isinstance(exc.pending_job_ids, tuple)
        assert isinstance(exc.running_job_ids, tuple)

    def test_timeout_is_a_repro_error(self):
        # Pre-facade callers caught ReproError; the subclass keeps working.
        assert issubclass(SimulationTimeout, ReproError)

    def test_session_level_horizon(self):
        session = Session(cluster=marenostrum_preliminary()).with_max_sim_time(1.0)
        with pytest.raises(SimulationTimeout):
            session.run(fs_workload(5, seed=1, config=SMALL_FS))


class TestSessionSpec:
    def test_spec_round_trip_rebuilds_equivalent_session(self):
        import pickle

        from repro.api import SessionSpec
        from repro.runtime.nanos import RuntimeConfig

        session = (
            Session(cluster=marenostrum_preliminary())
            .with_runtime(RuntimeConfig(async_mode=True))
            .with_seed(9)
            .with_max_sim_time(123.0)
        )
        spec = session.spec()
        clone = Session.from_spec(pickle.loads(pickle.dumps(spec)))
        assert clone.cluster == session.cluster
        assert clone.runtime == session.runtime
        assert clone.seed == 9
        assert clone.max_sim_time == 123.0
        assert isinstance(spec, SessionSpec)

    def test_spec_drops_observers(self):
        from repro.api import TimelineObserver

        session = Session().observe(TimelineObserver())
        rebuilt = session.spec().build()
        assert rebuilt.observers == ()

    def test_spec_runs_reproduce_the_original(self):
        session = Session(cluster=marenostrum_preliminary()).with_seed(3)
        spec = fs_workload(4, seed=3, config=SMALL_FS)
        original = session.run(spec)
        replayed = Session.from_spec(session.spec()).run(spec)
        assert replayed.makespan == original.makespan
        assert replayed.summary.as_dict() == original.summary.as_dict()
