"""Tests for the fixed-bucket latency histogram."""

import json
import random

import pytest

from repro.metrics import LatencyHistogram
from repro.metrics.histogram import observe_all


class TestShim:
    """repro.metrics.histogram is a pure re-export of repro.obs.registry."""

    def test_same_class_object_via_both_paths(self):
        import repro.metrics.histogram as shim
        import repro.obs.registry as registry

        assert shim.LatencyHistogram is registry.LatencyHistogram
        assert shim.observe_all is registry.observe_all
        assert shim.DEFAULT_BUCKETS == registry.DEFAULT_BUCKETS
        assert shim.DEFAULT_FIRST_BOUND == registry.DEFAULT_FIRST_BOUND
        assert shim.DEFAULT_GROWTH == registry.DEFAULT_GROWTH

    def test_shim_reexports_exactly_its_all(self):
        import repro.metrics.histogram as shim

        for name in shim.__all__:
            assert getattr(shim, name) is not None

    def test_deprecation_note_present(self):
        import repro.metrics.histogram as shim

        assert "deprecated" in (shim.__doc__ or "").lower()


class TestObserve:
    def test_empty_histogram(self):
        h = LatencyHistogram()
        assert h.count == 0
        assert h.quantile(0.5) == 0.0
        assert h.mean == 0.0

    def test_counts_and_sum(self):
        h = LatencyHistogram()
        observe_all(h, [0.001, 0.002, 0.004])
        assert h.count == 3
        assert h.total == pytest.approx(0.007)
        assert h.min == pytest.approx(0.001)
        assert h.max == pytest.approx(0.004)

    def test_negative_values_clamp_to_zero(self):
        h = LatencyHistogram()
        h.observe(-5.0)
        assert h.count == 1
        assert h.min == 0.0

    def test_overflow_bucket_catches_huge_values(self):
        h = LatencyHistogram()
        h.observe(10_000.0)
        assert h.counts[-1] == 1
        # Overflow quantiles report the observed max.
        assert h.quantile(0.99) == pytest.approx(10_000.0)

    def test_bad_geometry_rejected(self):
        with pytest.raises(ValueError):
            LatencyHistogram(first_bound=0.0)
        with pytest.raises(ValueError):
            LatencyHistogram(buckets=0)
        with pytest.raises(ValueError):
            LatencyHistogram(growth=1.0)


class TestQuantiles:
    def test_quantile_domain(self):
        h = LatencyHistogram()
        with pytest.raises(ValueError):
            h.quantile(1.5)
        with pytest.raises(ValueError):
            h.quantile(-0.1)

    def test_quantile_within_bucket_error_bound(self):
        # With a x2 bucket ratio the relative estimation error of any
        # quantile is bounded by the bucket width.
        rng = random.Random(7)
        samples = [rng.uniform(0.001, 0.5) for _ in range(5000)]
        h = LatencyHistogram()
        observe_all(h, samples)
        samples.sort()
        for q in (0.5, 0.9, 0.99):
            exact = samples[int(q * len(samples)) - 1]
            estimate = h.quantile(q)
            assert estimate == pytest.approx(exact, rel=1.0)
            assert estimate > 0

    def test_monotone_quantiles(self):
        h = LatencyHistogram()
        observe_all(h, [0.001 * (i + 1) for i in range(100)])
        values = [h.quantile(q) for q in (0.1, 0.5, 0.9, 0.99, 1.0)]
        assert values == sorted(values)


class TestMergeAndSerialize:
    def test_merge_equals_union(self):
        a, b, union = (LatencyHistogram() for _ in range(3))
        xs = [0.001, 0.01, 0.1]
        ys = [0.0005, 0.05, 2.0]
        observe_all(a, xs)
        observe_all(b, ys)
        observe_all(union, xs + ys)
        a.merge(b)
        assert a.counts == union.counts
        assert a.count == union.count
        assert a.total == pytest.approx(union.total)
        assert a.min == union.min and a.max == union.max

    def test_merge_rejects_different_geometry(self):
        with pytest.raises(ValueError):
            LatencyHistogram().merge(LatencyHistogram(buckets=4))

    def test_as_dict_round_trips_through_json(self):
        h = LatencyHistogram()
        observe_all(h, [0.002, 0.02, 0.2])
        data = json.loads(json.dumps(h.as_dict()))
        assert data["count"] == 3
        assert data["p50_ms"] > 0
        assert data["p99_ms"] >= data["p50_ms"]
        assert len(data["bucket_counts"]) == len(data["bucket_bounds_ms"]) + 1
        assert sum(data["bucket_counts"]) == 3
