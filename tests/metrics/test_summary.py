"""Tests for Table II summary computation and the gain metric."""

import pytest

from repro.metrics import EventKind, Trace, gain_percent, summarize
from repro.slurm import Job


def finished_job(jid, submit, start, end, nodes=4):
    job = Job(name=f"j{jid}", num_nodes=nodes, time_limit=1e6)
    job.job_id = jid
    job.submit_time, job.start_time, job.end_time = submit, start, end
    return job


def trace_with_alloc(points):
    tr = Trace()
    for t, used in points:
        tr.record(t, EventKind.ALLOC_CHANGE, nodes_used=used, nodes_total=10)
    return tr


def test_summary_averages():
    jobs = [
        finished_job(1, submit=0.0, start=0.0, end=10.0),
        finished_job(2, submit=0.0, start=10.0, end=30.0),
    ]
    tr = trace_with_alloc([(0.0, 4), (10.0, 4), (30.0, 0)])
    s = summarize(jobs, tr, num_nodes=10)
    assert s.num_jobs == 2
    assert s.makespan == 30.0
    assert s.avg_wait_time == pytest.approx(5.0)
    assert s.avg_execution_time == pytest.approx(15.0)
    assert s.avg_completion_time == pytest.approx(20.0)


def test_summary_utilization():
    jobs = [finished_job(1, 0.0, 0.0, 10.0)]
    tr = trace_with_alloc([(0.0, 5), (10.0, 0)])
    s = summarize(jobs, tr, num_nodes=10)
    # 5 nodes for 10 s over a 10-node, 10-s window -> 50%.
    assert s.utilization_rate == pytest.approx(0.5)
    assert s.total_node_seconds == pytest.approx(50.0)


def test_summary_counts_resizes():
    job = finished_job(1, 0.0, 0.0, 10.0, nodes=8)
    job.record_resize(5.0, 4)
    s = summarize([job], trace_with_alloc([(0.0, 8), (5.0, 4), (10.0, 0)]), 10)
    assert s.resize_count == 1


def test_summary_excludes_resizers():
    real = finished_job(1, 0.0, 0.0, 10.0)
    rj = finished_job(2, 1.0, 1.0, 2.0)
    rj.is_resizer = True
    s = summarize([real, rj], trace_with_alloc([(0.0, 4)]), 10)
    assert s.num_jobs == 1


def test_summary_requires_finished_jobs():
    job = Job(name="x", num_nodes=1, time_limit=10.0)
    job.job_id = 1
    job.submit_time = 0.0
    with pytest.raises(ValueError):
        summarize([job], Trace(), 10)


def test_summary_requires_jobs():
    with pytest.raises(ValueError):
        summarize([], Trace(), 10)


def test_gain_percent():
    assert gain_percent(100.0, 60.0) == pytest.approx(40.0)
    assert gain_percent(100.0, 110.0) == pytest.approx(-10.0)
    with pytest.raises(ValueError):
        gain_percent(0.0, 10.0)


def test_as_dict_roundtrip():
    jobs = [finished_job(1, 0.0, 0.0, 10.0)]
    s = summarize(jobs, trace_with_alloc([(0.0, 4)]), 10)
    d = s.as_dict()
    assert d["num_jobs"] == 1
    assert set(d) >= {"makespan", "utilization_rate", "avg_wait_time"}


def test_metric_stats_known_values():
    from repro.metrics.summary import metric_stats

    stats = metric_stats([10.0, 12.0, 14.0])
    assert stats.n == 3
    assert stats.mean == 12.0
    assert stats.median == 12.0
    assert abs(stats.stdev - 2.0) < 1e-12
    # t(df=2, 95%) = 4.303
    assert abs(stats.ci95_half - 4.303 * 2.0 / 3.0**0.5) < 1e-9
    assert stats.ci_low < stats.mean < stats.ci_high
    assert set(stats.as_dict()) == {
        "n", "mean", "median", "stdev", "ci95_half", "ci_low", "ci_high"
    }


def test_metric_stats_single_observation_has_zero_band():
    from repro.metrics.summary import metric_stats

    stats = metric_stats([5.0])
    assert (stats.stdev, stats.ci95_half) == (0.0, 0.0)
    assert stats.format_mean_ci() == "5 ± 0"


def test_metric_stats_degenerate_ensemble_has_zero_band():
    # Identical values must not report float-noise spread (Fig. 1 is
    # analytic: every seed produces the same numbers).
    from repro.metrics.summary import metric_stats

    stats = metric_stats([62.95] * 5)
    assert stats.stdev == 0.0
    assert stats.ci95_half == 0.0


def test_metric_stats_rejects_empty():
    import pytest

    from repro.metrics.summary import metric_stats

    with pytest.raises(ValueError, match="no values"):
        metric_stats([])


def test_t_critical_95_bounds():
    import pytest

    from repro.metrics.summary import t_critical_95

    assert t_critical_95(1) == 12.706
    assert t_critical_95(30) == 2.042
    assert t_critical_95(1000) == 1.96
    with pytest.raises(ValueError):
        t_critical_95(0)
