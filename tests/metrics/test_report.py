"""Tests for text-report rendering."""

import pytest

from repro.metrics import StepSeries, format_csv, format_evolution, format_table, sparkline


def test_format_table_alignment():
    text = format_table(["a", "bb"], [[1, 2.5], [10, 0.25]], title="T")
    lines = text.splitlines()
    assert lines[0] == "T"
    assert "a" in lines[1] and "bb" in lines[1]
    assert len(lines) == 5  # title, header, sep, 2 rows


def test_format_table_number_formats():
    text = format_table(["v"], [[12345.6], [0.1234], [3.5], [0.0]])
    assert "12,346" in text
    assert "0.1234" in text
    assert "3.50" in text


def test_format_csv():
    text = format_csv(["x", "y"], [[1, 2.0], [3, 4.5]])
    lines = text.strip().splitlines()
    assert lines[0] == "x,y"
    assert lines[1] == "1,2.00"


def test_csv_strips_thousands_separator():
    text = format_csv(["v"], [[123456.0]])
    assert "123456" in text.splitlines()[1]


def test_sparkline_range():
    s = StepSeries((0.0, 5.0), (0.0, 10.0))
    line = sparkline(s, 0.0, 10.0, width=10)
    assert len(line) == 10
    assert line[0] == " "  # zero level
    assert line[-1] == "█"  # peak level


def test_sparkline_validation():
    s = StepSeries((0.0,), (1.0,))
    with pytest.raises(ValueError):
        sparkline(s, 0, 1, width=0)


def test_format_evolution_contains_series_names():
    s = StepSeries((0.0,), (4.0,))
    text = format_evolution("fig", [("alloc", s), ("running", s)], 0.0, 10.0)
    assert "alloc" in text and "running" in text and "peak=4" in text


def test_sparkline_of_flat_zero_series():
    # A fault-heavy window can leave a series at zero throughout; the
    # renderer must not divide by the zero peak.
    s = StepSeries((0.0,), (0.0,))
    line = sparkline(s, 0.0, 10.0, width=8)
    assert line == " " * 8


def test_format_evolution_empty_series_reports_zero_peak():
    s = StepSeries((), ())
    text = format_evolution("fig", [("alloc", s)], 0.0, 10.0)
    assert "peak=0" in text


def test_format_table_without_title_has_no_title_line():
    text = format_table(["a"], [[1]])
    assert text.splitlines()[0].startswith("a")


def test_format_csv_empty_rows():
    assert format_csv(["x"], []) == "x\n"
