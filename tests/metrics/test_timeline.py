"""Tests for step-series timelines."""

import pytest

from repro.metrics import (
    EventKind,
    StepSeries,
    Trace,
    allocated_nodes_series,
    completed_jobs_series,
    running_jobs_series,
)


class TestStepSeries:
    def test_at_before_first_event_is_zero(self):
        s = StepSeries((5.0,), (3.0,))
        assert s.at(1.0) == 0.0
        assert s.at(5.0) == 3.0
        assert s.at(100.0) == 3.0

    def test_validation(self):
        with pytest.raises(ValueError):
            StepSeries((1.0, 2.0), (1.0,))
        with pytest.raises(ValueError):
            StepSeries((2.0, 1.0), (1.0, 2.0))

    def test_integral_piecewise(self):
        s = StepSeries((0.0, 10.0), (2.0, 4.0))
        # 2*10 + 4*10 over [0, 20].
        assert s.integral(0.0, 20.0) == pytest.approx(60.0)

    def test_integral_partial_window(self):
        s = StepSeries((0.0, 10.0), (2.0, 4.0))
        assert s.integral(5.0, 15.0) == pytest.approx(2 * 5 + 4 * 5)

    def test_integral_empty_interval_raises(self):
        s = StepSeries((0.0,), (1.0,))
        with pytest.raises(ValueError):
            s.integral(5.0, 4.0)

    def test_average(self):
        s = StepSeries((0.0, 10.0), (0.0, 10.0))
        assert s.average(0.0, 20.0) == pytest.approx(5.0)
        assert s.average(3.0, 3.0) == 0.0

    def test_sample(self):
        s = StepSeries((0.0, 10.0), (1.0, 2.0))
        assert s.sample([0.0, 9.9, 10.0, 20.0]) == [1.0, 1.0, 2.0, 2.0]


def make_trace():
    tr = Trace()
    tr.record(0.0, EventKind.JOB_SUBMIT, 1, resizer=False)
    tr.record(0.0, EventKind.ALLOC_CHANGE, nodes_used=4, nodes_total=16)
    tr.record(0.0, EventKind.JOB_START, 1)
    tr.record(5.0, EventKind.JOB_SUBMIT, 2, resizer=False)
    tr.record(5.0, EventKind.ALLOC_CHANGE, nodes_used=8, nodes_total=16)
    tr.record(5.0, EventKind.JOB_START, 2)
    tr.record(10.0, EventKind.ALLOC_CHANGE, nodes_used=4, nodes_total=16)
    tr.record(10.0, EventKind.JOB_END, 1)
    tr.record(20.0, EventKind.ALLOC_CHANGE, nodes_used=0, nodes_total=16)
    tr.record(20.0, EventKind.JOB_END, 2)
    return tr


def test_allocated_nodes_series():
    s = allocated_nodes_series(make_trace())
    assert s.at(2.0) == 4
    assert s.at(7.0) == 8
    assert s.at(15.0) == 4
    assert s.at(25.0) == 0


def test_running_jobs_series():
    s = running_jobs_series(make_trace())
    assert s.at(2.0) == 1
    assert s.at(7.0) == 2
    assert s.at(15.0) == 1
    assert s.at(25.0) == 0


def test_running_jobs_excludes_resizers():
    tr = make_trace()
    tr.record(6.0, EventKind.JOB_SUBMIT, 99, resizer=True)
    tr.record(6.0, EventKind.JOB_START, 99)
    s = running_jobs_series(tr)
    assert s.at(7.0) == 2  # resizer not counted


def test_completed_jobs_series():
    s = completed_jobs_series(make_trace())
    assert s.at(9.0) == 0
    assert s.at(10.0) == 1
    assert s.at(20.0) == 2


def test_running_jobs_counts_resizers_when_asked():
    tr = Trace()
    tr.record(0.0, EventKind.JOB_SUBMIT, 1, resizer=False)
    tr.record(0.0, EventKind.JOB_START, 1)
    tr.record(6.0, EventKind.JOB_SUBMIT, 99, resizer=True)
    tr.record(6.0, EventKind.JOB_START, 99)
    s = running_jobs_series(tr, include_resizers=True)
    assert s.at(7.0) == 2
    assert running_jobs_series(tr).at(7.0) == 1


def test_requeued_job_is_pending_until_restart():
    tr = Trace()
    tr.record(0.0, EventKind.JOB_SUBMIT, 1, resizer=False)
    tr.record(1.0, EventKind.JOB_START, 1)
    tr.record(5.0, EventKind.JOB_REQUEUE, 1)  # a node died under it
    tr.record(9.0, EventKind.JOB_START, 1)
    tr.record(20.0, EventKind.JOB_END, 1)
    s = running_jobs_series(tr)
    assert s.at(2.0) == 1
    assert s.at(7.0) == 0  # requeued: pending, not running
    assert s.at(10.0) == 1
    assert s.at(21.0) == 0


def test_cancelled_job_leaves_running_series():
    tr = Trace()
    tr.record(0.0, EventKind.JOB_SUBMIT, 1, resizer=False)
    tr.record(1.0, EventKind.JOB_START, 1)
    tr.record(4.0, EventKind.JOB_CANCEL, 1)
    s = running_jobs_series(tr)
    assert s.at(2.0) == 1
    assert s.at(5.0) == 0


def test_requeue_without_start_is_ignored():
    # A requeue can race ahead of the restart's JOB_START; a second
    # requeue of an already-pending job must not drive the count negative.
    tr = Trace()
    tr.record(0.0, EventKind.JOB_SUBMIT, 1, resizer=False)
    tr.record(1.0, EventKind.JOB_START, 1)
    tr.record(5.0, EventKind.JOB_REQUEUE, 1)
    tr.record(6.0, EventKind.JOB_REQUEUE, 1)
    s = running_jobs_series(tr)
    assert s.at(7.0) == 0


def test_completed_jobs_ignores_requeues():
    tr = Trace()
    tr.record(1.0, EventKind.JOB_START, 1)
    tr.record(5.0, EventKind.JOB_REQUEUE, 1)
    tr.record(9.0, EventKind.JOB_START, 1)
    tr.record(20.0, EventKind.JOB_END, 1)
    s = completed_jobs_series(tr)
    assert s.at(5.0) == 0
    assert s.at(20.0) == 1


def test_alloc_series_dedupes_same_timestamp():
    tr = Trace()
    tr.record(1.0, EventKind.ALLOC_CHANGE, nodes_used=4)
    tr.record(1.0, EventKind.ALLOC_CHANGE, nodes_used=8)
    s = allocated_nodes_series(tr)
    assert s.at(1.0) == 8
