"""Tests for the trace event log."""

from repro.metrics import EventKind, Trace


def test_record_and_len():
    tr = Trace()
    tr.record(1.0, EventKind.JOB_SUBMIT, 1, nodes=4)
    tr.record(2.0, EventKind.JOB_START, 1, nodes=4)
    assert len(tr) == 2


def test_of_kind_filters():
    tr = Trace()
    tr.record(1.0, EventKind.JOB_SUBMIT, 1)
    tr.record(2.0, EventKind.JOB_START, 1)
    tr.record(3.0, EventKind.JOB_SUBMIT, 2)
    subs = tr.of_kind(EventKind.JOB_SUBMIT)
    assert [e.job_id for e in subs] == [1, 2]


def test_of_kind_multiple():
    tr = Trace()
    tr.record(1.0, EventKind.JOB_SUBMIT, 1)
    tr.record(2.0, EventKind.JOB_END, 1)
    both = tr.of_kind(EventKind.JOB_SUBMIT, EventKind.JOB_END)
    assert len(both) == 2


def test_of_job():
    tr = Trace()
    tr.record(1.0, EventKind.JOB_SUBMIT, 1)
    tr.record(2.0, EventKind.JOB_SUBMIT, 2)
    assert len(tr.of_job(2)) == 1


def test_series_extraction():
    tr = Trace()
    tr.record(1.0, EventKind.ALLOC_CHANGE, nodes_used=4)
    tr.record(5.0, EventKind.ALLOC_CHANGE, nodes_used=8)
    assert tr.series(EventKind.ALLOC_CHANGE, "nodes_used") == [(1.0, 4), (5.0, 8)]


def test_event_getitem():
    tr = Trace()
    e = tr.record(1.0, EventKind.JOB_START, 1, nodes=16)
    assert e["nodes"] == 16


def test_last_time():
    tr = Trace()
    assert tr.last_time() == 0.0
    tr.record(9.0, EventKind.JOB_END, 1)
    assert tr.last_time() == 9.0


def test_iteration():
    tr = Trace()
    tr.record(1.0, EventKind.JOB_SUBMIT, 1)
    assert [e.time for e in tr] == [1.0]
