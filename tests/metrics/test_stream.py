"""Spill-to-disk trace streaming: round trips and crash-mid-spill."""

from __future__ import annotations

import pytest

from repro.errors import TraceError, TraceStreamError
from repro.metrics.stream import (
    FOOTER_PREFIX,
    StreamingTraceWriter,
    read_trace_lines,
    stream_digest,
)
from repro.metrics.trace import (
    EventKind,
    Trace,
    canonical_line,
    canonical_lines,
    trace_digest,
)


def _sample_trace(retain: bool = True, writer=None) -> Trace:
    trace = Trace(retain=retain)
    if writer is not None:
        writer.attach(trace)
    trace.record(0.0, EventKind.JOB_SUBMIT, 1, name="j1", nodes=4)
    trace.record(0.0, EventKind.JOB_START, 1, nodes=4, node_ids=(0, 1, 2, 3))
    trace.record(12.5, EventKind.RESIZE_SHRINK, 1, from_nodes=4, to_nodes=2)
    trace.record(99.0, EventKind.JOB_END, 1, state="completed")
    return trace


def test_round_trip_preserves_lines_and_digest(tmp_path):
    path = tmp_path / "trace.log"
    with StreamingTraceWriter(path) as writer:
        trace = _sample_trace(writer=writer)
    assert read_trace_lines(path) == canonical_lines(trace)
    assert stream_digest(path) == trace_digest(trace)


def test_streaming_digest_matches_retained_digest_incrementally(tmp_path):
    """The writer's running digest equals trace_digest at every prefix."""
    trace = Trace()
    writer = StreamingTraceWriter(tmp_path / "t.log")
    for i in range(5):
        event = trace.record(float(i), EventKind.JOB_SUBMIT, i, name=f"j{i}")
        writer(event)
        assert writer.digest == trace_digest(trace)
    writer.close()


def test_non_retaining_trace_spills_but_keeps_no_events(tmp_path):
    path = tmp_path / "lean.log"
    with StreamingTraceWriter(path) as writer:
        trace = _sample_trace(retain=False, writer=writer)
    assert trace.events == []
    assert len(trace) == 4
    assert trace.last_time() == 99.0
    with pytest.raises(TraceError):
        list(trace)
    with pytest.raises(TraceError):
        trace.of_kind(EventKind.JOB_END)
    # The spill carries everything the retained trace would have.
    retained = _sample_trace(retain=True)
    assert read_trace_lines(path) == canonical_lines(retained)
    assert stream_digest(path) == trace_digest(retained)


def test_comments_are_digested_like_golden_headers(tmp_path):
    path = tmp_path / "sections.log"
    with StreamingTraceWriter(path) as writer:
        writer.write_comment("fig3 n=10 rigid")
        trace = _sample_trace(writer=writer)
    lines = read_trace_lines(path)
    assert lines[0] == "# fig3 n=10 rigid"
    assert lines[1:] == canonical_lines(trace)


def test_missing_footer_raises(tmp_path):
    """Crash mid-spill: the writer never closed, so there is no footer."""
    path = tmp_path / "crashed.log"
    writer = StreamingTraceWriter(path)
    trace = _sample_trace(writer=writer)
    writer._fh.flush()  # simulate dying before close()
    del trace
    with pytest.raises(TraceStreamError, match="footer"):
        read_trace_lines(path)
    with pytest.raises(TraceStreamError):
        stream_digest(path)
    writer.close()


def test_truncated_body_raises(tmp_path):
    path = tmp_path / "truncated.log"
    with StreamingTraceWriter(path) as writer:
        _sample_trace(writer=writer)
    text = path.read_text(encoding="utf-8")
    body, footer = text.splitlines()[:-1], text.splitlines()[-1]
    path.write_text("\n".join(body[1:] + [footer]) + "\n", encoding="utf-8")
    with pytest.raises(TraceStreamError, match="truncated"):
        read_trace_lines(path)


def test_corrupted_line_raises(tmp_path):
    path = tmp_path / "corrupt.log"
    with StreamingTraceWriter(path) as writer:
        _sample_trace(writer=writer)
    text = path.read_text(encoding="utf-8")
    path.write_text(text.replace("nodes=4", "nodes=8", 1), encoding="utf-8")
    with pytest.raises(TraceStreamError, match="digest mismatch"):
        read_trace_lines(path)


def test_partial_final_line_raises(tmp_path):
    path = tmp_path / "partial.log"
    with StreamingTraceWriter(path) as writer:
        _sample_trace(writer=writer)
    text = path.read_text(encoding="utf-8")
    path.write_text(text[:-10], encoding="utf-8")  # mid-footer cut
    with pytest.raises(TraceStreamError):
        read_trace_lines(path)


def test_malformed_footer_raises(tmp_path):
    path = tmp_path / "badfooter.log"
    with StreamingTraceWriter(path) as writer:
        _sample_trace(writer=writer)
    lines = path.read_text(encoding="utf-8").splitlines()
    lines[-1] = FOOTER_PREFIX + "events=oops"
    path.write_text("\n".join(lines) + "\n", encoding="utf-8")
    with pytest.raises(TraceStreamError, match="malformed footer"):
        read_trace_lines(path)


def test_write_after_close_raises(tmp_path):
    writer = StreamingTraceWriter(tmp_path / "closed.log")
    writer.close()
    with pytest.raises(TraceStreamError, match="closed"):
        writer.write_line("late")
    writer.close()  # idempotent


def test_empty_stream_round_trips(tmp_path):
    path = tmp_path / "empty.log"
    StreamingTraceWriter(path).close()
    assert read_trace_lines(path) == []
    assert stream_digest(path) == trace_digest(Trace())


def test_unsubscribe_stops_the_spill(tmp_path):
    path = tmp_path / "detached.log"
    trace = Trace()
    writer = StreamingTraceWriter(path)
    writer.attach(trace)
    trace.record(0.0, EventKind.JOB_SUBMIT, 1, name="j1")
    trace.unsubscribe(writer)
    trace.record(1.0, EventKind.JOB_END, 1, state="completed")
    writer.close()
    assert read_trace_lines(path) == [canonical_line(trace.events[0])]
