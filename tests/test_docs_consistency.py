"""Documentation consistency guards.

DESIGN.md promises a module and a bench target for every experiment;
these tests keep the promises true as the code evolves.
"""

import re
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def test_design_md_bench_targets_exist():
    text = (REPO / "DESIGN.md").read_text()
    targets = set(re.findall(r"benchmarks/(test_\w+\.py)", text))
    assert targets, "DESIGN.md lists no bench targets?"
    for target in targets:
        assert (REPO / "benchmarks" / target).exists(), target


def test_design_md_test_targets_exist():
    text = (REPO / "DESIGN.md").read_text()
    targets = set(re.findall(r"tests/(test_\w+\.py)", text))
    for target in targets:
        assert (REPO / "tests" / target).exists(), target


def test_design_md_experiment_modules_exist():
    text = (REPO / "DESIGN.md").read_text()
    modules = set(re.findall(r"`experiments\.(\w+)`", text))
    assert modules
    for module in modules:
        assert (REPO / "src" / "repro" / "experiments" / f"{module}.py").exists(), module


def test_readme_examples_exist():
    text = (REPO / "README.md").read_text()
    examples = set(re.findall(r"examples/(\w+\.py)", text))
    assert len(examples) >= 3, "README must show at least three examples"
    for example in examples:
        assert (REPO / "examples" / example).exists(), example


def test_every_figure_and_table_has_a_bench():
    """The deliverable: one bench per evaluation figure/table."""
    bench_dir = REPO / "benchmarks"
    names = {p.name for p in bench_dir.glob("test_*.py")}
    for fig in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12):
        assert any(f"fig{fig:02d}" in n for n in names), f"missing Fig. {fig} bench"
    assert "test_table02_summary.py" in names


def test_experiments_md_covers_every_figure():
    text = (REPO / "EXPERIMENTS.md").read_text()
    for fig in (1, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12):
        # Accept both "Fig. 4" and grouped headings like "Figs. 4 & 5".
        pattern = rf"Figs?\.[^\n]*\b{fig}\b"
        assert re.search(pattern, text), f"EXPERIMENTS.md missing Fig. {fig}"
    assert "Table II" in text
    assert "Table I" in text
