"""Tests for Sendrecv and rooted Reduce."""

import numpy as np
import pytest

from repro.mpi import run_world


def test_sendrecv_ring_exchange():
    """The classic deadlock-prone ring exchange, deadlock-free."""

    def main(ctx):
        right = (ctx.rank + 1) % ctx.size
        left = (ctx.rank - 1) % ctx.size
        got = yield ctx.sendrecv(dest=right, value=ctx.rank, source=left)
        return got

    results = run_world(4, main)
    assert results == [3, 0, 1, 2]


def test_sendrecv_pairwise_swap():
    def main(ctx):
        peer = 1 - ctx.rank
        data = np.full(3, float(ctx.rank))
        got = yield ctx.sendrecv(dest=peer, value=data, source=peer)
        return got.tolist()

    results = run_world(2, main)
    assert results[0] == [1.0, 1.0, 1.0]
    assert results[1] == [0.0, 0.0, 0.0]


def test_sendrecv_with_tags():
    def main(ctx):
        peer = 1 - ctx.rank
        got = yield ctx.sendrecv(
            dest=peer, value=f"msg-{ctx.rank}", source=peer,
            sendtag=7, recvtag=7,
        )
        return got

    assert run_world(2, main) == ["msg-1", "msg-0"]


def test_reduce_root_only_gets_result():
    def main(ctx):
        got = yield ctx.reduce(ctx.rank + 1, root=2, op="sum")
        return got

    results = run_world(4, main)
    assert results[2] == 10
    assert results[0] is None and results[1] is None and results[3] is None


def test_reduce_max():
    def main(ctx):
        return (yield ctx.reduce(ctx.rank * 3, root=0, op="max"))

    assert run_world(4, main)[0] == 9


def test_reduce_numpy():
    def main(ctx):
        v = np.ones(4) * (ctx.rank + 1)
        got = yield ctx.reduce(v, root=0, op="sum")
        return None if got is None else got.tolist()

    results = run_world(3, main)
    assert results[0] == [6.0] * 4


def test_mpi4py_tutorial_pi_with_reduce():
    """The compute-pi pattern from the mpi4py docs, with rooted reduce."""
    N = 500

    def main(ctx):
        h = 1.0 / N
        s = sum(
            4.0 / (1.0 + ((i + 0.5) * h) ** 2)
            for i in range(ctx.rank, N, ctx.size)
        )
        total = yield ctx.reduce(s * h, root=0, op="sum")
        return total

    results = run_world(4, main)
    assert results[0] == pytest.approx(np.pi, abs=1e-4)
