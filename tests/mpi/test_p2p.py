"""Point-to-point messaging tests on the MPI substrate."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIError
from repro.mpi import ANY_SOURCE, ANY_TAG, run_world


def test_send_recv_pair():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, {"a": 7, "b": 3.14})
            return "sent"
        else:
            data = yield ctx.recv(source=0)
            return data

    results = run_world(2, main)
    assert results == ["sent", {"a": 7, "b": 3.14}]


def test_numpy_payload():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, np.arange(1000))
            return None
        data = yield ctx.recv(source=0)
        return int(data.sum())

    assert run_world(2, main)[1] == 499500


def test_recv_blocks_until_send():
    order = []

    def main(ctx):
        if ctx.rank == 0:
            # Burn a few ops before sending.
            yield ctx.barrier()
            order.append("pre-send")
            yield ctx.send(1, "late")
        else:
            yield ctx.barrier()
            value = yield ctx.recv(source=0)
            order.append(f"got-{value}")

    run_world(2, main)
    assert order == ["pre-send", "got-late"]


def test_tag_matching():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.send(1, "urgent", tag=9)
            yield ctx.send(1, "normal", tag=1)
        else:
            normal = yield ctx.recv(source=0, tag=1)
            urgent = yield ctx.recv(source=0, tag=9)
            return (normal, urgent)

    assert run_world(2, main)[1] == ("normal", "urgent")


def test_any_source_any_tag():
    def main(ctx):
        if ctx.rank == 2:
            a = yield ctx.recv(source=ANY_SOURCE, tag=ANY_TAG)
            b = yield ctx.recv(source=ANY_SOURCE, tag=ANY_TAG)
            return sorted([a, b])
        yield ctx.send(2, f"from-{ctx.rank}")

    assert run_world(3, main)[2] == ["from-0", "from-1"]


def test_source_specific_recv_skips_other_senders():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.send(2, "zero")
        elif ctx.rank == 1:
            yield ctx.send(2, "one")
        else:
            from_one = yield ctx.recv(source=1)
            from_zero = yield ctx.recv(source=0)
            return (from_one, from_zero)

    assert run_world(3, main)[2] == ("one", "zero")


def test_fifo_order_per_sender():
    def main(ctx):
        if ctx.rank == 0:
            for i in range(5):
                yield ctx.send(1, i)
        else:
            got = []
            for _ in range(5):
                got.append((yield ctx.recv(source=0)))
            return got

    assert run_world(2, main)[1] == [0, 1, 2, 3, 4]


def test_probe():
    def main(ctx):
        if ctx.rank == 0:
            empty = yield ctx.probe(source=1)
            yield ctx.barrier()
            yield ctx.barrier()  # rank 1 sends between the barriers
            full = yield ctx.probe(source=1)
            value = yield ctx.recv(source=1)
            return (empty, full, value)
        yield ctx.barrier()
        yield ctx.send(0, "x")
        yield ctx.barrier()

    assert run_world(2, main)[0] == (False, True, "x")


def test_deadlock_detected():
    def main(ctx):
        # Everyone receives, nobody sends.
        yield ctx.recv(source=(ctx.rank + 1) % ctx.size)

    with pytest.raises(DeadlockError, match="blocked"):
        run_world(2, main)


def test_send_to_invalid_rank():
    def main(ctx):
        yield ctx.send(5, "x")

    with pytest.raises(MPIError):
        run_world(2, main)


def test_non_generator_rank_function():
    with pytest.raises(MPIError):
        run_world(2, lambda ctx: None)


def test_exit_op_terminates_rank():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.exit("early")
            raise AssertionError("unreachable")  # pragma: no cover
        yield ctx.barrier() if False else ctx.exit("also")

    assert run_world(2, main) == ["early", "also"]


def test_rank_and_size():
    def main(ctx):
        yield ctx.barrier()
        return (ctx.rank, ctx.size)

    assert run_world(3, main) == [(0, 3), (1, 3), (2, 3)]


def test_max_ops_guard():
    def main(ctx):
        while True:
            yield ctx.probe()

    with pytest.raises(MPIError, match="max_ops"):
        run_world(1, main, max_ops=100)
