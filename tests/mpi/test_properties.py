"""Property-based tests of the MPI substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.mpi import run_world


@given(
    nprocs=st.integers(min_value=1, max_value=8),
    seed=st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=25, deadline=None)
def test_property_random_permutation_routing(nprocs, seed):
    """Messages routed along a random permutation all arrive correctly."""
    rng = np.random.default_rng(seed)
    perm = rng.permutation(nprocs).tolist()  # rank i sends to perm[i]
    inverse = [perm.index(r) for r in range(nprocs)]

    def main(ctx):
        yield ctx.send(perm[ctx.rank], ("payload", ctx.rank))
        tag, sender = yield ctx.recv(source=inverse[ctx.rank])
        return (tag, sender)

    results = run_world(nprocs, main)
    for rank, (tag, sender) in enumerate(results):
        assert tag == "payload"
        assert perm[sender] == rank


@given(
    nprocs=st.integers(min_value=2, max_value=6),
    rounds=st.integers(min_value=1, max_value=5),
)
@settings(max_examples=20, deadline=None)
def test_property_allreduce_matches_sequential_sum(nprocs, rounds):
    def main(ctx):
        total = 0.0
        for r in range(rounds):
            total += yield ctx.allreduce(float(ctx.rank * r), op="sum")
        return total

    expected = sum(sum(float(r * k) for k in range(nprocs)) for r in range(rounds))
    results = run_world(nprocs, main)
    assert all(v == pytest.approx(expected) for v in results)


@given(
    nprocs=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=500),
)
@settings(max_examples=20, deadline=None)
def test_property_execution_deterministic(nprocs, seed):
    """Identical programs produce identical results across executions."""

    def build():
        def main(ctx):
            rng = np.random.default_rng(seed + ctx.rank)
            value = float(rng.random())
            gathered = yield ctx.allgather(value)
            if ctx.size > 1:
                yield ctx.send((ctx.rank + 1) % ctx.size, value)
                other = yield ctx.recv(source=(ctx.rank - 1) % ctx.size)
            else:
                other = value
            return (tuple(gathered), other)

        return main

    first = run_world(nprocs, build())
    second = run_world(nprocs, build())
    assert first == second


@given(depth=st.integers(min_value=1, max_value=4))
@settings(max_examples=10, deadline=None)
def test_property_spawn_chain(depth):
    """A chain of spawned generations relays a token back up intact."""

    def link(ctx, remaining):
        if remaining > 0:
            inter = yield ctx.spawn(1, link, remaining - 1)
            token = yield ctx.recv(source=0, comm=inter)
        else:
            token = 0
        if ctx.parent is not None:
            yield ctx.send(0, token + 1, comm=ctx.parent)
            return None
        return token

    def root(ctx):
        return (yield from link(ctx, depth))

    # The chain has `depth` children below the root; token counts hops.
    from repro.mpi import MPIExecutor

    executor = MPIExecutor()
    world = executor.create_world(1, link, args=(depth,))
    executor.run()
    assert executor.world_results(world) == [depth]
