"""Dynamic process management (MPI_Comm_spawn) tests."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import MPIExecutor, run_world


def test_spawn_children_and_intercomm_send():
    def child(ctx):
        data = yield ctx.recv(source=0, comm=ctx.parent)
        return data * 2

    def parent(ctx):
        intercomm = yield ctx.spawn(2, child)
        if ctx.rank == 0:
            yield ctx.send(0, 10, comm=intercomm)
            yield ctx.send(1, 20, comm=intercomm)
        return "parent-done"

    executor = MPIExecutor()
    world = executor.create_world(1, parent)
    results = executor.run()
    assert executor.world_results(world) == ["parent-done"]
    # Children are procs 1 and 2.
    assert results[1] == 20
    assert results[2] == 40


def test_children_have_parent_intercomm():
    def child(ctx):
        yield ctx.barrier()
        return ctx.parent is not None

    def parent(ctx):
        yield ctx.spawn(2, child)
        return ctx.parent is None  # first world has no parent

    results = run_world(2, parent)
    assert results == [True, True]


def test_child_to_parent_reply():
    def child(ctx):
        n = yield ctx.recv(source=0, comm=ctx.parent)
        yield ctx.send(0, n + 1, comm=ctx.parent)

    def parent(ctx):
        intercomm = yield ctx.spawn(1, child)
        if ctx.rank == 0:
            yield ctx.send(0, 41, comm=intercomm)
            answer = yield ctx.recv(source=0, comm=intercomm)
            return answer
        return None

    assert run_world(1, parent)[0] == 42


def test_spawn_is_collective_over_world():
    """All parent ranks must join the spawn before children exist."""
    trace = []

    def child(ctx):
        yield ctx.barrier()
        trace.append("child-ran")

    def parent(ctx):
        if ctx.rank == 1:
            yield ctx.barrier()  # sync before spawning
        else:
            yield ctx.barrier()
        yield ctx.spawn(1, child)

    run_world(2, parent)
    assert trace == ["child-ran"]


def test_spawn_signature_mismatch_detected():
    def child_a(ctx):
        yield ctx.barrier()

    def child_b(ctx):
        yield ctx.barrier()

    def parent(ctx):
        target = child_a if ctx.rank == 0 else child_b
        yield ctx.spawn(1, target)

    with pytest.raises(MPIError, match="disagree"):
        run_world(2, parent)


def test_spawn_args_forwarded():
    def child(ctx, base, factor):
        yield ctx.barrier()
        return base * factor + ctx.rank

    def parent(ctx):
        yield ctx.spawn(2, child, 10, 3)

    executor = MPIExecutor()
    executor.create_world(1, parent)
    results = executor.run()
    assert results[1] == 30 and results[2] == 31


def test_compute_pi_master_worker():
    """The mpi4py dynamic-process-management tutorial pattern."""
    N = 200

    def worker(ctx):
        n = yield ctx.bcast(None, root=0, comm=None)  # world bcast among workers
        # Receive N from the parent instead (explicit message).
        n = yield ctx.recv(source=0, comm=ctx.parent)
        h = 1.0 / n
        s = sum(
            4.0 / (1.0 + ((i + 0.5) * h) ** 2)
            for i in range(ctx.rank, n, ctx.size)
        )
        partial = s * h
        total = yield ctx.allreduce(partial, op="sum")
        if ctx.rank == 0:
            yield ctx.send(0, total, comm=ctx.parent)

    def master(ctx):
        intercomm = yield ctx.spawn(4, worker)
        for r in range(4):
            yield ctx.send(r, N, comm=intercomm)
        pi = yield ctx.recv(source=0, comm=intercomm)
        return pi

    pi = run_world(1, master)[0]
    assert pi == pytest.approx(np.pi, abs=1e-3)


def test_nested_spawn():
    """Spawned worlds can spawn again (grandchildren)."""

    def grandchild(ctx):
        yield ctx.send(0, "gc", comm=ctx.parent)

    def child(ctx):
        inter = yield ctx.spawn(1, grandchild)
        msg = yield ctx.recv(source=0, comm=inter)
        yield ctx.send(0, f"child-saw-{msg}", comm=ctx.parent)

    def parent(ctx):
        inter = yield ctx.spawn(1, child)
        return (yield ctx.recv(source=0, comm=inter))

    assert run_world(1, parent)[0] == "child-saw-gc"
