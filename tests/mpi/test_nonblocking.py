"""Tests for non-blocking operations (Isend / Irecv / Waitall)."""

import numpy as np
import pytest

from repro.errors import DeadlockError, MPIError
from repro.mpi import run_world


def test_isend_returns_completed_request():
    def main(ctx):
        if ctx.rank == 0:
            req = yield ctx.isend(1, "payload")
            return req.done
        return (yield ctx.recv(source=0))

    results = run_world(2, main)
    assert results == [True, "payload"]


def test_irecv_waitall_roundtrip():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.isend(1, "a", tag=1)
            yield ctx.isend(1, "b", tag=2)
            return None
        r1 = yield ctx.irecv(source=0, tag=1)
        r2 = yield ctx.irecv(source=0, tag=2)
        values = yield ctx.waitall([r1, r2])
        return values

    assert run_world(2, main)[1] == ["a", "b"]


def test_waitall_blocks_until_messages_arrive():
    def main(ctx):
        if ctx.rank == 0:
            req = yield ctx.irecv(source=1)
            values = yield ctx.waitall([req])  # blocks: nothing sent yet
            return values[0]
        yield ctx.barrier() if False else ctx.isend(0, 42)

    assert run_world(2, main)[0] == 42


def test_waitall_mixed_send_recv_requests():
    def main(ctx):
        peer = 1 - ctx.rank
        sreq = yield ctx.isend(peer, ctx.rank * 10)
        rreq = yield ctx.irecv(source=peer)
        values = yield ctx.waitall([sreq, rreq])
        return values

    results = run_world(2, main)
    assert results[0] == [None, 10]
    assert results[1] == [None, 0]


def test_waitall_order_matches_request_order():
    def main(ctx):
        if ctx.rank == 3:
            reqs = []
            for src in (2, 0, 1):
                reqs.append((yield ctx.irecv(source=src)))
            return (yield ctx.waitall(reqs))
        yield ctx.isend(3, f"from-{ctx.rank}")

    assert run_world(4, main)[3] == ["from-2", "from-0", "from-1"]


def test_listing3_shrink_pattern():
    """The exact Isend/Irecv/Waitall exchange of the paper's Listing 3."""
    factor = 4

    def main(ctx):
        data = np.full(4, float(ctx.rank))
        sender = (ctx.rank % factor) < (factor - 1)
        if sender:
            dst = factor * (ctx.rank // factor + 1) - 1
            yield ctx.isend(dst, data)
            return None
        requests = []
        for i in range(1, factor):
            src = ctx.rank - factor + i
            requests.append((yield ctx.irecv(source=src)))
        blocks = yield ctx.waitall(requests)
        alldata = np.concatenate(blocks + [data])
        return alldata.tolist()

    results = run_world(8, main)
    assert results[3] == [0.0] * 4 + [1.0] * 4 + [2.0] * 4 + [3.0] * 4
    assert results[7] == [4.0] * 4 + [5.0] * 4 + [6.0] * 4 + [7.0] * 4


def test_waitall_deadlock_detected():
    def main(ctx):
        req = yield ctx.irecv(source=1 - ctx.rank)
        yield ctx.waitall([req])  # nobody ever sends

    with pytest.raises(DeadlockError):
        run_world(2, main)


def test_numpy_payload_through_waitall():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.isend(1, np.arange(100.0))
            return None
        req = yield ctx.irecv(source=0)
        (arr,) = yield ctx.waitall([req])
        return float(arr.sum())

    assert run_world(2, main)[1] == pytest.approx(4950.0)
