"""Collective operation tests on the MPI substrate."""

import numpy as np
import pytest

from repro.errors import MPIError
from repro.mpi import run_world


def test_barrier_synchronizes():
    def main(ctx):
        yield ctx.barrier()
        return "past"

    assert run_world(4, main) == ["past"] * 4


def test_bcast():
    def main(ctx):
        value = {"k": [1, 2]} if ctx.rank == 0 else None
        got = yield ctx.bcast(value, root=0)
        return got

    results = run_world(3, main)
    assert all(r == {"k": [1, 2]} for r in results)


def test_bcast_nonzero_root():
    def main(ctx):
        value = "payload" if ctx.rank == 2 else None
        return (yield ctx.bcast(value, root=2))

    assert run_world(3, main) == ["payload"] * 3


def test_scatter():
    def main(ctx):
        values = [(i + 1) ** 2 for i in range(ctx.size)] if ctx.rank == 0 else None
        got = yield ctx.scatter(values, root=0)
        return got

    assert run_world(4, main) == [1, 4, 9, 16]


def test_scatter_wrong_length():
    def main(ctx):
        values = [1, 2] if ctx.rank == 0 else None
        yield ctx.scatter(values, root=0)

    with pytest.raises(MPIError):
        run_world(3, main)


def test_gather():
    def main(ctx):
        got = yield ctx.gather((ctx.rank + 1) ** 2, root=0)
        return got

    results = run_world(4, main)
    assert results[0] == [1, 4, 9, 16]
    assert results[1] is None


def test_allgather():
    def main(ctx):
        got = yield ctx.allgather(ctx.rank * 10)
        return got

    assert run_world(3, main) == [[0, 10, 20]] * 3


def test_allreduce_sum():
    def main(ctx):
        return (yield ctx.allreduce(ctx.rank + 1, op="sum"))

    assert run_world(4, main) == [10] * 4


def test_allreduce_max_min():
    def main(ctx):
        hi = yield ctx.allreduce(ctx.rank, op="max")
        lo = yield ctx.allreduce(ctx.rank, op="min")
        return (hi, lo)

    assert run_world(4, main) == [(3, 0)] * 4


def test_allreduce_numpy_arrays():
    def main(ctx):
        v = np.full(4, float(ctx.rank))
        total = yield ctx.allreduce(v, op="sum")
        return total.tolist()

    assert run_world(3, main) == [[3.0, 3.0, 3.0, 3.0]] * 3


def test_allreduce_custom_op():
    def main(ctx):
        return (yield ctx.allreduce([ctx.rank], op=lambda a, b: a + b))

    assert run_world(3, main) == [[0, 1, 2]] * 3


def test_alltoall():
    def main(ctx):
        outgoing = [f"{ctx.rank}->{d}" for d in range(ctx.size)]
        got = yield ctx.alltoall(outgoing)
        return got

    results = run_world(3, main)
    assert results[1] == ["0->1", "1->1", "2->1"]


def test_alltoall_wrong_length():
    def main(ctx):
        yield ctx.alltoall([1])

    with pytest.raises(MPIError):
        run_world(3, main)


def test_mismatched_collectives_detected():
    def main(ctx):
        if ctx.rank == 0:
            yield ctx.barrier()
        else:
            yield ctx.allreduce(1)

    with pytest.raises(MPIError, match="mismatch"):
        run_world(2, main)


def test_mismatched_bcast_roots_detected():
    def main(ctx):
        yield ctx.bcast("v", root=ctx.rank)

    with pytest.raises(MPIError, match="root"):
        run_world(2, main)


def test_repeated_collectives():
    def main(ctx):
        total = 0
        for i in range(5):
            total += yield ctx.allreduce(i, op="sum")
        return total

    # Each round reduces i over 3 ranks: 3*i; sum over i=0..4 -> 3*10.
    assert run_world(3, main) == [30] * 3


def test_parallel_dot_product():
    """The mpi4py tutorial's parallel matvec pattern, verified exactly."""
    n, p = 12, 3

    def main(ctx):
        rng = np.random.default_rng(42)
        full = rng.random(n)
        block = n // ctx.size
        local = full[ctx.rank * block : (ctx.rank + 1) * block]
        partial = float(local @ local)
        total = yield ctx.allreduce(partial, op="sum")
        return total

    results = run_world(p, main)
    expected = results[0]
    rng = np.random.default_rng(42)
    full = rng.random(n)
    assert expected == pytest.approx(float(full @ full))
    assert all(r == pytest.approx(expected) for r in results)
