"""Unit tests for resize actions and decisions."""

import pytest

from repro.core import DecisionReason, ResizeAction, ResizeDecision, ResizeRequest


def test_action_truthiness():
    assert not ResizeAction.NO_ACTION
    assert ResizeAction.EXPAND
    assert ResizeAction.SHRINK


def test_decision_truthiness_mirrors_action():
    yes = ResizeDecision(ResizeAction.EXPAND, 8, DecisionReason.ALONE_IN_SYSTEM)
    no = ResizeDecision.no_action(4, DecisionReason.NO_RESOURCES)
    assert yes and not no
    assert no.target_procs == 4


def test_expand_sizes_cap_at_max():
    req = ResizeRequest(min_procs=1, max_procs=20, factor=2)
    assert req.expand_sizes(5) == (10, 20)
    assert req.expand_sizes(20) == ()


def test_shrink_sizes_stop_at_min():
    req = ResizeRequest(min_procs=4, max_procs=32, factor=2)
    assert req.shrink_sizes(32) == (16, 8, 4)
    assert req.shrink_sizes(4) == ()


def test_factor_three():
    req = ResizeRequest(min_procs=1, max_procs=27, factor=3)
    assert req.expand_sizes(3) == (9, 27)
    assert req.shrink_sizes(9) == (3, 1)


def test_max_procs_to_none_when_stuck():
    req = ResizeRequest(min_procs=1, max_procs=32)
    assert req.max_procs_to(32, limit=32, available=100) is None
    assert req.max_procs_to(4, limit=4, available=100) is None


def test_preferred_equal_bounds_ok():
    req = ResizeRequest(min_procs=8, max_procs=8, preferred=8)
    assert req.preferred == 8
    assert req.expand_sizes(8) == ()
