"""Tests for the opaque offload handler."""

import pytest

from repro.core import OffloadHandler, ResizeAction


def test_expand_factor():
    h = OffloadHandler(ResizeAction.EXPAND, old_procs=4, new_procs=8)
    assert h.factor == 2


def test_shrink_factor():
    h = OffloadHandler(ResizeAction.SHRINK, old_procs=16, new_procs=4)
    assert h.factor == 4


def test_same_size_factor_is_one():
    h = OffloadHandler(ResizeAction.NO_ACTION, old_procs=4, new_procs=4)
    assert h.factor == 1


def test_non_homogeneous_factor_raises():
    h = OffloadHandler(ResizeAction.EXPAND, old_procs=4, new_procs=6)
    with pytest.raises(ValueError):
        _ = h.factor


def test_validation():
    with pytest.raises(ValueError):
        OffloadHandler(ResizeAction.EXPAND, old_procs=0, new_procs=4)
