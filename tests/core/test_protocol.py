"""Tests for the explicit runtime<->RMS message protocol."""

import pytest

from repro.apps import flexible_sleep
from repro.cluster import ClusterConfig
from repro.core import (
    CheckReply,
    CheckRequest,
    ExpandComplete,
    RMSChannel,
    ResizeAction,
    ResizeRequest,
    ShrinkAck,
)
from repro.errors import RuntimeAPIError
from repro.runtime import RuntimeConfig, install_runtime_launcher
from repro.sim import Environment
from repro.slurm import Job, JobClass, JobState, SlurmController


def setup(nodes=16):
    env = Environment()
    cluster = ClusterConfig(num_nodes=nodes)
    machine = cluster.build_machine()
    ctl = SlurmController(env, machine)
    return env, cluster, machine, ctl


def malleable(nodes, steps=2, step_time=20.0, **req):
    app = flexible_sleep(step_time=step_time, at_procs=nodes, steps=steps, **req)
    return Job(
        name="flex",
        num_nodes=nodes,
        time_limit=100_000.0,
        job_class=JobClass.MALLEABLE,
        resize_request=app.resize,
        payload=app,
    )


def test_message_validation():
    with pytest.raises(RuntimeAPIError):
        CheckRequest(job_id=1)  # request missing
    env, cluster, machine, ctl = setup()
    with pytest.raises(RuntimeAPIError):
        RMSChannel(ctl, latency=-1.0)


def test_message_ids_unique():
    a = CheckRequest(job_id=1, request=ResizeRequest(min_procs=1, max_procs=2))
    b = CheckRequest(job_id=1, request=ResizeRequest(min_procs=1, max_procs=2))
    assert a.msg_id != b.msg_id


def test_channel_check_costs_round_trip():
    env, cluster, machine, ctl = setup()
    job = ctl.submit(malleable(4))
    env.run(until=0.1)
    channel = RMSChannel(ctl, latency=0.5)
    holder = {}

    def caller():
        t0 = env.now
        decision = yield from channel.check(job, job.resize_request)
        holder["elapsed"] = env.now - t0
        holder["decision"] = decision

    env.process(caller())
    env.run(until=5.0)
    assert holder["elapsed"] == pytest.approx(1.0)  # up + down
    assert holder["decision"].action is ResizeAction.EXPAND


def test_channel_logs_request_and_reply():
    env, cluster, machine, ctl = setup()
    job = ctl.submit(malleable(4))
    env.run(until=0.1)
    channel = RMSChannel(ctl, latency=0.0)

    def caller():
        yield from channel.check(job, job.resize_request)

    env.process(caller())
    env.run(until=1.0)
    kinds = [type(m).__name__ for m in channel.log]
    assert kinds == ["CheckRequest", "CheckReply"]
    request, reply = channel.log
    assert reply.in_reply_to == request.msg_id
    assert reply.decision.action is ResizeAction.EXPAND


def test_runtime_with_protocol_channel_completes_and_logs():
    env, cluster, machine, ctl = setup(nodes=16)
    install_runtime_launcher(
        ctl, cluster, RuntimeConfig(use_protocol_channel=True, check_cost=0.2)
    )
    job = ctl.submit(malleable(4, steps=3, step_time=30.0, max_procs=16))
    env.run()
    assert job.state is JobState.COMPLETED
    assert len(job.resizes) >= 1
    # The runtime's channel recorded the full conversation, including the
    # expansion-complete notification.
    runtime_proc = ctl.job_processes[job.job_id]
    # Access the channel via the trace instead: DMR checks were recorded.
    from repro.metrics import EventKind

    checks = ctl.trace.of_kind(EventKind.DMR_CHECK)
    assert len(checks) >= 1
    assert all(e["blocking"] for e in checks)


def test_channel_and_flat_cost_agree_on_totals():
    """Same round-trip cost either way: comparable makespans."""

    def run(use_channel):
        env, cluster, machine, ctl = setup(nodes=8)
        install_runtime_launcher(
            ctl,
            cluster,
            RuntimeConfig(use_protocol_channel=use_channel, check_cost=0.5),
        )
        # Saturated machine: checks never find a resize, pure overhead.
        job = ctl.submit(malleable(8, steps=10, step_time=5.0, max_procs=8, min_procs=8))
        env.run()
        return job.execution_time

    flat = run(False)
    wired = run(True)
    assert wired == pytest.approx(flat)


def test_notifications_logged():
    env, cluster, machine, ctl = setup()
    channel = RMSChannel(ctl, latency=0.0)
    job = ctl.submit(malleable(4))
    env.run(until=0.1)
    channel.notify_shrink_acks(job, (2, 3))
    channel.notify_expand_complete(job, 8)
    acks = [m for m in channel.log if isinstance(m, ShrinkAck)]
    dones = [m for m in channel.log if isinstance(m, ExpandComplete)]
    assert [a.node_index for a in acks] == [2, 3]
    assert dones[0].new_size == 8
