"""Tests for the DMR session (sync/async decision hand-off)."""

from repro.core import DMRSession, DecisionReason, ResizeAction, ResizeDecision


def expand(target):
    return ResizeDecision(
        ResizeAction.EXPAND, target, DecisionReason.EXPAND_IDLE_RESOURCES
    )


def shrink(target):
    return ResizeDecision(
        ResizeAction.SHRINK, target, DecisionReason.SHRINK_FOR_PENDING
    )


def no_action():
    return ResizeDecision.no_action(4, DecisionReason.NO_RESOURCES)


class TestSynchronous:
    def test_returns_fresh_decision_blocking(self):
        s = DMRSession()
        out = s.check(0.0, decide=lambda: expand(8))
        assert out.decision.target_procs == 8
        assert out.blocking
        assert not out.inhibited

    def test_inhibited_calls_skip_decide(self):
        s = DMRSession(sched_period=10.0)
        calls = []
        out = s.check(5.0, decide=lambda: calls.append(1) or expand(8))
        assert out.inhibited
        assert out.decision is None
        assert calls == []

    def test_inhibitor_window(self):
        s = DMRSession(sched_period=10.0)
        assert s.check(10.0, decide=lambda: expand(8)).decision is not None
        assert s.check(15.0, decide=lambda: expand(8)).inhibited
        assert s.check(20.0, decide=lambda: expand(8)).decision is not None


class TestAsynchronous:
    def test_first_call_applies_nothing(self):
        s = DMRSession(async_mode=True)
        out = s.check(0.0, decide=lambda: expand(8))
        assert out.decision is None
        assert not out.blocking
        assert s.pending.target_procs == 8

    def test_second_call_applies_previous_decision(self):
        s = DMRSession(async_mode=True)
        s.check(0.0, decide=lambda: expand(8))
        out = s.check(1.0, decide=lambda: shrink(2))
        # Applies the step-0 decision even though conditions changed.
        assert out.decision.action is ResizeAction.EXPAND
        assert out.decision.target_procs == 8
        assert s.pending.action is ResizeAction.SHRINK

    def test_no_action_decisions_are_dropped(self):
        s = DMRSession(async_mode=True)
        s.check(0.0, decide=lambda: no_action())
        out = s.check(1.0, decide=lambda: expand(8))
        assert out.decision is None  # NO_ACTION never "applied"

    def test_async_never_blocks(self):
        s = DMRSession(async_mode=True)
        for t in (0.0, 1.0, 2.0):
            assert not s.check(t, decide=lambda: expand(8)).blocking

    def test_cancel_pending(self):
        s = DMRSession(async_mode=True)
        s.check(0.0, decide=lambda: expand(8))
        s.cancel_pending()
        out = s.check(1.0, decide=lambda: expand(16))
        assert out.decision is None

    def test_async_respects_inhibitor(self):
        s = DMRSession(sched_period=10.0, async_mode=True)
        s.check(10.0, decide=lambda: expand(8))
        out = s.check(12.0, decide=lambda: expand(16))
        assert out.inhibited
        # Pending decision survives an inhibited call.
        assert s.pending.target_procs == 8
