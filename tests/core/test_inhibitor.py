"""Tests for the checking inhibitor (NANOX_SCHED_PERIOD)."""

import pytest

from repro.core import CheckInhibitor
from repro.errors import RuntimeAPIError


def test_zero_period_always_allows():
    inh = CheckInhibitor(0.0)
    for t in (0.0, 0.1, 0.1, 5.0):
        assert inh.try_acquire(t)


def test_negative_period_rejected():
    with pytest.raises(RuntimeAPIError):
        CheckInhibitor(-1.0)


def test_period_blocks_until_elapsed():
    inh = CheckInhibitor(5.0, start=0.0)
    assert not inh.allows(0.0)
    assert not inh.allows(4.9)
    assert inh.allows(5.0)


def test_first_check_counts_from_start():
    inh = CheckInhibitor(15.0, start=100.0)
    assert not inh.allows(110.0)
    assert inh.allows(115.0)


def test_record_resets_window():
    inh = CheckInhibitor(5.0)
    assert inh.try_acquire(5.0)
    assert not inh.try_acquire(8.0)
    assert inh.try_acquire(10.0)
    assert inh.last_check == 10.0


def test_non_monotone_record_rejected():
    inh = CheckInhibitor(5.0)
    inh.record(10.0)
    with pytest.raises(RuntimeAPIError):
        inh.record(9.0)


def test_try_acquire_does_not_record_when_blocked():
    inh = CheckInhibitor(5.0)
    assert not inh.try_acquire(3.0)
    assert inh.last_check == 0.0
