"""Property tests on the SWF import/export round trip.

Fuzzes :func:`repro.workload.swf.export_sched_trace` /
:func:`repro.workload.swf.parse_swf` with generated traces including the
awkward records real logs contain: zero-duration jobs, out-of-order
submit times, sub-centisecond values that round to zero, comment and
header lines, and trailing whitespace.
"""

from dataclasses import dataclass
from typing import List

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.workload.generator import SchedTraceJob
from repro.workload.swf import export_sched_trace, parse_swf


def _round2(value: float) -> float:
    """SWF centisecond precision: what a written value parses back as."""
    return float(f"{value:.2f}")


@dataclass(frozen=True)
class RawJob:
    submit: float
    runtime: float  # 0.0 models a zero-duration (e.g. instantly-failed) job
    nodes: int


raw_job_strategy = st.builds(
    RawJob,
    submit=st.floats(0.0, 10_000.0),
    runtime=st.one_of(
        st.just(0.0),
        st.floats(0.0, 0.004),  # rounds to zero at SWF precision
        st.floats(0.01, 5_000.0),
    ),
    nodes=st.integers(1, 64),
)


def _trace_of(raw_jobs: List[RawJob]) -> List[SchedTraceJob]:
    return [
        SchedTraceJob(
            name=f"j{i}",
            nodes=r.nodes,
            arrival=r.submit,
            runtime=r.runtime,
            limit=1.2 * r.runtime if r.runtime > 0 else 0.0,
        )
        for i, r in enumerate(raw_jobs)
    ]


class TestSchedTraceRoundTrip:
    @given(raw=st.lists(raw_job_strategy, min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_round_trip_keeps_usable_jobs(self, raw):
        """Every job whose written runtime (or requested time) survives
        centisecond rounding comes back; zero-duration jobs are dropped."""
        trace = _trace_of(raw)
        text = export_sched_trace(trace)
        usable = [
            r for r in raw
            if _round2(r.runtime) > 0 or _round2(1.2 * r.runtime) > 0
        ]
        if not usable:
            with pytest.raises(WorkloadError, match="no usable jobs"):
                parse_swf(text)
            return
        spec = parse_swf(text)
        assert len(spec.jobs) == len(usable)

    @given(raw=st.lists(raw_job_strategy, min_size=1, max_size=30))
    @settings(max_examples=80, deadline=None)
    def test_out_of_order_submits_come_back_sorted(self, raw):
        trace = _trace_of(raw)
        text = export_sched_trace(trace)
        try:
            spec = parse_swf(text)
        except WorkloadError:
            return  # all-zero-duration trace: nothing to sort
        arrivals = [js.arrival_time for js in spec.jobs]
        assert arrivals == sorted(arrivals)

    @given(raw=st.lists(raw_job_strategy, min_size=1, max_size=20))
    @settings(max_examples=80, deadline=None)
    def test_values_survive_at_centisecond_precision(self, raw):
        usable = [r for r in raw if _round2(r.runtime) > 0]
        if not usable:
            return
        trace = _trace_of(usable)
        spec = parse_swf(export_sched_trace(trace))
        by_arrival = sorted(usable, key=lambda r: _round2(r.submit))
        assert len(spec.jobs) == len(by_arrival)
        for js, r in zip(spec.jobs, by_arrival):
            assert js.arrival_time == pytest.approx(r.submit, abs=0.005)
            assert js.submit_nodes == r.nodes
            # Requested time is written as 1.2 x runtime.
            assert js.time_limit == pytest.approx(
                1.2 * _round2(r.runtime), rel=0.02
            )

    @given(raw=st.lists(raw_job_strategy, min_size=1, max_size=10),
           seed=st.integers(0, 2**16))
    @settings(max_examples=60, deadline=None)
    def test_comments_blanks_and_whitespace_are_ignored(self, raw, seed):
        """Interleaving headers, comments, blank lines and inline
        comments never changes what parses."""
        import random

        usable = [r for r in raw if _round2(r.runtime) > 0]
        if not usable:
            return
        text = export_sched_trace(_trace_of(usable))
        rng = random.Random(seed)
        noisy_lines: List[str] = []
        for line in text.splitlines():
            if rng.random() < 0.5:
                noisy_lines.append(rng.choice([
                    "; UnixStartTime: 1234567890",
                    ";;; deep comment",
                    "",
                    "   ",
                    "; MaxNodes: 999",
                ]))
            if not line.lstrip().startswith(";") and line.strip():
                line = "  " + line + "   ; trailing comment"
            noisy_lines.append(line)
        clean = parse_swf(text)
        noisy = parse_swf("\n".join(noisy_lines))
        assert len(noisy.jobs) == len(clean.jobs)
        for a, b in zip(clean.jobs, noisy.jobs):
            assert a.arrival_time == b.arrival_time
            assert a.submit_nodes == b.submit_nodes
            assert a.time_limit == b.time_limit


class TestParserEdgeCases:
    def test_malformed_line_raises(self):
        with pytest.raises(WorkloadError, match="malformed"):
            parse_swf("1 2 3\n")

    def test_negative_submit_raises(self):
        line = "1 -5 -1 10 4 -1 -1 4 12 -1 1 -1 -1 -1 -1 -1 -1 -1"
        with pytest.raises(WorkloadError, match="negative submit"):
            parse_swf(line)

    def test_zero_runtime_falls_back_to_requested_time(self):
        line = "1 0 -1 0 4 -1 -1 4 120 -1 1 -1 -1 -1 -1 -1 -1 -1"
        spec = parse_swf(line)
        assert len(spec.jobs) == 1
        # runtime <- requested time; limit = 1.2 x runtime.
        assert spec.jobs[0].time_limit == pytest.approx(1.2 * 120.0)

    def test_nonpositive_requested_procs_falls_back_to_allocated(self):
        line = "1 0 -1 50 6 -1 -1 -1 60 -1 1 -1 -1 -1 -1 -1 -1 -1"
        spec = parse_swf(line)
        assert spec.jobs[0].submit_nodes == 6

    def test_comment_only_log_raises(self):
        with pytest.raises(WorkloadError, match="no usable jobs"):
            parse_swf("; just a header\n;; and a comment\n")
