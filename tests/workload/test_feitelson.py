"""Tests for the Feitelson '96 workload model."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import WorkloadError
from repro.sim import RandomStreams
from repro.workload import FeitelsonConfig, FeitelsonModel


def model(seed=0, **kw):
    return FeitelsonModel(FeitelsonConfig(**kw), RandomStreams(seed))


class TestConfig:
    def test_validation(self):
        with pytest.raises(WorkloadError):
            FeitelsonConfig(min_size=0)
        with pytest.raises(WorkloadError):
            FeitelsonConfig(min_size=10, max_size=5)
        with pytest.raises(WorkloadError):
            FeitelsonConfig(runtime_short_mean=0)
        with pytest.raises(WorkloadError):
            FeitelsonConfig(long_prob_small=1.5)
        with pytest.raises(WorkloadError):
            FeitelsonConfig(arrival_mean=0)
        with pytest.raises(WorkloadError):
            FeitelsonConfig(max_repetitions=0)


class TestSizes:
    def test_sizes_within_bounds(self):
        m = model(max_size=20)
        sizes = [m.sample_size() for _ in range(500)]
        assert min(sizes) >= 1
        assert max(sizes) <= 20

    def test_small_jobs_dominate(self):
        m = model(max_size=20)
        sizes = [m.sample_size() for _ in range(3000)]
        small = sum(1 for s in sizes if s <= 4)
        assert small > len(sizes) / 2

    def test_powers_of_two_emphasized(self):
        m = model(max_size=20)
        sizes = [m.sample_size() for _ in range(5000)]
        count = np.bincount(sizes, minlength=21)
        # 16 is boosted: more frequent than its harmonic neighbours 15, 17.
        assert count[16] > count[15]
        assert count[16] > count[17]

    def test_deterministic_with_seed(self):
        a = [model(seed=7).sample_size() for _ in range(5)]
        b = [model(seed=7).sample_size() for _ in range(5)]
        assert a == b


class TestRuntimes:
    def test_positive_runtimes(self):
        m = model()
        assert all(m.sample_runtime(4) > 0 for _ in range(200))

    def test_long_branch_probability_grows_with_size(self):
        m = model(max_size=20, long_prob_small=0.05, long_prob_large=0.35)
        assert m.long_branch_probability(1) == pytest.approx(0.05)
        assert m.long_branch_probability(20) == pytest.approx(0.35)
        assert m.long_branch_probability(10) < m.long_branch_probability(15)

    def test_runtime_correlates_with_size(self):
        m = model()
        small = np.mean([m.sample_runtime(1) for _ in range(4000)])
        big = np.mean([m.sample_runtime(20) for _ in range(4000)])
        assert big > small

    def test_runtime_cap(self):
        m = model(runtime_cap=50.0)
        assert all(m.sample_runtime(20) <= 50.0 for _ in range(300))

    def test_single_size_support(self):
        m = model(min_size=4, max_size=4)
        assert m.long_branch_probability(4) == pytest.approx(0.05)
        assert m.sample_size() == 4


class TestRepetitionsAndArrivals:
    def test_repetitions_in_range(self):
        m = model(max_repetitions=6)
        reps = [m.sample_repetitions() for _ in range(500)]
        assert min(reps) >= 1
        assert max(reps) <= 6

    def test_single_runs_most_common(self):
        m = model()
        reps = [m.sample_repetitions() for _ in range(2000)]
        assert reps.count(1) > len(reps) / 2

    def test_arrival_times_monotone(self):
        times = model().arrival_times(100)
        assert all(b > a for a, b in zip(times, times[1:]))

    def test_arrival_mean(self):
        times = model(arrival_mean=10.0).arrival_times(4000)
        gaps = np.diff([0.0] + times)
        assert 9.0 < gaps.mean() < 11.0

    def test_arrival_count_validation(self):
        with pytest.raises(WorkloadError):
            model().arrival_times(-1)
        assert model().arrival_times(0) == []


@given(st.integers(min_value=0, max_value=10_000))
@settings(max_examples=30, deadline=None)
def test_property_model_deterministic(seed):
    m1, m2 = model(seed=seed), model(seed=seed)
    assert m1.sample_size() == m2.sample_size()
    assert m1.sample_runtime(8) == m2.sample_runtime(8)
    assert m1.sample_interarrival() == m2.sample_interarrival()
