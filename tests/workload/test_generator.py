"""Tests for workload assembly (FS and real-application mixes)."""

import pytest

from repro.errors import WorkloadError
from repro.slurm import JobClass
from repro.workload import (
    FSWorkloadConfig,
    WorkloadSpec,
    fs_workload,
    realapp_workload,
)
from repro.workload.spec import JobSpec


class TestJobSpec:
    def spec(self, **kw):
        from repro.apps import flexible_sleep

        defaults = dict(
            name="j",
            submit_nodes=4,
            arrival_time=0.0,
            app_factory=lambda: flexible_sleep(step_time=10, at_procs=4),
        )
        defaults.update(kw)
        return JobSpec(**defaults)

    def test_validation(self):
        with pytest.raises(WorkloadError):
            self.spec(submit_nodes=0)
        with pytest.raises(WorkloadError):
            self.spec(arrival_time=-1)

    def test_build_flexible_job(self):
        job = self.spec().build_job(flexible_workload=True)
        assert job.job_class is JobClass.MALLEABLE
        assert job.resize_request is not None

    def test_build_fixed_rendition_forces_rigid(self):
        job = self.spec().build_job(flexible_workload=False)
        assert job.job_class is JobClass.RIGID
        assert job.resize_request is None

    def test_fixed_spec_stays_rigid_in_flexible_workload(self):
        job = self.spec(flexible=False).build_job(flexible_workload=True)
        assert job.job_class is JobClass.RIGID

    def test_time_limit_defaults_to_padded_nominal(self):
        job = self.spec().build_job(flexible_workload=False)
        # 2 steps x 10 s at submit size, padded by 1.2.
        assert job.time_limit == pytest.approx(1.2 * 20.0)

    def test_each_build_gets_fresh_app(self):
        spec = self.spec()
        a = spec.build_job(True).payload
        b = spec.build_job(True).payload
        assert a is not b


class TestFSWorkload:
    def test_job_count(self):
        assert len(fs_workload(25, seed=0)) == 25

    def test_deterministic(self):
        a, b = fs_workload(20, seed=3), fs_workload(20, seed=3)
        assert [s.submit_nodes for s in a.jobs] == [s.submit_nodes for s in b.jobs]
        assert [s.arrival_time for s in a.jobs] == [s.arrival_time for s in b.jobs]

    def test_seeds_differ(self):
        a, b = fs_workload(20, seed=1), fs_workload(20, seed=2)
        assert [s.submit_nodes for s in a.jobs] != [s.submit_nodes for s in b.jobs]

    def test_sizes_within_cluster(self):
        wl = fs_workload(50, seed=0, config=FSWorkloadConfig(max_size=20))
        assert all(1 <= s.submit_nodes <= 20 for s in wl.jobs)

    def test_arrivals_sorted(self):
        wl = fs_workload(50, seed=0)
        arrivals = [s.arrival_time for s in wl.jobs]
        assert arrivals == sorted(arrivals)

    def test_table1_iterations_default(self):
        wl = fs_workload(5, seed=0)
        app = wl.jobs[0].app_factory()
        assert app.iterations == 25

    def test_step_cap_respected(self):
        wl = fs_workload(40, seed=0, config=FSWorkloadConfig(step_cap=60.0))
        for spec in wl.jobs:
            app = spec.app_factory()
            assert app.step_time(spec.submit_nodes) <= 60.0 + 1e-9

    def test_flexible_ratio(self):
        wl = fs_workload(200, seed=0, config=FSWorkloadConfig(flexible_ratio=0.5))
        assert 0.3 < wl.flexible_ratio < 0.7
        all_flex = fs_workload(50, seed=0)
        assert all_flex.flexible_ratio == 1.0
        none_flex = fs_workload(
            50, seed=0, config=FSWorkloadConfig(flexible_ratio=0.0)
        )
        assert none_flex.flexible_ratio == 0.0

    def test_sched_period_propagates(self):
        wl = fs_workload(5, seed=0, config=FSWorkloadConfig(sched_period=5.0))
        assert wl.jobs[0].app_factory().sched_period == 5.0

    def test_validation(self):
        with pytest.raises(WorkloadError):
            fs_workload(0)
        with pytest.raises(WorkloadError):
            FSWorkloadConfig(steps=0)
        with pytest.raises(WorkloadError):
            FSWorkloadConfig(flexible_ratio=2.0)

    def test_fixed_rendition_shares_jobs(self):
        flex = fs_workload(20, seed=0)
        fixed = flex.with_flexible_ratio_zero()
        assert len(fixed) == len(flex)
        assert fixed.flexible_ratio == 0.0
        assert [s.submit_nodes for s in fixed.jobs] == [
            s.submit_nodes for s in flex.jobs
        ]


class TestRealAppWorkload:
    def test_equal_proportions(self):
        wl = realapp_workload(99, seed=0)
        names = [s.name.split("-")[0] for s in wl.jobs]
        assert names.count("cg") == 33
        assert names.count("jacobi") == 33
        assert names.count("nbody") == 33

    def test_submitted_at_maximum(self):
        wl = realapp_workload(30, seed=0)
        for spec in wl.jobs:
            app = spec.app_factory()
            assert spec.submit_nodes == app.resize.max_procs

    def test_random_sort_deterministic(self):
        a, b = realapp_workload(30, seed=5), realapp_workload(30, seed=5)
        assert [s.name for s in a.jobs] == [s.name for s in b.jobs]
        c = realapp_workload(30, seed=6)
        assert [s.name for s in a.jobs] != [s.name for s in c.jobs]

    def test_mix_is_shuffled(self):
        wl = realapp_workload(30, seed=0)
        kinds = [s.name.split("-")[0] for s in wl.jobs]
        # Not the unshuffled round-robin pattern.
        assert kinds != ["cg", "jacobi", "nbody"] * 10

    def test_validation(self):
        with pytest.raises(WorkloadError):
            realapp_workload(0)
        with pytest.raises(WorkloadError):
            realapp_workload(10, factories=())


class TestWorkloadSpec:
    def test_jobs_sorted_on_construction(self):
        from repro.apps import flexible_sleep

        factory = lambda: flexible_sleep(step_time=1, at_procs=1)
        spec = WorkloadSpec(
            name="w",
            jobs=[
                JobSpec("b", 1, 10.0, factory),
                JobSpec("a", 1, 5.0, factory),
            ],
        )
        assert [s.name for s in spec.jobs] == ["a", "b"]


class TestSchedTrace:
    def test_deterministic_per_seed(self):
        from repro.workload.generator import sched_trace

        a = sched_trace(100, seed=3)
        b = sched_trace(100, seed=3)
        c = sched_trace(100, seed=4)
        assert a == b
        assert a != c

    def test_shapes_and_bounds(self):
        from repro.workload.generator import sched_trace

        trace = sched_trace(200, seed=0, max_size=20, runtime_cap=3600.0)
        assert len(trace) == 200
        assert all(1 <= t.nodes <= 20 for t in trace)
        assert all(0.0 < t.runtime <= 3600.0 for t in trace)
        assert all(t.limit == pytest.approx(1.2 * t.runtime) for t in trace)
        arrivals = [t.arrival for t in trace]
        assert arrivals == sorted(arrivals)

    def test_validation(self):
        from repro.workload.generator import sched_trace

        with pytest.raises(WorkloadError):
            sched_trace(0)

    def test_swf_round_trip_preserves_shape(self):
        from repro.workload.generator import sched_trace, sched_trace_via_swf

        trace = sched_trace(50, seed=1)
        back = sched_trace_via_swf(trace)
        assert len(back) == len(trace)
        assert [t.nodes for t in back] == [t.nodes for t in trace]
        # SWF stores times at centisecond precision.
        for orig, rt in zip(trace, back):
            assert rt.arrival == pytest.approx(orig.arrival, abs=0.01)
            assert rt.runtime == pytest.approx(orig.runtime, abs=0.01)
