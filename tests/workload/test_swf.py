"""Tests for Standard Workload Format import/export."""

import pytest

from repro.cluster import ClusterConfig
from repro.errors import WorkloadError
from repro.experiments.common import run_workload
from repro.workload import (
    FSWorkloadConfig,
    export_results,
    export_spec,
    fs_workload,
    parse_swf,
)


SAMPLE_SWF = """\
; sample log
; MaxJobs: 3
1 0 5 100 4 -1 -1 4 120 -1 1 -1 -1 -1 -1 -1 -1 -1
2 30 0 200 8 -1 -1 8 240 -1 1 -1 -1 -1 -1 -1 -1 -1
3 60 -1 -1 2 -1 -1 2 50 -1 5 -1 -1 -1 -1 -1 -1 -1
"""


class TestParse:
    def test_parses_jobs(self):
        spec = parse_swf(SAMPLE_SWF)
        assert len(spec) == 3
        assert [s.submit_nodes for s in spec.jobs] == [4, 8, 2]
        assert [s.arrival_time for s in spec.jobs] == [0.0, 30.0, 60.0]

    def test_runtime_from_log_or_estimate(self):
        spec = parse_swf(SAMPLE_SWF, steps=10)
        # Job 1: run time 100 s at 4 procs.
        app = spec.jobs[0].app_factory()
        assert app.total_time(4) == pytest.approx(100.0)
        # Job 3: no run time -> uses the 50 s request.
        app3 = spec.jobs[2].app_factory()
        assert app3.total_time(2) == pytest.approx(50.0)

    def test_comment_only_log_rejected(self):
        with pytest.raises(WorkloadError):
            parse_swf("; nothing here\n")

    def test_malformed_line_rejected(self):
        with pytest.raises(WorkloadError, match="malformed"):
            parse_swf("1 2 3\n")

    def test_negative_submit_rejected(self):
        bad = "1 -5 0 10 1 -1 -1 1 10 -1 1 -1 -1 -1 -1 -1 -1 -1\n"
        with pytest.raises(WorkloadError, match="submit"):
            parse_swf(bad)

    def test_imported_workload_runs(self):
        spec = parse_swf(SAMPLE_SWF, steps=4)
        result = run_workload(spec, ClusterConfig(num_nodes=16), flexible=True)
        assert result.summary.num_jobs == 3

    def test_flexible_flag(self):
        rigid = parse_swf(SAMPLE_SWF, flexible=False)
        assert rigid.flexible_ratio == 0.0


class TestExport:
    def test_export_spec_roundtrip(self):
        original = fs_workload(8, seed=2, config=FSWorkloadConfig(steps=4))
        text = export_spec(original)
        back = parse_swf(text, steps=4)
        assert len(back) == len(original)
        assert [s.submit_nodes for s in back.jobs] == [
            s.submit_nodes for s in original.jobs
        ]
        assert [s.arrival_time for s in back.jobs] == pytest.approx(
            [s.arrival_time for s in original.jobs], abs=0.01
        )

    def test_export_results_records_actuals(self):
        spec = fs_workload(5, seed=2, config=FSWorkloadConfig(steps=4))
        result = run_workload(spec, ClusterConfig(num_nodes=20), flexible=False)
        text = export_results(result.jobs)
        lines = [l for l in text.splitlines() if not l.startswith(";")]
        assert len(lines) == 5
        fields = lines[0].split()
        assert len(fields) == 18
        assert int(fields[10]) == 1  # completed status
        assert float(fields[3]) > 0  # real run time

    def test_export_results_rejects_unfinished(self):
        from repro.slurm import Job

        job = Job(name="x", num_nodes=1, time_limit=10.0)
        job.job_id = 1
        job.submit_time = 0.0
        with pytest.raises(WorkloadError):
            export_results([job])

    def test_exported_results_reimportable(self):
        spec = fs_workload(5, seed=2, config=FSWorkloadConfig(steps=4))
        result = run_workload(spec, ClusterConfig(num_nodes=20), flexible=False)
        replay = parse_swf(export_results(result.jobs), steps=4)
        assert len(replay) == 5
        # Replayed runtimes match the measured execution times.
        for js, job in zip(replay.jobs, sorted(result.jobs, key=lambda j: j.job_id)):
            app = js.app_factory()
            assert app.total_time(js.submit_nodes) == pytest.approx(
                job.execution_time, rel=0.01
            )
