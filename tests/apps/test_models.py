"""Tests for application models and scalability curves."""

import pytest

from repro.apps import (
    AmdahlScalability,
    AppModel,
    LinearScalability,
    MeasuredScalability,
    conjugate_gradient,
    flexible_sleep,
    jacobi,
    nbody,
)
from repro.errors import ReproError


class TestScalability:
    def test_linear(self):
        s = LinearScalability()
        assert s.speedup(1) == 1.0
        assert s.speedup(16) == 16.0
        with pytest.raises(ReproError):
            s.speedup(0)

    def test_amdahl(self):
        s = AmdahlScalability(serial_fraction=0.1)
        assert s.speedup(1) == pytest.approx(1.0)
        assert s.speedup(10) == pytest.approx(1 / (0.1 + 0.09))
        with pytest.raises(ReproError):
            AmdahlScalability(1.5)

    def test_measured_exact_points(self):
        s = MeasuredScalability({1: 1.0, 8: 6.0, 32: 7.0})
        assert s.speedup(8) == 6.0
        assert s.speedup(32) == 7.0

    def test_measured_interpolates_in_log_space(self):
        s = MeasuredScalability({1: 1.0, 4: 3.0})
        assert s.speedup(2) == pytest.approx(2.0)  # halfway in log2

    def test_measured_clamps_beyond_range(self):
        s = MeasuredScalability({1: 1.0, 8: 6.0})
        assert s.speedup(64) == 6.0

    def test_measured_adds_unit_point(self):
        s = MeasuredScalability({8: 6.0})
        assert s.speedup(1) == 1.0

    def test_measured_validation(self):
        with pytest.raises(ReproError):
            MeasuredScalability({})
        with pytest.raises(ReproError):
            MeasuredScalability({0: 1.0})
        with pytest.raises(ReproError):
            MeasuredScalability({2: -1.0})


class TestAppModel:
    def app(self, **kw):
        defaults = dict(
            name="t",
            iterations=4,
            serial_step_time=8.0,
            state_bytes=100.0,
            scalability=LinearScalability(),
        )
        defaults.update(kw)
        return AppModel(**defaults)

    def test_step_time_scales(self):
        app = self.app()
        assert app.step_time(1) == 8.0
        assert app.step_time(4) == 2.0

    def test_total_time(self):
        assert self.app().total_time(2) == 16.0

    def test_progress_tracking(self):
        app = self.app()
        assert app.remaining_steps == 4
        app.advance()
        app.advance(2)
        assert app.completed_steps == 3
        assert not app.finished
        app.advance()
        assert app.finished

    def test_advance_past_end_rejected(self):
        app = self.app(iterations=1)
        app.advance()
        with pytest.raises(ReproError):
            app.advance()

    def test_reset(self):
        app = self.app()
        app.advance(4)
        app.reset()
        assert app.completed_steps == 0

    def test_fresh_copy_independent_progress(self):
        app = self.app()
        app.advance(2)
        copy = app.fresh_copy()
        assert copy.completed_steps == 0
        assert copy.iterations == app.iterations

    def test_validation(self):
        with pytest.raises(ReproError):
            self.app(iterations=0)
        with pytest.raises(ReproError):
            self.app(serial_step_time=0)
        with pytest.raises(ReproError):
            self.app(state_bytes=-1)
        with pytest.raises(ReproError):
            self.app(sched_period=-1)


class TestPaperApplications:
    def test_fs_linear_anchor(self):
        app = flexible_sleep(step_time=60.0, at_procs=10, steps=2)
        assert app.step_time(10) == pytest.approx(60.0)
        assert app.step_time(20) == pytest.approx(30.0)
        assert app.iterations == 2

    def test_fs_table1_limits(self):
        app = flexible_sleep(step_time=10.0, at_procs=4)
        assert app.resize.min_procs == 1
        assert app.resize.max_procs == 20
        assert app.resize.preferred is None
        assert app.resize.factor == 2

    def test_fs_validation(self):
        with pytest.raises(ReproError):
            flexible_sleep(step_time=0, at_procs=4)
        with pytest.raises(ReproError):
            flexible_sleep(step_time=1, at_procs=0)

    def test_cg_table1(self):
        app = conjugate_gradient()
        assert app.iterations == 10_000
        assert app.resize.min_procs == 2
        assert app.resize.max_procs == 32
        assert app.resize.preferred == 8
        assert app.sched_period == 15.0

    def test_cg_sweet_spot_behaviour(self):
        """Section IX-A: <10% marginal gain per doubling beyond 8 procs."""
        app = conjugate_gradient()
        s = app.scalability
        assert s.speedup(16) / s.speedup(8) < 1.10
        assert s.speedup(32) / s.speedup(16) < 1.10
        # But the absolute best remains 32.
        assert s.speedup(32) == max(s.speedup(p) for p in (1, 2, 4, 8, 16, 32))

    def test_cg_short_iterations(self):
        """Section IX-A: CG/Jacobi iterations complete in < 2 s."""
        app = conjugate_gradient()
        assert app.step_time(8) < 2.0

    def test_jacobi_table1(self):
        app = jacobi()
        assert app.iterations == 10_000
        assert app.resize.preferred == 8
        assert app.sched_period == 15.0
        assert app.step_time(8) < 2.0

    def test_nbody_table1(self):
        app = nbody()
        assert app.iterations == 25
        assert app.resize.min_procs == 1
        assert app.resize.max_procs == 16
        assert app.resize.preferred == 1
        assert app.sched_period == 0.0

    def test_nbody_constant_performance(self):
        """Section IX-A: < 10% total gain, peak at 16 processes."""
        app = nbody()
        s = app.scalability
        assert s.speedup(16) < 1.10
        assert s.speedup(16) == max(s.speedup(p) for p in (1, 2, 4, 8, 16, 32))

    def test_nbody_costly_iterations(self):
        """N-body steps are minutes-scale vs CG/Jacobi seconds-scale."""
        assert nbody().step_time(1) > 10 * conjugate_gradient().step_time(8)
