"""Real-data malleability tests: resized runs must match unresized runs.

This is the ground-truth validation of the Listing 3 protocol: a solver
resized mid-run (through spawn + redistribution + generation hand-over)
must produce the same answer as the same solver never resized, which in
turn must match the sequential reference.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.apps.kernels import (
    cg_reference,
    jacobi_reference,
    make_dd_system,
    make_particles,
    make_spd_system,
    nbody_reference,
    run_cg,
    run_jacobi,
    run_nbody,
)
from repro.apps.kernels.driver import merge_states, partition_state
from repro.errors import RedistributionError

N = 48  # divisible by 1, 2, 4, 8, 16
ITERS = 12


class TestCG:
    @pytest.fixture(scope="class")
    def system(self):
        return make_spd_system(N, seed=7)

    def test_distributed_matches_reference(self, system):
        a, b = system
        ref = cg_reference(a, b, ITERS)
        got = run_cg(a, b, ITERS, nprocs=4)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_expand_preserves_solution(self, system):
        a, b = system
        ref = run_cg(a, b, ITERS, nprocs=2)
        resized = run_cg(a, b, ITERS, nprocs=2, schedule={5: 4})
        np.testing.assert_allclose(resized, ref, rtol=1e-9, atol=1e-12)

    def test_shrink_preserves_solution(self, system):
        a, b = system
        ref = run_cg(a, b, ITERS, nprocs=8)
        resized = run_cg(a, b, ITERS, nprocs=8, schedule={4: 2})
        np.testing.assert_allclose(resized, ref, rtol=1e-9, atol=1e-12)

    def test_multiple_resizes(self, system):
        a, b = system
        ref = cg_reference(a, b, ITERS)
        resized = run_cg(a, b, ITERS, nprocs=2, schedule={3: 8, 6: 4, 9: 8})
        np.testing.assert_allclose(resized, ref, rtol=1e-9, atol=1e-12)

    def test_resize_at_first_iteration(self, system):
        a, b = system
        ref = cg_reference(a, b, ITERS)
        resized = run_cg(a, b, ITERS, nprocs=4, schedule={0: 8})
        np.testing.assert_allclose(resized, ref, rtol=1e-9, atol=1e-12)

    def test_converges_toward_solution(self, system):
        a, b = system
        x = run_cg(a, b, 40, nprocs=4)
        assert np.linalg.norm(a @ x - b) < 1e-6 * np.linalg.norm(b)


class TestJacobi:
    @pytest.fixture(scope="class")
    def system(self):
        return make_dd_system(N, seed=3)

    def test_distributed_matches_reference(self, system):
        a, b = system
        ref = jacobi_reference(a, b, ITERS)
        got = run_jacobi(a, b, ITERS, nprocs=6)
        np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-14)

    def test_expand_preserves_solution(self, system):
        a, b = system
        ref = jacobi_reference(a, b, ITERS)
        resized = run_jacobi(a, b, ITERS, nprocs=2, schedule={6: 8})
        np.testing.assert_allclose(resized, ref, rtol=1e-12, atol=1e-14)

    def test_shrink_preserves_solution(self, system):
        a, b = system
        ref = jacobi_reference(a, b, ITERS)
        resized = run_jacobi(a, b, ITERS, nprocs=8, schedule={6: 4})
        np.testing.assert_allclose(resized, ref, rtol=1e-12, atol=1e-14)

    def test_migration_equivalent_shrink_then_expand(self, system):
        a, b = system
        ref = jacobi_reference(a, b, ITERS)
        resized = run_jacobi(a, b, ITERS, nprocs=4, schedule={3: 2, 7: 4})
        np.testing.assert_allclose(resized, ref, rtol=1e-12, atol=1e-14)

    def test_converges(self, system):
        a, b = system
        x = run_jacobi(a, b, 120, nprocs=4)
        assert np.linalg.norm(a @ x - b) < 1e-8 * np.linalg.norm(b)


class TestNBody:
    @pytest.fixture(scope="class")
    def particles(self):
        return make_particles(32, seed=5)

    def test_distributed_matches_reference(self, particles):
        ref = nbody_reference(particles, 8)
        got = run_nbody(particles, 8, nprocs=4)
        np.testing.assert_allclose(got, ref, rtol=1e-10, atol=1e-13)

    def test_expand_preserves_trajectories(self, particles):
        ref = nbody_reference(particles, 8)
        resized = run_nbody(particles, 8, nprocs=1, schedule={3: 4})
        np.testing.assert_allclose(resized, ref, rtol=1e-10, atol=1e-13)

    def test_shrink_preserves_trajectories(self, particles):
        ref = nbody_reference(particles, 8)
        resized = run_nbody(particles, 8, nprocs=8, schedule={2: 2})
        np.testing.assert_allclose(resized, ref, rtol=1e-10, atol=1e-13)

    def test_energy_sanity(self, particles):
        """Positions stay bounded over short softened-gravity runs."""
        final = run_nbody(particles, 10, nprocs=2)
        assert np.all(np.isfinite(final))
        assert np.abs(final).max() < 10.0


class TestDriverHelpers:
    def test_partition_then_merge_roundtrip(self):
        state = {
            "a": np.arange(24.0).reshape(12, 2),
            "b": np.arange(12.0),
        }
        parts = partition_state(state, 4)
        assert len(parts) == 4
        assert parts[0]["a"].shape == (3, 2)
        merged = merge_states(parts)
        np.testing.assert_array_equal(merged["a"], state["a"])
        np.testing.assert_array_equal(merged["b"], state["b"])

    def test_partition_indivisible_raises(self):
        with pytest.raises(RedistributionError):
            partition_state({"a": np.arange(10.0)}, 4)

    def test_merge_empty_raises(self):
        with pytest.raises(RedistributionError):
            merge_states([])

    def test_merge_mismatched_keys_raises(self):
        with pytest.raises(RedistributionError):
            merge_states([{"a": np.arange(2.0)}, {"b": np.arange(2.0)}])

    def test_schedule_callable(self):
        a, b = make_spd_system(N, seed=1)
        ref = cg_reference(a, b, 8)

        def schedule(t, size):
            return 4 if t == 3 and size == 2 else None

        got = run_cg(a, b, 8, nprocs=2, schedule=schedule)
        np.testing.assert_allclose(got, ref, rtol=1e-9, atol=1e-12)

    def test_invalid_expand_factor(self):
        a, b = make_spd_system(N, seed=1)
        with pytest.raises(RedistributionError):
            run_cg(a, b, 8, nprocs=2, schedule={2: 3})  # 2 -> 3 not multiple


@given(
    start=st.sampled_from([1, 2, 4, 8]),
    target=st.sampled_from([1, 2, 4, 8]),
    when=st.integers(min_value=0, max_value=7),
)
@settings(max_examples=12, deadline=None)
def test_property_any_single_resize_preserves_jacobi(start, target, when):
    """Any homogeneous resize at any boundary preserves the solution."""
    ratio = max(start, target) // min(start, target)
    if ratio * min(start, target) != max(start, target):
        return  # non-homogeneous pairs are covered by error tests
    a, b = make_dd_system(16, seed=9)
    ref = jacobi_reference(a, b, 8)
    schedule = {when: target} if target != start else None
    got = run_jacobi(a, b, 8, nprocs=start, schedule=schedule)
    np.testing.assert_allclose(got, ref, rtol=1e-12, atol=1e-14)
