"""End-to-end invariants over full workload executions.

These run complete workloads through the whole stack (workload model ->
Slurm -> runtime -> DES) and assert system-level invariants that any
correct execution must satisfy, whatever the policy decides.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, marenostrum_preliminary
from repro.experiments.common import run_workload
from repro.metrics import EventKind, allocated_nodes_series
from repro.runtime import RuntimeConfig
from repro.slurm import Accounting, JobState
from repro.workload import FSWorkloadConfig, fs_workload, realapp_workload


def check_invariants(result, num_nodes):
    jobs = [j for j in result.jobs if not j.is_resizer]
    # Every job completed exactly once.
    assert all(j.state is JobState.COMPLETED for j in jobs)
    # Timestamps are sane.
    for j in jobs:
        assert j.submit_time <= j.start_time <= j.end_time
    # No nodes leaked: the allocation series ends at zero and never
    # exceeds the machine.
    alloc = allocated_nodes_series(result.trace)
    assert alloc.values[-1] == 0
    assert max(alloc.values) <= num_nodes
    # Every resize kept the job within the cluster.
    for j in jobs:
        for _, old, new in j.resizes:
            assert 1 <= new <= num_nodes
            assert old != new
    # Trace bookkeeping: one submit and one end per job.
    for j in jobs:
        kinds = [e.kind for e in result.trace.of_job(j.job_id)]
        assert kinds.count(EventKind.JOB_SUBMIT) == 1
        assert kinds.count(EventKind.JOB_END) == 1


@pytest.mark.parametrize("flexible", [False, True])
def test_fs_workload_invariants(flexible):
    result = run_workload(
        fs_workload(30, seed=5),
        marenostrum_preliminary(),
        flexible=flexible,
        runtime_config=RuntimeConfig(),
    )
    check_invariants(result, 20)


@pytest.mark.parametrize("flexible", [False, True])
def test_realapp_workload_invariants(flexible):
    from repro.cluster import marenostrum_production

    result = run_workload(
        realapp_workload(20, seed=5),
        marenostrum_production(),
        flexible=flexible,
        runtime_config=RuntimeConfig(),
    )
    check_invariants(result, 65)


def test_paired_runs_share_submission_times():
    spec = fs_workload(15, seed=8)
    fixed = run_workload(spec, marenostrum_preliminary(), flexible=False)
    flex = run_workload(spec, marenostrum_preliminary(), flexible=True)
    assert [j.submit_time for j in fixed.jobs] == [j.submit_time for j in flex.jobs]
    assert [j.submitted_nodes for j in fixed.jobs] == [
        j.submitted_nodes for j in flex.jobs
    ]


def test_fixed_rendition_never_resizes():
    result = run_workload(fs_workload(15, seed=8), marenostrum_preliminary(), flexible=False)
    assert result.summary.resize_count == 0
    assert result.trace.of_kind(EventKind.RESIZE_EXPAND, EventKind.RESIZE_SHRINK) == []


def test_determinism_same_seed_same_trace():
    a = run_workload(fs_workload(20, seed=3), marenostrum_preliminary(), flexible=True)
    b = run_workload(fs_workload(20, seed=3), marenostrum_preliminary(), flexible=True)
    assert a.makespan == b.makespan
    assert len(a.trace) == len(b.trace)
    assert [e.kind for e in a.trace] == [e.kind for e in b.trace]
    assert [e.time for e in a.trace] == [e.time for e in b.trace]


def test_accounting_consistent_with_summary():
    result = run_workload(fs_workload(20, seed=3), marenostrum_preliminary(), flexible=True)
    acct = Accounting(result.jobs)
    assert len(acct) == 20
    assert acct.mean_wait() == pytest.approx(result.summary.avg_wait_time)
    assert acct.total_resizes() == result.summary.resize_count
    # Node-seconds from per-job integration match the machine-side series.
    assert acct.total_node_seconds() == pytest.approx(
        result.summary.total_node_seconds, rel=1e-6
    )


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    num_jobs=st.integers(min_value=2, max_value=12),
    nodes=st.sampled_from([8, 16, 20]),
)
@settings(max_examples=15, deadline=None)
def test_property_random_workloads_satisfy_invariants(seed, num_jobs, nodes):
    """Whatever the workload, the system conserves jobs and nodes."""
    cfg = FSWorkloadConfig(max_size=nodes, steps=4)
    result = run_workload(
        fs_workload(num_jobs, seed=seed, config=cfg),
        ClusterConfig(num_nodes=nodes),
        flexible=True,
        runtime_config=RuntimeConfig(),
    )
    check_invariants(result, nodes)
