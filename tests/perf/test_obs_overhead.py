"""Telemetry overhead pin: spans must stay out of the scheduler's way.

Replays the 20k-job bench trace with telemetry off and on, interleaved
min-of-N with the cyclic GC parked (allocator noise would otherwise
dwarf the effect being measured), and pins the wall-clock ratio at
≤ 5%.  The scheduler records one ``sched.pass`` span per pass through
the :meth:`~repro.obs.spans.Telemetry.append` fast path — this test is
what keeps that call site honest.
"""

from __future__ import annotations

import gc

from repro.obs.spans import Telemetry, TelemetryConfig
from repro.sweep.bench import replay_sched_trace
from repro.workload.generator import sched_trace

SIZE = 20_000
SEED = 2017
REPS = 3
#: The acceptance ceiling: telemetry may cost at most 5% wall clock.
MAX_OVERHEAD_RATIO = 1.05


def test_span_overhead_within_five_percent():
    trace = sched_trace(SIZE, seed=SEED)
    # Warm caches so neither arm pays first-run costs.
    replay_sched_trace(trace, incremental=True)
    off: list = []
    on: list = []
    enabled = gc.isenabled()
    gc.disable()
    try:
        for _ in range(REPS):
            gc.collect()
            off.append(replay_sched_trace(trace, incremental=True))
            gc.collect()
            telemetry = Telemetry(TelemetryConfig(
                correlation_id=f"overhead-{SIZE}"
            ))
            on.append(replay_sched_trace(
                trace, incremental=True, telemetry=telemetry
            ))
    finally:
        if enabled:
            gc.enable()
    # Telemetry must not change what the scheduler does...
    for base, instrumented in zip(off, on):
        assert instrumented["passes"] == base["passes"]
        assert instrumented["comparisons"] == base["comparisons"]
        assert instrumented["jobs_started"] == base["jobs_started"]
    # ...and every pass must have produced exactly one span, none shed.
    spans = on[0]["spans_recorded"]
    assert spans == on[0]["passes"]
    assert on[0]["spans_dropped"] == 0
    # The pin: min-of-N against min-of-N bounds scheduling noise.
    base = min(stats["wall_s"] for stats in off)
    instrumented = min(stats["wall_s"] for stats in on)
    ratio = instrumented / base
    assert ratio <= MAX_OVERHEAD_RATIO, (
        f"telemetry costs {(ratio - 1) * 100:.1f}% wall clock on the "
        f"{SIZE}-job replay ({base:.2f}s -> {instrumented:.2f}s over "
        f"{spans} spans; budget {(MAX_OVERHEAD_RATIO - 1) * 100:.0f}%)"
    )
