"""Scale budgets: the simulator must *stay* the fast path.

Pins throughput (events/sec), scheduler work (comparisons-per-pass) and
memory (peak RSS) at bench scale, so a regression in the engine calendar,
the incremental queue or the trace layer fails loudly in CI instead of
silently re-inflating ``repro bench sched``.

Budget philosophy: the numbers are *floors with large headroom*, not the
measured values — dev hardware does ~66k events/sec and ~0.85
comparisons per pass at these sizes; the budgets admit a ~4x slower CI
box but not an algorithmic regression (the legacy resort-per-pass
scheduler blows the comparison budget by ~70x).

The million-job run is ``slow`` (minutes): opt in with ``--run-slow`` or
``REPRO_RUN_SLOW=1``.
"""

from __future__ import annotations

import pytest

from repro.sweep.bench import SCHED_LEAN_MIN, replay_sched_trace
from repro.workload.generator import sched_trace

SEED = 2017

#: Conservative floor: dev hardware sustains ~66k events/sec.
MIN_EVENTS_PER_SEC = 15_000
#: The incremental queue computes ~2 keys/job over ~2.4 passes/job
#: (≈0.85 comparisons/pass); legacy mode re-keys the whole queue every
#: pass (hundreds per pass at these sizes).
MAX_COMPARISONS_PER_PASS = 1.5
#: Peak-RSS ceilings in MiB (interpreter + numpy baseline is ~45 MiB;
#: ru_maxrss is a process-lifetime high-water mark, so these also bound
#: every smaller replay that ran before them in the same process).
MAX_RSS_MB = {5_000: 300.0, 20_000: 500.0, 1_000_000: 4_096.0}


def _budget_checks(stats, size):
    assert stats["events_per_sec"] >= MIN_EVENTS_PER_SEC, (
        f"{size}-job replay slowed to {stats['events_per_sec']:.0f} "
        f"events/sec (budget {MIN_EVENTS_PER_SEC})"
    )
    assert stats["comparisons_per_pass"] <= MAX_COMPARISONS_PER_PASS, (
        f"{size}-job replay does {stats['comparisons_per_pass']:.2f} "
        f"comparisons/pass (budget {MAX_COMPARISONS_PER_PASS}) — is the "
        "incremental queue re-keying per pass again?"
    )
    assert stats["peak_rss_mb"] <= MAX_RSS_MB[size], (
        f"peak RSS {stats['peak_rss_mb']:.0f} MiB after the {size}-job "
        f"replay (budget {MAX_RSS_MB[size]:.0f} MiB)"
    )


@pytest.mark.parametrize("size", [5_000, 20_000])
def test_replay_budgets(size):
    trace = sched_trace(size, seed=SEED)
    stats = replay_sched_trace(trace, incremental=True)
    assert stats["jobs"] == size
    _budget_checks(stats, size)


@pytest.mark.slow
def test_million_job_replay_budgets():
    size = 1_000_000
    assert size >= SCHED_LEAN_MIN  # must take the flat-memory path
    trace = sched_trace(size, seed=SEED)
    stats = replay_sched_trace(trace, incremental=True, lean=True)
    assert stats["jobs"] == size
    assert stats["lean"] is True
    assert stats["jobs_started"] == size
    _budget_checks(stats, size)
