"""The invariant harness itself: clean runs pass, corrupted runs are
caught at the breaking event, and the suite-wide fixture is wired."""

import pytest

from repro.api import Session
from repro.cluster import ClusterConfig
from repro.cluster.configs import marenostrum_preliminary
from repro.errors import InvariantViolation
from repro.faults import FaultPlan
from repro.metrics.trace import EventKind, Trace
from repro.testing import InvariantObserver, WedgedSimulation, run_bounded


class TestCleanRuns:
    def test_fs_workload_passes_all_invariants(self):
        observer = InvariantObserver()
        session = (
            Session(cluster=marenostrum_preliminary())
            .with_seed(2017)
            .observe(observer)
        )
        result = session.run(session.fs_workload(10))
        assert result.summary.num_jobs == 10
        assert observer.verify_final() > 0

    def test_faulty_run_passes_all_invariants(self):
        observer = InvariantObserver()
        base = Session(cluster=marenostrum_preliminary()).with_seed(3)
        plan = FaultPlan.from_mtbf(
            mtbf=400.0, horizon=4000.0, num_nodes=20, seed=3, repair_time=300.0
        )
        session = base.with_faults(plan).observe(observer)
        session.run(base.fs_workload(10))
        assert observer.verify_final() > 0


class TestViolationsAreCaught:
    """Feed the observer hand-corrupted event streams."""

    def _observer_on(self, trace: Trace) -> InvariantObserver:
        observer = InvariantObserver()
        trace.subscribe(observer.on_event)
        return observer

    def test_time_going_backwards(self):
        trace = Trace()
        self._observer_on(trace)
        trace.record(10.0, EventKind.JOB_SUBMIT, 1, name="a", nodes=2,
                     flexible=False, resizer=False)
        with pytest.raises(InvariantViolation, match="monotonic-time"):
            trace.record(9.0, EventKind.JOB_SUBMIT, 2, name="b", nodes=2,
                         flexible=False, resizer=False)

    def test_double_allocation(self):
        trace = Trace()
        self._observer_on(trace)
        trace.record(0.0, EventKind.JOB_START, 1, nodes=2, node_ids=(0, 1),
                     resizer=False)
        with pytest.raises(InvariantViolation, match="no-double-allocation"):
            trace.record(1.0, EventKind.JOB_START, 2, nodes=2, node_ids=(1, 2),
                         resizer=False)

    def test_unpaired_shrink(self):
        trace = Trace()
        self._observer_on(trace)
        trace.record(0.0, EventKind.JOB_START, 1, nodes=4,
                     node_ids=(0, 1, 2, 3), resizer=False)
        with pytest.raises(InvariantViolation, match="decision-ack-pairing"):
            trace.record(5.0, EventKind.RESIZE_SHRINK, 1, new_size=2,
                         released=(2, 3))

    def test_mismatched_decision_action(self):
        trace = Trace()
        self._observer_on(trace)
        trace.record(0.0, EventKind.JOB_START, 1, nodes=2, node_ids=(0, 1),
                     resizer=False)
        trace.record(1.0, EventKind.RESIZE_DECISION, 1, action="expand",
                     target=4, reason="alone_in_system", beneficiary=None)
        with pytest.raises(InvariantViolation, match="decision-ack-pairing"):
            trace.record(2.0, EventKind.RESIZE_SHRINK, 1, new_size=1,
                         released=(1,))

    def test_paired_resize_accepted(self):
        trace = Trace()
        observer = self._observer_on(trace)
        trace.record(0.0, EventKind.JOB_START, 1, nodes=2, node_ids=(0, 1),
                     resizer=False)
        trace.record(1.0, EventKind.RESIZE_DECISION, 1, action="shrink",
                     target=1, reason="shrink_for_pending", beneficiary=None)
        trace.record(2.0, EventKind.RESIZE_SHRINK, 1, new_size=1, released=(1,))
        assert observer.checks == 3

    def test_unhandled_failure_on_rigid_job(self):
        """A NODE_FAIL whose holder never reacts must be flagged."""
        from repro.cluster import Machine
        from repro.sim import Environment
        from repro.slurm import Job, SlurmController

        env = Environment()
        machine = Machine(4)
        ctl = SlurmController(env, machine)
        observer = InvariantObserver(controller=ctl)
        ctl.trace.subscribe(observer.on_event)
        job = ctl.submit(Job(name="r", num_nodes=2, time_limit=100.0))
        env.run(until=1.0)
        # Break the node underneath the controller's back: no reaction.
        holder = machine.fail_node(0)
        assert holder == job.job_id
        ctl.trace.record(1.0, EventKind.NODE_FAIL, holder, node=0,
                         hostname="mn0000")
        with pytest.raises(InvariantViolation, match="failure-handling"):
            ctl.trace.record(2.0, EventKind.ALLOC_CHANGE, nodes_used=2,
                             nodes_total=4)


class TestSuiteWiring:
    def test_fixture_attaches_observer_to_session_builds(self):
        """The root-conftest plugin patches Session.build suite-wide."""
        sim = Session(cluster=ClusterConfig(num_nodes=4)).build()
        assert sim.dispatch is not None
        observers = sim.dispatch._observers
        assert any(isinstance(o, InvariantObserver) for o in observers)

    @pytest.mark.no_invariants
    def test_opt_out_marker_disables_wiring(self):
        sim = Session(cluster=ClusterConfig(num_nodes=4)).build()
        assert sim.dispatch is None  # no observers -> no dispatch at all


class TestRunBounded:
    def test_drains_like_env_run(self):
        from repro.sim import Environment

        env = Environment()
        done = []

        def proc():
            yield env.timeout(5.0)
            done.append(env.now)

        env.process(proc())
        run_bounded(env)
        assert done == [5.0]

    def test_until_advances_clock_like_env_run(self):
        from repro.sim import Environment

        env = Environment()
        run_bounded(env, until=42.0)
        assert env.now == 42.0

    def test_wedged_process_raises_instead_of_hanging(self):
        from repro.sim import Environment

        env = Environment()

        def wedge():
            while True:
                yield env.timeout(0.001)

        env.process(wedge())
        with pytest.raises(WedgedSimulation):
            run_bounded(env, until=1e9, max_events=500)

    def test_zero_delay_livelock_raises(self):
        from repro.sim import Environment

        env = Environment()

        def livelock():
            while True:
                yield env.timeout(0.0)

        env.process(livelock())
        with pytest.raises(WedgedSimulation):
            run_bounded(env, max_events=500)
