"""Tests for the multifactor priority plugin."""

import pytest

from repro.slurm import Job, MultifactorConfig, MultifactorPriority


def make_job(nodes=4, submit=0.0, boost=0.0, jid=0):
    job = Job(name=f"j{jid}", num_nodes=nodes, time_limit=100.0)
    job.submit_time = submit
    job.priority_boost = boost
    job.job_id = jid
    return job


def engine(nodes=64, **kw):
    return MultifactorPriority(MultifactorConfig(**kw), cluster_nodes=nodes)


def test_config_validation():
    with pytest.raises(ValueError):
        MultifactorConfig(max_age=0)
    with pytest.raises(ValueError):
        MultifactorPriority(MultifactorConfig(), cluster_nodes=0)


def test_age_factor_grows_and_saturates():
    eng = engine(max_age=100.0)
    job = make_job(submit=0.0)
    assert eng.age_factor(job, 0.0) == 0.0
    assert eng.age_factor(job, 50.0) == 0.5
    assert eng.age_factor(job, 1000.0) == 1.0


def test_age_factor_unsubmitted_is_zero():
    eng = engine()
    job = Job(name="x", num_nodes=1, time_limit=10.0)
    assert eng.age_factor(job, 100.0) == 0.0


def test_size_factor_favors_big_by_default():
    eng = engine(nodes=64)
    small, big = make_job(nodes=1), make_job(nodes=64)
    assert eng.size_factor(big) > eng.size_factor(small)


def test_size_factor_favor_small():
    eng = engine(nodes=64, favor_big=False)
    small, big = make_job(nodes=1), make_job(nodes=64)
    assert eng.size_factor(small) > eng.size_factor(big)


def test_infinite_boost_dominates():
    eng = engine()
    boosted = make_job(nodes=1, submit=100.0, boost=float("inf"), jid=2)
    old_big = make_job(nodes=64, submit=0.0, jid=1)
    order = eng.sort_queue([old_big, boosted], now=1000.0)
    assert order[0] is boosted


def test_sort_queue_fifo_among_equals():
    eng = engine()
    a = make_job(nodes=4, submit=1.0, jid=1)
    b = make_job(nodes=4, submit=2.0, jid=2)
    # Identical priority contributions except age; a is older -> first.
    order = eng.sort_queue([b, a], now=10.0)
    assert [j.job_id for j in order] == [1, 2]


def test_older_job_wins_with_equal_size():
    eng = engine(max_age=100.0)
    old = make_job(submit=0.0, jid=1)
    new = make_job(submit=50.0, jid=2)
    order = eng.sort_queue([new, old], now=60.0)
    assert order[0] is old


def test_priority_combines_weights():
    eng = engine(nodes=10, weight_age=1000.0, weight_job_size=500.0, max_age=10.0)
    job = make_job(nodes=5, submit=0.0)
    # age factor at t=5: 0.5 -> 500 ; size factor 0.5 -> 250
    assert eng.priority(job, 5.0) == pytest.approx(750.0)
