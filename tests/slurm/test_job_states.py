"""The extended JobState taxonomy: real-Slurm states as first-class members.

PREEMPTED, SUSPENDED, DEADLINE, BOOT_FAIL and NODE_FAIL exist for the
subprocess backend's sacct parsing even though the simulator cannot
reach most of them today; their legal-transition entries keep the state
machine honest on real accounting data.
"""

import pytest

from repro.errors import JobStateError
from repro.slurm.job import TERMINAL_STATES, Job, JobState


def make_job(state=JobState.PENDING):
    job = Job(name="j", num_nodes=2, time_limit=100.0)
    job.job_id = 1
    job.state = state
    return job


class TestNewMembers:
    def test_real_slurm_states_are_members(self):
        for name in ("PREEMPTED", "SUSPENDED", "DEADLINE", "BOOT_FAIL", "NODE_FAIL"):
            assert isinstance(JobState[name], JobState)

    def test_failure_states_are_terminal(self):
        for state in (
            JobState.PREEMPTED,
            JobState.DEADLINE,
            JobState.BOOT_FAIL,
            JobState.NODE_FAIL,
        ):
            assert state in TERMINAL_STATES
            assert make_job(state).is_terminal

    def test_suspended_is_not_terminal(self):
        assert JobState.SUSPENDED not in TERMINAL_STATES
        assert not make_job(JobState.SUSPENDED).is_terminal


class TestTransitions:
    @pytest.mark.parametrize(
        "target",
        [JobState.SUSPENDED, JobState.PREEMPTED, JobState.DEADLINE, JobState.NODE_FAIL],
    )
    def test_running_reaches_real_slurm_states(self, target):
        job = make_job(JobState.RUNNING)
        job.transition(target)
        assert job.state is target

    def test_pending_can_boot_fail_or_deadline(self):
        for target in (JobState.BOOT_FAIL, JobState.DEADLINE):
            job = make_job(JobState.PENDING)
            job.transition(target)
            assert job.state is target

    def test_pending_cannot_be_preempted_or_suspended(self):
        for target in (JobState.PREEMPTED, JobState.SUSPENDED):
            with pytest.raises(JobStateError):
                make_job(JobState.PENDING).transition(target)

    def test_suspend_resume_round_trip(self):
        job = make_job(JobState.RUNNING)
        job.transition(JobState.SUSPENDED)
        job.transition(JobState.RUNNING)
        job.transition(JobState.COMPLETED)
        assert job.is_terminal

    def test_suspended_can_die_every_way_but_complete(self):
        for target in (
            JobState.CANCELLED,
            JobState.FAILED,
            JobState.TIMEOUT,
            JobState.PREEMPTED,
            JobState.DEADLINE,
            JobState.NODE_FAIL,
        ):
            job = make_job(JobState.SUSPENDED)
            job.transition(target)
            assert job.is_terminal
        with pytest.raises(JobStateError):
            make_job(JobState.SUSPENDED).transition(JobState.COMPLETED)

    @pytest.mark.parametrize(
        "terminal",
        sorted(TERMINAL_STATES, key=lambda s: s.value),
    )
    def test_terminal_states_accept_nothing(self, terminal):
        for target in JobState:
            with pytest.raises(JobStateError):
                make_job(terminal).transition(target)

    def test_requeue_path_still_legal(self):
        # Requeue-on-node-failure is modeled as RUNNING -> PENDING, not
        # through the (terminal) NODE_FAIL member.
        job = make_job(JobState.RUNNING)
        job.transition(JobState.PENDING)
        job.transition(JobState.RUNNING)


class TestFromSlurm:
    @pytest.mark.parametrize(
        "text,expected",
        [
            ("COMPLETED", JobState.COMPLETED),
            ("RUNNING", JobState.RUNNING),
            ("PENDING", JobState.PENDING),
            ("TIMEOUT", JobState.TIMEOUT),
            ("FAILED", JobState.FAILED),
            ("NODE_FAIL", JobState.NODE_FAIL),
            ("PREEMPTED", JobState.PREEMPTED),
            ("SUSPENDED", JobState.SUSPENDED),
            ("DEADLINE", JobState.DEADLINE),
            ("BOOT_FAIL", JobState.BOOT_FAIL),
            ("CANCELLED", JobState.CANCELLED),
            ("CANCELLED by 1234", JobState.CANCELLED),
            ("cancelled by 0", JobState.CANCELLED),
            ("RESIZING", JobState.RUNNING),
            ("REQUEUED", JobState.PENDING),
            ("CONFIGURING", JobState.PENDING),
            ("COMPLETING", JobState.COMPLETING),
            ("OUT_OF_MEMORY", JobState.FAILED),
            ("REVOKED", JobState.CANCELLED),
        ],
    )
    def test_parses_sacct_state_strings(self, text, expected):
        assert JobState.from_slurm(text) is expected

    def test_unknown_state_raises(self):
        with pytest.raises(JobStateError):
            JobState.from_slurm("ZOMBIE")
        with pytest.raises(JobStateError):
            JobState.from_slurm("")
