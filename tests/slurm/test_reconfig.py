"""Tests for the Algorithm 1 reconfiguration policy."""

import pytest

from repro.core import DecisionReason, ResizeAction, ResizeRequest
from repro.errors import RuntimeAPIError
from repro.slurm import Job, PolicyConfig, PolicyView, ReconfigurationPolicy


def job(nodes, jid=1):
    j = Job(name=f"j{jid}", num_nodes=nodes, time_limit=100.0)
    j.job_id = jid
    return j


def pending(nodes, jid):
    return job(nodes, jid=jid)


def policy(**kw):
    return ReconfigurationPolicy(PolicyConfig(**kw))


class TestResizeRequest:
    def test_validation(self):
        with pytest.raises(RuntimeAPIError):
            ResizeRequest(min_procs=0, max_procs=4)
        with pytest.raises(RuntimeAPIError):
            ResizeRequest(min_procs=4, max_procs=2)
        with pytest.raises(RuntimeAPIError):
            ResizeRequest(min_procs=2, max_procs=8, preferred=16)
        with pytest.raises(RuntimeAPIError):
            ResizeRequest(min_procs=1, max_procs=4, factor=0)

    def test_expand_sizes_factor2(self):
        req = ResizeRequest(min_procs=1, max_procs=32)
        assert req.expand_sizes(4) == (8, 16, 32)
        assert req.expand_sizes(3) == (6, 12, 24)
        assert req.expand_sizes(32) == ()

    def test_shrink_sizes_factor2(self):
        req = ResizeRequest(min_procs=2, max_procs=32)
        assert req.shrink_sizes(16) == (8, 4, 2)
        assert req.shrink_sizes(3) == ()  # 3 not divisible by 2
        assert req.shrink_sizes(2) == ()  # at the minimum already

    def test_factor1_means_any_size(self):
        req = ResizeRequest(min_procs=1, max_procs=5, factor=1)
        assert req.expand_sizes(3) == (4, 5)
        assert req.shrink_sizes(3) == (2, 1)

    def test_max_procs_to_respects_free_nodes(self):
        req = ResizeRequest(min_procs=1, max_procs=32)
        assert req.max_procs_to(4, limit=32, available=100) == 32
        assert req.max_procs_to(4, limit=32, available=10) == 8
        assert req.max_procs_to(4, limit=32, available=3) is None
        assert req.max_procs_to(4, limit=20, available=100) == 16


class TestRequestedAction:
    def test_min_above_current_forces_expand(self):
        req = ResizeRequest(min_procs=8, max_procs=16)
        d = policy().decide(job(4), req, PolicyView(free_nodes=20))
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 16
        assert d.reason is DecisionReason.REQUESTED_ACTION

    def test_min_above_current_without_resources(self):
        req = ResizeRequest(min_procs=8, max_procs=16)
        d = policy().decide(job(4), req, PolicyView(free_nodes=2))
        assert d.action is ResizeAction.NO_ACTION
        assert d.reason is DecisionReason.NO_RESOURCES

    def test_max_below_current_forces_shrink(self):
        req = ResizeRequest(min_procs=1, max_procs=4)
        d = policy().decide(job(16), req, PolicyView(free_nodes=0))
        assert d.action is ResizeAction.SHRINK
        assert d.target_procs == 4
        assert d.reason is DecisionReason.REQUESTED_ACTION


class TestPreferredMode:
    def req(self, pref=8):
        return ResizeRequest(min_procs=2, max_procs=32, preferred=pref)

    def test_empty_queue_expands_to_job_max(self):
        d = policy().decide(job(8), self.req(), PolicyView(free_nodes=40))
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 32
        assert d.reason is DecisionReason.ALONE_IN_SYSTEM

    def test_empty_queue_no_free_nodes(self):
        d = policy().decide(job(8), self.req(), PolicyView(free_nodes=0))
        assert d.action is ResizeAction.NO_ACTION

    def test_preferred_reached_is_no_action(self):
        view = PolicyView(free_nodes=40, pending=(pending(32, 9),))
        d = policy().decide(job(8), self.req(), view)
        assert d.action is ResizeAction.NO_ACTION
        assert d.reason is DecisionReason.PREFERRED_REACHED

    def test_expand_toward_preferred(self):
        view = PolicyView(free_nodes=40, pending=(pending(32, 9),))
        d = policy().decide(job(2), self.req(8), view)
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 8
        assert d.reason is DecisionReason.EXPAND_TO_PREFERRED

    def test_partial_expand_toward_preferred(self):
        view = PolicyView(free_nodes=2, pending=(pending(32, 9),))
        d = policy().decide(job(2), self.req(8), view)
        # Only 2 free nodes: can reach 4 (factor 2) but not 8.
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 4

    def test_shrink_to_preferred(self):
        view = PolicyView(free_nodes=0, pending=(pending(32, 9),))
        d = policy().decide(job(32), self.req(8), view)
        assert d.action is ResizeAction.SHRINK
        assert d.target_procs == 8
        assert d.reason is DecisionReason.SHRINK_TO_PREFERRED

    def test_unreachable_preferred_falls_to_wide_opt(self):
        # Current 6, preferred 8 with factor 2: 6->12 overshoots, cannot
        # reach 8; queue empty handled earlier so use a pending queue that
        # cannot be helped either -> wide optimization. With the literal
        # Algorithm 1 grant policy it expands into the idle resources.
        req = ResizeRequest(min_procs=2, max_procs=24, factor=2, preferred=8)
        view = PolicyView(free_nodes=6, pending=(pending(32, 9),))
        d = policy(expand_with_pending=True).decide(job(6), req, view)
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 12
        assert d.reason is DecisionReason.EXPAND_IDLE_RESOURCES

    def test_unreachable_preferred_conservative_grant(self):
        # Same situation under the default grant policy: no expansion
        # while jobs are pending.
        req = ResizeRequest(min_procs=2, max_procs=24, factor=2, preferred=8)
        view = PolicyView(free_nodes=6, pending=(pending(32, 9),))
        d = policy().decide(job(6), req, view)
        assert d.action is ResizeAction.NO_ACTION
        assert d.reason is DecisionReason.NO_RESOURCES


class TestWideOptimization:
    def req(self):
        return ResizeRequest(min_procs=1, max_procs=20)

    def test_no_pending_expands_to_max(self):
        d = policy().decide(job(4), self.req(), PolicyView(free_nodes=16))
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 16
        assert d.reason is DecisionReason.EXPAND_IDLE_RESOURCES

    def test_pending_fits_in_free_nodes_no_action(self):
        view = PolicyView(free_nodes=5, pending=(pending(4, 9),))
        d = policy().decide(job(4), self.req(), view)
        assert d.action is ResizeAction.NO_ACTION
        assert d.reason is DecisionReason.PENDING_FITS

    def test_shrink_for_pending_deepest(self):
        view = PolicyView(free_nodes=1, pending=(pending(4, 9),))
        d = policy(shrink_mode="deepest").decide(job(8), self.req(), view)
        assert d.action is ResizeAction.SHRINK
        assert d.target_procs == 1  # deepest reachable
        assert d.beneficiary_job_id == 9
        assert d.reason is DecisionReason.SHRINK_FOR_PENDING

    def test_shrink_for_pending_minimal(self):
        view = PolicyView(free_nodes=1, pending=(pending(4, 9),))
        d = policy(shrink_mode="minimal").decide(job(8), self.req(), view)
        assert d.action is ResizeAction.SHRINK
        # Needs 3 more nodes; shrinking 8->4 frees 4 >= 3. 8->... minimal.
        assert d.target_procs == 4
        assert d.beneficiary_job_id == 9

    def test_shrink_helps_any_candidate_when_configured(self):
        view = PolicyView(
            free_nodes=0,
            pending=(pending(100, 7), pending(4, 8), pending(2, 9)),
        )
        d = policy(shrink_mode="minimal", shrink_beneficiary="any").decide(
            job(8), self.req(), view
        )
        # Job 7 is impossible even with full shrink; job 8 is the first
        # candidate that a shrink can unblock.
        assert d.beneficiary_job_id == 8
        assert d.target_procs == 4

    def test_head_only_shrink_does_not_jump_wide_head(self):
        """Default: an unhelpable queue head blocks shrink-for-pending.

        This protects the head's backfill reservation: freed nodes must
        accumulate for it instead of feeding queue-jumping starts.
        """
        view = PolicyView(
            free_nodes=0,
            pending=(pending(100, 7), pending(4, 8)),
        )
        d = policy(shrink_mode="minimal").decide(job(8), self.req(), view)
        assert d.action is ResizeAction.NO_ACTION

    def test_head_shrink_when_head_helpable(self):
        view = PolicyView(free_nodes=0, pending=(pending(4, 8),))
        d = policy(shrink_mode="minimal").decide(job(8), self.req(), view)
        assert d.action is ResizeAction.SHRINK
        assert d.beneficiary_job_id == 8

    def test_cannot_help_pending_expands_when_configured(self):
        view = PolicyView(free_nodes=6, pending=(pending(32, 9),))
        d = policy(expand_with_pending=True).decide(job(2), self.req(), view)
        # Even shrinking to 1 frees 1 node: 6+1 < 32 -> expand instead.
        assert d.action is ResizeAction.EXPAND
        assert d.target_procs == 8
        assert d.reason is DecisionReason.EXPAND_IDLE_RESOURCES

    def test_cannot_help_pending_conservative_grant(self):
        view = PolicyView(free_nodes=6, pending=(pending(32, 9),))
        d = policy().decide(job(2), self.req(), view)
        assert d.action is ResizeAction.NO_ACTION
        assert d.reason is DecisionReason.NO_RESOURCES

    def test_nothing_possible_is_no_action(self):
        view = PolicyView(free_nodes=0, pending=(pending(32, 9),))
        req = ResizeRequest(min_procs=3, max_procs=20)
        d = policy().decide(job(3), req, view)
        # 3 is odd (no shrink), no free nodes (no expand).
        assert d.action is ResizeAction.NO_ACTION
        assert d.reason is DecisionReason.NO_RESOURCES

    def test_stale_view_can_be_passed(self):
        """Async mode: the decision uses whatever view is supplied."""
        stale = PolicyView(free_nodes=16)  # was idle...
        d = policy().decide(job(4), self.req(), stale)
        assert d.action is ResizeAction.EXPAND  # based on stale idle nodes
